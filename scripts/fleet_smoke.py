#!/usr/bin/env python3
"""Fleet-scale smoke: 50k nets through shards + streaming fold, RSS-capped.

The scaling claim of the sharded-checkpoint/streaming-report stack is
that fleet size costs disk, not memory: results stream through the
:class:`~repro.batch.ReportFold` and onto fsync-batched shard journals
without the process ever holding the fleet.  This script checks that
claim end to end, CI-gated:

1. **Synthetic 50k-net pass** — deterministic fabricated results (the
   DP itself is exercised elsewhere; here the fleet *machinery* is the
   system under test) journaled across ``--shards`` files while a
   streaming fold aggregates them.  Peak RSS is read immediately after
   and asserted under ``--rss-cap-mb``.
2. **Recovery at scale** — the 50k-record shard set is recovered and
   must hold exactly the fleet.
3. **Fold identity** — the same synthetic results folded in-memory
   (retained list → ``BatchReport``) must produce byte-identical
   ``to_json`` aggregates to the streamed fold.
4. **Real-DP spot check** — a small real fleet (``--dp-nets``) run
   twice through ``BatchOptimizer``, streamed vs retained, aggregates
   compared key for key (timing keys excluded).

Prints one line of strict JSON on stdout; exit code 0 iff every check
passed.  ``--out DIR`` archives the summary and the streamed report.
"""

import argparse
import json
import resource
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.batch import (  # noqa: E402
    BatchConfig,
    BatchOptimizer,
    BatchReport,
    ReportFold,
    ShardedCheckpoint,
    load_sharded_checkpoint,
)
from repro.batch.optimizer import NetResult  # noqa: E402
from repro.library.buffers import default_buffer_library  # noqa: E402
from repro.workloads import WorkloadConfig, population_specs  # noqa: E402

#: wall-clock to_json keys — measurements, not aggregates.
TIMING_KEYS = ("wall_seconds", "net_seconds", "nets_per_second")


def peak_rss_mb() -> float:
    """Lifetime peak RSS of this process in MiB (ru_maxrss is KiB on
    Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def synthetic_results(nets, library):
    """Deterministic fabricated fleet: varied, seed-free, cheap."""
    buffers = sorted(library.buffers, key=lambda b: b.name)
    for index in range(nets):
        name = f"syn_{index:06d}"
        ok = index % 23 != 0  # a sprinkling of failures for the taxonomy
        buffer_count = index % 5
        assignment = {
            f"n{slot}": buffers[(index + slot) % len(buffers)]
            for slot in range(buffer_count)
        }
        if ok:
            yield NetResult(
                name=name,
                sink_count=2 + index % 6,
                node_count=8 + index % 17,
                seconds=0.001 * (1 + index % 40),
                buffer_count=buffer_count,
                slack=1e-12 * (index % 997),
                noise_feasible=True,
                assignment=assignment,
                candidates_generated=100 + index % 900,
                candidates_kept_peak=10 + index % 90,
            )
        else:
            yield NetResult(
                name=name,
                sink_count=2 + index % 6,
                node_count=8 + index % 17,
                seconds=0.001,
                buffer_count=None,
                slack=None,
                noise_feasible=None,
                assignment=None,
                candidates_generated=40,
                candidates_kept_peak=5,
                error="InfeasibleError: synthetic",
            )


def check_synthetic_fleet(nets, shards, directory, rss_cap_mb, checks):
    fingerprint = {"smoke": "synthetic-fleet", "nets": nets}
    started = time.monotonic()
    fold = ReportFold(mode="buffopt")
    library = default_buffer_library()
    checkpoint = ShardedCheckpoint.create(
        directory, shards, fingerprint, fsync=False
    )
    try:
        for result in synthetic_results(nets, library):
            checkpoint.append(result)
            fold.fold(result)
    finally:
        checkpoint.close()
    stream_seconds = time.monotonic() - started
    peak = peak_rss_mb()
    checks.append({
        "name": "streamed-50k-rss-bounded",
        "ok": peak <= rss_cap_mb,
        "detail": (
            f"{nets} nets x {shards} shards in {stream_seconds:.1f}s, "
            f"peak RSS {peak:.0f} MiB (cap {rss_cap_mb:.0f})"
        ),
    })

    recovery = load_sharded_checkpoint(
        directory, library, fingerprint=fingerprint
    )
    checks.append({
        "name": "recovery-holds-the-fleet",
        "ok": (
            len(recovery.results) == nets
            and recovery.shard_files == shards
            and recovery.max_seq == nets
        ),
        "detail": (
            f"{len(recovery.results)} nets from "
            f"{recovery.shard_files} shards, max_seq {recovery.max_seq}"
        ),
    })
    del recovery

    # the identity half: retained fold over the same fleet
    retained = ReportFold(mode="buffopt")
    for result in synthetic_results(nets, library):
        retained.fold(result)
    streamed_json = BatchReport(
        results=[], wall_seconds=1.0, executor="synthetic",
        mode="buffopt", fold=fold,
    ).to_json()
    retained_json = BatchReport(
        results=[], wall_seconds=1.0, executor="synthetic",
        mode="buffopt", fold=retained,
    ).to_json()
    mismatched = [
        key for key in retained_json
        if key not in TIMING_KEYS and streamed_json[key] != retained_json[key]
    ]
    checks.append({
        "name": "streamed-equals-inmemory-fold",
        "ok": not mismatched,
        "detail": "identical" if not mismatched else f"differs: {mismatched}",
    })
    return streamed_json


def check_real_dp_spot(nets, checks):
    workload = WorkloadConfig(nets=nets, seed=77)
    specs = population_specs(workload)
    config = BatchConfig(max_buffers=4, keep_trees=False)
    retained = BatchOptimizer(
        config=config, workload=workload
    ).optimize(specs)
    streamed = BatchOptimizer(
        config=config, workload=workload
    ).optimize(specs, stream_report=True)
    sj, rj = streamed.to_json(), retained.to_json()
    mismatched = [
        key for key in rj
        if key not in TIMING_KEYS and sj[key] != rj[key]
    ]
    checks.append({
        "name": "real-dp-streamed-equals-retained",
        "ok": not mismatched and len(streamed) == nets,
        "detail": (
            f"{nets} real nets"
            + ("" if not mismatched else f", differs: {mismatched}")
        ),
    })


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nets", type=int, default=50_000)
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--dp-nets", type=int, default=40,
                        help="size of the real-DP spot check (0 skips)")
    parser.add_argument("--rss-cap-mb", type=float, default=400.0)
    parser.add_argument("--workdir", default=None,
                        help="shard directory (default: temp, removed)")
    parser.add_argument("--out", default=None,
                        help="artifact directory for summary + report JSON")
    args = parser.parse_args(argv)

    import shutil
    import tempfile

    workdir = args.workdir or tempfile.mkdtemp(prefix="fleet-smoke-")
    directory = Path(workdir) / "fleet.ckpt"
    checks = []
    try:
        report_json = check_synthetic_fleet(
            args.nets, args.shards, directory, args.rss_cap_mb, checks
        )
        if args.dp_nets:
            check_real_dp_spot(args.dp_nets, checks)
    finally:
        if args.workdir is None:
            shutil.rmtree(workdir, ignore_errors=True)

    passed = sum(1 for check in checks if check["ok"])
    summary = {
        "kind": "buffopt-fleet-smoke",
        "nets": args.nets,
        "shards": args.shards,
        "peak_rss_mb": round(peak_rss_mb(), 1),
        "checks": checks,
        "passed": passed,
        "failed": len(checks) - passed,
        "verdict": "PASS" if passed == len(checks) else "FAIL",
    }
    if args.out:
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        (out / "fleet-smoke.json").write_text(
            json.dumps(summary, indent=2) + "\n"
        )
        (out / "fleet-report.json").write_text(
            json.dumps(report_json, indent=2) + "\n"
        )
    print(json.dumps(summary, sort_keys=True))
    return 0 if summary["verdict"] == "PASS" else 1


if __name__ == "__main__":
    sys.exit(main())
