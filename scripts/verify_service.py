#!/usr/bin/env python3
"""Black-box verifier for a running buffopt optimization service.

Speaks only the public HTTP contract — no imports from ``repro`` — so
it verifies what a real client would see, not what the implementation
believes about itself.  Point it at a live server:

    python scripts/verify_service.py --url http://127.0.0.1:8723

It runs a fixed battery of checks (probes, submit lifecycle, strict
validation, determinism-via-resubmit, metrics exposure, 404/405/409
semantics) and prints ONE line of strict JSON on stdout:

    {"kind": "buffopt-service-verify", "url": ..., "protocol": 1,
     "checks": [{"name": ..., "ok": true, "detail": ...}, ...],
     "passed": N, "failed": M, "verdict": "PASS" | "FAIL"}

Exit code 0 iff every check passed.  Diagnostics go to stderr.  The CI
service smoke job runs this against a freshly started server and
archives the JSON next to the journal and metrics artifacts.
"""

import argparse
import json
import sys
import time
import urllib.error
import urllib.request

PROTOCOL = 1

#: the battery's one well-formed work unit (tiny: the verifier checks
#: the lifecycle, not the DP).
GOOD_NET = {
    "name": "verify-net-1",
    "sink_count": 4,
    "span": 0.002,
    "seed": 20260808,
}


def http(method, url, payload=None, timeout=60.0):
    """One round trip -> (status, headers, parsed-or-raw body)."""
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(
        url, data=data, headers=headers, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            raw = reply.read().decode("utf-8")
            status, hdrs = reply.status, dict(reply.headers)
    except urllib.error.HTTPError as exc:
        raw = exc.read().decode("utf-8", errors="replace")
        status, hdrs = exc.code, dict(exc.headers)
    try:
        body = json.loads(raw)
    except json.JSONDecodeError:
        body = raw
    return status, hdrs, body


class Battery:
    def __init__(self, base_url):
        self.base = base_url.rstrip("/")
        self.checks = []

    def check(self, name, ok, detail=""):
        self.checks.append(
            {"name": name, "ok": bool(ok), "detail": str(detail)}
        )
        print(
            f"{'PASS' if ok else 'FAIL'}  {name}"
            + (f"  ({detail})" if detail and not ok else ""),
            file=sys.stderr,
        )
        return bool(ok)

    # -- individual checks -------------------------------------------------

    def probes(self):
        status, _, body = http("GET", f"{self.base}/healthz")
        self.check(
            "healthz-200",
            status == 200 and isinstance(body, dict)
            and body.get("status") == "ok",
            f"status={status} body={body}",
        )
        status, _, body = http("GET", f"{self.base}/readyz")
        self.check(
            "readyz-200",
            status == 200 and isinstance(body, dict) and body.get("ready"),
            f"status={status} body={body}",
        )

    def metrics(self):
        status, headers, body = http("GET", f"{self.base}/metrics")
        ok = (
            status == 200
            and isinstance(body, str)
            and "buffopt_service_requests_total" in body
            and headers.get("Content-Type", "").startswith("text/plain")
        )
        self.check("metrics-prometheus-text", ok, f"status={status}")

    def sync_submit(self):
        payload = {"net": GOOD_NET, "wait": True}
        status, _, body = http("POST", f"{self.base}/v1/optimize", payload)
        shape_ok = (
            status == 200
            and isinstance(body, dict)
            and body.get("kind") == "buffopt-service-result"
            and body.get("protocol") == PROTOCOL
            and isinstance(body.get("fingerprint"), str)
            and isinstance(body.get("result"), dict)
            and isinstance(body.get("meta"), dict)
        )
        self.check("sync-submit-200-shape", shape_ok, f"status={status}")
        result = body.get("result", {}) if isinstance(body, dict) else {}
        self.check(
            "sync-submit-result-fields",
            all(
                key in result
                for key in (
                    "name", "ok", "sink_count", "slack", "assignment",
                    "candidates_generated", "failure",
                )
            ),
            f"keys={sorted(result)}",
        )
        return body if shape_ok else None

    def determinism(self, first):
        if first is None:
            self.check("resubmit-deterministic", False, "no first response")
            return
        status, _, second = http(
            "POST", f"{self.base}/v1/optimize",
            {"net": GOOD_NET, "wait": True},
        )
        ok = (
            status == 200
            and isinstance(second, dict)
            and second.get("result") == first.get("result")
            and second.get("fingerprint") == first.get("fingerprint")
        )
        self.check(
            "resubmit-deterministic", ok,
            "second submit must return the identical result payload",
        )
        self.check(
            "resubmit-cache-hit",
            isinstance(second, dict) and second.get("cached") is True,
            f"cached={second.get('cached') if isinstance(second, dict) else None}",
        )

    def async_lifecycle(self):
        net = dict(GOOD_NET, name="verify-net-async", seed=7)
        status, _, body = http(
            "POST", f"{self.base}/v1/optimize", {"net": net}
        )
        job_ok = (
            status == 202
            and isinstance(body, dict)
            and body.get("kind") == "buffopt-service-job"
            and isinstance(body.get("id"), str)
            and body.get("status") in ("queued", "running", "done")
        )
        self.check("async-submit-202-job", job_ok, f"status={status}")
        if not job_ok:
            return
        job_id = body["id"]
        deadline = time.time() + 60.0
        final = None
        while time.time() < deadline:
            status, _, poll = http("GET", f"{self.base}/v1/jobs/{job_id}")
            if status == 200 and poll.get("status") == "done":
                final = poll
                break
            time.sleep(0.05)
        self.check("async-job-finishes", final is not None)
        status, _, result = http(
            "GET", f"{self.base}/v1/jobs/{job_id}/result"
        )
        self.check(
            "async-result-200",
            status == 200 and isinstance(result, dict)
            and isinstance(result.get("result"), dict),
            f"status={status}",
        )

    def validation(self):
        cases = [
            ("unknown-key-400", {"net": GOOD_NET, "max_bufers": 4}),
            ("bad-shape-400", [1, 2, 3]),
            ("missing-net-400", {"mode": "buffopt"}),
            ("bad-mode-400", {"net": GOOD_NET, "mode": "warp"}),
        ]
        for name, payload in cases:
            status, _, body = http(
                "POST", f"{self.base}/v1/optimize", payload
            )
            self.check(
                name,
                status == 400 and isinstance(body, dict)
                and body.get("error") == "malformed",
                f"status={status} body={body}",
            )
        status, _, body = http("POST", f"{self.base}/v1/optimize", None)
        self.check(
            "empty-body-400",
            status == 400 and isinstance(body, dict),
            f"status={status}",
        )

    def routing(self):
        status, _, body = http("GET", f"{self.base}/v1/jobs/job-does-not-exist")
        self.check(
            "unknown-job-404",
            status == 404 and isinstance(body, dict)
            and body.get("error") == "not_found",
            f"status={status}",
        )
        status, _, _ = http("GET", f"{self.base}/no/such/route")
        self.check("unknown-route-404", status == 404, f"status={status}")
        status, _, body = http("GET", f"{self.base}/v1/optimize")
        self.check(
            "submit-get-405",
            status == 405 and isinstance(body, dict)
            and body.get("error") == "method_not_allowed",
            f"status={status}",
        )
        status, _, _ = http("POST", f"{self.base}/healthz", {})
        self.check("healthz-post-405", status == 405, f"status={status}")

    def pending_409(self):
        # A slow-ish net polled immediately is usually still pending; if
        # the server is too fast we only require that the *done* answer
        # is a 200 — the 409 contract is checked when observable.
        net = dict(GOOD_NET, name="verify-net-pending", sink_count=6,
                   seed=11)
        status, _, body = http(
            "POST", f"{self.base}/v1/optimize", {"net": net}
        )
        if status != 202:
            self.check("pending-409-or-200", False, f"submit={status}")
            return
        job_id = body["id"]
        status, _, result = http(
            "GET", f"{self.base}/v1/jobs/{job_id}/result"
        )
        ok = (status == 409 and result.get("error") == "pending") or (
            status == 200 and isinstance(result.get("result"), dict)
        )
        self.check("pending-409-or-200", ok, f"status={status}")

    # -- driver ------------------------------------------------------------

    def run(self):
        self.probes()
        self.metrics()
        first = self.sync_submit()
        self.determinism(first)
        self.async_lifecycle()
        self.validation()
        self.routing()
        self.pending_409()
        return self.checks


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--url", required=True,
        help="base URL of the server, e.g. http://127.0.0.1:8723",
    )
    parser.add_argument(
        "--wait-ready", type=float, default=0.0, metavar="SECONDS",
        help="poll /readyz for up to this long before starting",
    )
    args = parser.parse_args(argv)

    if args.wait_ready > 0:
        deadline = time.time() + args.wait_ready
        while time.time() < deadline:
            try:
                status, _, _ = http(
                    "GET", f"{args.url.rstrip('/')}/readyz", timeout=2.0
                )
                if status == 200:
                    break
            except OSError:
                pass
            time.sleep(0.2)

    battery = Battery(args.url)
    try:
        checks = battery.run()
    except OSError as exc:
        checks = battery.checks + [{
            "name": "server-reachable", "ok": False, "detail": str(exc),
        }]
    failed = sum(1 for check in checks if not check["ok"])
    report = {
        "kind": "buffopt-service-verify",
        "url": args.url,
        "protocol": PROTOCOL,
        "checks": checks,
        "passed": len(checks) - failed,
        "failed": failed,
        "verdict": "PASS" if failed == 0 else "FAIL",
    }
    print(json.dumps(report, sort_keys=True))
    return 0 if failed == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
