"""CLI surface: uniform options, exit codes, --json, observability flags."""

import json

import pytest

from repro.cli import (
    EXIT_FAILURE,
    EXIT_OK,
    EXIT_USAGE,
    build_parser,
    main,
)
from repro.obs import parse_prometheus, read_events


def run_cli(capsys, *argv):
    """Invoke main() in-process; return (exit_code, stdout, stderr)."""
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def run_json(capsys, *argv):
    code, out, _ = run_cli(capsys, *argv, "--json")
    return code, json.loads(out)


# -- uniform interface -----------------------------------------------------


def test_version_flag(capsys):
    from repro import __version__

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert __version__ in capsys.readouterr().out


def test_missing_subcommand_is_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([])
    assert excinfo.value.code == EXIT_USAGE


@pytest.mark.parametrize("argv", [
    ["table1"],
    ["fix", "net.json"],
    ["sensitivity", "net.json"],
    ["export", "dir"],
    ["batch"],
    ["fuzz"],
    ["trace", "summarize", "t.jsonl"],
])
def test_every_subcommand_accepts_the_common_trio(argv):
    args = build_parser().parse_args(
        argv + ["--engine", "fast", "--seed", "7", "--json"]
    )
    assert args.engine == "fast"
    assert args.seed == 7
    assert args.json is True


def test_exit_code_constants_are_distinct():
    assert (EXIT_OK, EXIT_FAILURE, EXIT_USAGE) == (0, 1, 2)


# -- exit codes ------------------------------------------------------------


def test_batch_resume_without_checkpoint_is_usage_error(capsys):
    code, _, err = run_cli(capsys, "batch", "--resume")
    assert code == EXIT_USAGE
    assert "--resume requires --checkpoint" in err


def test_trace_summarize_missing_file_is_usage_error(capsys):
    code, _, err = run_cli(capsys, "trace", "summarize", "no-such.jsonl")
    assert code == EXIT_USAGE
    assert "trace unreadable" in err


# -- tables / export / fix -------------------------------------------------


def test_table1_json_report(capsys):
    code, report = run_json(capsys, "table1", "--nets", "6")
    assert code == EXIT_OK
    assert report["kind"] == "buffopt-tables-report"
    assert report["target"] == "table1"
    assert report["nets"] == 6
    assert len(report["sections"]) == 1


def test_export_then_fix_json_round_trip(capsys, tmp_path):
    out_dir = tmp_path / "nets"
    code, export = run_json(
        capsys, "export", str(out_dir), "--nets", "1"
    )
    assert code == EXIT_OK
    assert export["kind"] == "buffopt-export-report"
    assert export["nets"] == 1
    net_files = sorted(out_dir.glob("*.json"))
    assert len(net_files) == 1

    code, fix = run_json(
        capsys, "fix", str(net_files[0]), "--engine", "fast"
    )
    assert code == EXIT_OK
    assert fix["kind"] == "buffopt-fix-report"
    assert fix["mode"] == "buffopt"
    assert fix["engine"] == "fast"
    assert fix["after"]["violations"] == 0
    assert fix["after"]["buffers"] == len(fix["assignment"])


# -- batch observability ---------------------------------------------------


def test_batch_trace_and_metrics(capsys, tmp_path):
    trace_path = tmp_path / "batch.jsonl"
    prom_path = tmp_path / "batch.prom"
    code, report = run_json(
        capsys, "batch", "--nets", "4",
        "--trace", str(trace_path), "--metrics", str(prom_path),
    )
    assert code == EXIT_OK
    assert report["kind"] == "buffopt-batch-report"
    assert report["nets"] == 4
    assert report["ok"] == 4

    records = read_events(trace_path)
    span_names = {r["name"] for r in records if r["type"] == "span"}
    assert {"batch", "batch.map"} <= span_names
    net_events = [
        r for r in records
        if r["type"] == "event" and r["name"] == "batch.net"
    ]
    assert len(net_events) == 4
    assert all(e["attributes"]["status"] == "ok" for e in net_events)

    samples = parse_prometheus(prom_path.read_text())
    ok_key = (("mode", "buffopt"), ("status", "ok"))
    assert samples["buffopt_nets_total"][ok_key] == 4
    # the exported per-phase seconds must account for the whole batch
    # wall time (the 5% acceptance criterion; exact by construction)
    wall = next(iter(samples["buffopt_batch_wall_seconds"].values()))
    phases = sum(samples["buffopt_batch_phase_seconds"].values())
    assert phases == pytest.approx(wall, rel=0.05)


def test_trace_summarize_on_real_trace(capsys, tmp_path):
    trace_path = tmp_path / "batch.jsonl"
    code, _ = run_json(
        capsys, "batch", "--nets", "2", "--trace", str(trace_path)
    )
    assert code == EXIT_OK

    code, out, _ = run_cli(capsys, "trace", "summarize", str(trace_path))
    assert code == EXIT_OK
    assert "batch.map" in out

    code, summary = run_json(
        capsys, "trace", "summarize", str(trace_path)
    )
    assert code == EXIT_OK
    assert summary["path"] == str(trace_path)
    assert summary["spans"]["batch"]["count"] == 1
    assert summary["events"]["batch.net"] == 2


def test_batch_traced_run_is_bit_identical(capsys, tmp_path):
    code, plain = run_json(
        capsys, "batch", "--nets", "3", "--engine", "fast"
    )
    assert code == EXIT_OK
    code, traced = run_json(
        capsys, "batch", "--nets", "3", "--engine", "fast",
        "--trace", str(tmp_path / "t.jsonl"),
        "--metrics", str(tmp_path / "t.prom"),
    )
    assert code == EXIT_OK
    for key in ("total_buffers", "buffer_histogram", "total_candidates"):
        assert plain[key] == traced[key]


# -- fuzz ------------------------------------------------------------------


def test_fuzz_json_report_with_observability(capsys, tmp_path):
    trace_path = tmp_path / "fuzz.jsonl"
    prom_path = tmp_path / "fuzz.prom"
    code, report = run_json(
        capsys, "fuzz", "--iters", "2", "--seed", "3",
        "--trace", str(trace_path), "--metrics", str(prom_path),
    )
    assert code == EXIT_OK
    assert report["kind"] == "buffopt-fuzz-report"
    assert report["ok"] is True
    assert report["iterations_run"] == 2
    assert report["counterexamples"] == []

    records = read_events(trace_path)
    campaign = [r for r in records if r["name"] == "fuzz"]
    assert len(campaign) == 1
    assert campaign[0]["attributes"]["iterations_run"] == 2

    samples = parse_prometheus(prom_path.read_text())
    iters = sum(samples["buffopt_fuzz_iterations_total"].values())
    assert iters == 2


def test_fuzz_planted_bug_fails_with_failure_exit(capsys):
    code, report = run_json(
        capsys, "fuzz", "--iters", "12", "--seed", "5", "--plant-bug",
        "--no-shrink", "--max-counterexamples", "1",
    )
    assert code == EXIT_FAILURE
    assert report["ok"] is False
    assert len(report["counterexamples"]) >= 1


# -- the uniform --objective surface ---------------------------------------


@pytest.fixture
def exported_net(capsys, tmp_path):
    out_dir = tmp_path / "nets"
    code, _ = run_json(capsys, "export", str(out_dir), "--nets", "1")
    assert code == EXIT_OK
    return str(sorted(out_dir.glob("*.json"))[0])


@pytest.mark.parametrize("argv", [
    ["batch", "--nets", "2"],
    ["fleet", "--nets", "2"],
])
def test_objective_and_mode_are_mutually_exclusive(capsys, argv):
    code, _, err = run_cli(
        capsys, *argv, "--objective", "delay", "--mode", "delay"
    )
    assert code == EXIT_USAGE
    assert "mutually exclusive" in err


def test_fuzz_never_had_a_mode_flag(capsys):
    # fuzz's mode matrix was always internal; --objective is its first
    # and only mode surface, so --mode stays unrecognized there.
    with pytest.raises(SystemExit) as excinfo:
        main(["fuzz", "--iters", "1", "--mode", "delay"])
    assert excinfo.value.code == EXIT_USAGE


@pytest.mark.parametrize("argv", [
    ["batch", "--nets", "2"],
    ["serve", "--journal", "j.jsonl"],
])
def test_bad_objective_spec_is_usage_error(capsys, argv):
    code, _, err = run_cli(capsys, *argv, "--objective", "warp/min-power")
    assert code == EXIT_USAGE
    assert "--objective" in err


def test_mode_flag_is_a_deprecation_shim(capsys):
    code, report = run_json(
        capsys, "batch", "--nets", "2", "--mode", "delay"
    )
    assert code == EXIT_OK
    assert report["mode"] == "delay"
    _, err = capsys.readouterr().out, ""
    # the note was emitted before the JSON body, on stderr
    # (run_json already drained capsys; re-run plain to see it)
    code, _, err = run_cli(
        capsys, "batch", "--nets", "2", "--mode", "delay"
    )
    assert code == EXIT_OK
    assert "--mode is deprecated" in err


def test_fix_json_report_carries_the_objective(capsys, exported_net):
    code, report = run_json(
        capsys, "fix", exported_net, "--objective", "buffopt/min-power",
    )
    assert code == EXIT_OK
    assert report["mode"] == "buffopt"
    assert report["objective"] == "buffopt/min-power"
    assert "power" in report["after"]


def test_fix_mode_noise_conflicts_with_objective(capsys, exported_net):
    code, _, err = run_cli(
        capsys, "fix", exported_net, "--mode", "noise",
        "--objective", "delay",
    )
    assert code == EXIT_USAGE
    assert "mutually exclusive" in err
    # and alone it still works: Algorithm 2 is not a DP objective
    code, report = run_json(capsys, "fix", exported_net, "--mode", "noise")
    assert code == EXIT_OK
    assert report["mode"] == "noise"
    assert report["objective"] is None


def test_fuzz_objective_restricts_the_mode_matrix(capsys):
    code, report = run_json(
        capsys, "fuzz", "--iters", "2", "--seed", "3",
        "--objective", "buffopt/min-power",
    )
    assert code == EXIT_OK
    assert report["modes"] == ["buffopt-power"]


def test_pareto_objective_rejected_where_one_answer_is_needed(capsys):
    code, _, err = run_cli(
        capsys, "batch", "--nets", "2", "--objective", "buffopt/pareto"
    )
    assert code == EXIT_USAGE
    code, _, err = run_cli(
        capsys, "loadtest", "--objective", "buffopt/pareto"
    )
    assert code == EXIT_USAGE
    assert "single outcome" in err
