"""Pinned regression values for the deterministic pipeline.

The workload is seeded and every algorithm is deterministic, so these
exact numbers must not drift under refactoring.  If an *intentional*
algorithmic change moves them, re-derive the constants (the test header
of each assertion explains what it pins) and re-record EXPERIMENTS.md.
"""

import pytest

from repro.experiments import build_table4, default_experiment, run_population


@pytest.fixture(scope="module")
def run_and_experiment():
    experiment = default_experiment(nets=40, seed=42)
    return run_population(experiment), experiment


class TestPinnedPipeline:
    def test_buffer_histogram(self, run_and_experiment):
        run, _ = run_and_experiment
        assert run.buffer_histogram() == {0: 3, 1: 30, 2: 7}

    def test_violations_before(self, run_and_experiment):
        run, _ = run_and_experiment
        assert run.nets_with_violations_before() == 37

    def test_buffopt_fixes_everything(self, run_and_experiment):
        run, _ = run_and_experiment
        assert run.nets_with_violations_after_buffopt() == 0

    def test_delayopt1_violations(self, run_and_experiment):
        run, _ = run_and_experiment
        assert run.nets_with_violations_after_delayopt(1) == 10

    def test_delayopt4_total_buffers(self, run_and_experiment):
        run, _ = run_and_experiment
        assert run.total_delayopt_buffers(4) == 100

    def test_delay_penalty(self, run_and_experiment):
        run, experiment = run_and_experiment
        table = build_table4(experiment, run)
        assert table.average_penalty_percent == pytest.approx(
            0.718454, abs=1e-3
        )
        assert table.weighted_buffopt * 1e12 == pytest.approx(
            219.981, abs=0.01
        )
