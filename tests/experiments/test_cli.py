"""Tests for the buffopt CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_targets(self):
        parser = build_parser()
        args = parser.parse_args(["table1"])
        assert args.target == "table1"
        assert args.nets == 500

    def test_nets_flag(self):
        args = build_parser().parse_args(["table3", "--nets", "25"])
        assert args.nets == 25

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])


class TestMain:
    def test_table1(self, capsys):
        assert main(["table1", "--nets", "15"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_figures(self, capsys):
        assert main(["figures", "--nets", "5"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 1" in out

    def test_table3_small(self, capsys):
        assert main(["table3", "--nets", "10"]) == 0
        out = capsys.readouterr().out
        assert "BuffOpt" in out
        assert "DelayOpt(4)" in out

    def test_table4_small(self, capsys):
        assert main(["table4", "--nets", "10"]) == 0
        out = capsys.readouterr().out
        assert "penalty" in out
