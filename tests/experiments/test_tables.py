"""End-to-end tests for the Table I–IV builders (small population).

These assert the *shapes* the paper reports, on a reduced seeded
population so the suite stays fast; the benchmarks regenerate the full
tables.
"""

import pytest

from repro.experiments import (
    build_table1,
    build_table2,
    build_table3,
    build_table4,
    default_experiment,
    format_table1,
    format_table2,
    format_table3,
    format_table4,
    run_population,
)


@pytest.fixture(scope="module")
def experiment():
    return default_experiment(nets=40, seed=42)


@pytest.fixture(scope="module")
def run(experiment):
    return run_population(experiment)


class TestTable1:
    def test_histogram_covers_population(self, experiment):
        table = build_table1(experiment)
        assert sum(table.histogram.values()) == 40
        assert table.total_nets == 40
        assert table.mean_wirelength > 1e-3  # multi-mm regime

    def test_format(self, experiment):
        text = format_table1(build_table1(experiment))
        assert "Table I" in text
        assert "total |    40" in text


class TestTable2:
    def test_paper_shape(self, experiment, run):
        table = build_table2(experiment, run)
        # most nets violate before; the detailed count is a subset
        assert table.metric_before > 0.5 * table.nets
        assert table.detailed_before <= table.metric_before
        assert table.detailed_only_before == 0  # upper-bound direction
        # BuffOpt fixes everything, under both analyses
        assert table.metric_after == 0
        assert table.detailed_after == 0

    def test_format(self, experiment, run):
        text = format_table2(build_table2(experiment, run))
        assert "Table II" in text
        assert "after BuffOpt" in text


class TestTable3:
    def test_paper_shape(self, run):
        table = build_table3(run)
        by_method = {row.method: row for row in table.rows}
        buffopt = by_method["BuffOpt"]
        delayopt4 = by_method["DelayOpt(4)"]
        # BuffOpt: zero remaining violations, bounded counts
        assert buffopt.violations == 0
        assert max(buffopt.histogram) <= 8
        # DelayOpt(k) inserts more buffers in total at k=4
        assert delayopt4.total_buffers > buffopt.total_buffers
        # DelayOpt(1) leaves violations (Theorem 2 empirically)
        assert by_method["DelayOpt(1)"].violations > 0
        # the broad trend: more allowed buffers, fewer violations.  (Not
        # strictly monotone — a k-buffer max-slack solution can be noisier
        # than the (k-1)-buffer one — so compare the endpoints.)
        violations = [by_method[f"DelayOpt({k})"].violations for k in (1, 2, 3, 4)]
        assert violations[0] >= violations[-1]
        assert violations[0] > violations[2]

    def test_cpu_times_recorded(self, run):
        table = build_table3(run)
        assert all(row.cpu_seconds > 0 for row in table.rows)

    def test_format(self, run):
        text = format_table3(build_table3(run))
        assert "Table III" in text
        assert "BuffOpt" in text and "DelayOpt(4)" in text


class TestTable4:
    def test_paper_shape(self, experiment, run):
        table = build_table4(experiment, run)
        assert table.rows, "some nets must have received buffers"
        # DelayOpt's reduction upper-bounds BuffOpt's at matched counts
        for row in table.rows:
            assert row.delayopt_reduction >= row.buffopt_reduction - 1e-12
        # the paper's headline: the penalty is small (<2 %; allow 5 % on
        # the reduced population)
        assert table.average_penalty_percent < 5.0
        assert table.weighted_buffopt > 0

    def test_format(self, experiment, run):
        text = format_table4(build_table4(experiment, run))
        assert "Table IV" in text
        assert "penalty" in text


class TestSeparateDelayoptTiming:
    def test_per_k_seconds_recorded_and_used(self, experiment):
        from repro.experiments import run_population as run_pop

        timed = run_pop(
            default_experiment(nets=6, seed=13),
            separate_delayopt_timing=True,
        )
        assert set(timed.delayopt_seconds_per_k) == {1, 2, 3, 4}
        assert all(v > 0 for v in timed.delayopt_seconds_per_k.values())
        table = build_table3(timed)
        by_method = {row.method: row for row in table.rows}
        for k in (1, 2, 3, 4):
            assert by_method[f"DelayOpt({k})"].cpu_seconds == pytest.approx(
                timed.delayopt_seconds_per_k[k]
            )

    def test_default_run_has_no_per_k(self, run):
        assert run.delayopt_seconds_per_k == {}


class TestPopulationRunAccessors:
    def test_histogram_and_totals_consistent(self, run):
        histogram = run.buffer_histogram()
        assert sum(histogram.values()) == len(run.records)
        assert run.total_buffopt_buffers() == sum(
            count * nets for count, nets in histogram.items()
        )

    def test_violation_counters(self, run):
        before = run.nets_with_violations_before()
        assert before > 0
        assert run.nets_with_violations_after_buffopt() == 0
        assert run.nets_with_violations_after_delayopt(1) <= before
