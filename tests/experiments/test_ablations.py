"""Tests for repro.experiments.ablations."""

import pytest

from repro.experiments import (
    default_experiment,
    format_ablations,
    noise_sites_ablation,
    pruning_ablation,
    segmentation_ablation,
    sizing_ablation,
)
from repro.units import UM


@pytest.fixture(scope="module")
def experiment():
    return default_experiment(nets=10, seed=99)


class TestPruningAblation:
    def test_pareto_never_loses_slack(self, experiment):
        result = pruning_ablation(experiment, sample=6)
        assert result.nets == 6
        assert result.mean_slack_delta >= -1e-15
        assert result.pareto_kept_peak >= result.timing_kept_peak


class TestSegmentationAblation:
    def test_finer_improves_slack_and_grows_nodes(self, experiment):
        points = segmentation_ablation(
            experiment, granularities=(2000 * UM, 500 * UM), sample=6
        )
        coarse, fine = points
        assert fine.mean_slack >= coarse.mean_slack - 1e-15
        assert fine.mean_nodes > coarse.mean_nodes


class TestNoiseSitesAblation:
    def test_mostly_matches_continuous_with_fewer_nodes(self, experiment):
        result = noise_sites_ablation(experiment, sample=8)
        assert result.nets > 0
        # The continuous optimum ignores polarity; the DP enforces it with
        # the mixed library, so tight sites (placed for the inverting
        # min-R buffer) can cost one extra buffer on rare nets.
        assert result.matched_counts >= result.nets - 1
        assert result.mean_site_nodes < result.mean_uniform_nodes


class TestSizingAblation:
    def test_sizing_never_hurts(self, experiment):
        result = sizing_ablation(experiment, sample=5)
        assert result.mean_slack_gain >= -1e-15
        assert 0 <= result.improved <= result.nets


class TestRunAll:
    def test_run_all_produces_full_report(self):
        from repro.experiments import run_all_ablations

        text = run_all_ablations(default_experiment(nets=8, seed=2))
        assert "Ablation studies" in text
        assert "[wire sizing]" in text


class TestFormatting:
    def test_report_contains_all_sections(self, experiment):
        text = format_ablations(
            pruning_ablation(experiment, sample=4),
            segmentation_ablation(
                experiment, granularities=(2000 * UM, 1000 * UM), sample=4
            ),
            noise_sites_ablation(experiment, sample=4),
            sizing_ablation(experiment, sample=4),
        )
        for section in ("pruning rule", "segmentation granularity",
                        "noise-aware sites", "wire sizing"):
            assert section in text
