"""Tests for repro.experiments.figures — the characterization sweeps."""

import math

import pytest

from repro.experiments import build_all_figures, default_experiment, format_figures
from repro.experiments.figures import (
    spacing_by_buffer,
    theorem1_vs_downstream_current,
    theorem1_vs_driver_resistance,
    theorem2_margin_curve,
)


@pytest.fixture(scope="module")
def experiment():
    return default_experiment(nets=5)


class TestTheorem1Sweeps:
    def test_length_decreases_with_resistance(self, experiment):
        series = theorem1_vs_driver_resistance(experiment)
        assert all(a > b for a, b in zip(series.y, series.y[1:]))

    def test_zero_resistance_hits_driverless_ceiling(self, experiment):
        from repro import unloaded_max_length

        series = theorem1_vs_driver_resistance(experiment)
        tech = experiment.technology
        ceiling = unloaded_max_length(
            tech.unit_resistance,
            experiment.coupling.unit_current(tech.unit_capacitance),
            0.8,
        )
        assert series.x[0] == 0.0
        assert math.isclose(series.y[0], ceiling, rel_tol=1e-12)

    def test_length_decreases_with_current(self, experiment):
        series = theorem1_vs_downstream_current(experiment)
        assert all(a > b for a, b in zip(series.y, series.y[1:]))

    def test_current_sweep_stops_at_infeasibility(self, experiment):
        series = theorem1_vs_downstream_current(
            experiment, currents=[0.0, 1e-3, 3e-3, 5e-3, 8e-3],
            driver_resistance=200.0, noise_slack=0.8,
        )
        # 0.8/200 = 4 mA: the 5 and 8 mA points must be dropped
        assert max(series.x) <= 4e-3


class TestSpacing:
    def test_stronger_buffers_space_further(self, experiment):
        first, repeat, ceiling = spacing_by_buffer(experiment)
        pairs = sorted(zip(repeat.x, repeat.y))
        spans = [y for _, y in pairs]
        assert all(a >= b for a, b in zip(spans, spans[1:]))  # Rb up, span down

    def test_spans_below_ceiling(self, experiment):
        first, repeat, ceiling = spacing_by_buffer(experiment)
        assert all(y < ceiling.y[0] for y in repeat.y)


class TestTheorem2Curve:
    def test_monotone_superlinear(self, experiment):
        series = theorem2_margin_curve(experiment)
        assert all(a < b for a, b in zip(series.y, series.y[1:]))
        # noise at 2x length is more than 2x noise (quadratic term)
        half = series.y[len(series.y) // 2 - 1]


class TestFormatting:
    def test_build_all(self, experiment):
        series = build_all_figures(experiment)
        assert len(series) >= 5
        text = format_figures(series)
        assert "Theorem 1" in text
        assert "Theorem 2" in text
        assert "Fig. 7" in text

    def test_series_format(self, experiment):
        series = theorem1_vs_driver_resistance(experiment)
        text = series.format(y_scale=1e3)
        assert series.label in text
        assert len(text.splitlines()) == len(series.x) + 1
