"""Golden per-net pins for the Table 1/2 experiment population.

The coarse pipeline pins in ``test_regression.py`` aggregate over a whole
population; an engine refactor (like threading instrumentation through
the DP) could in principle shift individual nets while leaving aggregates
intact.  These pins are per-net and exact — buffer count and slack, for
BuffOpt and DelayOpt(4), on the first 16 nets of the *paper-seed*
workload (seed 19981101, the population behind Tables I/II).

If an intentional algorithmic change moves them, re-derive with::

    PYTHONPATH=src python - <<'PY'
    from repro import segment_tree
    from repro.core.noise_delay import buffopt_result
    from repro.core.van_ginneken import delay_opt_result
    from repro.experiments import default_experiment
    exp = default_experiment(nets=16)
    for net in exp.nets:
        tree = segment_tree(net.tree, exp.max_segment_length)
        b = buffopt_result(tree, exp.library, exp.coupling,
                           max_buffers=4).fewest_buffers()
        d = delay_opt_result(tree, exp.library,
                             max_buffers=4).best(require_noise=False)
        print(net.name, b.buffer_count, b.slack, d.buffer_count, d.slack)
    PY

and re-record EXPERIMENTS.md.
"""

import pytest

from repro import segment_tree
from repro.core.noise_delay import buffopt_result
from repro.core.van_ginneken import delay_opt_result
from repro.experiments import default_experiment

#: (net, BuffOpt buffers, BuffOpt slack, DelayOpt(4) buffers, DelayOpt slack)
GOLDEN = (
    ("net0000", 1, 8.911075412885031e-11, 2, 1.0611019071965038e-10),
    ("net0001", 1, 1.4099421414125485e-10, 2, 1.6339895192157505e-10),
    ("net0002", 2, 5.107513312065187e-10, 4, 5.613489567603889e-10),
    ("net0003", 1, 1.2860611457703613e-10, 2, 1.480943921260673e-10),
    ("net0004", 1, 1.3306374674655036e-10, 2, 1.5245214449148893e-10),
    ("net0005", 1, 1.2663672652397895e-10, 2, 1.4568807955665373e-10),
    ("net0006", 1, 9.199825505678345e-11, 2, 1.0547679225574672e-10),
    ("net0007", 1, 1.3484785921104628e-10, 2, 1.8206192237647973e-10),
    ("net0008", 2, 5.382878982386746e-10, 4, 5.566550744623635e-10),
    ("net0009", 2, 6.774656119574917e-10, 4, 7.665798586987633e-10),
    ("net0010", 1, 2.0544602912176492e-10, 4, 3.113772434356432e-10),
    ("net0011", 1, 1.635209125382028e-10, 2, 2.2423694361123714e-10),
    ("net0012", 1, 2.650967673292487e-10, 2, 3.245535696094398e-10),
    ("net0013", 1, 2.092979606303622e-10, 4, 2.852987111280054e-10),
    ("net0014", 1, 1.3305270678288945e-10, 2, 1.5944827634500767e-10),
    ("net0015", 1, 3.07083281428822e-10, 2, 3.4863436566161506e-10),
)


@pytest.fixture(scope="module")
def segmented_nets():
    experiment = default_experiment(nets=len(GOLDEN))
    return experiment, [
        (net.name, segment_tree(net.tree, experiment.max_segment_length))
        for net in experiment.nets
    ]


def test_golden_net_names(segmented_nets):
    _, nets = segmented_nets
    assert [name for name, _ in nets] == [row[0] for row in GOLDEN]


def test_buffopt_counts_and_slacks_pinned(segmented_nets):
    experiment, nets = segmented_nets
    for (name, tree), (_, count, slack, _, _) in zip(nets, GOLDEN):
        result = buffopt_result(
            tree, experiment.library, experiment.coupling, max_buffers=4
        )
        outcome = result.fewest_buffers()
        assert outcome.buffer_count == count, name
        assert outcome.slack == pytest.approx(slack, rel=1e-12), name
        assert outcome.noise_feasible, name


def test_delayopt_counts_and_slacks_pinned(segmented_nets):
    experiment, nets = segmented_nets
    for (name, tree), (_, _, _, count, slack) in zip(nets, GOLDEN):
        result = delay_opt_result(tree, experiment.library, max_buffers=4)
        outcome = result.best(require_noise=False)
        assert outcome.buffer_count == count, name
        assert outcome.slack == pytest.approx(slack, rel=1e-12), name


def test_instrumented_run_hits_same_pins(segmented_nets):
    """The refactor guard this file exists for: telemetry on, pins unmoved."""
    experiment, nets = segmented_nets
    for (name, tree), (_, count, slack, _, _) in zip(nets, GOLDEN):
        result = buffopt_result(
            tree,
            experiment.library,
            experiment.coupling,
            max_buffers=4,
            collect_stats=True,
        )
        outcome = result.fewest_buffers()
        assert outcome.buffer_count == count, name
        assert outcome.slack == pytest.approx(slack, rel=1e-12), name
        assert result.stats is not None
        assert result.stats.candidates_generated == result.candidates_generated
