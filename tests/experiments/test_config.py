"""Tests for repro.experiments.config."""

import math

import pytest

from repro.experiments import bench_population_size, default_experiment


class TestDefaultExperiment:
    def test_paper_constants(self):
        experiment = default_experiment(nets=10)
        assert experiment.technology.vdd == 1.8
        assert experiment.coupling.coupling_ratio == 0.7
        assert math.isclose(experiment.coupling.slope, 7.2e9)
        assert experiment.workload.noise_margin == 0.8
        assert len(experiment.library) == 11

    def test_population_lazy_and_cached(self):
        experiment = default_experiment(nets=8)
        first = experiment.nets
        assert len(first) == 8
        assert experiment.nets is first

    def test_population_size_parameter(self):
        assert len(default_experiment(nets=12).nets) == 12

    def test_seed_changes_population(self):
        a = default_experiment(nets=10, seed=1).nets
        b = default_experiment(nets=10, seed=2).nets
        assert any(
            x.tree.total_wire_length() != y.tree.total_wire_length()
            for x, y in zip(a, b)
        )


class TestBenchPopulationSize:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_NETS", raising=False)
        assert bench_population_size(77) == 77

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_NETS", "250")
        assert bench_population_size() == 250

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_NETS", "0")
        with pytest.raises(ValueError):
            bench_population_size()
