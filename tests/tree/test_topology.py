"""Tests for repro.tree.topology — structural invariants and traversals."""

import math

import pytest

from repro import TreeBuilder, TreeStructureError
from repro.tree.topology import Node, RoutingTree, SinkSpec, Wire
from repro.units import FF, UM


def chain_tree(tech, driver=None):
    builder = TreeBuilder(tech)
    builder.add_source("so", driver=driver)
    builder.add_internal("a")
    builder.add_internal("b")
    builder.add_sink("s", capacitance=10 * FF, noise_margin=0.8)
    builder.add_wire("so", "a", length=100 * UM)
    builder.add_wire("a", "b", length=100 * UM)
    builder.add_wire("b", "s", length=100 * UM)
    return builder.build("chain")


class TestSinkSpec:
    def test_defaults_infinite_rat(self):
        spec = SinkSpec(capacitance=1 * FF, noise_margin=0.8)
        assert math.isinf(spec.required_arrival)

    def test_rejects_negative_capacitance(self):
        with pytest.raises(TreeStructureError):
            SinkSpec(capacitance=-1.0, noise_margin=0.8)

    def test_rejects_nonpositive_margin(self):
        with pytest.raises(TreeStructureError):
            SinkSpec(capacitance=1 * FF, noise_margin=0.0)


class TestStructuralValidation:
    def test_two_sources_rejected(self):
        a = Node("a", is_source=True)
        b = Node("b", is_source=True)
        with pytest.raises(TreeStructureError):
            RoutingTree([a, b], [Wire(a, b)])

    def test_no_source_rejected(self):
        a = Node("a")
        with pytest.raises(TreeStructureError):
            RoutingTree([a], [])

    def test_duplicate_names_rejected(self):
        a = Node("x", is_source=True)
        b = Node("x", sink=SinkSpec(1 * FF, 0.8))
        with pytest.raises(TreeStructureError):
            RoutingTree([a, b], [Wire(a, b)])

    def test_disconnected_node_rejected(self):
        a = Node("a", is_source=True)
        b = Node("b", sink=SinkSpec(1 * FF, 0.8))
        c = Node("c", sink=SinkSpec(1 * FF, 0.8))
        with pytest.raises(TreeStructureError):
            RoutingTree([a, b, c], [Wire(a, b)])

    def test_multiple_parents_rejected(self):
        a = Node("a", is_source=True)
        b = Node("b")
        c = Node("c", sink=SinkSpec(1 * FF, 0.8))
        with pytest.raises(TreeStructureError):
            RoutingTree([a, b, c], [Wire(a, c), Wire(b, c), Wire(a, b)])

    def test_sink_with_children_rejected(self):
        a = Node("a", is_source=True)
        b = Node("b", sink=SinkSpec(1 * FF, 0.8))
        c = Node("c", sink=SinkSpec(1 * FF, 0.8))
        with pytest.raises(TreeStructureError):
            RoutingTree([a, b, c], [Wire(a, b), Wire(b, c)])

    def test_dangling_internal_rejected(self):
        a = Node("a", is_source=True)
        b = Node("b")  # internal leaf
        with pytest.raises(TreeStructureError):
            RoutingTree([a, b], [Wire(a, b)])

    def test_ternary_rejected_unless_allowed(self):
        a = Node("a", is_source=True)
        kids = [Node(f"s{i}", sink=SinkSpec(1 * FF, 0.8)) for i in range(3)]
        wires = [Wire(a, k) for k in kids]
        with pytest.raises(TreeStructureError):
            RoutingTree([a, *kids], wires)
        tree = RoutingTree([a, *kids], wires, allow_nonbinary=True)
        assert not tree.is_binary

    def test_wire_with_foreign_node_rejected(self):
        a = Node("a", is_source=True)
        b = Node("b", sink=SinkSpec(1 * FF, 0.8))
        ghost = Node("ghost", sink=SinkSpec(1 * FF, 0.8))
        with pytest.raises(TreeStructureError):
            RoutingTree([a, b], [Wire(a, ghost)])

    def test_negative_wire_values_rejected(self):
        a = Node("a", is_source=True)
        b = Node("b", sink=SinkSpec(1 * FF, 0.8))
        with pytest.raises(TreeStructureError):
            Wire(a, b, length=-1.0)
        with pytest.raises(TreeStructureError):
            Wire(a, b, resistance=-1.0)
        with pytest.raises(TreeStructureError):
            Wire(a, b, capacitance=-1.0)
        with pytest.raises(TreeStructureError):
            Wire(a, b, current=-1.0)


class TestTraversals:
    def test_postorder_children_before_parents(self, tech):
        tree = chain_tree(tech)
        order = [n.name for n in tree.postorder()]
        assert order.index("s") < order.index("b") < order.index("a")
        assert order[-1] == "so"

    def test_preorder_parents_before_children(self, tech):
        tree = chain_tree(tech)
        order = [n.name for n in tree.preorder()]
        assert order[0] == "so"
        assert order.index("a") < order.index("b") < order.index("s")

    def test_path_to_source(self, tech):
        tree = chain_tree(tech)
        wires = tree.path_to_source(tree.node("s"))
        assert [w.name for w in wires] == ["b->s", "a->b", "so->a"]

    def test_path_top_down(self, tech):
        tree = chain_tree(tech)
        wires = tree.path(tree.node("a"), tree.node("s"))
        assert [w.name for w in wires] == ["a->b", "b->s"]

    def test_path_rejects_non_ancestor(self, y_tree):
        with pytest.raises(TreeStructureError):
            y_tree.path(y_tree.node("s1"), y_tree.node("s2"))

    def test_downstream_sinks(self, y_tree):
        names = {n.name for n in y_tree.downstream_sinks(y_tree.node("u"))}
        assert names == {"s1", "s2"}
        assert [n.name for n in y_tree.downstream_sinks(y_tree.node("s1"))] == ["s1"]

    def test_left_right_convention(self, y_tree):
        u = y_tree.node("u")
        assert u.left is not None and u.right is not None
        source = y_tree.source
        assert source.left is not None and source.right is None


class TestQueries:
    def test_sinks_sorted_by_name(self, y_tree):
        assert [s.name for s in y_tree.sinks] == ["s1", "s2"]

    def test_node_lookup_and_contains(self, y_tree):
        assert y_tree.node("u").is_internal
        assert "u" in y_tree
        assert "nope" not in y_tree
        with pytest.raises(KeyError):
            y_tree.node("nope")

    def test_len_counts_nodes(self, y_tree):
        assert len(y_tree) == 4

    def test_total_wire_length(self, y_tree):
        assert math.isclose(y_tree.total_wire_length(), 9000 * UM)

    def test_total_capacitance_includes_pins(self, y_tree, tech):
        wire_cap = tech.wire_capacitance(9000 * UM)
        assert math.isclose(
            y_tree.total_capacitance(), wire_cap + 15 * FF + 25 * FF
        )

    def test_subtree_nodes(self, y_tree):
        names = {n.name for n in y_tree.subtree_nodes(y_tree.node("u"))}
        assert names == {"u", "s1", "s2"}
        assert {n.name for n in y_tree.subtree_nodes(y_tree.source)} == {
            "so", "u", "s1", "s2"
        }

    def test_total_wire_capacitance(self, y_tree, tech):
        assert math.isclose(
            y_tree.total_wire_capacitance(),
            tech.wire_capacitance(9000 * UM),
        )

    def test_node_kinds(self, y_tree):
        assert y_tree.source.is_source and not y_tree.source.is_sink
        assert y_tree.node("s1").is_sink and y_tree.node("s1").is_leaf
        assert y_tree.node("u").is_internal
