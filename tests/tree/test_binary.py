"""Tests for repro.tree.binary — footnote-1 binarization."""

import math

import pytest

from repro import TreeBuilder, binarize
from repro.units import FF, UM


def star_tree(tech, fanout):
    builder = TreeBuilder(tech)
    builder.add_source("so")
    builder.add_internal("hub")
    builder.add_wire("so", "hub", length=500 * UM)
    for i in range(fanout):
        builder.add_sink(f"s{i}", capacitance=5 * FF, noise_margin=0.8)
        builder.add_wire("hub", f"s{i}", length=(300 + 100 * i) * UM)
    return builder.build("star", allow_nonbinary=True)


class TestBinarize:
    @pytest.mark.parametrize("fanout", [3, 4, 5, 7])
    def test_result_is_binary(self, tech, fanout):
        tree = binarize(star_tree(tech, fanout))
        assert tree.is_binary

    @pytest.mark.parametrize("fanout", [3, 4, 5])
    def test_sinks_preserved(self, tech, fanout):
        tree = binarize(star_tree(tech, fanout))
        assert [s.name for s in tree.sinks] == [f"s{i}" for i in range(fanout)]

    def test_dummy_nodes_are_infeasible(self, tech):
        tree = binarize(star_tree(tech, 4))
        dummies = [n for n in tree.nodes() if "_bin" in n.name]
        assert dummies, "binarization must introduce dummy nodes"
        assert all(not n.feasible for n in dummies)

    def test_dummy_wires_are_electrically_nil(self, tech):
        tree = binarize(star_tree(tech, 5))
        for wire in tree.wires():
            if "_bin" in wire.child.name:
                assert wire.length == 0.0
                assert wire.resistance == 0.0
                assert wire.capacitance == 0.0

    def test_total_electricals_preserved(self, tech):
        original = star_tree(tech, 6)
        tree = binarize(original)
        assert math.isclose(
            tree.total_wire_length(), original.total_wire_length()
        )
        assert math.isclose(
            tree.total_capacitance(), original.total_capacitance()
        )

    def test_binary_input_passes_through_as_copy(self, tech, y_tree):
        copy = binarize(y_tree)
        assert copy.is_binary
        assert copy is not y_tree
        assert {n.name for n in copy.nodes()} == {n.name for n in y_tree.nodes()}
        # independence: the copy's nodes are fresh objects
        assert copy.node("u") is not y_tree.node("u")

    def test_preserves_driver(self, tech, driver):
        builder = TreeBuilder(tech)
        builder.add_source("so", driver=driver)
        builder.add_internal("hub")
        builder.add_wire("so", "hub", length=10 * UM)
        for i in range(3):
            builder.add_sink(f"s{i}", capacitance=5 * FF, noise_margin=0.8)
            builder.add_wire("hub", f"s{i}", length=10 * UM)
        tree = binarize(builder.build("t", allow_nonbinary=True))
        assert tree.driver is driver

    def test_elmore_delays_unchanged(self, tech, driver):
        """Binarization must not change any sink's Elmore delay."""
        from repro.timing import sink_delays

        builder = TreeBuilder(tech)
        builder.add_source("so", driver=driver)
        builder.add_internal("hub")
        builder.add_wire("so", "hub", length=800 * UM)
        for i in range(4):
            builder.add_sink(f"s{i}", capacitance=(5 + i) * FF, noise_margin=0.8)
            builder.add_wire("hub", f"s{i}", length=(200 + 150 * i) * UM)
        raw = builder.build("t", allow_nonbinary=True)
        before = sink_delays(raw)
        after = sink_delays(binarize(raw))
        for name, delay in before.items():
            assert math.isclose(after[name], delay, rel_tol=1e-12)
