"""Tests for repro.tree.transform — clone/split helpers."""

import math

import pytest

from repro.tree.transform import clone_tree, fresh_name, split_wire
from repro.tree.topology import Node


class TestCloneTree:
    def test_structure_preserved(self, y_tree):
        copy = clone_tree(y_tree)
        assert {n.name for n in copy.nodes()} == {n.name for n in y_tree.nodes()}
        assert [w.name for w in copy.wires()] == [w.name for w in y_tree.wires()]
        assert copy.driver is y_tree.driver

    def test_deep_independence(self, y_tree):
        copy = clone_tree(y_tree)
        assert copy.node("u") is not y_tree.node("u")
        assert copy.source.children[0] is copy.node("u")

    def test_rename(self, y_tree):
        assert clone_tree(y_tree, name="other").name == "other"


class TestFreshName:
    def test_no_clash_returns_base(self):
        assert fresh_name("x", {"a", "b"}) == "x"

    def test_clash_appends_counter(self):
        assert fresh_name("x", {"x"}) == "x_1"
        assert fresh_name("x", {"x", "x_1", "x_2"}) == "x_3"


class TestSplitWire:
    def _wire(self, y_tree):
        return y_tree.node("s1").parent_wire

    def test_split_preserves_totals(self, y_tree):
        wire = self._wire(y_tree)
        nodes = [Node("m1"), Node("m2")]
        pieces = split_wire(wire, [0.25, 0.75], nodes)
        assert len(pieces) == 3
        assert math.isclose(sum(p.length for p in pieces), wire.length)
        assert math.isclose(sum(p.resistance for p in pieces), wire.resistance)
        assert math.isclose(sum(p.capacitance for p in pieces), wire.capacitance)

    def test_split_endpoints_chain(self, y_tree):
        wire = self._wire(y_tree)
        middle = Node("m")
        a, b = split_wire(wire, [0.5], [middle])
        assert a.parent is wire.parent
        assert a.child is middle
        assert b.parent is middle
        assert b.child is wire.child

    def test_explicit_current_distributes(self, y_tree):
        wire = self._wire(y_tree)
        wire.current = 1e-3
        a, b = split_wire(wire, [0.25], [Node("m")])
        assert math.isclose(a.current, 0.25e-3)
        assert math.isclose(b.current, 0.75e-3)

    def test_mismatched_nodes_rejected(self, y_tree):
        with pytest.raises(ValueError):
            split_wire(self._wire(y_tree), [0.5], [])

    @pytest.mark.parametrize("fractions", [[0.0], [1.0], [0.6, 0.4], [0.5, 0.5]])
    def test_bad_fractions_rejected(self, y_tree, fractions):
        nodes = [Node(f"m{i}") for i in range(len(fractions))]
        with pytest.raises(ValueError):
            split_wire(self._wire(y_tree), fractions, nodes)

    def test_coupling_overrides_inherited(self, y_tree):
        wire = self._wire(y_tree)
        wire.coupling_ratio = 0.5
        wire.slope = 3e9
        pieces = split_wire(wire, [0.5], [Node("m")])
        assert all(p.coupling_ratio == 0.5 for p in pieces)
        assert all(p.slope == 3e9 for p in pieces)
