"""Tests for repro.tree.builder."""

import math

import pytest

from repro import DriverCell, TreeBuilder, TreeStructureError, two_pin_net
from repro.units import FF, UM


class TestTreeBuilder:
    def test_technology_derives_wire_rc(self, tech):
        builder = TreeBuilder(tech)
        builder.add_source("so")
        builder.add_sink("s", capacitance=1 * FF, noise_margin=0.8)
        wire = builder.add_wire("so", "s", length=1000 * UM)
        assert math.isclose(wire.resistance, tech.wire_resistance(1000 * UM))
        assert math.isclose(wire.capacitance, tech.wire_capacitance(1000 * UM))

    def test_explicit_rc_overrides(self, tech):
        builder = TreeBuilder(tech)
        builder.add_source("so")
        builder.add_sink("s", capacitance=1 * FF, noise_margin=0.8)
        wire = builder.add_wire(
            "so", "s", length=1000 * UM, resistance=42.0, capacitance=7 * FF
        )
        assert wire.resistance == 42.0
        assert wire.capacitance == 7 * FF

    def test_no_technology_requires_explicit_rc(self):
        builder = TreeBuilder()
        builder.add_source("so")
        builder.add_sink("s", capacitance=1 * FF, noise_margin=0.8)
        with pytest.raises(TreeStructureError):
            builder.add_wire("so", "s", length=1000 * UM)

    def test_no_technology_zero_length_ok(self):
        builder = TreeBuilder()
        builder.add_source("so")
        builder.add_sink("s", capacitance=1 * FF, noise_margin=0.8)
        builder.add_wire("so", "s")  # abstract zero-length wire
        tree = builder.build()
        assert tree.total_wire_length() == 0.0

    def test_duplicate_source_rejected(self, tech):
        builder = TreeBuilder(tech)
        builder.add_source("so")
        with pytest.raises(TreeStructureError):
            builder.add_source("so2")

    def test_duplicate_name_rejected(self, tech):
        builder = TreeBuilder(tech)
        builder.add_source("x")
        with pytest.raises(TreeStructureError):
            builder.add_internal("x")

    def test_wiring_unknown_node_rejected(self, tech):
        builder = TreeBuilder(tech)
        builder.add_source("so")
        with pytest.raises(TreeStructureError):
            builder.add_wire("so", "ghost", length=1 * UM)

    def test_driver_attached(self, tech):
        drv = DriverCell("d", resistance=100.0)
        builder = TreeBuilder(tech)
        builder.add_source("so", driver=drv)
        builder.add_sink("s", capacitance=1 * FF, noise_margin=0.8)
        builder.add_wire("so", "s", length=10 * UM)
        assert builder.build().driver is drv

    def test_source_and_sink_infeasible_for_buffers(self, tech):
        builder = TreeBuilder(tech)
        builder.add_source("so")
        builder.add_sink("s", capacitance=1 * FF, noise_margin=0.8)
        builder.add_wire("so", "s", length=10 * UM)
        tree = builder.build()
        assert not tree.source.feasible
        assert not tree.node("s").feasible


class TestTwoPinNet:
    def test_unsegmented(self, tech, driver):
        net = two_pin_net(tech, 5000 * UM, driver, 10 * FF, 0.8)
        assert len(net) == 2
        assert math.isclose(net.total_wire_length(), 5000 * UM)

    def test_segments_create_feasible_sites(self, tech, driver):
        net = two_pin_net(tech, 6000 * UM, driver, 10 * FF, 0.8, segments=4)
        internals = [n for n in net.nodes() if n.is_internal]
        assert len(internals) == 3
        assert all(n.feasible for n in internals)
        lengths = [w.length for w in net.wires()]
        assert all(math.isclose(l, 1500 * UM) for l in lengths)

    def test_required_arrival_propagates(self, tech, driver):
        net = two_pin_net(tech, 100 * UM, driver, 10 * FF, 0.8,
                          required_arrival=123.0)
        assert net.sinks[0].sink.required_arrival == 123.0

    def test_rejects_zero_segments(self, tech, driver):
        with pytest.raises(TreeStructureError):
            two_pin_net(tech, 100 * UM, driver, 10 * FF, 0.8, segments=0)

    def test_positions_interpolate(self, tech, driver):
        net = two_pin_net(tech, 4000 * UM, driver, 10 * FF, 0.8, segments=2)
        mid = net.node("n1")
        assert mid.position is not None
        assert math.isclose(mid.position[0], 2000 * UM)
