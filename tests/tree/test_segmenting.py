"""Tests for repro.tree.segmenting — the Alpert–Devgan preprocessing."""

import math

import pytest

from repro import TreeStructureError, segment_tree, two_pin_net
from repro.tree.segmenting import segment_count
from repro.units import FF, UM


class TestSegmentCount:
    @pytest.mark.parametrize("length,limit,expected", [
        (0.0, 100 * UM, 1),
        (50 * UM, 100 * UM, 1),
        (100 * UM, 100 * UM, 1),
        (101 * UM, 100 * UM, 2),
        (1000 * UM, 100 * UM, 10),
        (1001 * UM, 100 * UM, 11),
    ])
    def test_values(self, length, limit, expected):
        assert segment_count(length, limit) == expected

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(TreeStructureError):
            segment_count(1.0, 0.0)


class TestSegmentTree:
    def test_no_wire_exceeds_limit(self, tech, driver, y_tree):
        limit = 700 * UM
        tree = segment_tree(y_tree, limit)
        assert all(w.length <= limit + 1e-12 for w in tree.wires())

    def test_total_electricals_preserved(self, y_tree):
        tree = segment_tree(y_tree, 333 * UM)
        assert math.isclose(
            tree.total_wire_length(), y_tree.total_wire_length(), rel_tol=1e-12
        )
        assert math.isclose(
            tree.total_capacitance(), y_tree.total_capacitance(), rel_tol=1e-12
        )
        total_r = sum(w.resistance for w in tree.wires())
        orig_r = sum(w.resistance for w in y_tree.wires())
        assert math.isclose(total_r, orig_r, rel_tol=1e-12)

    def test_new_nodes_are_feasible_buffer_sites(self, y_tree):
        tree = segment_tree(y_tree, 500 * UM)
        new = [n for n in tree.nodes() if "__seg" in n.name]
        assert new and all(n.feasible for n in new)

    def test_equal_pieces(self, tech, driver):
        net = two_pin_net(tech, 3000 * UM, driver, 10 * FF, 0.8)
        tree = segment_tree(net, 1000 * UM)
        lengths = sorted(w.length for w in tree.wires())
        assert len(lengths) == 3
        assert all(math.isclose(l, 1000 * UM) for l in lengths)

    def test_input_untouched(self, y_tree):
        node_count = len(y_tree)
        segment_tree(y_tree, 100 * UM)
        assert len(y_tree) == node_count

    def test_elmore_delay_invariant_under_segmentation(self, y_tree):
        """Splitting a wire into pi-model pieces preserves Elmore delay
        exactly (distributed RC line property)."""
        from repro.timing import sink_delays

        before = sink_delays(y_tree)
        after = sink_delays(segment_tree(y_tree, 250 * UM))
        for name, value in before.items():
            assert math.isclose(after[name], value, rel_tol=1e-9)

    def test_devgan_noise_invariant_under_segmentation(self, y_tree, coupling):
        """Same invariance for the noise metric (footnote 5 analogy)."""
        from repro.noise import sink_noise

        before = {e.node: e.noise for e in sink_noise(y_tree, coupling)}
        after = {e.node: e.noise
                 for e in sink_noise(segment_tree(y_tree, 250 * UM), coupling)}
        for name, value in before.items():
            assert math.isclose(after[name], value, rel_tol=1e-9)

    def test_finer_segmentation_never_hurts_delayopt(self, tech, driver, library):
        """The [1] trade-off: more segments => equal or better slack."""
        from repro.core import optimize_delay
        from repro.timing import source_slack

        net = two_pin_net(
            tech, 8000 * UM, driver, 20 * FF, 0.8, required_arrival=2e-9
        )
        slacks = []
        for limit in (4000 * UM, 2000 * UM, 1000 * UM, 500 * UM):
            tree = segment_tree(net, limit)
            solution = optimize_delay(tree, library)
            slacks.append(source_slack(tree, solution.buffer_map()))
        for coarse, fine in zip(slacks, slacks[1:]):
            assert fine >= coarse - 1e-15

    def test_zero_length_wires_pass_through(self, tech):
        from repro import TreeBuilder

        builder = TreeBuilder(tech)
        builder.add_source("so")
        builder.add_internal("a")
        builder.add_sink("s", capacitance=1 * FF, noise_margin=0.8)
        builder.add_wire("so", "a", length=0.0)
        builder.add_wire("a", "s", length=100 * UM)
        tree = segment_tree(builder.build(), 10 * UM)
        zero = [w for w in tree.wires() if w.length == 0.0]
        assert len(zero) == 1
