"""Tests for repro.tree.steiner — rectilinear topology generation."""

import math

import pytest

from repro import DriverCell, SinkSite, TreeStructureError, steiner_tree
from repro.tree.steiner import manhattan
from repro.units import FF, MM


def sites(points, margin=0.8):
    return [
        SinkSite(f"s{i}", p, capacitance=10 * FF, noise_margin=margin)
        for i, p in enumerate(points)
    ]


class TestManhattan:
    def test_basic(self):
        assert manhattan((0.0, 0.0), (3.0, 4.0)) == 7.0
        assert manhattan((1.0, 1.0), (1.0, 1.0)) == 0.0


class TestSteinerTree:
    def test_two_pin_length_is_manhattan(self, tech):
        tree = steiner_tree(
            tech, (0.0, 0.0), sites([(2 * MM, 1 * MM)]),
            driver=DriverCell("d", 100.0),
        )
        assert math.isclose(tree.total_wire_length(), 3 * MM)

    def test_is_binary_and_valid(self, tech):
        points = [(1 * MM, 0.0), (2 * MM, 2 * MM), (0.5 * MM, 1 * MM),
                  (3 * MM, 0.5 * MM), (1.5 * MM, 3 * MM)]
        tree = steiner_tree(tech, (0.0, 0.0), sites(points))
        assert tree.is_binary
        assert len(tree.sinks) == 5

    def test_sinks_are_leaves(self, tech):
        points = [(1 * MM, 0.0), (2 * MM, 0.0), (3 * MM, 0.0)]
        tree = steiner_tree(tech, (0.0, 0.0), sites(points))
        assert all(s.is_leaf for s in tree.sinks)

    def test_collinear_chain_routes_through_via_nodes(self, tech):
        """When the MST passes through a sink, the sink stays a leaf and
        a zero-length via carries the continuation."""
        points = [(1 * MM, 0.0), (2 * MM, 0.0)]
        tree = steiner_tree(tech, (0.0, 0.0), sites(points))
        assert math.isclose(tree.total_wire_length(), 2 * MM, rel_tol=1e-12)
        assert all(s.is_leaf for s in tree.sinks)

    def test_wirelength_at_least_spanning_lower_bound(self, tech):
        """Total length >= distance to the farthest sink (sanity) and is
        exactly the rectilinear MST weight of the terminal set."""
        points = [(1 * MM, 1 * MM), (2 * MM, 0.5 * MM), (0.2 * MM, 2 * MM)]
        tree = steiner_tree(tech, (0.0, 0.0), sites(points))
        farthest = max(manhattan((0.0, 0.0), p) for p in points)
        assert tree.total_wire_length() >= farthest - 1e-12

    def test_duplicate_sink_names_rejected(self, tech):
        bad = [
            SinkSite("x", (1 * MM, 0.0), 1 * FF, 0.8),
            SinkSite("x", (2 * MM, 0.0), 1 * FF, 0.8),
        ]
        with pytest.raises(TreeStructureError):
            steiner_tree(tech, (0.0, 0.0), bad)

    def test_reserved_source_name_rejected(self, tech):
        with pytest.raises(TreeStructureError):
            steiner_tree(
                tech, (0.0, 0.0), [SinkSite("so", (1 * MM, 0.0), 1 * FF, 0.8)]
            )

    def test_empty_sinks_rejected(self, tech):
        with pytest.raises(TreeStructureError):
            steiner_tree(tech, (0.0, 0.0), [])

    def test_coincident_terminals_get_zero_wire(self, tech):
        tree = steiner_tree(
            tech, (1 * MM, 1 * MM), sites([(1 * MM, 1 * MM)])
        )
        assert tree.total_wire_length() == 0.0

    def test_rat_and_margin_propagate(self, tech):
        site = SinkSite("s0", (1 * MM, 0.0), capacitance=7 * FF,
                        noise_margin=0.65, required_arrival=42.0)
        tree = steiner_tree(tech, (0.0, 0.0), [site])
        sink = tree.sinks[0].sink
        assert sink.capacitance == 7 * FF
        assert sink.noise_margin == 0.65
        assert sink.required_arrival == 42.0

    def test_corner_nodes_are_feasible(self, tech):
        tree = steiner_tree(
            tech, (0.0, 0.0), sites([(1 * MM, 1 * MM)]), name="corner"
        )
        corners = [n for n in tree.nodes() if n.is_internal]
        assert corners and all(n.feasible for n in corners)

    def test_deterministic(self, tech):
        points = [(1 * MM, 2 * MM), (3 * MM, 0.2 * MM), (2 * MM, 2.5 * MM)]
        t1 = steiner_tree(tech, (0.0, 0.0), sites(points))
        t2 = steiner_tree(tech, (0.0, 0.0), sites(points))
        assert [w.name for w in t1.wires()] == [w.name for w in t2.wires()]
        assert math.isclose(t1.total_wire_length(), t2.total_wire_length())

    def test_sink_as_mst_hub(self, tech):
        """A sink that is the MST hub for several others: the via twin
        must carry all continuations and the tree must stay valid."""
        points = [(1 * MM, 0.0), (2 * MM, 0.0), (1 * MM, 1 * MM),
                  (1 * MM, -1 * MM)]
        tree = steiner_tree(tech, (0.0, 0.0), sites(points))
        assert tree.is_binary
        assert all(s.is_leaf for s in tree.sinks)
        assert len(tree.sinks) == 4
        # hub topology: total length equals the MST weight (4 mm here)
        assert math.isclose(tree.total_wire_length(), 4 * MM, rel_tol=1e-12)

    def test_noise_and_timing_run_on_via_topologies(self, tech, coupling):
        from repro import DriverCell, analyze_noise
        from repro.timing import sink_delays

        points = [(1 * MM, 0.0), (2 * MM, 0.0), (3 * MM, 0.0)]
        tree = steiner_tree(
            tech, (0.0, 0.0), sites(points), driver=DriverCell("d", 200.0)
        )
        delays = sink_delays(tree)
        assert delays["s0"] < delays["s1"] < delays["s2"]
        report = analyze_noise(tree, coupling)
        noise = {e.node: e.noise for e in report.entries}
        assert noise["s0"] <= noise["s1"] <= noise["s2"]

    @pytest.mark.parametrize("n", [1, 2, 8, 20])
    def test_scales_with_sink_count(self, tech, n):
        import numpy as np

        rng = np.random.default_rng(n)
        points = [
            (float(rng.uniform(0, 5 * MM)), float(rng.uniform(0, 5 * MM)))
            for _ in range(n)
        ]
        tree = steiner_tree(tech, (0.0, 0.0), sites(points))
        assert len(tree.sinks) == n
        assert tree.is_binary
