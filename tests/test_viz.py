"""Tests for repro.viz — SVG rendering."""

import pytest

from repro import AnalysisError, BufferType
from repro.units import FF, PS
from repro.viz import SvgStyle, render_svg, save_svg


@pytest.fixture
def buffer_b():
    return BufferType("bufX", 100.0, 10 * FF, 20 * PS, 0.8)


class TestRenderSvg:
    def test_contains_all_nodes(self, y_tree):
        svg = render_svg(y_tree)
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "sink s1" in svg
        assert "sink s2" in svg
        assert "source so" in svg
        assert svg.count("<line") == 3  # one per wire

    def test_buffers_drawn_as_triangles(self, y_tree, buffer_b):
        svg = render_svg(y_tree, buffers={"u": buffer_b})
        assert "<polygon" in svg
        assert "bufX at u" in svg

    def test_inverting_buffer_gets_bubble(self, y_tree):
        inv = BufferType("invX", 100.0, 10 * FF, 20 * PS, 0.8, inverting=True)
        plain = render_svg(y_tree, buffers={"u": inv})
        assert plain.count("<circle") > render_svg(y_tree).count("<circle")

    def test_noise_annotation_and_violation_color(
        self, long_two_pin, coupling
    ):
        style = SvgStyle()
        svg = render_svg(long_two_pin, coupling=coupling)
        assert "mV)" in svg
        assert style.sink_violation_color in svg

    def test_clean_net_uses_ok_color(self, short_two_pin, coupling):
        style = SvgStyle()
        svg = render_svg(short_two_pin, coupling=coupling)
        assert style.sink_color in svg
        assert style.sink_violation_color not in svg

    def test_positionless_tree_gets_layout(self):
        from repro import TreeBuilder

        builder = TreeBuilder()
        builder.add_source("so")
        builder.add_sink("s", capacitance=1 * FF, noise_margin=0.8)
        builder.add_wire("so", "s", resistance=1.0, capacitance=0.0)
        svg = render_svg(builder.build())
        assert "<line" in svg

    def test_unknown_buffer_node_rejected(self, y_tree, buffer_b):
        with pytest.raises(AnalysisError):
            render_svg(y_tree, buffers={"ghost": buffer_b})

    def test_label_escaping(self, tech):
        from repro import DriverCell, TreeBuilder

        builder = TreeBuilder(tech)
        builder.add_source("so", driver=DriverCell("d", 10.0))
        builder.add_sink("a<b", capacitance=1 * FF, noise_margin=0.8)
        builder.add_wire("so", "a<b", length=1e-3)
        svg = render_svg(builder.build())
        assert "a&lt;b" in svg
        assert "a<b</text>" not in svg

    def test_save_svg(self, y_tree, tmp_path):
        path = tmp_path / "net.svg"
        save_svg(y_tree, path)
        assert path.read_text().startswith("<svg")

    def test_custom_style_dimensions(self, y_tree):
        svg = render_svg(y_tree, style=SvgStyle(width=400, height=300))
        assert 'width="400"' in svg
        assert 'height="300"' in svg
