"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import math

import pytest

from repro import (
    BufferType,
    CouplingModel,
    DriverCell,
    TreeBuilder,
    default_buffer_library,
    default_cell_library,
    default_technology,
    two_pin_net,
)
from repro.units import FF, PS, UM


@pytest.fixture
def tech():
    return default_technology()


@pytest.fixture
def library():
    return default_buffer_library()


@pytest.fixture
def cells():
    return default_cell_library()


@pytest.fixture
def coupling(tech):
    return CouplingModel.estimation_mode(tech)


@pytest.fixture
def silent():
    return CouplingModel.silent()


@pytest.fixture
def driver():
    return DriverCell("drv", resistance=250.0, intrinsic_delay=30 * PS)


@pytest.fixture
def single_buffer():
    return BufferType(
        "b1",
        resistance=150.0,
        input_capacitance=20 * FF,
        intrinsic_delay=25 * PS,
        noise_margin=0.8,
    )


@pytest.fixture
def long_two_pin(tech, driver):
    """A 9 mm two-pin net that clearly violates noise unbuffered."""
    return two_pin_net(
        tech,
        9000 * UM,
        driver,
        sink_capacitance=20 * FF,
        noise_margin=0.8,
        required_arrival=2000 * PS,
        name="long_two_pin",
    )


@pytest.fixture
def short_two_pin(tech, driver):
    """A 1 mm two-pin net with no noise problem."""
    return two_pin_net(
        tech,
        1000 * UM,
        driver,
        sink_capacitance=15 * FF,
        noise_margin=0.8,
        required_arrival=500 * PS,
        name="short_two_pin",
    )


@pytest.fixture
def y_tree(tech, driver):
    """A symmetric-ish Y: source -> branch -> two sinks, 3+4 mm arms."""
    builder = TreeBuilder(tech)
    builder.add_source("so", driver=driver, position=(0.0, 0.0))
    builder.add_internal("u", position=(2000 * UM, 0.0))
    builder.add_sink(
        "s1", capacitance=15 * FF, noise_margin=0.8,
        required_arrival=2000 * PS, position=(5000 * UM, 0.0),
    )
    builder.add_sink(
        "s2", capacitance=25 * FF, noise_margin=0.8,
        required_arrival=2500 * PS, position=(2000 * UM, 4000 * UM),
    )
    builder.add_wire("so", "u", length=2000 * UM)
    builder.add_wire("u", "s1", length=3000 * UM)
    builder.add_wire("u", "s2", length=4000 * UM)
    return builder.build("y_tree")


def assert_close(actual, expected, rel=1e-9, abs_tol=0.0, msg=""):
    """Tight relative comparison helper for analytic identities."""
    assert math.isclose(actual, expected, rel_tol=rel, abs_tol=abs_tol), (
        f"{msg} actual={actual!r} expected={expected!r}"
    )
