"""Tests for repro.library.buffers."""

import math

import pytest

from repro import BufferLibrary, BufferType, TechnologyError, default_buffer_library
from repro.units import FF, PS


def make(name="b", r=100.0, c=10 * FF, d=20 * PS, nm=0.8, inv=False):
    return BufferType(name, r, c, d, nm, inv)


class TestBufferType:
    def test_gate_delay_is_linear(self):
        buf = make(r=200.0, d=10 * PS)
        assert math.isclose(buf.gate_delay(0.0), 10 * PS)
        assert math.isclose(buf.gate_delay(50 * FF), 10 * PS + 200.0 * 50 * FF)

    def test_gate_delay_rejects_negative_load(self):
        with pytest.raises(TechnologyError):
            make().gate_delay(-1 * FF)

    @pytest.mark.parametrize("kwargs", [
        {"r": 0.0},
        {"r": -5.0},
        {"c": -1 * FF},
        {"d": -1 * PS},
        {"nm": 0.0},
        {"nm": -0.8},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(TechnologyError):
            make(**kwargs)

    def test_frozen(self):
        buf = make()
        with pytest.raises(AttributeError):
            buf.resistance = 1.0


class TestBufferLibrary:
    def test_empty_library_rejected(self):
        with pytest.raises(TechnologyError):
            BufferLibrary([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(TechnologyError):
            BufferLibrary([make("x"), make("x", r=50.0)])

    def test_iteration_preserves_order(self):
        lib = BufferLibrary([make("a"), make("b", r=50.0), make("c", r=75.0)])
        assert [b.name for b in lib] == ["a", "b", "c"]

    def test_lookup_by_name(self):
        lib = BufferLibrary([make("a"), make("b", r=50.0)])
        assert lib["b"].resistance == 50.0
        assert "a" in lib
        assert "zzz" not in lib
        with pytest.raises(KeyError):
            lib["zzz"]

    def test_smallest_resistance(self):
        lib = BufferLibrary([make("a", r=300.0), make("b", r=50.0), make("c", r=75.0)])
        assert lib.smallest_resistance().name == "b"

    def test_polarity_filters(self):
        lib = BufferLibrary([make("a"), make("i", inv=True)])
        assert [b.name for b in lib.non_inverting()] == ["a"]
        assert [b.name for b in lib.inverting()] == ["i"]

    def test_polarity_filter_raises_when_empty(self):
        lib = BufferLibrary([make("a")])
        with pytest.raises(TechnologyError):
            lib.inverting()

    def test_restricted(self):
        lib = BufferLibrary([make("a"), make("b", r=50.0), make("c", r=75.0)])
        sub = lib.restricted(["c", "a"])
        assert [b.name for b in sub] == ["a", "c"]  # library order kept
        with pytest.raises(KeyError):
            lib.restricted(["nope"])

    def test_len(self):
        assert len(BufferLibrary([make("a"), make("b", r=9.0)])) == 2


class TestDefaultLibrary:
    def test_paper_composition_5_inverting_6_noninverting(self):
        lib = default_buffer_library()
        assert len(lib) == 11
        assert len(lib.inverting()) == 5
        assert len(lib.non_inverting()) == 6

    def test_strength_grading(self):
        """Stronger buffers: lower resistance, higher input capacitance."""
        lib = default_buffer_library()
        for family in (lib.non_inverting(), lib.inverting()):
            buffers = list(family)
            resistances = [b.resistance for b in buffers]
            caps = [b.input_capacitance for b in buffers]
            assert resistances == sorted(resistances, reverse=True)
            assert caps == sorted(caps)

    def test_uniform_noise_margin(self):
        lib = default_buffer_library(noise_margin=0.73)
        assert all(b.noise_margin == 0.73 for b in lib)

    def test_smallest_input_capacitance_is_small(self):
        """Algorithm 3 practicality: a small-Cin buffer must exist
        (Section IV-C discussion)."""
        lib = default_buffer_library()
        assert min(b.input_capacitance for b in lib) <= 10 * FF
