"""Tests for repro.library.technology."""

import math

import pytest

from repro import TechnologyError, default_technology
from repro.units import NS, UM


class TestTechnologyValidation:
    def test_default_is_valid(self):
        tech = default_technology()
        assert tech.unit_resistance > 0
        assert tech.unit_capacitance > 0

    @pytest.mark.parametrize("field,value", [
        ("unit_resistance", 0.0),
        ("unit_resistance", -1.0),
        ("unit_capacitance", 0.0),
        ("vdd", 0.0),
        ("vdd", -1.8),
        ("default_coupling_ratio", -0.1),
        ("default_coupling_ratio", 1.1),
        ("default_aggressor_slew", 0.0),
    ])
    def test_rejects_out_of_domain(self, field, value):
        with pytest.raises(TechnologyError):
            default_technology().scaled(**{field: value})

    def test_scaled_returns_new_instance(self):
        tech = default_technology()
        other = tech.scaled(vdd=2.5)
        assert other.vdd == 2.5
        assert tech.vdd != 2.5  # immutable original


class TestDerivedQuantities:
    def test_paper_slope_is_7_2_volts_per_ns(self):
        tech = default_technology().scaled(
            vdd=1.8, default_aggressor_slew=0.25 * NS
        )
        assert math.isclose(tech.default_aggressor_slope, 7.2e9)

    def test_wire_resistance_scales_linearly(self):
        tech = default_technology()
        r1 = tech.wire_resistance(1000 * UM)
        r2 = tech.wire_resistance(2000 * UM)
        assert math.isclose(r2, 2 * r1)

    def test_wire_capacitance_scales_linearly(self):
        tech = default_technology()
        c1 = tech.wire_capacitance(1000 * UM)
        assert math.isclose(c1, tech.unit_capacitance * 1000 * UM)

    def test_zero_length_wire_is_zero(self):
        tech = default_technology()
        assert tech.wire_resistance(0.0) == 0.0
        assert tech.wire_capacitance(0.0) == 0.0

    def test_negative_length_rejected(self):
        with pytest.raises(TechnologyError):
            default_technology().wire_resistance(-1.0)

    def test_unit_current_formula(self):
        """Eq. 6 per unit length: i = lambda * c * sigma."""
        tech = default_technology()
        expected = (
            tech.default_coupling_ratio
            * tech.unit_capacitance
            * tech.default_aggressor_slope
        )
        assert math.isclose(tech.unit_current(), expected)

    def test_unit_current_with_overrides(self):
        tech = default_technology()
        assert tech.unit_current(coupling_ratio=0.0) == 0.0
        half = tech.unit_current(coupling_ratio=tech.default_coupling_ratio / 2)
        assert math.isclose(half, tech.unit_current() / 2)

    def test_unit_current_rejects_bad_ratio(self):
        with pytest.raises(TechnologyError):
            default_technology().unit_current(coupling_ratio=1.5)

    def test_unit_current_rejects_negative_slope(self):
        with pytest.raises(TechnologyError):
            default_technology().unit_current(slope=-1.0)


class TestRegime:
    def test_driverless_noise_safe_length_is_millimeters(self):
        """The calibration note in default_technology()."""
        from repro import unloaded_max_length

        tech = default_technology()
        length = unloaded_max_length(
            tech.unit_resistance, tech.unit_current(), 0.8
        )
        assert 3e-3 < length < 10e-3  # low millimeters
