"""Tests for repro.library.cells."""

import math

import pytest

from repro import CellLibrary, DriverCell, SinkCell, TechnologyError, default_cell_library
from repro.units import FF, PS


class TestDriverCell:
    def test_gate_delay(self):
        drv = DriverCell("d", resistance=300.0, intrinsic_delay=15 * PS)
        assert math.isclose(drv.gate_delay(10 * FF), 15 * PS + 300.0 * 10 * FF)

    def test_rejects_nonpositive_resistance(self):
        with pytest.raises(TechnologyError):
            DriverCell("d", resistance=0.0)

    def test_rejects_negative_delay(self):
        with pytest.raises(TechnologyError):
            DriverCell("d", resistance=10.0, intrinsic_delay=-1.0)

    def test_rejects_negative_load(self):
        with pytest.raises(TechnologyError):
            DriverCell("d", resistance=10.0).gate_delay(-1.0)


class TestSinkCell:
    def test_valid(self):
        sink = SinkCell("s", input_capacitance=12 * FF, noise_margin=0.8)
        assert sink.input_capacitance == 12 * FF

    def test_rejects_negative_capacitance(self):
        with pytest.raises(TechnologyError):
            SinkCell("s", input_capacitance=-1.0, noise_margin=0.8)

    def test_rejects_nonpositive_margin(self):
        with pytest.raises(TechnologyError):
            SinkCell("s", input_capacitance=1 * FF, noise_margin=0.0)


class TestCellLibrary:
    def test_default_composition(self):
        lib = default_cell_library()
        assert len(lib.drivers) >= 4
        assert len(lib.sinks) >= 3

    def test_lookup(self):
        lib = default_cell_library()
        name = lib.drivers[0].name
        assert lib.driver(name) is lib.drivers[0]
        with pytest.raises(KeyError):
            lib.driver("missing")
        with pytest.raises(KeyError):
            lib.sink("missing")

    def test_needs_drivers_and_sinks(self):
        drv = DriverCell("d", resistance=10.0)
        sink = SinkCell("s", input_capacitance=1 * FF, noise_margin=0.8)
        with pytest.raises(TechnologyError):
            CellLibrary([], [sink])
        with pytest.raises(TechnologyError):
            CellLibrary([drv], [])

    def test_duplicate_names_rejected(self):
        drv = DriverCell("x", resistance=10.0)
        sink = SinkCell("x", input_capacitance=1 * FF, noise_margin=0.8)
        with pytest.raises(TechnologyError):
            CellLibrary([drv], [sink])

    def test_margin_propagates(self):
        lib = default_cell_library(noise_margin=0.65)
        assert all(s.noise_margin == 0.65 for s in lib.sinks)

    def test_iteration_yields_all_cells(self):
        lib = default_cell_library()
        assert len(list(lib)) == len(lib.drivers) + len(lib.sinks)
