"""The PowerModel: parameter validation and the two CMOS terms."""

import pytest

from repro.errors import TechnologyError
from repro.library.buffers import default_buffer_library
from repro.library.power import PowerModel, default_power_model
from repro.library.technology import default_technology

TECH = default_technology()


class TestValidation:
    @pytest.mark.parametrize("activity", [0.0, -0.1, 1.5])
    def test_activity_must_lie_in_unit_interval(self, activity):
        with pytest.raises(TechnologyError, match="activity"):
            PowerModel(technology=TECH, activity=activity)

    @pytest.mark.parametrize("frequency", [0.0, -1e9, float("inf")])
    def test_frequency_must_be_positive_finite(self, frequency):
        with pytest.raises(TechnologyError, match="frequency"):
            PowerModel(technology=TECH, frequency=frequency)

    def test_short_circuit_fraction_must_be_nonnegative(self):
        with pytest.raises(TechnologyError, match="short_circuit"):
            PowerModel(technology=TECH, short_circuit_fraction=-0.1)


class TestTerms:
    def test_wire_power_is_alpha_c_v2_f(self):
        model = PowerModel(
            technology=TECH, activity=0.2, frequency=2.0e9,
            short_circuit_fraction=0.0,
        )
        capacitance = 1e-13
        expected = 0.2 * TECH.vdd**2 * 2.0e9 * capacitance
        assert model.wire_power(capacitance) == pytest.approx(expected)
        # linear in C: segmentation cannot change a net's wire power
        assert model.wire_power(2 * capacitance) == pytest.approx(
            2 * model.wire_power(capacitance)
        )

    def test_buffer_power_adds_the_short_circuit_surcharge(self):
        buffer = next(iter(default_buffer_library()))
        base = PowerModel(
            technology=TECH, short_circuit_fraction=0.0
        ).buffer_power(buffer)
        surcharged = PowerModel(
            technology=TECH, short_circuit_fraction=0.25
        ).buffer_power(buffer)
        assert surcharged == pytest.approx(base * 1.25)
        assert base == pytest.approx(
            PowerModel(technology=TECH, short_circuit_fraction=0.0)
            .wire_power(buffer.input_capacitance)
        )

    def test_larger_buffers_cost_more(self):
        model = default_power_model()
        powers = [model.buffer_power(b) for b in default_buffer_library()]
        assert all(p > 0.0 for p in powers)
        assert len(set(powers)) > 1


class TestSerialization:
    def test_to_json_round_trips_the_parameters(self):
        model = PowerModel(
            technology=TECH, activity=0.3, frequency=1.5e9,
            short_circuit_fraction=0.2,
        )
        block = model.to_json()
        assert block["technology"] == TECH.name
        rebuilt = PowerModel(
            technology=TECH,
            activity=block["activity"],
            frequency=block["frequency"],
            short_circuit_fraction=block["short_circuit_fraction"],
        )
        assert rebuilt == model

    def test_default_model_rides_the_default_technology(self):
        assert default_power_model().technology == TECH
        other = default_power_model(TECH)
        assert other.technology is TECH
