"""Sharded checkpoints: routing, recovery, resharding, and the merge.

The regression this suite exists for (satellite of the fleet-scaling
PR): shard topology must live *next to* the checkpoint fingerprint, not
inside it, so a journal written under N shards resumes — bit-identically
— under M shards.  The N→M test runs the full optimizer through an
interrupt/reshard/resume cycle and compares signatures against the
single-journal run.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import WorkloadError
from repro.batch import (
    BatchConfig,
    BatchOptimizer,
    SHARDS_RECOVERED_COUNTER,
    ShardedCheckpoint,
    load_checkpoint,
    load_sharded_checkpoint,
    merge_sharded_checkpoint,
    net_shard,
    read_checkpoint_header,
)
from repro.batch.checkpoint import TORN_TAIL_COUNTER
from repro.obs import MetricsRegistry
from repro.workloads import WorkloadConfig, population_specs

NETS = 16


@pytest.fixture(scope="module")
def batch():
    workload = WorkloadConfig(nets=NETS, seed=5)
    config = BatchConfig(max_buffers=4, keep_trees=False)
    optimizer = BatchOptimizer(config=config, workload=workload)
    return workload, config, optimizer, population_specs(workload)


class TestRouting:
    def test_net_shard_is_stable_and_in_range(self):
        for shards in (1, 2, 7, 64):
            for name in ("net_0001", "net_0002", "x"):
                index = net_shard(name, shards)
                assert 0 <= index < shards
                assert index == net_shard(name, shards)

    def test_invalid_shard_counts_are_rejected(self, tmp_path):
        with pytest.raises(WorkloadError):
            net_shard("net", 0)
        with pytest.raises(WorkloadError):
            ShardedCheckpoint.create(tmp_path / "d", 0, {"mode": "buffopt"})


class TestRoundtrip:
    def test_sharded_write_and_recovery(self, batch, tmp_path):
        workload, config, optimizer, specs = batch
        directory = tmp_path / "fleet.ckpt"
        report = optimizer.optimize(specs, checkpoint=directory, shards=4)
        assert sorted(
            p.name for p in directory.glob("shard-*.jsonl")
        ) == [f"shard-{i:04d}.jsonl" for i in range(4)]

        recovery = load_sharded_checkpoint(directory, optimizer.library)
        assert set(recovery.results) == {r.name for r in report.results}
        assert recovery.shard_files == 4
        assert recovery.max_seq == NETS
        for result in report.results:
            assert (
                recovery.results[result.name].signature()
                == result.signature()
            )

    def test_each_net_lands_on_its_routed_shard(self, batch, tmp_path):
        workload, config, optimizer, specs = batch
        directory = tmp_path / "fleet.ckpt"
        optimizer.optimize(specs, checkpoint=directory, shards=3)
        for index in range(3):
            path = directory / f"shard-{index:04d}.jsonl"
            header = read_checkpoint_header(path)
            assert header["shard"] == {"index": index, "count": 3}
            assert "shard" not in header["fingerprint"]
            for line in path.read_text().splitlines()[1:]:
                record = json.loads(line)
                assert net_shard(record["name"], 3) == index

    def test_shard_recovery_metric_is_counted(self, batch, tmp_path):
        workload, config, optimizer, specs = batch
        directory = tmp_path / "fleet.ckpt"
        optimizer.optimize(specs, checkpoint=directory, shards=4)
        registry = MetricsRegistry()
        load_sharded_checkpoint(
            directory, optimizer.library, metrics=registry
        )
        assert registry.counter(
            SHARDS_RECOVERED_COUNTER, "shards"
        ).value() == 4

    def test_missing_directory_raises(self, batch, tmp_path):
        _, _, optimizer, _ = batch
        with pytest.raises(WorkloadError):
            load_sharded_checkpoint(tmp_path / "empty", optimizer.library)


class TestReshard:
    """The satellite regression: N→M reshard resume == single journal."""

    def interrupted_then_resumed(self, batch, tmp_path, write_shards,
                                 resume_shards):
        workload, config, optimizer, specs = batch
        directory = tmp_path / "fleet.ckpt"
        # first incarnation journals only half the fleet, then "dies"
        optimizer.optimize(
            specs[: NETS // 2], checkpoint=directory, shards=write_shards
        )
        # second incarnation resumes under a different shard count
        fresh = BatchOptimizer(config=config, workload=workload)
        return fresh.optimize(
            specs, checkpoint=directory, shards=resume_shards, resume=True
        )

    @pytest.mark.parametrize(
        "write_shards,resume_shards", [(4, 2), (2, 4), (3, 3), (1, 8)]
    )
    def test_reshard_resume_matches_single_journal(
        self, batch, tmp_path, write_shards, resume_shards
    ):
        workload, config, optimizer, specs = batch
        resumed = self.interrupted_then_resumed(
            batch, tmp_path, write_shards, resume_shards
        )
        single = tmp_path / "single.jsonl"
        baseline = BatchOptimizer(config=config, workload=workload)
        baseline.optimize(specs[: NETS // 2], checkpoint=single)
        reference = BatchOptimizer(
            config=config, workload=workload
        ).optimize(specs, checkpoint=single, resume=True)
        assert resumed.signatures() == reference.signatures()

    def test_resume_only_recomputes_missing_nets(self, batch, tmp_path):
        workload, config, optimizer, specs = batch
        directory = tmp_path / "fleet.ckpt"
        optimizer.optimize(specs[:10], checkpoint=directory, shards=4)
        before = {
            path: path.read_text() for path in directory.glob("*.jsonl")
        }
        BatchOptimizer(config=config, workload=workload).optimize(
            specs, checkpoint=directory, shards=2, resume=True
        )
        appended = []
        for path in directory.glob("shard-*.jsonl"):
            old = before.get(path, "")
            assert path.read_text().startswith(old)
            for line in path.read_text()[len(old):].splitlines():
                record = json.loads(line)
                if record.get("kind") == "result":
                    appended.append(record)
        assert {r["name"] for r in appended} == {
            s.name for s in specs[10:]
        }
        # seq stamps continue past the first incarnation's 10 records
        assert all(r["seq"] > 10 for r in appended)

    def test_fingerprint_mismatch_still_rejected(self, batch, tmp_path):
        workload, config, optimizer, specs = batch
        directory = tmp_path / "fleet.ckpt"
        optimizer.optimize(specs[:4], checkpoint=directory, shards=2)
        other = BatchOptimizer(
            config=BatchConfig(max_buffers=2, keep_trees=False),
            workload=workload,
        )
        with pytest.raises(WorkloadError) as excinfo:
            other.optimize(
                specs, checkpoint=directory, shards=2, resume=True
            )
        assert "max_buffers" in str(excinfo.value)

    def test_shards_without_checkpoint_is_rejected(self, batch):
        _, _, optimizer, specs = batch
        with pytest.raises(WorkloadError):
            optimizer.optimize(specs, shards=2)


class TestTornShard:
    def test_torn_tail_per_shard_is_tolerated_and_counted(
        self, batch, tmp_path
    ):
        workload, config, optimizer, specs = batch
        directory = tmp_path / "fleet.ckpt"
        optimizer.optimize(specs, checkpoint=directory, shards=3)
        victim = directory / "shard-0001.jsonl"
        clean = victim.stat().st_size
        with victim.open("a") as handle:
            handle.write('{"kind": "result", "name": "to')
        registry = MetricsRegistry()
        recovery = load_sharded_checkpoint(
            directory, optimizer.library, metrics=registry
        )
        assert len(recovery.results) == NETS
        assert recovery.torn_tails == 1
        text = registry.to_prometheus()
        assert TORN_TAIL_COUNTER in text
        assert 'journal="batch-shard"' in text
        # and the tear is truncated off for the next incarnation
        assert victim.stat().st_size == clean

    def test_interior_corruption_raises(self, batch, tmp_path):
        workload, config, optimizer, specs = batch
        directory = tmp_path / "fleet.ckpt"
        optimizer.optimize(specs, checkpoint=directory, shards=1)
        path = directory / "shard-0000.jsonl"
        lines = path.read_text().splitlines(keepends=True)
        lines[2] = lines[2][:15] + "\n"
        path.write_text("".join(lines))
        with pytest.raises(WorkloadError):
            load_sharded_checkpoint(directory, optimizer.library)


class TestMerge:
    def test_merged_journal_equals_sharded_recovery(self, batch, tmp_path):
        workload, config, optimizer, specs = batch
        directory = tmp_path / "fleet.ckpt"
        optimizer.optimize(specs, checkpoint=directory, shards=4)
        merged = tmp_path / "merged.jsonl"
        merge_sharded_checkpoint(directory, merged)
        sharded = load_sharded_checkpoint(directory, optimizer.library)
        single = load_checkpoint(merged, optimizer.library)
        assert set(single) == set(sharded.results)
        for name, result in single.items():
            assert result.signature() == sharded.results[name].signature()
        # no seq stamps survive: the merged file is indistinguishable
        # from an unsharded run's checkpoint
        for line in merged.read_text().splitlines()[1:]:
            assert "seq" not in json.loads(line)

    def test_merge_resolves_reshard_duplicates_by_seq(
        self, batch, tmp_path
    ):
        """After a reshard, a net upgraded by a later incarnation may
        appear in two shard files; the merge must keep the later
        (higher-seq) record."""
        workload, config, optimizer, specs = batch
        directory = tmp_path / "fleet.ckpt"
        optimizer.optimize(specs, checkpoint=directory, shards=4)
        # forge a later record for one net into a *different* shard file
        name = specs[0].name
        home = directory / f"shard-{net_shard(name, 4):04d}.jsonl"
        original = next(
            json.loads(line)
            for line in home.read_text().splitlines()[1:]
            if json.loads(line)["name"] == name
        )
        forged = dict(original)
        forged["seq"] = 999
        forged["attempts"] = 7
        other = directory / f"shard-{(net_shard(name, 4) + 1) % 4:04d}.jsonl"
        with other.open("a") as handle:
            handle.write(json.dumps(forged, sort_keys=True) + "\n")

        recovery = load_sharded_checkpoint(directory, optimizer.library)
        assert recovery.results[name].attempts == 7
        assert recovery.max_seq == 999

        merged = tmp_path / "merged.jsonl"
        merge_sharded_checkpoint(directory, merged)
        kept = load_checkpoint(merged, optimizer.library)
        assert kept[name].attempts == 7
