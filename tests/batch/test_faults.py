"""Tests for the deterministic fault-injection harness."""

from __future__ import annotations

import pytest

from repro import WorkloadError
from repro.batch import FAULT_KINDS, FaultPlan, FaultSpec, InjectedFault


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(WorkloadError):
            FaultSpec(kind="segfault")

    def test_rejects_bad_attempts(self):
        with pytest.raises(WorkloadError):
            FaultSpec(kind="raise", attempts=())
        with pytest.raises(WorkloadError):
            FaultSpec(kind="raise", attempts=(0,))

    def test_rejects_bad_hang_duration(self):
        with pytest.raises(WorkloadError):
            FaultSpec(kind="hang", seconds=0.0)

    def test_rejects_clean_exit_code(self):
        with pytest.raises(WorkloadError):
            FaultSpec(kind="exit", exit_code=0)

    def test_all_kinds_constructible(self):
        for kind in FAULT_KINDS:
            FaultSpec(kind=kind)


class TestFaultPlan:
    def test_fires_only_on_listed_attempts(self):
        plan = FaultPlan(
            faults={"netA": FaultSpec(kind="raise", attempts=(1, 3))}
        )
        assert plan.fires_on("netA", 1)
        assert not plan.fires_on("netA", 2)
        assert plan.fires_on("netA", 3)
        assert not plan.fires_on("netB", 1)
        assert plan.spec_for("netB") is None

    def test_fire_raises_with_context(self):
        plan = FaultPlan(faults={"netA": FaultSpec(kind="raise")})
        with pytest.raises(InjectedFault) as excinfo:
            plan.fire("netA", 1)
        assert "netA" in str(excinfo.value)
        # Clean attempts and unlisted nets are no-ops.
        plan.fire("netA", 2)
        plan.fire("netB", 1)

    def test_injected_fault_is_not_a_repro_error(self):
        # The whole point: injected raises must travel the
        # unexpected-exception path, not the handled-engine-error path.
        from repro.errors import ReproError

        assert issubclass(InjectedFault, RuntimeError)
        assert not issubclass(InjectedFault, ReproError)

    def test_hang_sleeps_then_returns(self):
        plan = FaultPlan(
            faults={"netA": FaultSpec(kind="hang", seconds=0.01)}
        )
        plan.fire("netA", 1)  # returns after the (tiny) sleep

    def test_sample_is_deterministic(self):
        names = [f"net{i:04d}" for i in range(100)]
        a = FaultPlan.sample(names, rate=0.1, seed=7)
        b = FaultPlan.sample(names, rate=0.1, seed=7)
        c = FaultPlan.sample(names, rate=0.1, seed=8)
        assert set(a.faults) == set(b.faults)
        assert len(a) == 10
        assert set(a.faults) != set(c.faults)

    def test_sample_rate_bounds(self):
        names = ["a", "b"]
        assert len(FaultPlan.sample(names, rate=0.0)) == 0
        assert len(FaultPlan.sample(names, rate=1.0)) == 2
        with pytest.raises(WorkloadError):
            FaultPlan.sample(names, rate=1.5)

    def test_describe(self):
        assert "empty" in FaultPlan().describe()
        plan = FaultPlan(
            faults={
                "a": FaultSpec(kind="raise"),
                "b": FaultSpec(kind="exit"),
                "c": FaultSpec(kind="raise"),
            }
        )
        text = plan.describe()
        assert "3 nets" in text and "2 raise" in text and "1 exit" in text
