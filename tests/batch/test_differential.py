"""Differential harness: batch executors vs direct single-net engine calls.

For ~50 seeded random trees (the treegen strategies, derandomized so
every run sees the same fleet), the batch subsystem must return
*bit-identical* solutions to calling the engine entry points directly,
under every executor.  Any divergence — a float that rounds differently,
an assignment that reorders, an infeasibility that flips — is a bug in
the batching layer, never an acceptable approximation.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "properties"))

from treegen import TECH, random_trees  # noqa: E402

from repro import CouplingModel, InfeasibleError, segment_tree
from repro.batch import (
    BatchConfig,
    BatchOptimizer,
    ChunkedExecutor,
    MultiprocessExecutor,
    SerialExecutor,
)
from repro.core.noise_delay import buffopt_result
from repro.core.van_ginneken import delay_opt_result
from repro.library import default_buffer_library
from repro.units import MM

COUPLING = CouplingModel.estimation_mode(TECH)
LIBRARY = default_buffer_library()
SEGMENT = 0.8 * MM
FLEET_SIZE = 50

_COLLECTED: list = []


@settings(
    max_examples=FLEET_SIZE,
    derandomize=True,
    deadline=None,
    database=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
@given(tree=random_trees(max_internal=4, with_rats=True))
def _collect(tree):
    _COLLECTED.append(tree)


@pytest.fixture(scope="module")
def trees():
    """~50 random trees, identical on every run (derandomized strategy)."""
    if not _COLLECTED:
        _collect()
    assert len(_COLLECTED) >= 40
    return list(_COLLECTED[:FLEET_SIZE])


def _direct_signature(tree, mode):
    """What a caller using the engine directly would get for one net."""
    segmented = segment_tree(tree, SEGMENT)
    try:
        if mode == "buffopt":
            result = buffopt_result(segmented, LIBRARY, COUPLING)
            outcome = result.fewest_buffers()
        else:
            result = delay_opt_result(segmented, LIBRARY)
            outcome = result.best(require_noise=False)
    except InfeasibleError:
        return ("infeasible",)
    return (
        outcome.buffer_count,
        outcome.slack,
        outcome.noise_feasible,
        tuple(sorted((i.node, i.buffer.name) for i in outcome.insertions)),
        result.candidates_generated,
        result.candidates_kept_peak,
    )


def _batch_signature(result):
    if not result.ok:
        return ("infeasible",)
    assert result.assignment is not None
    return (
        result.buffer_count,
        result.slack,
        result.noise_feasible,
        tuple(sorted((n, b.name) for n, b in result.assignment.items())),
        result.candidates_generated,
        result.candidates_kept_peak,
    )


def _run_batch(trees, mode, executor):
    optimizer = BatchOptimizer(
        library=LIBRARY,
        coupling=COUPLING,
        config=BatchConfig(
            mode=mode, max_segment_length=SEGMENT, keep_trees=False
        ),
        executor=executor,
    )
    return optimizer.optimize(trees)


@pytest.mark.parametrize("mode", ["buffopt", "delay"])
def test_serial_matches_direct(trees, mode):
    report = _run_batch(trees, mode, SerialExecutor())
    assert len(report) == len(trees)
    for tree, result in zip(trees, report.results):
        assert _batch_signature(result) == _direct_signature(tree, mode)


@pytest.mark.parametrize("mode", ["buffopt", "delay"])
def test_multiprocess_matches_direct(trees, mode):
    report = _run_batch(trees, mode, MultiprocessExecutor(workers=2))
    assert len(report) == len(trees)
    for tree, result in zip(trees, report.results):
        assert _batch_signature(result) == _direct_signature(tree, mode)


def test_chunked_matches_serial(trees):
    serial = _run_batch(trees, "buffopt", SerialExecutor())
    chunked = _run_batch(
        trees, "buffopt", ChunkedExecutor(workers=2, chunk_size=7)
    )
    assert chunked.signatures() == serial.signatures()


def test_stats_collection_is_solution_neutral(trees):
    """Turning telemetry on must not move a single bit of the solutions."""
    plain = _run_batch(trees, "buffopt", SerialExecutor())
    optimizer = BatchOptimizer(
        library=LIBRARY,
        coupling=COUPLING,
        config=BatchConfig(
            mode="buffopt",
            max_segment_length=SEGMENT,
            keep_trees=False,
            collect_stats=True,
        ),
        executor=SerialExecutor(),
    )
    instrumented = optimizer.optimize(trees)
    assert instrumented.signatures() == plain.signatures()
    assert any(r.stats is not None for r in instrumented.results)
