"""SIGKILL-mid-round fleet resume: the coordinator's crash story.

The fleet analogue of :mod:`tests.batch.test_resume_matrix`'s SIGKILL
legs: a real subprocess coordinates a contended fleet against a journal,
gets SIGKILLed after at least two closed price rounds, and the resumed
run must reach the *bit-identical* final state of an uninterrupted
baseline — replayed closed rounds verbatim, recomputed tail exact.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.batch import BatchConfig
from repro.fleet import FleetConfig, FleetCoordinator, PriceSchedule
from repro.units import PS
from repro.workloads import WorkloadConfig, population_specs

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

NETS = 12
SEED = 23

#: slow schedule (no growth escalation) so the run survives long enough
#: to be killed after round 2 but converges eventually on resume.
FLEET_KWARGS = (
    "config=FleetConfig(\n"
    "    batch=BatchConfig(mode='delay', keep_trees=False),\n"
    "    sites_per_family=4, base_capacity=1, max_rounds=20,\n"
    "    schedule=PriceSchedule(step=2e-12, growth=1.0),\n"
    "),\n"
    f"workload=WorkloadConfig(nets={NETS}, seed={SEED}),\n"
)


def build_coordinator():
    return FleetCoordinator(
        config=FleetConfig(
            batch=BatchConfig(mode="delay", keep_trees=False),
            sites_per_family=4,
            base_capacity=1,
            max_rounds=20,
            schedule=PriceSchedule(step=2 * PS, growth=1.0),
        ),
        workload=WorkloadConfig(nets=NETS, seed=SEED),
    )


def closed_rounds(path):
    if not path.exists():
        return 0
    count = 0
    for line in path.read_text().splitlines():
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail mid-write: exactly what repair is for
        if record.get("kind") == "round":
            count += 1
    return count


class TestSigkillFleetResume:
    def test_sigkill_mid_round_then_resume_is_bit_identical(
        self, tmp_path
    ):
        journal = tmp_path / "fleet.jsonl"
        script = (
            "import sys\n"
            f"sys.path.insert(0, {REPO_SRC!r})\n"
            "from repro.batch import BatchConfig\n"
            "from repro.fleet import (FleetConfig, FleetCoordinator,\n"
            "                         PriceSchedule)\n"
            "from repro.workloads import WorkloadConfig, population_specs\n"
            f"coordinator = FleetCoordinator({FLEET_KWARGS})\n"
            f"w = WorkloadConfig(nets={NETS}, seed={SEED})\n"
            "coordinator.coordinate(population_specs(w),\n"
            f"    checkpoint={str(journal)!r})\n"
        )
        process = subprocess.Popen([sys.executable, "-c", script])
        try:
            deadline = time.monotonic() + 90.0
            while time.monotonic() < deadline:
                if closed_rounds(journal) >= 2:
                    break
                if process.poll() is not None:
                    pytest.fail(
                        "fleet converged before it could be killed"
                    )
                time.sleep(0.005)
            else:
                pytest.fail("journal never closed 2 rounds")
            os.kill(process.pid, signal.SIGKILL)
        finally:
            process.wait()

        # the crash left a real mid-flight journal: at least two closed
        # rounds, and strictly fewer than a finished run would hold.
        interrupted = closed_rounds(journal)
        assert interrupted >= 2

        specs = population_specs(WorkloadConfig(nets=NETS, seed=SEED))
        resumed = build_coordinator().coordinate(
            specs, checkpoint=journal, resume=True
        )
        baseline = build_coordinator().coordinate(specs)

        assert len(baseline.rounds) > interrupted
        assert resumed.signatures() == baseline.signatures()
        assert resumed.rounds == baseline.rounds
        assert resumed.prices == baseline.prices
        assert resumed.primal_total == baseline.primal_total
        # and the resumed journal now holds the full run's rounds.
        assert closed_rounds(journal) == len(baseline.rounds)
