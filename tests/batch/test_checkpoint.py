"""Tests for checkpoint/resume: the JSONL journal and its CLI surface.

The interrupt test kills a real batch process with SIGKILL mid-run and
resumes from whatever the journal managed to record — the exact scenario
the per-line flush + torn-tail tolerance exists for.

When ``REPRO_CHECKPOINT_DIR`` is set (the CI fault-injection job sets it
so failed runs upload their journals as artifacts), checkpoints are
written there instead of the per-test tmp dir.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import WorkloadError
from repro.batch import (
    BatchConfig,
    BatchOptimizer,
    CheckpointJournal,
    FailureRecord,
    load_checkpoint,
    read_checkpoint_header,
    result_from_json,
    result_to_json,
)
from repro.cli import main as cli_main
from repro.workloads import WorkloadConfig, population_specs

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture
def ckpt_dir(tmp_path, request):
    """Checkpoint directory: CI artifact dir when configured, tmp otherwise."""
    override = os.environ.get("REPRO_CHECKPOINT_DIR")
    if not override:
        return tmp_path
    directory = Path(override) / request.node.name
    directory.mkdir(parents=True, exist_ok=True)
    return directory


class TestJournalRoundtrip:
    @pytest.fixture(scope="class")
    def batch(self):
        workload = WorkloadConfig(nets=10, seed=3)
        config = BatchConfig(max_buffers=4, keep_trees=False)
        optimizer = BatchOptimizer(config=config, workload=workload)
        specs = population_specs(workload)
        return workload, config, optimizer, specs

    def test_signatures_survive_the_roundtrip(self, batch, ckpt_dir):
        workload, config, optimizer, specs = batch
        path = ckpt_dir / "journal.jsonl"
        report = optimizer.optimize(specs, checkpoint=path)
        loaded = load_checkpoint(path, optimizer.library)
        assert set(loaded) == {r.name for r in report.results}
        assert tuple(
            loaded[r.name].signature() for r in report.results
        ) == report.signatures()

    def test_failure_records_roundtrip(self, batch):
        _, _, optimizer, _ = batch
        from repro.batch import failure_net_result
        from repro.workloads import population_specs as ps

        spec = population_specs(WorkloadConfig(nets=1, seed=3))[0]
        failed = failure_net_result(spec, FailureRecord(
            error="WorkerCrashError",
            message="worker process died with exit code 17",
            phase="dispatch",
            attempts=3,
            elapsed=1.25,
        ))
        rebuilt = result_from_json(
            result_to_json(failed), optimizer.library
        )
        assert rebuilt.failure == failed.failure
        assert rebuilt.attempts == 3
        assert not rebuilt.ok
        assert rebuilt.signature() == failed.signature()

    def test_header_and_version_checks(self, batch, tmp_path):
        _, _, optimizer, _ = batch
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(WorkloadError):
            read_checkpoint_header(path)
        path.write_text(json.dumps({"kind": "header", "version": 99}) + "\n")
        with pytest.raises(WorkloadError):
            read_checkpoint_header(path)

    def test_fingerprint_mismatch_is_rejected(self, batch, tmp_path):
        workload, config, optimizer, specs = batch
        path = tmp_path / "journal.jsonl"
        optimizer.optimize(specs, checkpoint=path)
        other = BatchOptimizer(
            config=BatchConfig(max_buffers=2, keep_trees=False),
            workload=workload,
        )
        with pytest.raises(WorkloadError) as excinfo:
            other.optimize(specs, checkpoint=path, resume=True)
        assert "max_buffers" in str(excinfo.value)

    def test_torn_tail_is_tolerated_torn_interior_is_not(
        self, batch, tmp_path
    ):
        workload, config, optimizer, specs = batch
        path = tmp_path / "journal.jsonl"
        optimizer.optimize(specs, checkpoint=path)
        with path.open("a") as handle:
            handle.write('{"kind": "result", "name": "to')
        assert len(load_checkpoint(path, optimizer.library)) == 10
        lines = path.read_text().splitlines(keepends=True)
        lines[3] = lines[3][:20] + "\n"  # corrupt an interior record
        path.write_text("".join(lines))
        with pytest.raises(WorkloadError):
            load_checkpoint(path, optimizer.library)

    def test_repair_torn_tail_on_zero_length_journal(self, tmp_path):
        """A crash before the header write leaves a 0-byte journal;
        repair must be a no-op on it, not an IndexError on lines[-1]."""
        from repro.batch.checkpoint import repair_torn_tail

        path = tmp_path / "empty.jsonl"
        path.write_bytes(b"")
        repair_torn_tail(path, [])
        assert path.stat().st_size == 0

    def test_repair_torn_tail_with_only_a_torn_fragment(self, tmp_path):
        """A journal whose entire content is one unterminated fragment
        (killed mid-header) truncates back to zero bytes, leaving a
        file the next create() can safely overwrite."""
        from repro.batch.checkpoint import repair_torn_tail

        path = tmp_path / "torn.jsonl"
        path.write_text('{"kind": "head')
        repair_torn_tail(path, ['{"kind": "head'])
        assert path.stat().st_size == 0

    def test_resume_requires_checkpoint_path(self, batch):
        _, _, optimizer, specs = batch
        with pytest.raises(WorkloadError):
            optimizer.optimize(specs, resume=True)

    def test_unknown_buffer_name_is_rejected(self, batch, tmp_path):
        _, _, optimizer, _ = batch
        record = result_to_json(
            BatchOptimizer(
                config=BatchConfig(max_buffers=4, keep_trees=False),
                workload=WorkloadConfig(nets=1, seed=3),
            ).optimize_specs()
            .results[0]
        )
        if record["assignment"]:
            key = next(iter(record["assignment"]))
            record["assignment"][key] = "no_such_buffer"
            with pytest.raises(WorkloadError):
                result_from_json(record, optimizer.library)


class TestCrossEngineResume:
    """A journal written under one engine resumes under another.

    The DP engine — including any ``"auto"`` resolution, which never
    reaches the options — is deliberately excluded from the checkpoint
    fingerprint: engine choice changes how answers are computed, not
    what they are.  An interrupted fast batch may therefore finish under
    lishi; the recomputed nets are re-verified (``certify=True``), not
    trusted.
    """

    def _config(self, engine):
        return BatchConfig(
            max_buffers=4, keep_trees=False, certify=True, engine=engine
        )

    def test_fast_journal_resumes_under_lishi(self, ckpt_dir):
        workload = WorkloadConfig(nets=8, seed=13)
        specs = population_specs(workload)
        path = ckpt_dir / "cross_engine.jsonl"

        fast = BatchOptimizer(config=self._config("fast"), workload=workload)
        partial = fast.optimize(specs[:5], checkpoint=path)
        assert all(r.ok for r in partial.results)

        lishi = BatchOptimizer(
            config=self._config("lishi"), workload=workload
        )
        report = lishi.optimize(specs, checkpoint=path, resume=True)
        assert len(report.results) == 8
        assert all(r.ok for r in report.results)
        # every net in the resumed report is certificate-clean — the
        # recomputed tail was re-verified under lishi, not trusted
        assert report.certified_count == 8

        # the journaled head is kept verbatim (fast signatures), and the
        # recomputed tail is genuinely lishi work (its signatures match
        # an uninterrupted lishi run, and differ from fast's in general)
        full_fast = BatchOptimizer(
            config=self._config("fast"), workload=workload
        ).optimize(specs)
        full_lishi = BatchOptimizer(
            config=self._config("lishi"), workload=workload
        ).optimize(specs)
        resumed = report.signatures()
        assert resumed[:5] == full_fast.signatures()[:5]
        assert resumed[5:] == full_lishi.signatures()[5:]

    def test_auto_journal_resumes_under_explicit_engine(self, ckpt_dir):
        # "auto" resolution stays out of the fingerprint too: a journal
        # begun under auto reloads under an explicit engine and back
        workload = WorkloadConfig(nets=4, seed=13)
        specs = population_specs(workload)
        path = ckpt_dir / "auto_engine.jsonl"
        auto = BatchOptimizer(config=self._config("auto"), workload=workload)
        auto.optimize(specs[:2], checkpoint=path)
        explicit = BatchOptimizer(
            config=self._config("fast"), workload=workload
        )
        report = explicit.optimize(specs, checkpoint=path, resume=True)
        assert len(report.results) == 4
        assert all(r.ok for r in report.results)


class TestKillThenResume:
    NETS = 30

    def test_sigkill_mid_run_then_resume(self, ckpt_dir):
        """Kill a real run with SIGKILL, resume, verify only the
        unfinished nets are recomputed and the final report matches an
        uninterrupted one bit-for-bit."""
        path = ckpt_dir / "killed.jsonl"
        script = (
            "import sys\n"
            f"sys.path.insert(0, {REPO_SRC!r})\n"
            "from repro.batch import BatchConfig, BatchOptimizer\n"
            "from repro.workloads import WorkloadConfig, population_specs\n"
            f"w = WorkloadConfig(nets={self.NETS}, seed=11)\n"
            "cfg = BatchConfig(max_buffers=4, keep_trees=False)\n"
            "BatchOptimizer(config=cfg, workload=w).optimize_specs(\n"
            f"    population_specs(w), checkpoint={str(path)!r})\n"
        )
        process = subprocess.Popen([sys.executable, "-c", script])
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if path.exists() and sum(
                    1 for _ in path.open()
                ) >= 6:  # header + >= 5 results journaled
                    break
                if process.poll() is not None:
                    pytest.fail("batch finished before it could be killed")
                time.sleep(0.01)
            else:
                pytest.fail("journal never reached 5 results")
            os.kill(process.pid, signal.SIGKILL)
        finally:
            process.wait()

        workload = WorkloadConfig(nets=self.NETS, seed=11)
        config = BatchConfig(max_buffers=4, keep_trees=False)
        specs = population_specs(workload)
        optimizer = BatchOptimizer(config=config, workload=workload)
        survivors = set(load_checkpoint(path, optimizer.library))
        assert 0 < len(survivors) < self.NETS

        before = path.read_text().splitlines()
        resumed = optimizer.optimize(specs, checkpoint=path, resume=True)
        after = path.read_text().splitlines()

        # Only the unfinished nets were recomputed and appended.
        appended = [json.loads(line)["name"] for line in after[len(before):]]
        assert set(appended) == {s.name for s in specs} - survivors
        assert len(appended) == self.NETS - len(survivors)

        # And the stitched-together report equals an uninterrupted run.
        uninterrupted = BatchOptimizer(
            config=config, workload=workload
        ).optimize(specs)
        assert resumed.signatures() == uninterrupted.signatures()


class TestCheckpointCLI:
    def test_checkpoint_then_resume(self, tmp_path, capsys):
        path = tmp_path / "cli.jsonl"
        code = cli_main([
            "batch", "--nets", "6", "--seed", "3",
            "--checkpoint", str(path),
        ])
        assert code == 0
        assert path.exists()
        full = path.read_text().splitlines()
        assert len(full) == 7  # header + 6 results

        # Drop the last two results, resume, and expect exactly those
        # two nets to be recomputed.
        path.write_text("\n".join(full[:5]) + "\n")
        code = cli_main([
            "batch", "--nets", "6", "--seed", "3",
            "--checkpoint", str(path), "--resume",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "6 nets" in out
        resumed = path.read_text().splitlines()
        assert len(resumed) == 7
        recomputed = [json.loads(line)["name"] for line in resumed[5:]]
        assert recomputed == [
            json.loads(line)["name"] for line in full[5:]
        ]

    def test_resume_without_checkpoint_is_an_error(self, capsys):
        assert cli_main(["batch", "--nets", "2", "--resume"]) == 2

    def test_mismatched_resume_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "cli.jsonl"
        assert cli_main([
            "batch", "--nets", "4", "--seed", "3",
            "--checkpoint", str(path),
        ]) == 0
        assert cli_main([
            "batch", "--nets", "4", "--seed", "4",
            "--checkpoint", str(path), "--resume",
        ]) == 2


class TestDurabilityControls:
    """The fsync flag and the torn-tail observability added for the
    service layer, exercised on the batch journal they originate from."""

    @pytest.fixture(scope="class")
    def batch(self):
        workload = WorkloadConfig(nets=10, seed=3)
        config = BatchConfig(max_buffers=4, keep_trees=False)
        optimizer = BatchOptimizer(config=config, workload=workload)
        specs = population_specs(workload)
        return workload, config, optimizer, specs

    def test_torn_tail_recovery_is_counted_and_repaired(
        self, batch, tmp_path
    ):
        from repro.batch.checkpoint import TORN_TAIL_COUNTER
        from repro.obs import MetricsRegistry

        workload, config, optimizer, specs = batch
        path = tmp_path / "journal.jsonl"
        optimizer.optimize(specs, checkpoint=path)
        clean_size = path.stat().st_size
        with path.open("a") as handle:
            handle.write('{"kind": "result", "name": "to')

        metrics = MetricsRegistry()
        loaded = load_checkpoint(path, optimizer.library, metrics=metrics)
        assert len(loaded) == 10
        text = metrics.to_prometheus()
        assert TORN_TAIL_COUNTER in text
        assert 'journal="batch"' in text
        # the tear is truncated off, so a resume's appends start a
        # fresh line instead of garbling the fragment into interior
        # corruption for the run after next.
        assert path.stat().st_size == clean_size
        reloaded = load_checkpoint(path, optimizer.library)
        assert set(reloaded) == set(loaded)

    def test_clean_load_counts_nothing(self, batch, tmp_path):
        from repro.batch.checkpoint import TORN_TAIL_COUNTER
        from repro.obs import MetricsRegistry

        _, _, optimizer, specs = batch
        path = tmp_path / "journal.jsonl"
        optimizer.optimize(specs, checkpoint=path)
        metrics = MetricsRegistry()
        load_checkpoint(path, optimizer.library, metrics=metrics)
        assert TORN_TAIL_COUNTER not in metrics.to_prometheus()

    def test_fsync_flag_controls_the_fsync_calls(
        self, batch, tmp_path, monkeypatch
    ):
        import repro.batch.checkpoint as checkpoint_module

        _, _, optimizer, specs = batch
        calls = []
        monkeypatch.setattr(
            checkpoint_module.os, "fsync", lambda fd: calls.append(fd)
        )
        synced = tmp_path / "synced.jsonl"
        optimizer.optimize(specs[:2], checkpoint=synced)
        assert len(calls) == 3  # header + 2 results

        calls.clear()
        lazy = tmp_path / "lazy.jsonl"
        optimizer.optimize(
            specs[:2], checkpoint=lazy, checkpoint_fsync=False
        )
        assert calls == []
        # flush-per-line still holds: both journals are equally complete.
        assert len(load_checkpoint(lazy, optimizer.library)) == 2

    def test_cli_flag_disables_fsync(self, tmp_path, monkeypatch):
        import repro.batch.checkpoint as checkpoint_module

        calls = []
        monkeypatch.setattr(
            checkpoint_module.os, "fsync", lambda fd: calls.append(fd)
        )
        path = tmp_path / "cli.jsonl"
        assert cli_main([
            "batch", "--nets", "2", "--seed", "3",
            "--checkpoint", str(path), "--no-checkpoint-fsync",
        ]) == 0
        assert calls == []
        assert len(path.read_text().splitlines()) == 3
