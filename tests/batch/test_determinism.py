"""Worker determinism: explicit spec seeds, no inherited RNG state.

Spec-based generation happens inside pool workers.  Because every
:class:`~repro.workloads.NetSpec` carries its own seed, the produced
nets — and therefore the solutions — cannot depend on which worker ran
a spec, in what order, or what ran before it.  Repeat runs must be
equal, across executors and across processes.
"""

from __future__ import annotations

import pytest

from repro.batch import (
    BatchConfig,
    BatchOptimizer,
    ChunkedExecutor,
    MultiprocessExecutor,
    SerialExecutor,
)
from repro.workloads import (
    WorkloadConfig,
    generate_net_from_spec,
    population_specs,
)

WORKLOAD = WorkloadConfig(nets=16, seed=20260805)
CONFIG = BatchConfig(mode="buffopt", max_buffers=4, keep_trees=False)


def _optimizer(executor):
    return BatchOptimizer(
        config=CONFIG, executor=executor, workload=WORKLOAD
    )


@pytest.fixture(scope="module")
def specs():
    return population_specs(WORKLOAD)


@pytest.fixture(scope="module")
def serial_signatures(specs):
    return _optimizer(SerialExecutor()).optimize(specs).signatures()


def test_specs_are_stable(specs):
    again = population_specs(WORKLOAD)
    assert specs == again
    assert len({spec.seed for spec in specs}) == len(specs)


def test_spec_generation_is_order_independent(specs):
    """Materializing a spec alone equals materializing it mid-population."""
    alone = generate_net_from_spec(specs[7], WORKLOAD)
    in_order = [generate_net_from_spec(s, WORKLOAD) for s in specs][7]
    assert alone.tree.name == in_order.tree.name
    assert alone.span == in_order.span
    lengths = lambda net: [
        (w.parent.name, w.child.name, w.length) for w in net.tree.wires()
    ]
    assert lengths(alone) == lengths(in_order)


def test_repeat_runs_equal_serial(serial_signatures, specs):
    again = _optimizer(SerialExecutor()).optimize(specs).signatures()
    assert again == serial_signatures


def test_repeat_runs_equal_multiprocess(serial_signatures, specs):
    first = _optimizer(MultiprocessExecutor(workers=2)).optimize(specs)
    second = _optimizer(MultiprocessExecutor(workers=3)).optimize(specs)
    assert first.signatures() == serial_signatures
    assert second.signatures() == serial_signatures


def test_repeat_runs_equal_chunked(serial_signatures, specs):
    # Different chunkings shuffle worker assignment; results must not move.
    small = _optimizer(ChunkedExecutor(workers=2, chunk_size=1)).optimize(specs)
    large = _optimizer(ChunkedExecutor(workers=2, chunk_size=8)).optimize(specs)
    assert small.signatures() == serial_signatures
    assert large.signatures() == serial_signatures


def test_worker_generation_matches_parent_generation(serial_signatures, specs):
    """Generating the trees in the parent and shipping them equals
    generating them inside the workers from seeds."""
    nets = [generate_net_from_spec(s, WORKLOAD) for s in specs]
    report = _optimizer(MultiprocessExecutor(workers=2)).optimize(nets)
    assert report.signatures() == serial_signatures
