"""Unit tests for the batch layer: executors, config, results, report, CLI."""

from __future__ import annotations

import pytest

from repro import InfeasibleError, WorkloadError, two_pin_net
from repro.batch import (
    BatchConfig,
    BatchOptimizer,
    ChunkedExecutor,
    MultiprocessExecutor,
    SerialExecutor,
    make_executor,
    optimize_net,
)
from repro.cli import main as cli_main
from repro.core.stats import EngineStats
from repro.library import (
    BufferType,
    DriverCell,
    default_buffer_library,
    default_technology,
    single_buffer_library,
)
from repro.noise import CouplingModel
from repro.units import FF, PS, UM
from repro.workloads import WorkloadConfig, population_specs

TECH = default_technology()
COUPLING = CouplingModel.estimation_mode(TECH)


class TestExecutors:
    def test_make_executor_kinds(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("process"), MultiprocessExecutor)
        assert isinstance(make_executor("chunked"), ChunkedExecutor)
        with pytest.raises(WorkloadError):
            make_executor("threads")

    def test_worker_validation(self):
        with pytest.raises(WorkloadError):
            MultiprocessExecutor(workers=0)
        with pytest.raises(WorkloadError):
            ChunkedExecutor(chunk_size=0)

    def test_maps_preserve_order(self):
        items = list(range(23))
        expected = [i * i for i in items]
        for executor in (
            SerialExecutor(),
            MultiprocessExecutor(workers=2),
            ChunkedExecutor(workers=2, chunk_size=4),
            ChunkedExecutor(workers=2),  # auto chunking
        ):
            assert executor.map(_square, items) == expected

    def test_empty_map(self):
        assert MultiprocessExecutor(workers=2).map(_square, []) == []

    def test_single_worker_needs_no_pool(self):
        # workers=1 must not pay pool startup; it falls back inline.
        assert MultiprocessExecutor(workers=1).map(_square, [3]) == [9]


def _square(x):
    return x * x


class TestBatchConfig:
    def test_rejects_unknown_mode(self):
        with pytest.raises(WorkloadError):
            BatchConfig(mode="noise")

    def test_rejects_bad_segment(self):
        with pytest.raises(WorkloadError):
            BatchConfig(max_segment_length=0.0)

    def test_rejects_negative_deadline(self):
        with pytest.raises(WorkloadError) as excinfo:
            BatchConfig(net_deadline=-5.0)
        assert "net_deadline" in str(excinfo.value)
        with pytest.raises(WorkloadError):
            BatchConfig(net_deadline=0.0)

    def test_rejects_bad_candidate_budget(self):
        with pytest.raises(WorkloadError) as excinfo:
            BatchConfig(net_max_candidates=0)
        assert "net_max_candidates" in str(excinfo.value)

    def test_rejects_non_policy_retry(self):
        with pytest.raises(WorkloadError) as excinfo:
            BatchConfig(retry="3 times")
        assert "RetryPolicy" in str(excinfo.value)

    def test_zero_max_attempts_rejected_at_policy_level(self):
        from repro.batch import RetryPolicy

        with pytest.raises(WorkloadError) as excinfo:
            BatchConfig(retry=RetryPolicy(max_attempts=0))
        assert "max_attempts" in str(excinfo.value)

    def test_run_budget_reflects_limits(self):
        assert BatchConfig().run_budget() is None
        budget = BatchConfig(
            net_deadline=5.0, net_max_candidates=100
        ).run_budget()
        assert budget is not None
        assert budget.deadline_seconds == 5.0
        assert budget.max_candidates == 100
        # Budgets are stateful: every call must mint a fresh one.
        config = BatchConfig(net_max_candidates=100)
        assert config.run_budget() is not config.run_budget()


class TestOptimizeNet:
    def _net(self, length=9000 * UM, margin=0.8):
        return two_pin_net(
            TECH,
            length,
            DriverCell("drv", 250.0, 30 * PS),
            sink_capacitance=20 * FF,
            noise_margin=margin,
            required_arrival=2000 * PS,
        )

    def test_feasible_net(self):
        result = optimize_net(
            self._net(), default_buffer_library(), COUPLING, BatchConfig()
        )
        assert result.ok
        assert result.buffer_count is not None and result.buffer_count >= 1
        assert result.noise_feasible
        assert result.tree is not None
        solution = result.solution()
        assert solution.buffer_count == result.buffer_count

    def test_infeasible_net_is_recorded_not_raised(self):
        # A hopeless margin with a weak library: no legal buffering.
        weak = single_buffer_library(
            BufferType("weak", 5000.0, 40 * FF, 25 * PS, 0.01)
        )
        result = optimize_net(
            self._net(margin=0.02), weak, COUPLING, BatchConfig()
        )
        assert not result.ok
        assert result.assignment is None
        assert "no noise-feasible" in (result.error or "")
        with pytest.raises(InfeasibleError):
            result.solution()

    def test_keep_trees_false_drops_tree(self):
        result = optimize_net(
            self._net(),
            default_buffer_library(),
            COUPLING,
            BatchConfig(keep_trees=False),
        )
        assert result.tree is None
        with pytest.raises(WorkloadError):
            result.solution()

    def test_stats_ride_along(self):
        result = optimize_net(
            self._net(),
            default_buffer_library(),
            COUPLING,
            BatchConfig(collect_stats=True),
        )
        assert isinstance(result.stats, EngineStats)
        assert result.stats.candidates_generated == result.candidates_generated


class TestBatchReport:
    @pytest.fixture(scope="class")
    def report(self):
        workload = WorkloadConfig(nets=8, seed=11)
        optimizer = BatchOptimizer(
            config=BatchConfig(max_buffers=4, collect_stats=True),
            workload=workload,
        )
        return optimizer.optimize_specs(population_specs(workload))

    def test_lengths_and_order(self, report):
        assert len(report) == 8
        assert [r.name for r in report.results] == [
            f"net{i:04d}" for i in range(8)
        ]

    def test_aggregates(self, report):
        histogram = report.buffer_histogram()
        assert sum(histogram.values()) == len(report.ok_results)
        assert report.total_buffers() == sum(
            count * nets for count, nets in histogram.items()
        )
        assert report.total_candidates() == sum(
            r.candidates_generated for r in report.results
        )
        assert report.nets_per_second() > 0

    def test_aggregate_stats_fold(self, report):
        total = report.aggregate_stats()
        assert total is not None
        assert total.candidates_generated == sum(
            r.stats.candidates_generated for r in report.results
        )
        assert total.frontier_peak == max(
            r.stats.frontier_peak for r in report.results
        )
        assert len(total.nodes) == sum(
            len(r.stats.nodes) for r in report.results
        )

    def test_solutions_materialize(self, report):
        solutions = report.solutions()
        assert set(solutions) == {r.name for r in report.ok_results}

    def test_describe_mentions_everything(self, report):
        text = report.describe()
        assert "8 nets" in text
        assert "nets/s" in text
        assert "candidates" in text


class TestBatchCLI:
    def test_batch_subcommand(self, capsys):
        code = cli_main(
            ["batch", "--nets", "6", "--seed", "3", "--stats",
             "--executor", "chunked", "--workers", "2", "--chunk-size", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "6 nets" in out
        assert "telemetry:" in out

    def test_batch_delay_mode(self, capsys):
        code = cli_main(["batch", "--nets", "4", "--seed", "3",
                         "--mode", "delay"])
        assert code == 0
        assert "mode=delay" in capsys.readouterr().out
