"""Tests for the fault-tolerant execution layer.

Covers the :class:`RetryPolicy` contract, the :class:`ResilientExecutor`
supervisor (retry, crash recovery, hard-deadline kills), engine-error
propagation through every executor, and the acceptance-scale
fault-injected fleet: healthy nets bit-identical to a fault-free serial
run, every injected failure captured as a structured record.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import InfeasibleError, WorkloadError, two_pin_net
from repro.batch import (
    BatchConfig,
    BatchOptimizer,
    ChunkedExecutor,
    FaultPlan,
    FaultSpec,
    MultiprocessExecutor,
    ResilientExecutor,
    RetryPolicy,
    SerialExecutor,
    WorkItemFailure,
    make_executor,
    optimize_net,
)
from repro.library import (
    DriverCell,
    default_buffer_library,
    default_technology,
)
from repro.noise import CouplingModel
from repro.units import FF, PS, UM
from repro.workloads import WorkloadConfig, population_specs

TECH = default_technology()
COUPLING = CouplingModel.estimation_mode(TECH)

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_seconds=0.005)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(WorkloadError):
            RetryPolicy(backoff_seconds=-0.1)
        with pytest.raises(WorkloadError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(WorkloadError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(WorkloadError):
            RetryPolicy(fallback="panic")
        with pytest.raises(WorkloadError):
            RetryPolicy(fallback_max_candidates=0)

    def test_first_attempt_has_no_delay(self):
        assert RetryPolicy().delay(1) == 0.0

    def test_backoff_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(
            backoff_seconds=0.1, backoff_multiplier=2.0, jitter=0.0
        )
        assert policy.delay(2) == pytest.approx(0.1)
        assert policy.delay(3) == pytest.approx(0.2)
        assert policy.delay(4) == pytest.approx(0.4)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_seconds=0.1, jitter=0.25, seed=3)
        for attempt in (2, 3, 4):
            for key in (0, 1, 17):
                first = policy.delay(attempt, key=key)
                assert first == policy.delay(attempt, key=key)
                base = 0.1 * 2.0 ** (attempt - 2)
                assert 0.75 * base <= first <= 1.25 * base
        # Different keys decorrelate the jitter stream.
        assert policy.delay(2, key=0) != policy.delay(2, key=1)

    def test_should_retry_respects_budget_and_kind(self):
        policy = RetryPolicy(max_attempts=2, retry_crashes=False)
        assert policy.should_retry("error", 1)
        assert not policy.should_retry("error", 2)  # budget spent
        assert not policy.should_retry("crash", 1)  # kind disabled
        assert policy.should_retry("hang", 1)


# -- picklable worker functions for the executor tests ---------------------

def _square(x):
    return x * x


def _flaky(x, attempt=1):
    """Fails on the first attempt for odd items, then succeeds."""
    if x % 2 == 1 and attempt == 1:
        raise RuntimeError(f"flaky item {x}")
    return x * x


def _always_raises(x):
    raise ValueError(f"hopeless item {x}")


def _exits(x):
    os._exit(23)


def _sleeps(x):
    time.sleep(30.0)
    return x


class TestResilientExecutor:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            ResilientExecutor(workers=0)
        with pytest.raises(WorkloadError):
            ResilientExecutor(deadline=0.0)
        with pytest.raises(WorkloadError):
            ResilientExecutor(poll_seconds=0.0)

    def test_make_executor_builds_it(self):
        executor = make_executor(
            "resilient", workers=2, retry=FAST_RETRY, deadline=5.0
        )
        assert isinstance(executor, ResilientExecutor)
        assert executor.retry is FAST_RETRY
        assert "resilient" in executor.describe()

    def test_plain_map_matches_serial(self):
        items = list(range(13))
        executor = ResilientExecutor(workers=3, retry=FAST_RETRY)
        assert executor.map(_square, items) == [i * i for i in items]

    def test_empty_map(self):
        assert ResilientExecutor(workers=2).map(_square, []) == []

    def test_streaming_callback_sees_every_item(self):
        seen = {}
        ResilientExecutor(workers=2, retry=FAST_RETRY).map(
            _square, [3, 4, 5], on_result=lambda i, v: seen.__setitem__(i, v)
        )
        assert seen == {0: 9, 1: 16, 2: 25}

    def test_transient_errors_are_retried(self):
        items = list(range(6))
        results = ResilientExecutor(workers=2, retry=FAST_RETRY).map(
            _flaky, items
        )
        assert results == [i * i for i in items]

    def test_exhausted_retries_become_sentinels(self):
        results = ResilientExecutor(
            workers=2, retry=RetryPolicy(max_attempts=2, backoff_seconds=0.005)
        ).map(_always_raises, [7])
        failure = results[0]
        assert isinstance(failure, WorkItemFailure)
        assert failure.kind == "error"
        assert failure.error == "ValueError"
        assert "hopeless item 7" in failure.message
        assert failure.attempts == 2

    def test_worker_crash_is_contained(self):
        # One worker os._exits; its neighbors must still complete.
        results = ResilientExecutor(
            workers=2, retry=RetryPolicy(max_attempts=2, backoff_seconds=0.005)
        ).map(_crash_on_five, [4, 5, 6])
        assert results[0] == 16 and results[2] == 36
        failure = results[1]
        assert isinstance(failure, WorkItemFailure)
        assert failure.kind == "crash"
        assert failure.error == "WorkerCrashError"
        assert "23" in failure.message  # the exit code is reported

    def test_hang_is_killed_at_the_deadline(self):
        start = time.monotonic()
        results = ResilientExecutor(
            workers=2,
            retry=RetryPolicy(max_attempts=1),
            deadline=0.3,
        ).map(_sleeps, [1])
        took = time.monotonic() - start
        failure = results[0]
        assert isinstance(failure, WorkItemFailure)
        assert failure.kind == "hang"
        assert failure.error == "TimeoutError"
        assert took < 10.0  # killed, not slept out

    def test_no_retry_for_disabled_kind(self):
        results = ResilientExecutor(
            workers=1,
            retry=RetryPolicy(max_attempts=3, retry_errors=False),
        ).map(_always_raises, [1])
        assert results[0].attempts == 1


def _crash_on_five(item):
    if item == 5:
        os._exit(23)
    return item * item


# -- engine errors must land in NetResult.failure, on every executor -------

def _infeasible_items():
    """Two healthy nets around one whose margin no buffering can meet."""

    def net(name, margin):
        return two_pin_net(
            TECH,
            9000 * UM,
            DriverCell("drv", 250.0, 30 * PS),
            sink_capacitance=20 * FF,
            noise_margin=margin,
            required_arrival=2000 * PS,
            name=name,
        )

    return [net("good0", 0.8), net("bad", 0.02), net("good1", 0.8)]


class TestInfeasibleErrorPropagation:
    def test_optimize_net_records_structured_failure(self):
        trees = _infeasible_items()
        result = optimize_net(
            trees[1], default_buffer_library(), COUPLING, BatchConfig()
        )
        assert not result.ok
        assert result.failure is not None
        assert result.failure.error == "InfeasibleError"
        assert result.failure.phase == "optimize"
        assert result.error == result.failure.message
        with pytest.raises(InfeasibleError):
            result.solution()

    @pytest.mark.parametrize(
        "executor",
        [
            SerialExecutor(),
            MultiprocessExecutor(workers=2),
            ChunkedExecutor(workers=2, chunk_size=1),
            ResilientExecutor(workers=2, retry=FAST_RETRY),
        ],
        ids=["serial", "process", "chunked", "resilient"],
    )
    def test_every_executor_carries_it_as_data(self, executor):
        trees = _infeasible_items()
        optimizer = BatchOptimizer(
            config=BatchConfig(keep_trees=False),
            executor=executor,
        )
        report = optimizer.optimize(trees)
        assert len(report) == 3
        # The batch completed; only the hopeless net failed, and it
        # failed as data, not as an aborted run.
        assert [r.ok for r in report.results] == [True, False, True]
        failure = report.results[1].failure
        assert failure is not None
        assert failure.error == "InfeasibleError"
        assert report.failure_taxonomy() == {"InfeasibleError": 1}


# -- budget failures flow through the batch layer --------------------------

class TestBudgetFailuresInBatch:
    def test_candidate_budget_becomes_failure_record(self):
        workload = WorkloadConfig(nets=4, seed=5)
        report = BatchOptimizer(
            config=BatchConfig(
                max_buffers=4, keep_trees=False, net_max_candidates=50
            ),
            workload=workload,
        ).optimize_specs(population_specs(workload))
        assert report.failure_count == 4
        for result in report.results:
            assert result.failure.error == "BudgetExceededError"
            assert result.failure.phase == "optimize"
        assert report.failure_taxonomy() == {"BudgetExceededError": 4}

    def test_net_deadline_becomes_timeout_record(self):
        workload = WorkloadConfig(nets=2, seed=5)
        report = BatchOptimizer(
            config=BatchConfig(
                max_buffers=4, keep_trees=False, net_deadline=1e-9
            ),
            workload=workload,
        ).optimize_specs(population_specs(workload))
        assert report.failure_count == 2
        assert report.failure_taxonomy() == {"TimeoutError": 2}

    def test_aggressive_fallback_recovers_budget_failures(self):
        workload = WorkloadConfig(nets=4, seed=5)
        config = BatchConfig(
            max_buffers=4,
            keep_trees=False,
            net_max_candidates=50,
            retry=RetryPolicy(
                fallback="aggressive", fallback_max_candidates=10**9
            ),
        )
        report = BatchOptimizer(
            config=config, workload=workload
        ).optimize_specs(population_specs(workload))
        # Every budget-blown net was re-run under the degraded config
        # (attempt 2, lifted candidate cap): no BudgetExceededError
        # survives.  A degraded run may still be infeasible — the
        # single-buffer cap loses solutions — but that comes back as an
        # honest InfeasibleError, not a stale budget failure.
        assert "BudgetExceededError" not in report.failure_taxonomy()
        assert all(r.attempts == 2 for r in report.results)
        assert sum(r.ok for r in report.results) >= 3


# -- the acceptance fleet: faults on, healthy nets bit-identical -----------

class TestFaultInjectedFleet:
    NETS = 200

    @pytest.fixture(scope="class")
    def baseline(self):
        workload = WorkloadConfig(nets=self.NETS, seed=42)
        specs = population_specs(workload)
        config = BatchConfig(max_buffers=4, keep_trees=False)
        report = BatchOptimizer(config=config, workload=workload).optimize(
            specs
        )
        return workload, specs, config, report

    def test_fault_free_resilient_run_is_bit_identical(self, baseline):
        workload, specs, config, base = baseline
        report = BatchOptimizer(
            config=config,
            workload=workload,
            executor=ResilientExecutor(workers=2, retry=FAST_RETRY),
        ).optimize(specs)
        assert report.signatures() == base.signatures()
        assert report.failure_count == 0

    def test_fleet_survives_raise_hang_and_exit(self, baseline):
        workload, specs, config, base = baseline
        names = [spec.name for spec in specs]
        transient = names[5]
        permanent_raise = names[10]
        permanent_exit = names[20]
        hanging = names[30]
        plan = FaultPlan(faults={
            transient: FaultSpec(kind="raise", attempts=(1,)),
            permanent_raise: FaultSpec(kind="raise", attempts=(1, 2)),
            permanent_exit: FaultSpec(kind="exit", attempts=(1, 2)),
            hanging: FaultSpec(kind="hang", attempts=(1,), seconds=30.0),
        })
        report = BatchOptimizer(
            config=config,
            workload=workload,
            executor=ResilientExecutor(
                workers=2,
                retry=RetryPolicy(
                    max_attempts=2, backoff_seconds=0.005, retry_hangs=False
                ),
                deadline=1.0,
            ),
            faults=plan,
        ).optimize(specs)

        # The run completed: every net has a result, ordered as input.
        assert len(report) == self.NETS
        assert [r.name for r in report.results] == names

        # Every injected failure is a structured record, not an abort.
        by_name = {r.name: r for r in report.results}
        assert by_name[permanent_raise].failure.error == "InjectedFault"
        assert by_name[permanent_raise].failure.phase == "worker"
        assert by_name[permanent_raise].failure.attempts == 2
        assert by_name[permanent_exit].failure.error == "WorkerCrashError"
        assert by_name[permanent_exit].failure.phase == "dispatch"
        assert by_name[hanging].failure.error == "TimeoutError"
        assert by_name[hanging].failure.phase == "dispatch"
        taxonomy = report.failure_taxonomy()
        assert taxonomy == {
            "InjectedFault": 1,
            "WorkerCrashError": 1,
            "TimeoutError": 1,
        }

        # The transient net recovered on attempt 2 ...
        assert by_name[transient].ok
        assert by_name[transient].attempts == 2

        # ... and every healthy net (transient included) is bit-identical
        # to the fault-free serial baseline.
        failed = {permanent_raise, permanent_exit, hanging}
        for mine, theirs in zip(report.signatures(), base.signatures()):
            if mine[0] in failed:
                continue
            assert mine == theirs

    def test_serial_fallback_recovers_crashed_nets(self, baseline):
        workload, specs, config, base = baseline
        subset = specs[:12]
        victim = subset[4].name
        plan = FaultPlan(faults={
            # Crashes in the worker on every attempt; the serial
            # fallback runs in the parent, where faults do not fire on
            # attempt numbers beyond the spec.
            victim: FaultSpec(kind="exit", attempts=(1, 2)),
        })
        retry = RetryPolicy(
            max_attempts=2, backoff_seconds=0.005, fallback="serial"
        )
        report = BatchOptimizer(
            config=BatchConfig(
                max_buffers=4, keep_trees=False, retry=retry
            ),
            workload=workload,
            executor=ResilientExecutor(workers=2, retry=retry),
            faults=plan,
        ).optimize(subset)
        assert report.failure_count == 0
        by_name = {r.name: r for r in report.results}
        assert by_name[victim].ok
        assert report.signatures() == base.signatures()[:12]
