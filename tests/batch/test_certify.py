"""Batch ``--certify``: independent re-derivation wired into the fleet.

With ``certify=True`` every selected outcome is re-derived by the
certificate checker from :mod:`repro.verify`; a refuted claim becomes a
structured ``CertificateError`` failure in the ``"certify"`` phase
rather than a silently wrong table entry.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import CouplingModel, two_pin_net
from repro.batch import BatchConfig, BatchOptimizer, optimize_net
from repro.batch.checkpoint import result_from_json, result_to_json
from repro.cli import main as cli_main
from repro.errors import CertificateError
from repro.library import (
    DriverCell,
    default_buffer_library,
    default_technology,
)
from repro.units import FF, PS, UM

TECH = default_technology()
COUPLING = CouplingModel.estimation_mode(TECH)
LIBRARY = default_buffer_library()


def _net(name="certify_host", length=6000 * UM):
    return two_pin_net(
        TECH, length,
        DriverCell("drv", resistance=250.0, intrinsic_delay=30 * PS),
        sink_capacitance=20 * FF, noise_margin=0.8,
        required_arrival=2000 * PS, name=name,
    )


class TestHappyPath:
    @pytest.mark.parametrize("mode", ["buffopt", "delay"])
    def test_all_nets_certify(self, mode):
        optimizer = BatchOptimizer(
            config=BatchConfig(mode=mode, certify=True)
        )
        report = optimizer.optimize([_net(f"n{i}") for i in range(3)])
        assert report.failure_count == 0
        assert all(r.certified is True for r in report.results)
        assert report.certified_count == 3
        assert "certified: 3/3" in report.describe()

    def test_certify_off_leaves_field_unset(self):
        report = BatchOptimizer(config=BatchConfig()).optimize([_net()])
        assert report.results[0].certified is None
        assert "certified:" not in report.describe()


class TestTaxonomy:
    def test_refuted_claim_becomes_certify_failure(self, monkeypatch):
        import repro.verify.certificate as certificate

        def refute(*args, **kwargs):
            raise CertificateError("injected refutation")

        monkeypatch.setattr(certificate, "certify_or_raise", refute)
        result = optimize_net(
            _net(), LIBRARY, COUPLING, BatchConfig(certify=True)
        )
        assert result.certified is False
        assert result.buffer_count is None  # refuted outcome is dropped
        assert result.failure is not None
        assert result.failure.phase == "certify"
        assert result.failure.error == "CertificateError"

    def test_optimize_failures_skip_certification(self):
        # an infeasible net never reaches the certifier
        hopeless = two_pin_net(
            TECH, 8000 * UM,
            DriverCell("drv", resistance=250.0, intrinsic_delay=30 * PS),
            sink_capacitance=20 * FF, noise_margin=1e-9,
            required_arrival=2000 * PS, name="hopeless",
        )
        result = optimize_net(
            hopeless, LIBRARY, COUPLING, BatchConfig(certify=True)
        )
        assert result.failure is not None
        assert result.failure.phase == "optimize"
        assert result.certified is None


class TestPersistence:
    def test_certified_is_excluded_from_signature(self):
        result = optimize_net(
            _net(), LIBRARY, COUPLING, BatchConfig(certify=True)
        )
        assert result.certified is True
        stripped = dataclasses.replace(result, certified=None)
        assert result.signature() == stripped.signature()

    def test_certified_round_trips_through_checkpoint(self):
        result = optimize_net(
            _net(), LIBRARY, COUPLING, BatchConfig(certify=True)
        )
        restored = result_from_json(result_to_json(result), LIBRARY)
        assert restored.certified is True
        uncertified = optimize_net(
            _net(), LIBRARY, COUPLING, BatchConfig()
        )
        assert result_from_json(
            result_to_json(uncertified), LIBRARY
        ).certified is None

    def test_certify_flag_changes_fingerprint(self):
        plain = BatchOptimizer(config=BatchConfig())
        auditing = BatchOptimizer(config=BatchConfig(certify=True))
        assert plain._fingerprint() != auditing._fingerprint()
        assert auditing._fingerprint()["certify"] is True


class TestCli:
    def test_batch_certify_smoke(self, capsys):
        code = cli_main(
            ["batch", "--nets", "4", "--seed", "3", "--certify"]
        )
        assert code == 0
        assert "certified: 4/4" in capsys.readouterr().out
