"""Resume equivalence matrix: engines × executors, plus SIGKILL legs.

The satellite guarantee of the fleet-scaling PR: a checkpoint written
under any engine resumes under *any* (engine, executor) combination and
the stitched report equals the appropriate uninterrupted reference —
journaled head verbatim, recomputed tail identical to a clean run under
the resuming engine.

The cheap 3×3 matrix interrupts runs in-process (write half, resume the
rest); the expensive legs SIGKILL a real subprocess mid-run over a
*sharded* checkpoint and resume under a different shard count, stacking
every recovery feature at once.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.batch import (
    AsyncExecutor,
    BatchConfig,
    BatchOptimizer,
    MultiprocessExecutor,
    SerialExecutor,
    load_sharded_checkpoint,
)
from repro.workloads import WorkloadConfig, population_specs

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

ENGINES = ("reference", "fast", "lishi")
EXECUTORS = {
    "serial": lambda: SerialExecutor(),
    "process": lambda: MultiprocessExecutor(workers=2),
    "async": lambda: AsyncExecutor(workers=2),
}

NETS = 10
HEAD = 5

WORKLOAD = WorkloadConfig(nets=NETS, seed=17)
SPECS = population_specs(WORKLOAD)


def config_for(engine):
    return BatchConfig(max_buffers=4, keep_trees=False, engine=engine)


@pytest.fixture(scope="module")
def full_signatures():
    """Uninterrupted serial-run signatures, one per engine."""
    return {
        engine: BatchOptimizer(
            config=config_for(engine), workload=WORKLOAD
        ).optimize(SPECS).signatures()
        for engine in ENGINES
    }


class TestResumeMatrix:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("executor_kind", sorted(EXECUTORS))
    def test_resume_combo(
        self, tmp_path, engine, executor_kind, full_signatures
    ):
        path = tmp_path / "matrix.jsonl"
        # the interrupted incarnation: fast engine, serial, half done
        BatchOptimizer(
            config=config_for("fast"), workload=WORKLOAD
        ).optimize(SPECS[:HEAD], checkpoint=path)

        resumed = BatchOptimizer(
            config=config_for(engine),
            workload=WORKLOAD,
            executor=EXECUTORS[executor_kind](),
        ).optimize(SPECS, checkpoint=path, resume=True)

        signatures = resumed.signatures()
        # journaled head verbatim (fast == reference bit-identically) ...
        assert signatures[:HEAD] == full_signatures["fast"][:HEAD]
        # ... recomputed tail exactly as a clean run under the resuming
        # engine would have produced, whatever the executor
        assert signatures[HEAD:] == full_signatures[engine][HEAD:]


class TestSigkillLegs:
    """One SIGKILL leg per executor, over sharded checkpoints, resumed
    under a different shard count."""

    NETS = 40
    SEED = 11

    @pytest.mark.parametrize("engine,executor_kind", [
        ("reference", "serial"),
        ("fast", "process"),
        ("lishi", "async"),
    ])
    def test_sigkill_then_resharded_resume(
        self, tmp_path, engine, executor_kind
    ):
        directory = tmp_path / "fleet.ckpt"
        script = (
            "import sys\n"
            f"sys.path.insert(0, {REPO_SRC!r})\n"
            "from repro.batch import (BatchConfig, BatchOptimizer,\n"
            "                         make_executor)\n"
            "from repro.workloads import WorkloadConfig, population_specs\n"
            f"w = WorkloadConfig(nets={self.NETS}, seed={self.SEED})\n"
            "cfg = BatchConfig(max_buffers=4, keep_trees=False,\n"
            f"                  engine={engine!r})\n"
            "BatchOptimizer(config=cfg, workload=w,\n"
            f"    executor=make_executor({executor_kind!r}, workers=2),\n"
            ").optimize_specs(population_specs(w),\n"
            f"    checkpoint={str(directory)!r}, shards=4)\n"
        )
        process = subprocess.Popen([sys.executable, "-c", script])
        try:
            deadline = time.monotonic() + 90.0
            while time.monotonic() < deadline:
                journaled = sum(
                    max(0, sum(1 for _ in path.open()) - 1)
                    for path in directory.glob("shard-*.jsonl")
                ) if directory.is_dir() else 0
                if journaled >= 5:
                    break
                if process.poll() is not None:
                    pytest.fail("batch finished before it could be killed")
                time.sleep(0.005)
            else:
                pytest.fail("shards never reached 5 results")
            os.kill(process.pid, signal.SIGKILL)
        finally:
            process.wait()

        workload = WorkloadConfig(nets=self.NETS, seed=self.SEED)
        specs = population_specs(workload)
        optimizer = BatchOptimizer(
            config=config_for(engine),
            workload=workload,
            executor=EXECUTORS[executor_kind](),
        )
        survivors = set(
            load_sharded_checkpoint(directory, optimizer.library).results
        )
        assert 0 < len(survivors) < self.NETS

        # resume under HALF the shard count: reshard + recovery at once
        resumed = optimizer.optimize(
            specs, checkpoint=directory, shards=2, resume=True
        )
        uninterrupted = BatchOptimizer(
            config=config_for(engine), workload=workload
        ).optimize(specs)
        assert resumed.signatures() == uninterrupted.signatures()
