"""AsyncExecutor: completion-order streaming, input-order results.

The executor contract every backend shares — ``map`` returns results in
input order, signatures match the serial baseline — plus the async
specifics: out-of-order ``on_result`` delivery and the bounded
submission window.
"""

from __future__ import annotations

import pytest

from repro import WorkloadError
from repro.batch import (
    AsyncExecutor,
    BatchConfig,
    BatchOptimizer,
    SerialExecutor,
    make_executor,
)
from repro.workloads import WorkloadConfig, population_specs


def _square(value: int) -> int:
    return value * value


def _variable_sleep_square(value: int) -> int:
    import time

    # earlier items sleep longer, so completion order inverts input
    # order when more than one worker runs
    time.sleep(0.05 if value < 2 else 0.0)
    return value * value


class TestContract:
    def test_results_in_input_order(self):
        executor = AsyncExecutor(workers=3)
        assert executor.map(_square, list(range(12))) == [
            n * n for n in range(12)
        ]

    def test_empty_items(self):
        assert AsyncExecutor(workers=2).map(_square, []) == []

    def test_single_worker_degenerates_to_serial(self):
        executor = AsyncExecutor(workers=1)
        seen = []
        out = executor.map(
            _square, [3, 1, 2], on_result=lambda i, v: seen.append(i)
        )
        assert out == [9, 1, 4]
        assert seen == [0, 1, 2]

    def test_on_result_fires_once_per_item_any_order(self):
        executor = AsyncExecutor(workers=2, window=2)
        seen = {}
        executor.map(
            _variable_sleep_square,
            list(range(8)),
            on_result=lambda i, v: seen.__setitem__(i, v),
        )
        assert seen == {n: n * n for n in range(8)}

    def test_worker_exception_propagates(self):
        with pytest.raises(Exception):
            AsyncExecutor(workers=2).map(_raise, [1, 2])

    def test_validation(self):
        with pytest.raises(WorkloadError):
            AsyncExecutor(workers=0)
        with pytest.raises(WorkloadError):
            AsyncExecutor(window=0)

    def test_describe_and_factory(self):
        executor = make_executor("async", workers=2)
        assert isinstance(executor, AsyncExecutor)
        assert "async" in executor.describe()
        assert executor.effective_window == 8


def _raise(value):
    raise RuntimeError(f"boom {value}")


class TestBatchIntegration:
    def test_signatures_match_serial(self):
        workload = WorkloadConfig(nets=14, seed=21)
        specs = population_specs(workload)
        config = BatchConfig(max_buffers=4, keep_trees=False)
        serial = BatchOptimizer(
            config=config, workload=workload, executor=SerialExecutor()
        ).optimize(specs)
        parallel = BatchOptimizer(
            config=config, workload=workload,
            executor=AsyncExecutor(workers=3),
        ).optimize(specs)
        assert parallel.signatures() == serial.signatures()
        assert parallel.executor == "async"

    def test_streamed_aggregates_match_despite_out_of_order_folds(self):
        workload = WorkloadConfig(nets=14, seed=21)
        specs = population_specs(workload)
        config = BatchConfig(max_buffers=4, keep_trees=False)
        retained = BatchOptimizer(
            config=config, workload=workload
        ).optimize(specs)
        streamed = BatchOptimizer(
            config=config, workload=workload,
            executor=AsyncExecutor(workers=3, window=4),
        ).optimize(specs, stream_report=True)
        sj, rj = streamed.to_json(), retained.to_json()
        for key in rj:
            if key in (
                "wall_seconds", "net_seconds", "nets_per_second", "executor"
            ):
                continue
            assert sj[key] == rj[key], key

    def test_checkpoint_journal_is_complete_under_async(self, tmp_path):
        from repro.batch import load_checkpoint

        workload = WorkloadConfig(nets=10, seed=21)
        specs = population_specs(workload)
        path = tmp_path / "async.jsonl"
        optimizer = BatchOptimizer(
            config=BatchConfig(max_buffers=4, keep_trees=False),
            workload=workload,
            executor=AsyncExecutor(workers=3),
        )
        report = optimizer.optimize(specs, checkpoint=path)
        loaded = load_checkpoint(path, optimizer.library)
        assert set(loaded) == {r.name for r in report.results}
