"""Streaming report fold: constant-memory aggregates, identical JSON.

The load-bearing claim: ``optimize(..., stream_report=True)`` returns a
report whose ``to_json()`` matches the retained run key for key (timing
keys excluded — they are wall-clock measurements, not aggregates), with
failures, fallback upgrades, and certification all folded exactly once.
"""

from __future__ import annotations

import pytest

from repro import WorkloadError
from repro.batch import (
    BatchConfig,
    BatchOptimizer,
    BatchReport,
    FaultPlan,
    ReportFold,
    ResilientExecutor,
    RetryPolicy,
)
from repro.workloads import WorkloadConfig, population_specs

#: to_json keys that measure wall-clock rather than aggregate results.
TIMING_KEYS = ("wall_seconds", "net_seconds", "nets_per_second")


def assert_same_aggregates(streamed, retained):
    sj, rj = streamed.to_json(), retained.to_json()
    assert set(sj) == set(rj)
    for key in rj:
        if key in TIMING_KEYS:
            continue
        assert sj[key] == rj[key], (key, sj[key], rj[key])


class TestStreamedEqualsRetained:
    def test_happy_fleet(self):
        workload = WorkloadConfig(nets=18, seed=9)
        specs = population_specs(workload)
        config = BatchConfig(max_buffers=4, keep_trees=False)
        retained = BatchOptimizer(
            config=config, workload=workload
        ).optimize(specs)
        streamed = BatchOptimizer(
            config=config, workload=workload
        ).optimize(specs, stream_report=True)
        assert streamed.streamed
        assert not retained.streamed
        assert_same_aggregates(streamed, retained)
        assert len(streamed) == len(retained) == 18

    def test_with_failures_and_stats(self):
        workload = WorkloadConfig(nets=12, seed=9)
        specs = population_specs(workload)
        # a tiny candidate budget fails some nets -> taxonomy entries
        config = BatchConfig(
            max_buffers=4, keep_trees=False, collect_stats=True,
            net_max_candidates=300,
        )
        retained = BatchOptimizer(
            config=config, workload=workload
        ).optimize(specs)
        streamed = BatchOptimizer(
            config=config, workload=workload
        ).optimize(specs, stream_report=True)
        assert retained.failure_count > 0
        assert_same_aggregates(streamed, retained)
        assert streamed.failure_taxonomy() == retained.failure_taxonomy()
        merged = streamed.aggregate_stats()
        reference = retained.aggregate_stats()
        assert merged is not None
        assert merged.candidates_generated == reference.candidates_generated

    def test_with_certification(self):
        workload = WorkloadConfig(nets=8, seed=9)
        specs = population_specs(workload)
        config = BatchConfig(max_buffers=4, keep_trees=False, certify=True)
        retained = BatchOptimizer(
            config=config, workload=workload
        ).optimize(specs)
        streamed = BatchOptimizer(
            config=config, workload=workload
        ).optimize(specs, stream_report=True)
        assert retained.certified_count == 8
        assert_same_aggregates(streamed, retained)

    def test_fallback_upgrades_fold_once(self):
        """A failure the aggressive fallback rescues must be folded as
        its final (successful) self — the double-fold hazard."""
        workload = WorkloadConfig(nets=10, seed=9)
        specs = population_specs(workload)
        config = BatchConfig(
            max_buffers=4, keep_trees=False, net_max_candidates=300,
            retry=RetryPolicy(
                fallback="aggressive", fallback_max_candidates=100_000
            ),
        )
        retained = BatchOptimizer(
            config=config, workload=workload
        ).optimize(specs)
        streamed = BatchOptimizer(
            config=config, workload=workload
        ).optimize(specs, stream_report=True)
        assert retained.retry_count() > 0  # the fallback actually ran
        assert_same_aggregates(streamed, retained)
        assert len(streamed) == 10  # each net folded exactly once

    def test_streamed_resume_folds_journaled_results(self, tmp_path):
        workload = WorkloadConfig(nets=12, seed=9)
        specs = population_specs(workload)
        config = BatchConfig(max_buffers=4, keep_trees=False)
        path = tmp_path / "fleet.jsonl"
        BatchOptimizer(config=config, workload=workload).optimize(
            specs[:7], checkpoint=path
        )
        streamed = BatchOptimizer(
            config=config, workload=workload
        ).optimize(specs, checkpoint=path, resume=True, stream_report=True)
        retained = BatchOptimizer(
            config=config, workload=workload
        ).optimize(specs)
        assert_same_aggregates(streamed, retained)

    def test_streamed_with_crash_faults_under_resilient_executor(self):
        workload = WorkloadConfig(nets=10, seed=9)
        specs = population_specs(workload)
        faults = FaultPlan.sample(
            [s.name for s in specs], rate=0.3, seed=1, kind="raise"
        )
        retry = RetryPolicy(max_attempts=1, retry_errors=False)

        def run(stream):
            return BatchOptimizer(
                config=BatchConfig(
                    max_buffers=4, keep_trees=False, retry=retry
                ),
                workload=workload,
                faults=faults,
                executor=ResilientExecutor(workers=2, retry=retry),
            ).optimize(specs, stream_report=stream)

        retained, streamed = run(False), run(True)
        assert retained.failure_count > 0
        assert_same_aggregates(streamed, retained)


class TestStreamedReportSurface:
    @pytest.fixture(scope="class")
    def streamed(self):
        workload = WorkloadConfig(nets=6, seed=9)
        return BatchOptimizer(
            config=BatchConfig(max_buffers=4, keep_trees=False),
            workload=workload,
        ).optimize(population_specs(workload), stream_report=True)

    def test_per_result_views_raise(self, streamed):
        for access in (
            streamed.signatures,
            streamed.solutions,
            lambda: streamed.ok_results,
        ):
            with pytest.raises(WorkloadError, match="streamed"):
                access()

    def test_aggregate_views_work(self, streamed):
        assert len(streamed) == 6
        assert streamed.failure_count == 0
        assert streamed.total_buffers() == streamed.fold.total_buffers
        assert streamed.describe().startswith("batch: 6 nets")

    def test_histograms_populate(self, streamed):
        fold = streamed.fold
        assert fold.latency.count(mode="buffopt") == 6
        assert fold.candidates.count(mode="buffopt") == 6
        assert fold.latency_quantile(0.5) > 0.0


class TestReportFoldUnit:
    def test_report_always_delegates_to_a_fold(self):
        workload = WorkloadConfig(nets=5, seed=9)
        report = BatchOptimizer(
            config=BatchConfig(max_buffers=4, keep_trees=False),
            workload=workload,
        ).optimize(population_specs(workload))
        assert isinstance(report.fold, ReportFold)
        assert report.fold.nets == 5

    def test_manual_fold_matches_post_init_fold(self):
        workload = WorkloadConfig(nets=5, seed=9)
        report = BatchOptimizer(
            config=BatchConfig(max_buffers=4, keep_trees=False),
            workload=workload,
        ).optimize(population_specs(workload))
        manual = ReportFold(mode=report.mode)
        for result in report.results:
            manual.fold(result)
        clone = BatchReport(
            results=[],
            wall_seconds=report.wall_seconds,
            executor=report.executor,
            mode=report.mode,
            fold=manual,
        )
        assert clone.to_json() == report.to_json()

    def test_quantile_of_empty_fold_is_zero(self):
        assert ReportFold().latency_quantile(0.5) == 0.0

    def test_quantile_edge_fractions_of_empty_fold(self):
        # every fraction short-circuits on an empty fold, including the
        # boundary fractions that would otherwise hit target-0 bucket
        # walking (q=0) or the +Inf tail (q=1).
        assert ReportFold().latency_quantile(0.0) == 0.0
        assert ReportFold().latency_quantile(1.0) == 0.0

    def test_quantile_single_sample(self):
        # one 3ms observation lands in the (2.5ms, 5ms] bucket: any
        # fraction > 0 resolves to that bucket's upper bound.
        fold = ReportFold()
        fold.latency.observe(0.003, mode=fold.mode)
        assert fold.latency_quantile(0.5) == 0.005
        assert fold.latency_quantile(1.0) == 0.005

    def test_quantile_zero_fraction_is_first_occupied_bucket(self):
        # target = 0 * total = 0, so the walk stops at the first bucket
        # (cumulative counts are always >= 0) — the distribution's floor.
        fold = ReportFold()
        fold.latency.observe(0.003, mode=fold.mode)
        assert fold.latency_quantile(0.0) == 0.0005

    def test_quantile_beyond_last_bucket_is_inf(self):
        # a sample past every finite bound lives in the +Inf tail; a
        # fraction that needs it must report inf, not a finite bound.
        fold = ReportFold()
        fold.latency.observe(0.003, mode=fold.mode)
        fold.latency.observe(120.0, mode=fold.mode)
        assert fold.latency_quantile(1.0) == float("inf")
        # ... but the half-point is still covered by the finite bucket.
        assert fold.latency_quantile(0.5) == 0.005
