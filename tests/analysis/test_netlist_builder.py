"""Tests for repro.analysis.netlist_builder — stage -> coupled circuit."""

import math

import pytest

from repro import AnalysisError, BufferType, decompose_stages, two_pin_net
from repro.analysis import build_stage_circuit
from repro.units import FF, MM, PS, UM


def source_stage(tree, buffers=None):
    return decompose_stages(tree, buffers)[0]


class TestBuildStageCircuit:
    def test_capacitance_split_matches_coupling_ratio(
        self, tech, driver, coupling
    ):
        net = two_pin_net(tech, 2 * MM, driver, 10 * FF, 0.8)
        built = build_stage_circuit(
            source_stage(net), coupling, tech.vdd, 100 * UM
        )
        couple = sum(
            c.capacitance for c in built.circuit.capacitors
            if not c.node_b.startswith("0") and "aggr" in c.node_b
        )
        ground = sum(
            c.capacitance for c in built.circuit.capacitors
            if c.node_b == "0"
        )
        wire_cap = tech.wire_capacitance(2 * MM)
        assert math.isclose(couple, 0.7 * wire_cap, rel_tol=1e-9)
        # ground caps = 0.3 * wire + sink pin
        assert math.isclose(ground, 0.3 * wire_cap + 10 * FF, rel_tol=1e-9)

    def test_total_resistance_preserved(self, tech, driver, coupling):
        net = two_pin_net(tech, 2 * MM, driver, 10 * FF, 0.8)
        built = build_stage_circuit(
            source_stage(net), coupling, tech.vdd, 100 * UM
        )
        series = sum(
            r.resistance for r in built.circuit.resistors if r.name != "Rdrv"
        )
        assert math.isclose(series, tech.wire_resistance(2 * MM), rel_tol=1e-9)

    def test_driver_resistor_to_ground(self, tech, driver, coupling):
        net = two_pin_net(tech, 1 * MM, driver, 10 * FF, 0.8)
        built = build_stage_circuit(
            source_stage(net), coupling, tech.vdd, 100 * UM
        )
        rdrv = [r for r in built.circuit.resistors if r.name == "Rdrv"]
        assert len(rdrv) == 1
        assert rdrv[0].resistance == driver.resistance
        assert rdrv[0].node_b == "0"

    def test_segmentation_granularity(self, tech, driver, coupling):
        net = two_pin_net(tech, 1 * MM, driver, 10 * FF, 0.8)
        coarse = build_stage_circuit(
            source_stage(net), coupling, tech.vdd, 500 * UM
        )
        fine = build_stage_circuit(
            source_stage(net), coupling, tech.vdd, 50 * UM
        )
        assert fine.circuit.element_count() > coarse.circuit.element_count()

    def test_probe_per_stage_sink(self, tech, driver, coupling):
        buf = BufferType("b", 100.0, 8 * FF, 20 * PS, 0.8)
        net = two_pin_net(tech, 4 * MM, driver, 10 * FF, 0.8, segments=2)
        stages = decompose_stages(net, {"n1": buf})
        built = build_stage_circuit(stages[0], coupling, tech.vdd, 100 * UM)
        assert set(built.probes) == {"n1"}
        built2 = build_stage_circuit(stages[1], coupling, tech.vdd, 100 * UM)
        assert set(built2.probes) == {"si"}

    def test_buffer_input_load_included(self, tech, driver, coupling):
        buf = BufferType("b", 100.0, 8 * FF, 20 * PS, 0.8)
        net = two_pin_net(tech, 4 * MM, driver, 10 * FF, 0.8, segments=2)
        stages = decompose_stages(net, {"n1": buf})
        built = build_stage_circuit(stages[0], coupling, tech.vdd, 100 * UM)
        pin_caps = [
            c for c in built.circuit.capacitors
            if c.node_a == "n_n1" and c.node_b == "0"
            and math.isclose(c.capacitance, 8 * FF)
        ]
        assert pin_caps

    def test_per_wire_slope_gets_own_rail(self, tech, driver, coupling):
        from repro import TreeBuilder

        builder = TreeBuilder(tech)
        builder.add_source("so", driver=driver)
        builder.add_internal("m")
        builder.add_sink("s", capacitance=5 * FF, noise_margin=0.8)
        builder.add_wire("so", "m", length=1 * MM)  # default slope
        builder.add_wire("m", "s", length=1 * MM, slope=coupling.slope * 2)
        built = build_stage_circuit(
            source_stage(builder.build()), coupling, tech.vdd, 500 * UM
        )
        assert len(built.circuit.voltage_sources) == 2

    def test_explicit_current_converts_to_coupling(self, tech, driver, coupling):
        from repro import TreeBuilder

        builder = TreeBuilder(tech)
        builder.add_source("so", driver=driver)
        builder.add_sink("s", capacitance=5 * FF, noise_margin=0.8)
        wire = builder.add_wire("so", "s", length=1 * MM)
        wire.current = coupling.wire_current(wire) / 2  # half the default
        built = build_stage_circuit(
            source_stage(builder.build()), coupling, tech.vdd, 500 * UM
        )
        couple = sum(
            c.capacitance for c in built.circuit.capacitors
            if "aggr" in c.node_b
        )
        assert math.isclose(couple, 0.35 * wire.capacitance, rel_tol=1e-9)

    def test_uncoupled_stage_gets_idle_rail(self, tech, driver):
        from repro.noise import CouplingModel

        net = two_pin_net(tech, 1 * MM, driver, 10 * FF, 0.8)
        built = build_stage_circuit(
            source_stage(net), CouplingModel.silent(), tech.vdd, 100 * UM
        )
        names = [v.name for v in built.circuit.voltage_sources]
        assert names == ["Vaggr_idle"]

    def test_rejects_bad_parameters(self, tech, driver, coupling):
        net = two_pin_net(tech, 1 * MM, driver, 10 * FF, 0.8)
        stage = source_stage(net)
        with pytest.raises(AnalysisError):
            build_stage_circuit(stage, coupling, 0.0, 100 * UM)
        with pytest.raises(AnalysisError):
            build_stage_circuit(stage, coupling, tech.vdd, 0.0)
