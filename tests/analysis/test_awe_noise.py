"""Tests for the AWE (moment-matching) noise analyzer and its core."""

import math

import pytest

from repro import AnalysisError, CouplingModel, SimulationError, two_pin_net
from repro.analysis import DetailedNoiseAnalyzer
from repro.analysis.awe_noise import AweNoiseAnalyzer
from repro.circuit import Circuit, PiecewiseLinear, assemble, simulate
from repro.circuit.awe import fit_pade, ramp_response_peak, transfer_moments
from repro.units import FF, MM


class TestTransferMoments:
    def single_rc(self, r=500.0, cc=40e-15, cg=20e-15):
        circuit = Circuit()
        circuit.add_voltage_source("aggr", "0", PiecewiseLinear.constant(1.0))
        circuit.add_resistor("victim", "0", r)
        circuit.add_capacitor("victim", "aggr", cc)
        circuit.add_capacitor("victim", "0", cg)
        return assemble(circuit), r, cc, cg

    def test_analytic_single_rc(self):
        """H(s) = s R Cc / (1 + s R (Cc+Cg)): m0 = 0, m1 = R Cc,
        m2 = -R^2 (Cc+Cg) Cc."""
        system, r, cc, cg = self.single_rc()
        m = transfer_moments(system, 0, "victim", order=3)
        assert math.isclose(m[0], 0.0, abs_tol=1e-18)
        assert math.isclose(m[1], r * cc, rel_tol=1e-9)
        assert math.isclose(m[2], -r * r * (cc + cg) * cc, rel_tol=1e-9)

    def test_bad_source_index(self):
        system, *_ = self.single_rc()
        with pytest.raises(SimulationError):
            transfer_moments(system, 5, "victim")

    def test_bad_order(self):
        system, *_ = self.single_rc()
        with pytest.raises(SimulationError):
            transfer_moments(system, 0, "victim", order=0)


class TestFitPade:
    def test_single_pole_system_exact(self):
        """A true single-pole transfer collapses the fit to that pole."""
        r, cc, cg = 500.0, 40e-15, 20e-15
        tau = r * (cc + cg)
        p = -1.0 / tau
        gain = cc / (cc + cg)
        # moments of H = gain * s / (s - p):  m_k = -gain * p^{-(k-1)} ...
        moments = [0.0] + [gain * (-1.0) * p ** (-(k)) * (-1) ** (k + 1)
                           for k in range(1, 5)]
        # simpler: m_k = -r_res / p^k with r_res = -m1*p => generate directly
        m1 = r * cc
        moments = [0.0, m1, m1 / p, m1 / p ** 2, m1 / p ** 3]
        approximant = fit_pade(moments)
        assert len(approximant.poles) == 1
        assert math.isclose(approximant.poles[0], p, rel_tol=1e-9)
        # step response at 0+ equals the capacitive divider gain
        assert math.isclose(approximant.step_response(0.0), gain, rel_tol=1e-9)
        # and decays to the DC gain (0)
        assert abs(approximant.step_response(20 * tau)) < 1e-6

    def test_requires_five_moments(self):
        with pytest.raises(SimulationError):
            fit_pade([0.0, 1.0, 2.0])

    def test_degenerate_all_zero(self):
        approximant = fit_pade([0.0, 0.0, 0.0, 0.0, 0.0])
        assert approximant.poles == ()
        assert approximant.step_response(1.0) == 0.0

    def test_ramp_peak_of_single_rc_matches_transient(self):
        """Closed-form ramp response vs backward-Euler on the same RC."""
        r, cc, cg = 500.0, 40e-15, 20e-15
        slope, vdd = 7.2e9, 1.8
        rise = vdd / slope
        circuit = Circuit()
        circuit.add_voltage_source(
            "aggr", "0", PiecewiseLinear.ramp(vdd, rise)
        )
        circuit.add_resistor("victim", "0", r)
        circuit.add_capacitor("victim", "aggr", cc)
        circuit.add_capacitor("victim", "0", cg)
        system = assemble(circuit)
        moments = transfer_moments(system, 0, "victim", order=4)
        approximant = fit_pade(moments)
        awe_peak = ramp_response_peak(approximant, slope, rise)
        result = simulate(circuit, stop=rise * 10, step=rise / 400,
                          probes=["victim"])
        assert math.isclose(awe_peak, result["victim"].peak, rel_tol=2e-2)


class TestAweAnalyzer:
    @pytest.mark.parametrize("mm", [1, 3, 6, 9])
    def test_matches_transient_within_tolerance(self, tech, mm):
        from repro import DriverCell

        net = two_pin_net(
            tech, mm * MM, DriverCell("d", 250.0), 20 * FF, 0.8, name="a"
        )
        detailed = DetailedNoiseAnalyzer.estimation_mode(tech).analyze(net)
        awe = AweNoiseAnalyzer.estimation_mode(tech).analyze(net)
        assert math.isclose(
            awe.peak_noise, detailed.peak_noise, rel_tol=0.05
        ), mm

    def test_agrees_on_violation_verdicts(self, tech, long_two_pin,
                                          short_two_pin):
        detailed = DetailedNoiseAnalyzer.estimation_mode(tech)
        awe = AweNoiseAnalyzer.estimation_mode(tech)
        for net in (long_two_pin, short_two_pin):
            assert awe.analyze(net).violated == detailed.analyze(net).violated

    def test_buffered_net_clean(self, tech, coupling, library, long_two_pin):
        from repro import insert_buffers_single_sink

        solution = insert_buffers_single_sink(long_two_pin, library, coupling)
        buffered, discrete = solution.realize()
        report = AweNoiseAnalyzer.estimation_mode(tech).analyze(
            buffered, discrete.buffer_map()
        )
        assert not report.violated

    def test_multisink(self, tech, y_tree):
        report = AweNoiseAnalyzer.estimation_mode(tech).analyze(y_tree)
        assert {e.node for e in report.entries} == {"s1", "s2"}
        detailed = DetailedNoiseAnalyzer.estimation_mode(tech).analyze(y_tree)
        by_node = {e.node: e.peak for e in detailed.entries}
        for entry in report.entries:
            assert math.isclose(entry.peak, by_node[entry.node], rel_tol=0.08)

    def test_describe(self, tech, long_two_pin):
        text = AweNoiseAnalyzer.estimation_mode(tech).analyze(
            long_two_pin
        ).describe()
        assert "AWE" in text
        assert "VIOLATION" in text

    def test_order_validation(self, tech, coupling):
        with pytest.raises(AnalysisError):
            AweNoiseAnalyzer(coupling, tech.vdd, order=2)
