"""Tests for the detailed transient noise verifier (3dnoise role)."""

import math

import pytest

from repro import AnalysisError, analyze_noise, insert_buffers_single_sink, two_pin_net
from repro.analysis import DetailedNoiseAnalyzer
from repro.units import FF, MM, UM


@pytest.fixture
def analyzer(tech):
    return DetailedNoiseAnalyzer.estimation_mode(tech)


class TestUpperBoundProperty:
    def test_metric_bounds_detailed_unbuffered(
        self, analyzer, coupling, long_two_pin, short_two_pin, y_tree
    ):
        """Devgan is a provable upper bound: every simulated peak must sit
        at or below the metric value for the same stage sink."""
        for tree in (long_two_pin, short_two_pin, y_tree):
            metric = {e.node: e.noise for e in
                      analyze_noise(tree, coupling).entries}
            detailed = analyzer.analyze(tree)
            for entry in detailed.entries:
                assert entry.peak <= metric[entry.node] * (1 + 1e-6), tree.name

    def test_metric_bounds_detailed_buffered(
        self, analyzer, coupling, library, long_two_pin
    ):
        solution = insert_buffers_single_sink(long_two_pin, library, coupling)
        buffered, discrete = solution.realize()
        metric = {
            e.node: e.noise
            for e in analyze_noise(
                buffered, coupling, discrete.buffer_map()
            ).entries
        }
        detailed = analyzer.analyze(buffered, discrete.buffer_map())
        for entry in detailed.entries:
            assert entry.peak <= metric[entry.node] * (1 + 1e-6)

    def test_detailed_positive_when_coupled(self, analyzer, long_two_pin):
        report = analyzer.analyze(long_two_pin)
        assert report.peak_noise > 0.1  # strongly coupled long net


class TestViolationDetection:
    def test_long_net_violates_detailed_too(self, analyzer, long_two_pin):
        assert analyzer.analyze(long_two_pin).violated

    def test_short_net_clean(self, analyzer, short_two_pin):
        assert not analyzer.analyze(short_two_pin).violated

    def test_buffered_long_net_clean(
        self, analyzer, coupling, library, long_two_pin
    ):
        solution = insert_buffers_single_sink(long_two_pin, library, coupling)
        buffered, discrete = solution.realize()
        assert not analyzer.analyze(buffered, discrete.buffer_map()).violated

    def test_borderline_nets_split_metric_vs_detailed(
        self, analyzer, tech, driver, coupling
    ):
        """Table-II structure: there exist nets the metric flags but the
        detailed analysis clears (the conservative band)."""
        found_split = False
        for mm in (2.4, 2.8, 3.2, 3.6):
            net = two_pin_net(tech, mm * MM, driver, 15 * FF, 0.8,
                              name=f"edge{mm}")
            metric_hit = analyze_noise(net, coupling).violated
            detailed_hit = analyzer.analyze(net).violated
            assert not (detailed_hit and not metric_hit)  # bound direction
            if metric_hit and not detailed_hit:
                found_split = True
        assert found_split


class TestReportShape:
    def test_report_fields(self, analyzer, y_tree):
        report = analyzer.analyze(y_tree)
        assert report.net == "y_tree"
        assert {e.node for e in report.entries} == {"s1", "s2"}
        for entry in report.entries:
            assert math.isclose(entry.slack, entry.margin - entry.peak)
        assert report.worst_slack == min(e.slack for e in report.entries)

    def test_describe(self, analyzer, long_two_pin):
        text = analyzer.analyze(long_two_pin).describe()
        assert "VIOLATION" in text

    def test_buffer_inputs_reported(self, analyzer, coupling, library, long_two_pin):
        solution = insert_buffers_single_sink(long_two_pin, library, coupling)
        buffered, discrete = solution.realize()
        report = analyzer.analyze(buffered, discrete.buffer_map())
        assert any(e.is_buffer_input for e in report.entries)


class TestWaveformRetention:
    def test_waveforms_off_by_default(self, analyzer, y_tree):
        report = analyzer.analyze(y_tree)
        assert all(e.waveform is None for e in report.entries)

    def test_keep_waveforms(self, analyzer, y_tree):
        report = analyzer.analyze(y_tree, keep_waveforms=True)
        for entry in report.entries:
            assert entry.waveform is not None
            assert math.isclose(entry.waveform.peak, entry.peak)

    def test_pulse_width_reported(self, analyzer, long_two_pin):
        report = analyzer.analyze(long_two_pin)
        violating = [e for e in report.entries if e.violated]
        assert violating
        # a violating pulse spends real time above half the margin
        assert all(e.width_at_half_margin > 0 for e in violating)


class TestConfiguration:
    def test_resolution_parameters_validated(self, coupling, tech):
        with pytest.raises(AnalysisError):
            DetailedNoiseAnalyzer(coupling, tech.vdd, steps_per_rise=1)
        with pytest.raises(AnalysisError):
            DetailedNoiseAnalyzer(coupling, tech.vdd, settle_constants=0.0)

    def test_finer_discretization_converges(self, tech, coupling, long_two_pin):
        coarse = DetailedNoiseAnalyzer(
            coupling, tech.vdd, max_segment_length=400 * UM, steps_per_rise=10
        ).analyze(long_two_pin).peak_noise
        fine = DetailedNoiseAnalyzer(
            coupling, tech.vdd, max_segment_length=50 * UM, steps_per_rise=80
        ).analyze(long_two_pin).peak_noise
        finer = DetailedNoiseAnalyzer(
            coupling, tech.vdd, max_segment_length=25 * UM, steps_per_rise=160
        ).analyze(long_two_pin).peak_noise
        assert abs(finer - fine) < abs(finer - coarse) + 1e-12
        assert abs(finer - fine) / finer < 0.05
