"""Tests for repro.analysis.sensitivity."""

import math

import pytest

from repro import AnalysisError, CouplingModel, analyze_noise
from repro.analysis import coupling_sensitivity
from repro.units import MM


class TestLinearityExactness:
    def test_critical_ratio_is_exact_boundary(self, long_two_pin, tech):
        """Re-analyzing at the reported critical ratio lands the worst
        sink exactly on its margin."""
        coupling = CouplingModel.estimation_mode(tech)
        report = coupling_sensitivity(long_two_pin, coupling)
        critical = report.critical_ratio
        assert 0 < critical < coupling.coupling_ratio  # net violates at 0.7
        at_boundary = CouplingModel(
            coupling_ratio=critical, slope=coupling.slope
        )
        noise = analyze_noise(long_two_pin, at_boundary)
        assert math.isclose(noise.peak_noise, 0.8, rel_tol=1e-9)

    def test_critical_slope_is_exact_boundary(self, long_two_pin, tech):
        coupling = CouplingModel.estimation_mode(tech)
        report = coupling_sensitivity(long_two_pin, coupling)
        at_boundary = CouplingModel(
            coupling_ratio=coupling.coupling_ratio,
            slope=report.critical_slope,
        )
        noise = analyze_noise(long_two_pin, at_boundary)
        assert math.isclose(noise.peak_noise, 0.8, rel_tol=1e-9)

    def test_safety_factor_consistency(self, short_two_pin, tech):
        coupling = CouplingModel.estimation_mode(tech)
        report = coupling_sensitivity(short_two_pin, coupling)
        assert report.worst_safety_factor > 1.0  # clean net
        entry = report.entries[0]
        assert math.isclose(
            entry.critical_ratio,
            coupling.coupling_ratio * entry.safety_factor,
            rel_tol=1e-12,
        )


class TestBufferedSensitivity:
    def test_buffering_raises_critical_ratio(self, long_two_pin, tech, library):
        from repro import insert_buffers_single_sink

        coupling = CouplingModel.estimation_mode(tech)
        before = coupling_sensitivity(long_two_pin, coupling)
        solution = insert_buffers_single_sink(long_two_pin, library, coupling)
        buffered, discrete = solution.realize()
        after = coupling_sensitivity(
            buffered, coupling, discrete.buffer_map()
        )
        assert after.critical_ratio > before.critical_ratio
        # the fix is exact-maximal: the critical ratio is ~the assumed one
        assert after.critical_ratio >= coupling.coupling_ratio * (1 - 1e-9)


class TestValidation:
    def test_rejects_overridden_wires(self, tech, driver):
        from repro import two_pin_net

        coupling = CouplingModel.estimation_mode(tech)
        net = two_pin_net(tech, 2 * MM, driver, 1e-14, 0.8)
        next(net.wires()).current = 1e-3
        with pytest.raises(AnalysisError):
            coupling_sensitivity(net, coupling)

    def test_rejects_silent_model(self, long_two_pin):
        with pytest.raises(AnalysisError):
            coupling_sensitivity(long_two_pin, CouplingModel.silent())

    def test_describe(self, long_two_pin, tech):
        coupling = CouplingModel.estimation_mode(tech)
        text = coupling_sensitivity(long_two_pin, coupling).describe()
        assert "critical ratio" in text
        assert "long_two_pin" in text
