"""Tests for repro.analysis.report — combined assessments and summaries."""

import pytest

from repro.analysis import (
    DetailedNoiseAnalyzer,
    assess_net,
    format_table,
    summarize_population,
)


@pytest.fixture
def analyzer(tech):
    return DetailedNoiseAnalyzer.estimation_mode(tech)


class TestAssessNet:
    def test_violating_net(self, long_two_pin, coupling, analyzer):
        assessment = assess_net(long_two_pin, coupling, analyzer)
        assert assessment.metric_violated
        assert assessment.detailed_violated
        assert assessment.metric_is_upper_bound

    def test_clean_net(self, short_two_pin, coupling, analyzer):
        assessment = assess_net(short_two_pin, coupling, analyzer)
        assert not assessment.metric_violated
        assert not assessment.detailed_violated
        assert assessment.metric_is_upper_bound

    def test_buffered_assessment(self, long_two_pin, coupling, analyzer, library):
        from repro import insert_buffers_single_sink

        solution = insert_buffers_single_sink(long_two_pin, library, coupling)
        buffered, discrete = solution.realize()
        assessment = assess_net(
            buffered, coupling, analyzer, discrete.buffer_map()
        )
        assert not assessment.metric_violated
        assert not assessment.detailed_violated


class TestPopulationSummary:
    def test_counts(self, long_two_pin, short_two_pin, coupling, analyzer):
        assessments = [
            assess_net(long_two_pin, coupling, analyzer),
            assess_net(short_two_pin, coupling, analyzer),
        ]
        summary = summarize_population("before", assessments)
        assert summary.nets == 2
        assert summary.metric_violations == 1
        assert summary.detailed_violations == 1

    def test_format_table(self, long_two_pin, coupling, analyzer):
        summary = summarize_population(
            "before", [assess_net(long_two_pin, coupling, analyzer)]
        )
        text = format_table([summary])
        assert "before" in text
        assert "metric violations" in text
        lines = text.splitlines()
        assert len(lines) == 3
