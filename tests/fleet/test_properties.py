"""Property suite: the coordinator's invariants under random fleets.

Four laws, each quantified over seeded random fleets:

1. **feasibility** — with repair on, delay-mode coordination always
   lands capacity-feasible, and the claimed usage is exactly the site
   tally of the recorded assignments;
2. **monotone schedule** — the feasibility schedule (per-round max
   violation, minimum-so-far) never increases and ends at the final
   round's verdict;
3. **determinism** — the same fleet coordinates to bit-identical
   results across repeat runs, executors, and the bit-identical
   engines (lishi is held to semantic equivalence: feasible, audited
   clean, same primal within tolerance);
4. **zero-price identity** — an uncontended fabric is one round at
   zero prices, bit-identical to the uncoordinated batch.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.batch.executors import make_executor
from repro.batch.optimizer import BatchConfig, BatchOptimizer
from repro.fleet import (
    FleetConfig,
    FleetCoordinator,
    PriceSchedule,
    audit_fleet,
)
from repro.library.buffers import BufferLibrary, default_buffer_library
from repro.units import PS
from repro.verify.treegen import random_tree

SMALL_LIBRARY = BufferLibrary(tuple(default_buffer_library())[:2])

default_settings = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow, HealthCheck.filter_too_much,
    ],
)

seeds = st.integers(min_value=0, max_value=5_000)


def fleet_for(seed, count=None):
    rng = random.Random(seed)
    count = count if count is not None else 2 + seed % 3
    return [
        random_tree(rng, max_internal=2, with_rats=True,
                    name=f"p{seed}_{i}")
        for i in range(count)
    ]


def contended_config(**overrides):
    base = dict(
        batch=BatchConfig(mode="delay", max_segment_length=None),
        sites_per_family=3,
        base_capacity=1,
        max_rounds=15,
        schedule=PriceSchedule(step=20 * PS),
    )
    base.update(overrides)
    return FleetConfig(**base)


def coordinate(seed, **config_overrides):
    return FleetCoordinator(
        library=SMALL_LIBRARY, config=contended_config(**config_overrides)
    ).coordinate(fleet_for(seed))


class TestFeasibilityInvariant:
    @default_settings
    @given(seed=seeds)
    def test_repair_always_lands_feasible(self, seed):
        result = coordinate(seed)
        assert result.feasible
        assert all(
            used <= cap
            for used, cap in zip(result.usage, result.site_map.capacities)
        )

    @default_settings
    @given(seed=seeds)
    def test_usage_is_the_tally_of_recorded_assignments(self, seed):
        result = coordinate(seed)
        assignments = {
            name: sorted(state.result.assignment or {})
            for name, state in result.states.items()
            if state.ok
        }
        assert result.usage == result.site_map.usage(assignments)


class TestMonotoneSchedule:
    @default_settings
    @given(seed=seeds)
    def test_schedule_log_never_increases(self, seed):
        result = coordinate(seed)
        log = result.schedule_log()
        assert len(log) == len(result.rounds)
        assert all(a >= b for a, b in zip(log, log[1:]))
        if result.converged:
            assert log[-1] == 0
        # the log is the running minimum of the raw per-round curve.
        running = []
        for record in result.rounds:
            running.append(
                min(record.max_violation, running[-1])
                if running else record.max_violation
            )
        assert tuple(log) == tuple(running)


class TestDeterminism:
    @default_settings
    @given(seed=seeds)
    def test_repeat_runs_are_bit_identical(self, seed):
        first = coordinate(seed)
        second = coordinate(seed)
        assert first.signatures() == second.signatures()
        assert first.prices == second.prices
        assert first.rounds == second.rounds

    @pytest.mark.parametrize("kind", ["process", "async"])
    def test_parallel_executors_match_serial(self, kind):
        for seed in (2, 9):
            trees = fleet_for(seed)
            serial = FleetCoordinator(
                library=SMALL_LIBRARY, config=contended_config()
            ).coordinate(trees)
            executor = make_executor(kind, workers=2)
            parallel = FleetCoordinator(
                library=SMALL_LIBRARY,
                config=contended_config(),
                executor=executor,
            ).coordinate(trees)
            assert parallel.signatures() == serial.signatures()
            assert parallel.prices == serial.prices

    def test_fast_engine_is_bit_identical_to_reference(self):
        for seed in (1, 4, 12):
            reference = coordinate(seed)
            fast = coordinate(
                seed,
                batch=BatchConfig(
                    mode="delay", max_segment_length=None, engine="fast"
                ),
            )
            assert fast.signatures() == reference.signatures()

    def test_lishi_engine_is_semantically_equivalent(self):
        for seed in (1, 4, 12):
            reference = coordinate(seed)
            config = contended_config(
                batch=BatchConfig(
                    mode="delay", max_segment_length=None, engine="lishi"
                ),
            )
            lishi = FleetCoordinator(
                library=SMALL_LIBRARY, config=config
            ).coordinate(fleet_for(seed))
            assert lishi.feasible
            assert lishi.primal_total == pytest.approx(
                reference.primal_total, rel=1e-9, abs=1e-12
            )
            violations = audit_fleet(
                lishi, fleet_for(seed), config=config,
                library=SMALL_LIBRARY,
            )
            assert not violations, violations


class TestZeroPriceIdentity:
    @default_settings
    @given(seed=seeds)
    def test_uncontended_fleet_is_one_uncoordinated_round(self, seed):
        trees = fleet_for(seed)
        batch_config = BatchConfig(mode="delay", max_segment_length=None)
        fleet = FleetCoordinator(
            library=SMALL_LIBRARY,
            config=FleetConfig(
                batch=batch_config, sites_per_family=32, base_capacity=16
            ),
        ).coordinate(trees)
        batch = BatchOptimizer(
            library=SMALL_LIBRARY, config=batch_config
        ).optimize(trees)
        assert len(fleet.rounds) == 1
        assert fleet.converged and fleet.feasible
        assert fleet.net_result_signatures() == tuple(
            r.signature()
            for r in sorted(batch.results, key=lambda r: r.name)
        )
        assert all(
            state.penalty == 0.0 for state in fleet.states.values()
        )
