"""The planted-bug battery: every coordinator mutant must be caught.

The acceptance-criteria self-test: :func:`run_mutation_battery` over a
spread of contended seeded fleets must report the honest coordinator
auditing clean on **every** instance and a 100% catch rate across the
three planted bugs (stale prices, capacity off-by-one, dropped net).
Per-mutant unit tests then pin *how* each bug manifests, so a future
refactor that silently weakens one check fails with a readable story.
"""

import random

import pytest

from repro.batch.optimizer import BatchConfig
from repro.fleet import (
    FleetConfig,
    FleetCoordinator,
    PriceSchedule,
    audit_fleet,
    run_mutation_battery,
)
from repro.fleet.mutations import (
    MUTATION_CLASSES,
    CapacityOffByOneFleetCoordinator,
    DroppedNetFleetCoordinator,
    StalePricesFleetCoordinator,
)
from repro.library.buffers import BufferLibrary, default_buffer_library
from repro.units import PS
from repro.verify.treegen import random_tree

SMALL_LIBRARY = BufferLibrary(tuple(default_buffer_library())[:2])


def contended_fleet(seed, count=4):
    rng = random.Random(seed)
    return [
        random_tree(rng, max_internal=2, with_rats=True,
                    name=f"m{seed}_{i}")
        for i in range(count)
    ]


def battery_kwargs():
    return dict(
        library=SMALL_LIBRARY,
        config=FleetConfig(
            batch=BatchConfig(mode="delay", max_segment_length=None),
            sites_per_family=3,
            base_capacity=1,
            max_rounds=15,
            schedule=PriceSchedule(step=20 * PS),
        ),
    )


@pytest.fixture(scope="module")
def battery_report():
    fleets = [contended_fleet(seed) for seed in range(8)]
    return run_mutation_battery(fleets, battery_kwargs())


class TestBatterySelfTest:
    def test_honest_coordinator_audits_clean_everywhere(
        self, battery_report
    ):
        assert battery_report.honest_clean, battery_report.describe()
        assert len(battery_report.honest_violations) == 8

    def test_every_planted_mutant_is_caught(self, battery_report):
        assert battery_report.all_caught, battery_report.describe()
        assert len(battery_report.catches) == len(MUTATION_CLASSES) == 3

    def test_catches_carry_diagnostics(self, battery_report):
        for catch in battery_report.catches:
            assert catch.instances == 8
            assert catch.caught_on > 0
            assert catch.sample_violations  # an escape story, not a bool

    def test_describe_reads_as_a_verdict(self, battery_report):
        text = battery_report.describe()
        assert "honest audit: clean" in text
        assert "ESCAPED" not in text
        for mutant_cls in MUTATION_CLASSES:
            assert mutant_cls.__name__ in text


class TestPerMutantStories:
    """Each mutant must be flagged by the check designed for it."""

    def _audit(self, coordinator_cls, seed=3):
        trees = contended_fleet(seed)
        kwargs = battery_kwargs()
        result = coordinator_cls(**kwargs).coordinate(trees)
        return result, audit_fleet(
            result, trees,
            config=kwargs["config"], library=kwargs["library"],
        )

    def _first_catch(self, coordinator_cls, needle):
        # latent by design: scan seeds until the bug surfaces, then
        # demand the violation text names the right check.
        for seed in range(10):
            _, violations = self._audit(coordinator_cls, seed)
            if violations:
                assert any(needle in v for v in violations), violations
                return seed
        pytest.fail(
            f"{coordinator_cls.__name__} never surfaced in 10 seeds"
        )

    def test_stale_prices_caught_by_price_rerun(self):
        self._first_catch(
            StalePricesFleetCoordinator,
            "not the prices this net was optimized under",
        )

    def test_capacity_off_by_one_caught_by_true_capacities(self):
        self._first_catch(
            CapacityOffByOneFleetCoordinator, "feasibility claim refuted"
        )

    def test_dropped_net_caught_by_full_usage_recount(self):
        self._first_catch(DroppedNetFleetCoordinator, "usage mismatch")

    def test_mutants_are_honest_when_uncontended(self):
        # on a fabric with slack capacity the bugs are latent: the
        # mutant's output is *correct*, so the audit must stay quiet
        # (the battery catches bugs, not subclasses).
        trees = contended_fleet(0, count=2)
        kwargs = battery_kwargs()
        config = FleetConfig(
            batch=kwargs["config"].batch,
            sites_per_family=16,
            base_capacity=8,
            max_rounds=5,
        )
        for mutant_cls in MUTATION_CLASSES:
            result = mutant_cls(
                library=SMALL_LIBRARY, config=config
            ).coordinate(trees)
            violations = audit_fleet(
                result, trees, config=config, library=SMALL_LIBRARY
            )
            if mutant_cls is DroppedNetFleetCoordinator:
                # dropping a net from the tally corrupts usage even
                # without contention — that one is never latent.
                assert violations
            else:
                assert not violations, (mutant_cls.__name__, violations)


class TestSeamContracts:
    def test_honest_seams_are_identity(self):
        # the sanctioned seams must default to no-ops: the honest
        # coordinator and a trivial subclass produce identical results.
        trees = contended_fleet(5)
        kwargs = battery_kwargs()

        class Vanilla(FleetCoordinator):
            pass

        honest = FleetCoordinator(**kwargs).coordinate(trees)
        vanilla = Vanilla(**kwargs).coordinate(trees)
        assert honest.signatures() == vanilla.signatures()

    def test_stale_mutant_round_zero_is_honest(self):
        # round 0 has no previous prices: the stale mutant must behave
        # honestly there, which is exactly why uncontended fleets never
        # catch it.
        trees = contended_fleet(1, count=2)
        kwargs = battery_kwargs()
        config = FleetConfig(
            batch=kwargs["config"].batch,
            sites_per_family=16,
            base_capacity=8,
            max_rounds=5,
        )
        honest = FleetCoordinator(
            library=SMALL_LIBRARY, config=config
        ).coordinate(trees)
        stale = StalePricesFleetCoordinator(
            library=SMALL_LIBRARY, config=config
        ).coordinate(trees)
        assert len(stale.rounds) == 1
        assert stale.signatures() == honest.signatures()
