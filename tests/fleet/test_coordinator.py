"""FleetCoordinator: the loop, its guarantees, and its escape hatches.

The headline contract is pinned here at acceptance-criteria scale:

* **zero-contention ≡ uncoordinated batch, bit for bit** — a 200-net
  spec fleet on an uncontended fabric runs one round at zero prices and
  every ``NetResult`` signature equals the ``BatchOptimizer``'s;
* **contention converges** — a tight fabric reaches a capacity-feasible
  round within the budget, with a monotone feasibility schedule;
* **repair is a guaranteed backstop** — with the round budget strangled
  to 1, the deterministic ban pass still lands feasible;
* **checkpoint/resume is exact** — a journal truncated mid-round resumes
  to the bit-identical final state of the uninterrupted run.
"""

import json
import random
from dataclasses import replace

import pytest

from repro.batch.optimizer import BatchConfig, BatchOptimizer
from repro.errors import WorkloadError
from repro.fleet import (
    FleetConfig,
    FleetCoordinator,
    PriceSchedule,
    derive_site_map,
)
from repro.fleet.coordinator import (
    FLEET_MAX_VIOLATION_GAUGE,
    FLEET_REOPT_COUNTER,
    FLEET_ROUNDS_COUNTER,
)
from repro.library.buffers import BufferLibrary, default_buffer_library
from repro.obs import MetricsRegistry
from repro.units import PS
from repro.verify.treegen import random_tree
from repro.workloads import WorkloadConfig, population_specs

SMALL_LIBRARY = BufferLibrary(tuple(default_buffer_library())[:2])


def tiny_trees(seed, count=4, max_internal=2):
    rng = random.Random(seed)
    return [
        random_tree(rng, max_internal=max_internal, with_rats=True,
                    name=f"f{seed}_{i}")
        for i in range(count)
    ]


def contended_config(**overrides):
    base = dict(
        batch=BatchConfig(mode="delay", max_segment_length=None),
        sites_per_family=3,
        base_capacity=1,
        max_rounds=20,
        schedule=PriceSchedule(step=20 * PS),
    )
    base.update(overrides)
    return FleetConfig(**base)


class TestZeroPriceBitIdentity:
    def test_200_net_fleet_matches_uncoordinated_batch(self):
        """The acceptance-criteria leg: 200 spec nets, uncontended
        fabric, fleet signatures == batch signatures exactly."""
        workload = WorkloadConfig(nets=200, seed=19981101)
        specs = population_specs(workload)
        batch_config = BatchConfig(keep_trees=False)
        fleet = FleetCoordinator(
            config=FleetConfig(
                batch=batch_config, sites_per_family=512, base_capacity=200
            ),
            workload=workload,
        ).coordinate(specs)
        batch = BatchOptimizer(
            config=batch_config, workload=workload
        ).optimize(specs)
        assert len(fleet.rounds) == 1
        assert fleet.converged and fleet.feasible
        assert fleet.rounds[0].prices == (0.0,) * fleet.site_map.sites
        assert fleet.net_result_signatures() == tuple(
            r.signature()
            for r in sorted(batch.results, key=lambda r: r.name)
        )
        # uncontended priced slack IS physical slack, for every net.
        for state in fleet.states.values():
            assert state.true_slack == state.priced_slack
            assert state.penalty == 0.0


class TestCoordinationLoop:
    @pytest.fixture(scope="class")
    def converged(self):
        trees = tiny_trees(3)
        coordinator = FleetCoordinator(
            library=SMALL_LIBRARY, config=contended_config()
        )
        return trees, coordinator.coordinate(trees)

    def test_converges_capacity_feasible(self, converged):
        trees, result = converged
        assert result.converged
        assert result.feasible
        assert all(
            used <= cap
            for used, cap in zip(result.usage, result.site_map.capacities)
        )

    def test_schedule_log_is_monotone(self, converged):
        _, result = converged
        log = result.schedule_log()
        assert all(a >= b for a, b in zip(log, log[1:]))
        assert log[-1] == 0

    def test_round_records_are_consistent(self, converged):
        _, result = converged
        for index, record in enumerate(result.rounds):
            assert record.index == index
            assert record.max_violation == max(
                (max(0, u - c) for u, c in zip(
                    record.usage, result.site_map.capacities
                )),
                default=0,
            )
        assert result.rounds[0].prices == (0.0,) * result.site_map.sites

    def test_site_map_matches_independent_derivation(self, converged):
        trees, result = converged
        assert result.site_map == derive_site_map(
            trees, 3, 1, 1, 0
        )

    def test_json_and_describe(self, converged):
        _, result = converged
        report = result.to_json()
        assert report["kind"] == "buffopt-fleet-report"
        assert report["converged"] is True
        assert report["rounds"] == len(result.rounds)
        json.dumps(report)  # must be serializable as-is
        assert "fleet:" in result.describe()

    def test_duality_in_delay_mode(self, converged):
        _, result = converged
        assert result.primal_total is not None
        assert result.dual_bound is not None
        gap = result.duality_gap()
        assert gap is not None and gap >= -1e-12

    def test_unique_names_required(self):
        trees = tiny_trees(4, count=2)
        coordinator = FleetCoordinator(
            library=SMALL_LIBRARY, config=contended_config()
        )
        with pytest.raises(WorkloadError, match="unique"):
            coordinator.coordinate([trees[0], trees[0]])

    def test_max_rounds_validated(self):
        with pytest.raises(WorkloadError, match="max_rounds"):
            FleetConfig(max_rounds=0)

    def test_no_dual_bound_in_buffopt_mode(self):
        trees = tiny_trees(5, count=2)
        result = FleetCoordinator(
            library=SMALL_LIBRARY,
            config=contended_config(
                batch=BatchConfig(mode="buffopt", max_segment_length=None)
            ),
        ).coordinate(trees)
        assert result.dual_bound is None
        assert result.duality_gap() is None


class TestRepairBackstop:
    def test_strangled_budget_still_lands_feasible(self):
        trees = tiny_trees(6)
        result = FleetCoordinator(
            library=SMALL_LIBRARY,
            config=contended_config(max_rounds=1),
        ).coordinate(trees)
        assert not result.converged  # one round cannot price its way out
        assert result.feasible
        assert result.repaired
        banned_nets = {net for net, _ in result.repaired}
        for net, site in result.repaired:
            state = result.states[net]
            assert site in state.banned
            assert site not in state.sites_used
        assert banned_nets <= set(result.states)

    def test_repair_disabled_reports_infeasible(self):
        trees = tiny_trees(6)
        result = FleetCoordinator(
            library=SMALL_LIBRARY,
            config=contended_config(max_rounds=1, repair=False),
        ).coordinate(trees)
        assert not result.converged
        assert not result.feasible
        assert not result.repaired


class TestObservability:
    def test_fleet_metrics_populate(self):
        trees = tiny_trees(3)
        metrics = MetricsRegistry()
        result = FleetCoordinator(
            library=SMALL_LIBRARY,
            config=contended_config(),
            metrics=metrics,
        ).coordinate(trees)
        rounds = metrics.counter(FLEET_ROUNDS_COUNTER).value(mode="delay")
        reopts = metrics.counter(FLEET_REOPT_COUNTER).value(mode="delay")
        assert rounds == len(result.rounds)
        assert reopts == sum(r.reoptimized for r in result.rounds)
        assert metrics.gauge(FLEET_MAX_VIOLATION_GAUGE).value(
            mode="delay"
        ) == result.rounds[-1].max_violation


class TestCheckpointResume:
    def _truncate_mid_round(self, path, tmp_path):
        lines = path.read_text().splitlines(keepends=True)
        cut = None
        closed = 0
        for idx, line in enumerate(lines):
            record = json.loads(line)
            if record.get("kind") == "round":
                closed += 1
            elif record.get("kind") == "fleet_net" and closed == 1:
                cut = idx + 1  # keep one dangling net of open round 1
                break
        assert cut is not None, "run closed too few rounds to truncate"
        partial = tmp_path / "partial.jsonl"
        partial.write_text("".join(lines[:cut]))
        return partial

    def test_mid_round_resume_is_bit_identical(self, tmp_path):
        trees = tiny_trees(7)
        config = contended_config()
        full = tmp_path / "full.jsonl"
        baseline = FleetCoordinator(
            library=SMALL_LIBRARY, config=config
        ).coordinate(trees, checkpoint=full)
        assert len(baseline.rounds) >= 2
        partial = self._truncate_mid_round(full, tmp_path)
        resumed = FleetCoordinator(
            library=SMALL_LIBRARY, config=config
        ).coordinate(trees, checkpoint=partial, resume=True)
        assert resumed.signatures() == baseline.signatures()
        assert resumed.rounds == baseline.rounds
        assert resumed.prices == baseline.prices
        assert resumed.primal_total == baseline.primal_total

    def test_resume_requires_checkpoint(self):
        coordinator = FleetCoordinator(
            library=SMALL_LIBRARY, config=contended_config()
        )
        with pytest.raises(WorkloadError, match="checkpoint"):
            coordinator.coordinate(tiny_trees(8, count=2), resume=True)

    def test_batch_journal_is_rejected(self, tmp_path):
        workload = WorkloadConfig(nets=3, seed=5)
        specs = population_specs(workload)
        path = tmp_path / "batch.jsonl"
        BatchOptimizer(
            config=BatchConfig(keep_trees=False), workload=workload
        ).optimize(specs, checkpoint=path)
        coordinator = FleetCoordinator(
            config=FleetConfig(batch=BatchConfig(keep_trees=False)),
            workload=workload,
        )
        with pytest.raises(WorkloadError, match="fleet"):
            coordinator.coordinate(specs, checkpoint=path, resume=True)

    def test_fingerprint_mismatch_is_rejected(self, tmp_path):
        trees = tiny_trees(9, count=2)
        config = contended_config()
        path = tmp_path / "fleet.jsonl"
        FleetCoordinator(
            library=SMALL_LIBRARY, config=config
        ).coordinate(trees, checkpoint=path)
        other = FleetCoordinator(
            library=SMALL_LIBRARY,
            config=replace(config, base_capacity=2),
        )
        with pytest.raises(WorkloadError):
            other.coordinate(trees, checkpoint=path, resume=True)
