"""Joint-oracle acceptance battery: the coordinator vs. ground truth.

The acceptance-criteria leg: on 200+ seeded tiny fleets (2-4 nets, 2-3
shared sites, capacity 1), the coordinator's outcome must agree with
the exhaustive capacitated joint optimum computed by
:func:`~repro.fleet.oracle.joint_exhaustive_oracle` — a brute force
over the certificate evaluator that shares zero code with the DP
engines or the pricing loop.  "Agree" is the Lagrangian sandwich:

    ``primal_total <= opt_total <= dual_bound``

(the left inequality because the coordinator emits one particular
capacity-feasible fleet; the right because every Lagrangian relaxation
upper-bounds the constrained optimum).  Every instance must also land
capacity-feasible — in delay mode the zero-buffer fleet is always
feasible, so the repair backstop guarantees it.
"""

import random

import pytest

from repro.batch.optimizer import BatchConfig
from repro.fleet import (
    FleetConfig,
    FleetCoordinator,
    PriceSchedule,
    audit_fleet,
    derive_site_map,
    joint_exhaustive_oracle,
)
from repro.library.buffers import BufferLibrary, default_buffer_library
from repro.units import PS
from repro.verify.oracle import OracleBoundError
from repro.verify.treegen import random_tree, seeded_tree

SMALL_LIBRARY = BufferLibrary(tuple(default_buffer_library())[:2])

#: 8 chunks x 25 seeds = 200 joint instances, the acceptance floor.
CHUNK = 25
CHUNKS = 8


def battery_instance(seed):
    """Deterministic (trees, config) for one battery seed.

    Fleet shape varies with the seed: 2-4 nets, 2-3 shared sites,
    occasionally a capacity spread, so the battery covers uncontended,
    mildly contended, and pathologically tight fabrics.
    """
    rng = random.Random(seed)
    trees = [
        random_tree(rng, max_internal=2, with_rats=True,
                    name=f"ob{seed}_{i}")
        for i in range(2 + seed % 3)
    ]
    config = FleetConfig(
        batch=BatchConfig(mode="delay", max_segment_length=None),
        sites_per_family=2 + seed % 2,
        base_capacity=1,
        capacity_spread=seed % 2,
        max_rounds=15,
        schedule=PriceSchedule(step=40 * PS),
    )
    return trees, config


def run_instance(seed):
    trees, config = battery_instance(seed)
    result = FleetCoordinator(
        library=SMALL_LIBRARY, config=config
    ).coordinate(trees)
    oracle = joint_exhaustive_oracle(
        trees,
        derive_site_map(
            trees,
            config.sites_per_family,
            config.families,
            config.base_capacity,
            config.capacity_spread,
        ),
        SMALL_LIBRARY,
    )
    return trees, config, result, oracle


def sandwich_violations(seed, result, oracle):
    """Every way this instance breaks primal <= opt <= dual."""
    problems = []
    if not result.feasible:
        problems.append(f"seed {seed}: not capacity-feasible")
    if any(
        used > cap
        for used, cap in zip(result.usage, result.site_map.capacities)
    ):
        problems.append(
            f"seed {seed}: usage {result.usage} overloads "
            f"{result.site_map.capacities}"
        )
    scale = max(abs(oracle.opt_total), 1e-12)
    tol = 1e-12 + 1e-9 * scale
    if result.feasible and result.primal_total is not None:
        if result.primal_total > oracle.opt_total + tol:
            problems.append(
                f"seed {seed}: primal {result.primal_total!r} beats the "
                f"exhaustive optimum {oracle.opt_total!r}"
            )
    if result.dual_bound is not None:
        if oracle.opt_total > result.dual_bound + tol:
            problems.append(
                f"seed {seed}: optimum {oracle.opt_total!r} exceeds the "
                f"claimed dual bound {result.dual_bound!r}"
            )
    return problems


class TestAcceptanceBattery:
    @pytest.mark.parametrize("chunk", range(CHUNKS))
    def test_sandwich_holds_on_25_seeded_instances(self, chunk):
        problems = []
        for seed in range(chunk * CHUNK, (chunk + 1) * CHUNK):
            _, _, result, oracle = run_instance(seed)
            problems.extend(sandwich_violations(seed, result, oracle))
        assert not problems, "\n".join(problems)

    def test_every_instance_has_a_dual_bound(self):
        # delay mode always yields L(0) from the clean round-0 pass, so
        # the sandwich's right-hand side is never vacuous.
        for seed in (0, 7, 31, 113, 199):
            _, _, result, _ = run_instance(seed)
            assert result.dual_bound is not None

    def test_contended_instances_pay_a_real_gap(self):
        # at least one battery instance must actually exercise pricing
        # (multiple rounds) — otherwise the battery only ever tests the
        # uncontended fast path.
        priced = 0
        for seed in range(0, 2 * CHUNK):
            _, _, result, _ = run_instance(seed)
            if len(result.rounds) > 1:
                priced += 1
        assert priced >= 5

    def test_audited_sample_is_clean(self):
        # a DP-free audit (including per-net priced re-runs) of a spread
        # of battery instances: cheap + contended + 4-net shapes.
        for seed in (0, 1, 2, 5, 11, 23):
            trees, config, result, _ = run_instance(seed)
            violations = audit_fleet(
                result, trees, config=config, library=SMALL_LIBRARY
            )
            assert not violations, f"seed {seed}: {violations}"

    def test_tight_bound_pass_never_loosens_the_sandwich(self):
        for seed in (3, 17, 42):
            trees, config = battery_instance(seed)
            result = FleetCoordinator(
                library=SMALL_LIBRARY, config=config
            ).coordinate(trees)
            tight = FleetCoordinator(
                library=SMALL_LIBRARY,
                config=FleetConfig(
                    batch=config.batch,
                    sites_per_family=config.sites_per_family,
                    base_capacity=config.base_capacity,
                    capacity_spread=config.capacity_spread,
                    max_rounds=config.max_rounds,
                    schedule=config.schedule,
                    tight_bound=True,
                ),
            ).coordinate(trees)
            assert tight.dual_bound is not None
            assert result.dual_bound is not None
            assert tight.dual_bound <= result.dual_bound + 1e-12


class TestOracleUnit:
    def test_duplicate_names_rejected(self):
        tree = seeded_tree(1, max_internal=2, name="dup")
        site_map = derive_site_map([tree], 2, base_capacity=1)
        with pytest.raises(OracleBoundError, match="unique"):
            joint_exhaustive_oracle(
                [tree, tree], site_map, SMALL_LIBRARY
            )

    def test_assignment_guard_trips(self):
        tree = seeded_tree(2, max_internal=3, with_rats=True)
        site_map = derive_site_map([tree], 2, base_capacity=1)
        with pytest.raises(OracleBoundError, match="assignments"):
            joint_exhaustive_oracle(
                [tree], site_map, SMALL_LIBRARY, max_assignments=0
            )

    def test_zero_buffer_fleet_is_always_jointly_feasible(self):
        # capacity 0 everywhere: the only feasible fleet is unbuffered,
        # and delay mode must still return it (never OracleBoundError).
        trees = [
            seeded_tree(s, max_internal=2, with_rats=True, name=f"z{s}")
            for s in (1, 2)
        ]
        site_map = derive_site_map(trees, 2, base_capacity=0)
        oracle = joint_exhaustive_oracle(trees, site_map, SMALL_LIBRARY)
        assert oracle.optimal_usage == (0,) * site_map.sites

    def test_optimum_dominates_every_single_net_choice(self):
        # opt_total must equal the sum of its per-net slack split, and
        # the split's usage must respect capacity.
        trees, config = battery_instance(9)
        site_map = derive_site_map(
            trees,
            config.sites_per_family,
            config.families,
            config.base_capacity,
            config.capacity_spread,
        )
        oracle = joint_exhaustive_oracle(trees, site_map, SMALL_LIBRARY)
        assert oracle.opt_total == pytest.approx(
            sum(slack for _, slack in oracle.optimal_slacks), abs=1e-15
        )
        assert all(
            used <= cap
            for used, cap in zip(oracle.optimal_usage, oracle.capacities)
        )
        assert [name for name, _ in oracle.optimal_slacks] == [
            t.name for t in trees
        ]
