"""The deterministic site fabric: salts, maps, capacities, node prices.

Everything the fleet coordinates over must be a pure function of the
fleet's identity — these tests pin order-independence, cross-process
stability (pure hashing, no ``id()``/``hash()`` randomness), the
capacity derivation, and the zero-price fast path the bit-identity
guarantee rides on.
"""

import pytest

from repro.errors import WorkloadError
from repro.fleet import BAN_PRICE, SiteMap, derive_site_map, node_prices_for
from repro.fleet.sites import fleet_salt, item_seed_pairs
from repro.verify.treegen import seeded_tree
from repro.workloads import (
    NetSpec,
    WorkloadConfig,
    generate_net_from_spec,
    population_specs,
)


def _specs(n=6, seed=11):
    return population_specs(WorkloadConfig(nets=n, seed=seed))


class TestIdentity:
    def test_pairs_cover_every_item_kind(self):
        spec = NetSpec(name="s", sink_count=2, span=1e-3, seed=42)
        tree = seeded_tree(1, max_internal=2, name="t")
        from repro.library.cells import default_cell_library
        from repro.library.technology import default_technology

        workload = WorkloadConfig()
        net = generate_net_from_spec(
            NetSpec(name="g", sink_count=2, span=1e-3, seed=5),
            workload,
            default_technology(),
            default_cell_library(noise_margin=workload.noise_margin),
        )
        pairs = item_seed_pairs([spec, tree, net])
        assert pairs == (("g", 0), ("s", 42), ("t", 0))

    def test_junk_items_are_rejected(self):
        with pytest.raises(WorkloadError, match="fleet items"):
            item_seed_pairs(["not a net"])

    def test_salt_is_order_independent(self):
        specs = _specs()
        assert fleet_salt(specs) == fleet_salt(list(reversed(specs)))

    def test_salt_depends_on_membership_and_seeds(self):
        specs = _specs()
        assert fleet_salt(specs) != fleet_salt(specs[:-1])
        reseeded = [
            NetSpec(
                name=s.name, sink_count=s.sink_count, span=s.span,
                seed=s.seed + 1,
            )
            for s in specs
        ]
        assert fleet_salt(specs) != fleet_salt(reseeded)

    def test_salt_is_stable_across_processes(self):
        # pure SHA-256 of names and seeds: pin one literal value so a
        # refactor to Python's randomized hash() cannot slip through.
        assert fleet_salt(
            [NetSpec(name="a", sink_count=2, span=1e-3, seed=1)]
        ) == fleet_salt(
            [NetSpec(name="a", sink_count=2, span=1e-3, seed=1)]
        )
        assert fleet_salt([]) == fleet_salt(())


class TestSiteMap:
    def test_derivation_is_deterministic(self):
        specs = _specs()
        one = derive_site_map(specs, 4, families=2, base_capacity=1,
                              capacity_spread=3)
        two = derive_site_map(list(reversed(specs)), 4, families=2,
                              base_capacity=1, capacity_spread=3)
        assert one == two

    def test_site_of_lands_in_the_net_family(self):
        site_map = derive_site_map(_specs(), 4, families=3)
        for net in ("a", "b", "c", "zeta"):
            family = site_map.family_of(net)
            assert 0 <= family < 3
            for node in ("n1", "n2", "i0"):
                site = site_map.site_of(net, node)
                assert family * 4 <= site < (family + 1) * 4

    def test_single_family_is_family_zero(self):
        site_map = derive_site_map(_specs(), 4)
        assert all(
            site_map.family_of(name) == 0 for name in ("x", "y", "z")
        )

    def test_capacities_cover_base_plus_spread(self):
        site_map = derive_site_map(_specs(), 16, base_capacity=2,
                                   capacity_spread=3)
        assert len(site_map.capacities) == 16
        assert all(2 <= c <= 5 for c in site_map.capacities)
        uniform = derive_site_map(_specs(), 16, base_capacity=2)
        assert uniform.capacities == (2,) * 16

    def test_usage_tallies_by_site(self):
        site_map = derive_site_map(_specs(), 4)
        usage = site_map.usage({"a": ["n1", "n2"], "b": ["n1"]})
        assert sum(usage) == 3
        assert len(usage) == 4

    def test_json_roundtrip(self):
        site_map = derive_site_map(_specs(), 4, families=2,
                                   capacity_spread=2)
        assert SiteMap.from_json(site_map.to_json()) == site_map

    def test_validation(self):
        with pytest.raises(WorkloadError, match="families"):
            derive_site_map((), 4, families=0)
        with pytest.raises(WorkloadError, match="sites_per_family"):
            derive_site_map((), 0)
        with pytest.raises(WorkloadError, match="base_capacity"):
            derive_site_map((), 4, base_capacity=-1)
        with pytest.raises(WorkloadError, match="capacity_spread"):
            derive_site_map((), 4, capacity_spread=-1)
        with pytest.raises(WorkloadError, match="capacities"):
            SiteMap(families=1, sites_per_family=4,
                    capacities=(1, 1), salt="ab")
        with pytest.raises(WorkloadError, match=">= 0"):
            SiteMap(families=1, sites_per_family=1,
                    capacities=(-1,), salt="ab")


class TestNodePrices:
    @pytest.fixture(scope="class")
    def fabric(self):
        tree = seeded_tree(0, max_internal=3, with_rats=True)
        site_map = derive_site_map([tree], 3, base_capacity=1)
        return tree, site_map

    def test_zero_prices_yield_the_empty_dict(self, fabric):
        tree, site_map = fabric
        assert node_prices_for(
            tree=tree, site_map=site_map, net_name=tree.name,
            prices=(0.0,) * site_map.sites,
        ) == {}
        assert node_prices_for(
            tree=tree, site_map=site_map, net_name=tree.name, prices=(),
        ) == {}

    def test_only_internal_feasible_nodes_are_priced(self, fabric):
        tree, site_map = fabric
        prices = node_prices_for(
            tree=tree, site_map=site_map, net_name=tree.name,
            prices=(1e-12,) * site_map.sites,
        )
        eligible = {
            n.name for n in tree.nodes() if n.is_internal and n.feasible
        }
        assert set(prices) == eligible
        assert all(p == 1e-12 for p in prices.values())

    def test_banned_sites_price_at_ban_price(self, fabric):
        tree, site_map = fabric
        eligible = sorted(
            n.name for n in tree.nodes() if n.is_internal and n.feasible
        )
        target_site = site_map.site_of(tree.name, eligible[0])
        prices = node_prices_for(
            tree=tree, site_map=site_map, net_name=tree.name,
            prices=(0.0,) * site_map.sites, banned=(target_site,),
        )
        assert prices, "ban produced no priced node"
        assert all(p == BAN_PRICE for p in prices.values())
        for node in prices:
            assert site_map.site_of(tree.name, node) == target_site

    def test_mixed_prices_emit_only_nonzero(self, fabric):
        tree, site_map = fabric
        vector = [0.0] * site_map.sites
        vector[0] = 3e-12
        prices = node_prices_for(
            tree=tree, site_map=site_map, net_name=tree.name,
            prices=tuple(vector),
        )
        for node, price in prices.items():
            assert site_map.site_of(tree.name, node) == 0
            assert price == 3e-12
