"""Unit contract of the price-update recurrence and the dual bound.

The subgradient machinery is tiny on purpose — a projected update and
one affine bound — so its whole surface is pinned exactly: projection
at zero, the step arithmetic, the stall-escalation schedule's
validation, and the ``L(lambda)`` identity.
"""

import pytest

from repro.errors import WorkloadError
from repro.fleet import PriceSchedule, lagrangian_bound, update_prices


class TestUpdatePrices:
    def test_overload_raises_the_price_by_step_times_excess(self):
        assert update_prices(
            (1.0, 0.0), usage=(3, 1), capacities=(1, 1), step=0.5
        ) == (2.0, 0.0)

    def test_slack_capacity_decays_toward_zero_and_projects(self):
        # site 0: price decays but stays positive; site 1: projected at 0.
        assert update_prices(
            (1.0, 0.25), usage=(0, 0), capacities=(1, 1), step=0.5
        ) == (0.5, 0.0)

    def test_zero_prices_stay_zero_without_violation(self):
        assert update_prices(
            (0.0,) * 3, usage=(1, 0, 1), capacities=(1, 1, 1), step=1.0
        ) == (0.0,) * 3

    def test_vector_length_mismatch_is_rejected(self):
        with pytest.raises(WorkloadError, match="disagree"):
            update_prices((0.0,), usage=(1, 2), capacities=(1,), step=1.0)


class TestLagrangianBound:
    def test_bound_is_priced_total_plus_price_dot_capacity(self):
        assert lagrangian_bound(
            2.0, prices=(0.5, 1.0), capacities=(2, 3)
        ) == pytest.approx(2.0 + 0.5 * 2 + 1.0 * 3)

    def test_zero_prices_bound_is_the_clean_total(self):
        # L(0) — the free dual bound every round-0 pass yields.
        assert lagrangian_bound(1.5, (0.0, 0.0), (4, 4)) == 1.5

    def test_vector_length_mismatch_is_rejected(self):
        with pytest.raises(WorkloadError, match="disagree"):
            lagrangian_bound(0.0, prices=(1.0,), capacities=(1, 2))


class TestPriceSchedule:
    def test_defaults_are_valid(self):
        schedule = PriceSchedule(step=1e-12)
        assert schedule.growth >= 1.0
        assert schedule.patience >= 1

    @pytest.mark.parametrize("step", [0.0, -1e-12])
    def test_step_must_be_positive(self, step):
        with pytest.raises(WorkloadError, match="step"):
            PriceSchedule(step=step)

    def test_growth_must_not_shrink(self):
        with pytest.raises(WorkloadError, match="growth"):
            PriceSchedule(step=1e-12, growth=0.5)

    def test_patience_must_be_at_least_one(self):
        with pytest.raises(WorkloadError, match="patience"):
            PriceSchedule(step=1e-12, patience=0)
