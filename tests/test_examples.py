"""Smoke tests: every example script must run clean end to end.

Examples are documentation that executes; this keeps them from rotting.
``design_sweep`` is trimmed via monkeypatching to keep the suite fast.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "all noise constraints satisfied." in out

    def test_noise_walkthrough(self, capsys):
        out = run_example("noise_walkthrough.py", capsys)
        assert "Noise(s1) = 40" in out
        assert "driverless ceiling" in out

    def test_multi_sink_repair(self, capsys):
        out = run_example("multi_sink_repair.py", capsys)
        assert "noise-aware flows are clean" in out
        assert "delay penalty" in out

    def test_aggressor_windows(self, capsys):
        out = run_example("aggressor_windows.py", capsys)
        assert "window-aware fix verified clean" in out

    def test_wire_sizing(self, capsys):
        out = run_example("wire_sizing.py", capsys)
        assert "INFEASIBLE" in out  # sizing alone cannot fix noise
        assert "buffers + widths" in out
        assert "dominates" in out

    def test_design_sweep_reduced(self, capsys, monkeypatch):
        import repro.experiments as experiments

        original = experiments.default_experiment

        def small(nets=60, **kwargs):
            return original(nets=12, **kwargs)

        monkeypatch.setattr(
            "repro.experiments.default_experiment", small
        )
        # design_sweep imports the symbol directly; patch the module it
        # pulls from before execution.
        out = run_example("design_sweep.py", capsys)
        assert "Table I" in out
        assert "Table IV" in out
