"""ECO frontier reuse: fingerprints, bit-identity, and the reuse gate.

The contract under test: a reference-engine run handed a
:class:`~repro.core.FrontierCache` produces results *bit-identical* to a
cold run — outcomes, counters, kept-peak included — while restoring
every unchanged subtree from the cache instead of recomputing it.  The
acceptance gate at the bottom pins the headline number: after editing
one subtree of a sizeable net, the re-run reuses at least half of the
node visits.
"""

from __future__ import annotations

import pytest

from repro import TreeBuilder, default_technology
from repro.api import dp_result
from repro.core import (
    DPOptions,
    ECO_HITS_COUNTER,
    ECO_MISSES_COUNTER,
    FrontierCache,
    subtree_fingerprints,
)
from repro.core.eco import context_key
from repro.obs import MetricsRegistry
from repro.tree.segmenting import segment_tree
from repro.units import FF, PS, UM


def balanced_tree(depth: int = 4, name: str = "eco_net"):
    """A full binary tree of the given depth with per-sink variety."""
    from repro import DriverCell

    tech = default_technology()
    builder = TreeBuilder(tech)
    builder.add_source(
        "so", driver=DriverCell("drv", resistance=250.0,
                                intrinsic_delay=30 * PS)
    )
    builder.add_internal("root")
    builder.add_wire("so", "root", length=800 * UM)
    frontier = ["root"]
    serial = 0
    for level in range(depth):
        next_frontier = []
        for parent in frontier:
            for _ in range(2):
                serial += 1
                if level == depth - 1:
                    node = f"s{serial}"
                    builder.add_sink(
                        node,
                        capacitance=(10 + (serial % 7) * 3) * FF,
                        noise_margin=0.8,
                        required_arrival=(1500 + 100 * (serial % 5)) * PS,
                    )
                else:
                    node = f"i{serial}"
                    builder.add_internal(node)
                builder.add_wire(
                    parent, node, length=(400 + 150 * (serial % 4)) * UM
                )
                next_frontier.append(node)
        frontier = next_frontier
    return builder.build(name)


def run_pair(tree, library, coupling, cache=None, **kwargs):
    return dp_result(
        tree, library, coupling, frontier_cache=cache, **kwargs
    )


def result_key(result):
    """Everything a bit-identity claim covers, telemetry included."""
    outcome = result.best(require_noise=False)
    return (
        outcome.slack,
        outcome.buffer_count,
        outcome.noise_feasible,
        tuple(sorted(
            (ins.node, ins.buffer.name) for ins in outcome.insertions
        )),
        result.candidates_generated,
        result.candidates_kept_peak,
    )


class TestFingerprints:
    def test_identical_trees_identical_fingerprints(self, library, coupling):
        context = context_key(library, coupling, DPOptions())
        a = subtree_fingerprints(balanced_tree(), context)
        b = subtree_fingerprints(balanced_tree(), context)
        assert a == b

    def test_edit_invalidates_only_the_path_to_the_root(
        self, library, coupling
    ):
        context = context_key(library, coupling, DPOptions())
        tree = balanced_tree()
        before = subtree_fingerprints(tree, context)
        edited = next(
            node for node in tree.postorder() if node.sink is not None
        )
        edited.parent_wire.resistance *= 1.25
        after = subtree_fingerprints(tree, context)
        changed = {
            name for name in before if before[name] != after[name]
        }
        # exactly the edited sink and its ancestors re-fingerprint
        assert edited.name in changed
        assert "so" in changed and "root" in changed
        sibling_subtrees = set(before) - changed
        assert len(sibling_subtrees) > len(changed)

    def test_context_changes_invalidate_everything(self, library, coupling):
        tree = balanced_tree()
        base = subtree_fingerprints(
            tree, context_key(library, coupling, DPOptions())
        )
        other = subtree_fingerprints(
            tree,
            context_key(
                library, coupling,
                DPOptions(max_buffers=2, track_counts=True),
            ),
        )
        assert all(base[name] != other[name] for name in base)


class TestBitIdentity:
    def test_populate_run_matches_cold_run(self, library, coupling):
        tree = segment_tree(balanced_tree(), 500 * UM)
        cold = run_pair(tree, library, coupling)
        cache = FrontierCache()
        warm = run_pair(tree, library, coupling, cache=cache)
        assert result_key(warm) == result_key(cold)
        assert cache.misses == len(cache)
        assert cache.hits == 0

    def test_full_rerun_hits_and_stays_identical(self, library, coupling):
        tree = segment_tree(balanced_tree(), 500 * UM)
        cold = run_pair(tree, library, coupling)
        cache = FrontierCache()
        run_pair(tree, library, coupling, cache=cache)
        rerun = run_pair(tree, library, coupling, cache=cache)
        assert result_key(rerun) == result_key(cold)
        assert cache.hits >= 1

    def test_post_edit_rerun_is_bit_identical_to_cold(
        self, library, coupling
    ):
        tree = segment_tree(balanced_tree(), 500 * UM)
        cache = FrontierCache()
        run_pair(tree, library, coupling, cache=cache)
        # the ECO: resize one mid-tree wire in place
        victim = next(
            node for node in tree.postorder()
            if node.parent_wire is not None and not node.is_source
        )
        victim.parent_wire.resistance *= 1.07
        victim.parent_wire.capacitance *= 1.07
        cold = run_pair(tree, library, coupling)
        warm = run_pair(tree, library, coupling, cache=cache)
        assert result_key(warm) == result_key(cold)

    def test_delay_mode_also_identical(self, library):
        tree = segment_tree(balanced_tree(), 500 * UM)
        cold = dp_result(tree, library, None, mode="delay")
        cache = FrontierCache()
        warm = dp_result(
            tree, library, None, mode="delay", frontier_cache=cache
        )
        assert result_key(warm) == result_key(cold)


class TestValidation:
    def test_requires_reference_engine(self, library, coupling, y_tree):
        with pytest.raises(ValueError, match="reference"):
            dp_result(
                y_tree, library, coupling,
                engine="fast", frontier_cache=FrontierCache(),
            )

    def test_rejects_collect_stats(self, library, coupling, y_tree):
        with pytest.raises(ValueError, match="collect_stats"):
            dp_result(
                y_tree, library, coupling,
                collect_stats=True, frontier_cache=FrontierCache(),
            )

    def test_rejects_non_cache_objects(self, library, coupling, y_tree):
        with pytest.raises(ValueError, match="lookup"):
            dp_result(
                y_tree, library, coupling, frontier_cache=object(),
            )


class TestMetricsAndGate:
    def test_hit_miss_counters_reach_the_registry(self, library, coupling):
        tree = segment_tree(balanced_tree(depth=3), 500 * UM)
        registry = MetricsRegistry()
        cache = FrontierCache().bind_metrics(registry)
        run_pair(tree, library, coupling, cache=cache)
        run_pair(tree, library, coupling, cache=cache)
        assert registry.counter(
            ECO_MISSES_COUNTER, "eco misses"
        ).value() == cache.misses
        assert registry.counter(
            ECO_HITS_COUNTER, "eco hits"
        ).value() == cache.hits
        assert cache.hits >= 1

    def test_single_subtree_edit_reuses_at_least_half(
        self, library, coupling
    ):
        """The acceptance gate: ECO after a 1-subtree edit reuses >= 50%
        of frontier-node visits, with exact (1e-9-tight, here exact)
        semantic equivalence to the cold run."""
        tree = segment_tree(balanced_tree(depth=5), 500 * UM)
        cache = FrontierCache()
        run_pair(tree, library, coupling, cache=cache)
        # edit one leaf-adjacent wire: the canonical small ECO
        sink = next(
            node for node in tree.postorder() if node.sink is not None
        )
        sink.parent_wire.resistance *= 1.11
        reused_before = cache.reused_nodes
        computed_before = cache.computed_nodes
        cold = run_pair(tree, library, coupling)
        warm = run_pair(tree, library, coupling, cache=cache)
        assert result_key(warm) == result_key(cold)
        reused = cache.reused_nodes - reused_before
        computed = cache.computed_nodes - computed_before
        assert reused + computed == sum(1 for _ in tree.postorder())
        assert reused / (reused + computed) >= 0.5, (
            f"ECO reused only {reused}/{reused + computed} node visits"
        )
