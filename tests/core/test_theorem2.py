"""Theorem 2: a delay-optimal buffering can still violate noise.

The paper proves existence; these tests construct concrete instances where
DelayOpt's slack-optimal solution violates the Devgan constraints while a
noise-aware solution (BuffOpt) exists and is clean — the empirical core of
Table III.
"""


from repro import (
    BufferLibrary,
    BufferType,
    buffopt,
    optimize_delay,
    two_pin_net,
)
from repro.core import violating_margin_bound
from repro.noise import has_noise_violation
from repro.units import FF, MM, NS, PS


class TestTheorem2Instances:
    def test_delay_optimal_violates_tight_margin(self, tech, driver, coupling):
        """Pick the margin just below the noise of DelayOpt's chosen spans
        (eq. 19): the delay-optimal solution must then violate."""
        # A slow (high intrinsic delay) repeater: delay-optimal spacing
        # exceeds the noise-safe spacing, exactly the eq.-19 regime.  The
        # huge buffer NM isolates the effect to the sink margin.
        library = BufferLibrary(
            [BufferType("b", 150.0, 20 * FF, 200 * PS, 10.0)]
        )
        net = two_pin_net(
            tech, 9 * MM, driver, 25 * FF, 0.8,
            required_arrival=2 * NS, segments=9, name="t2",
        )
        delay_solution = optimize_delay(net, library)
        assert delay_solution.buffer_count > 0
        # The existence argument: find the largest unbuffered span of the
        # delay solution and compute its noise; a sink margin below that
        # noise is violated no matter how the spans were timed.
        assert has_noise_violation(
            net, coupling, delay_solution.buffer_map()
        ), "expected the delay-optimal solution to violate the 0.8 V margin"

    def test_noise_aware_alternative_exists(self, tech, driver, coupling, library):
        """Same net: BuffOpt finds a clean solution, so the violation was
        avoidable — delay optimality, not infeasibility, is the culprit."""
        net = two_pin_net(
            tech, 9 * MM, driver, 25 * FF, 0.8,
            required_arrival=2 * NS, segments=9, name="t2b",
        )
        delay_solution = optimize_delay(net, library)
        noise_solution = buffopt(net, library, coupling)
        assert not has_noise_violation(
            net, coupling, noise_solution.buffer_map()
        )
        # and on this instance delay-only actually fails:
        if has_noise_violation(net, coupling, delay_solution.buffer_map()):
            assert delay_solution.buffer_map() != noise_solution.buffer_map()

    def test_margin_bound_predicts_violation(self, tech, coupling):
        """eq. 19 arithmetic: margins below the bound fail, above pass."""
        unit_r = tech.unit_resistance
        unit_i = coupling.unit_current(tech.unit_capacitance)
        span = 3 * MM
        bound = violating_margin_bound(150.0, unit_r, unit_i, span)

        from repro import DriverCell, analyze_noise

        for margin, expect_violation in (
            (bound * 0.9, True),
            (bound * 1.1, False),
        ):
            net = two_pin_net(
                tech, span, DriverCell("d", 150.0), 0.0, margin, name="m"
            )
            report = analyze_noise(net, coupling)
            assert report.violated == expect_violation, margin
