"""Tests for repro.core.solution — discrete and continuous solutions."""

import math

import pytest

from repro import BufferType, TreeStructureError, two_pin_net
from repro.core import BufferSolution, ContinuousSolution, PlacedBuffer
from repro.units import FF, MM, PS


@pytest.fixture
def buf():
    return BufferType("b", 100.0, 10 * FF, 20 * PS, 0.8)


@pytest.fixture
def inv():
    return BufferType("i", 100.0, 10 * FF, 20 * PS, 0.8, inverting=True)


class TestBufferSolution:
    def test_counts(self, tech, driver, buf):
        net = two_pin_net(tech, 4 * MM, driver, 10 * FF, 0.8, segments=4)
        solution = BufferSolution(net, {"n1": buf, "n3": buf})
        assert solution.buffer_count == 2
        assert solution.buffer_map() == {"n1": buf, "n3": buf}

    def test_rejects_sink_assignment(self, tech, driver, buf):
        net = two_pin_net(tech, 4 * MM, driver, 10 * FF, 0.8, segments=2)
        with pytest.raises(TreeStructureError):
            BufferSolution(net, {"si": buf})

    def test_rejects_infeasible_node(self, tech, driver, buf):
        from repro import TreeBuilder

        builder = TreeBuilder(tech)
        builder.add_source("so", driver=driver)
        builder.add_internal("x", feasible=False)
        builder.add_sink("s", capacitance=1 * FF, noise_margin=0.8)
        builder.add_wire("so", "x", length=1 * MM)
        builder.add_wire("x", "s", length=1 * MM)
        with pytest.raises(TreeStructureError):
            BufferSolution(builder.build(), {"x": buf})

    def test_sink_inversions(self, tech, driver, buf, inv):
        net = two_pin_net(tech, 4 * MM, driver, 10 * FF, 0.8, segments=4)
        solution = BufferSolution(net, {"n1": inv, "n2": inv, "n3": buf})
        assert solution.sink_inversions() == {"si": 2}

    def test_describe(self, tech, driver, buf):
        net = two_pin_net(tech, 4 * MM, driver, 10 * FF, 0.8, segments=2)
        assert "no buffers" in BufferSolution(net, {}).describe()
        text = BufferSolution(net, {"n1": buf}).describe()
        assert "n1" in text and "b" in text


class TestContinuousRealize:
    def test_single_placement_splits_wire(self, tech, driver, buf):
        net = two_pin_net(tech, 4 * MM, driver, 10 * FF, 0.8)
        placement = PlacedBuffer("so", "si", 1 * MM, buf)
        buffered, solution = ContinuousSolution(net, (placement,)).realize()
        assert solution.buffer_count == 1
        assert math.isclose(buffered.total_wire_length(), 4 * MM)
        site = next(iter(solution.buffer_map()))
        wire_below = buffered.node("si").parent_wire
        assert wire_below.parent.name == site
        assert math.isclose(wire_below.length, 1 * MM)

    def test_multiple_placements_ordered(self, tech, driver, buf):
        net = two_pin_net(tech, 6 * MM, driver, 10 * FF, 0.8)
        placements = (
            PlacedBuffer("so", "si", 1 * MM, buf),
            PlacedBuffer("so", "si", 4 * MM, buf),
        )
        buffered, solution = ContinuousSolution(net, placements).realize()
        assert solution.buffer_count == 2
        lengths = sorted(w.length for w in buffered.wires())
        assert [round(l / MM, 6) for l in lengths] == [1.0, 2.0, 3.0]

    def test_electricals_distribute_proportionally(self, tech, driver, buf):
        net = two_pin_net(tech, 4 * MM, driver, 10 * FF, 0.8)
        original = next(net.wires())
        buffered, _ = ContinuousSolution(
            net, (PlacedBuffer("so", "si", 1 * MM, buf),)
        ).realize()
        total_r = sum(w.resistance for w in buffered.wires())
        total_c = sum(w.capacitance for w in buffered.wires())
        assert math.isclose(total_r, original.resistance, rel_tol=1e-12)
        assert math.isclose(total_c, original.capacitance, rel_tol=1e-12)

    def test_zero_distance_placement(self, tech, driver, buf):
        """Buffer right above the sink: zero-length lower piece."""
        net = two_pin_net(tech, 4 * MM, driver, 10 * FF, 0.8)
        buffered, solution = ContinuousSolution(
            net, (PlacedBuffer("so", "si", 0.0, buf),)
        ).realize()
        wire_below = buffered.node("si").parent_wire
        assert wire_below.length == 0.0
        assert wire_below.parent.name in solution.buffer_map()

    def test_full_length_placement(self, tech, driver, buf):
        """Buffer right after the source: zero-length upper piece."""
        net = two_pin_net(tech, 4 * MM, driver, 10 * FF, 0.8)
        buffered, solution = ContinuousSolution(
            net, (PlacedBuffer("so", "si", 4 * MM, buf),)
        ).realize()
        site = next(iter(solution.buffer_map()))
        upper = buffered.node(site).parent_wire
        assert upper.parent.name == "so"
        assert upper.length == 0.0

    def test_beyond_length_rejected(self, tech, driver, buf):
        net = two_pin_net(tech, 4 * MM, driver, 10 * FF, 0.8)
        with pytest.raises(TreeStructureError):
            ContinuousSolution(
                net, (PlacedBuffer("so", "si", 5 * MM, buf),)
            ).realize()

    def test_unknown_wire_rejected(self, tech, driver, buf):
        net = two_pin_net(tech, 4 * MM, driver, 10 * FF, 0.8)
        with pytest.raises(TreeStructureError):
            ContinuousSolution(
                net, (PlacedBuffer("a", "b", 1 * MM, buf),)
            ).realize()

    def test_negative_distance_rejected(self, buf):
        with pytest.raises(TreeStructureError):
            PlacedBuffer("a", "b", -1.0, buf)

    def test_empty_solution_realizes_to_copy(self, tech, driver):
        net = two_pin_net(tech, 4 * MM, driver, 10 * FF, 0.8)
        buffered, solution = ContinuousSolution(net, ()).realize()
        assert solution.buffer_count == 0
        assert len(buffered) == len(net)

    def test_describe(self, tech, driver, buf):
        net = two_pin_net(tech, 4 * MM, driver, 10 * FF, 0.8)
        empty = ContinuousSolution(net, ())
        assert "no buffers" in empty.describe()
        full = ContinuousSolution(net, (PlacedBuffer("so", "si", 1 * MM, buf),))
        assert "b@so->si" in full.describe()
