"""The unified Objective API and its parity-pinned legacy shims.

Satellite contracts of the Objective redesign:

* the :class:`~repro.core.objective.Objective` grammar —
  ``parse``/``describe`` round-trips, ``to_json``/``from_json`` with
  unknown-key rejection, the exact legacy mapping;
* every deprecated spelling (``dp_result(mode=...)``,
  ``SessionOptions(mode=...)``, ``DPResult.best`` /
  ``fewest_buffers`` / ``minimize_cost``) warns *and* stays
  bit-identical to its Objective-spelled twin — shims forward, they do
  not fork;
* ``BatchConfig`` resolution: mode/objective mutual exclusion,
  pareto rejection, and the checkpoint-fingerprint schema stability
  that lets pre-objective journals resume (legacy-shaped objectives
  emit no ``"objective"`` key).
"""

import pathlib
import sys

import pytest

_HERE = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(_HERE))

from repro import (  # noqa: E402
    CouplingModel,
    default_buffer_library,
    default_technology,
)
from repro.api import (  # noqa: E402
    Session,
    SessionOptions,
    dp_result,
    resolve_objective,
)
from repro.batch.optimizer import BatchConfig  # noqa: E402
from repro.core.objective import (  # noqa: E402
    OBJECTIVE_MODES,
    POWER_SELECTIONS,
    SELECTION_RULES,
    Objective,
)
from repro.errors import WorkloadError  # noqa: E402
from repro.verify.treegen import seeded_tree  # noqa: E402

LIBRARY = default_buffer_library()
COUPLING = CouplingModel.estimation_mode(default_technology())


def _signature(result):
    return tuple(
        (o.buffer_count, o.slack, o.noise_feasible, o.power,
         tuple(sorted((i.node, i.buffer.name) for i in o.insertions)))
        for o in result.outcomes
    )


class TestGrammar:
    def test_bare_mode_is_the_legacy_objective(self):
        for mode in OBJECTIVE_MODES:
            assert Objective.parse(mode) == Objective.legacy(mode)
            assert Objective.parse(mode).is_legacy()

    @pytest.mark.parametrize("spec", [
        "buffopt/min-power",
        "delay/power-capped/power_cap=0.0002",
        "delay/max-slack/min_slack=0.1/require_noise=false",
        "buffopt/pareto",
        "buffopt/fewest-buffers/min_slack=1e-11",
    ])
    def test_describe_parse_round_trip(self, spec):
        objective = Objective.parse(spec)
        assert Objective.parse(objective.describe()) == objective

    @pytest.mark.parametrize("bad", [
        "",
        "noise",
        "buffopt/min-power/max-slack",
        "buffopt/unknown-rule",
        "buffopt/min_slack=abc",
        "buffopt/require_noise=maybe",
        "buffopt/frobnicate=1",
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            Objective.parse(bad)

    def test_json_round_trip_and_unknown_key_rejection(self):
        objective = Objective(
            mode="buffopt", selection="power-capped", power_cap=2e-4
        )
        payload = objective.to_json()
        assert Objective.from_json(payload) == objective
        payload["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            Objective.from_json(payload)

    @pytest.mark.parametrize("kwargs, match", [
        (dict(mode="warp"), "mode"),
        (dict(mode="delay", selection="sparkle"), "selection"),
        (dict(mode="delay", min_slack="soon"), "min_slack"),
        (dict(mode="delay", selection="power-capped",
              power_cap="lots"), "power_cap"),
        (dict(mode="delay", selection="power-capped",
              power_cap=-1.0), "power_cap"),
        (dict(mode="delay", selection="min-power",
              power_cap=1.0), "power_cap"),
        (dict(mode="delay", selection="power-capped"), "power_cap"),
        (dict(mode="delay", require_noise="yes"), "require_noise"),
    ])
    def test_constructor_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            Objective(**kwargs)

    def test_legacy_rejects_unknown_modes(self):
        with pytest.raises(ValueError, match="legacy"):
            Objective.legacy("noise")

    def test_from_json_validates_field_types(self):
        with pytest.raises(ValueError, match="min_slack"):
            Objective.from_json(
                {"mode": "delay", "selection": "max-slack",
                 "min_slack": "abc"}
            )
        with pytest.raises(ValueError, match="require_noise"):
            Objective.from_json(
                {"mode": "delay", "selection": "max-slack",
                 "require_noise": "sometimes"}
            )
        with pytest.raises(ValueError):
            Objective.from_json("delay/max-slack")

    def test_power_selections_are_flagged_power_aware(self):
        for selection in SELECTION_RULES:
            objective = Objective(
                mode="delay",
                selection=selection,
                power_cap=1.0 if selection == "power-capped" else None,
            )
            assert objective.power_aware == (selection in POWER_SELECTIONS)


class TestResolveObjective:
    def test_conflicting_mode_and_objective_rejected(self):
        with pytest.raises(ValueError, match="conflicts"):
            resolve_objective(
                "delay", Objective.legacy("buffopt"), owner="test"
            )

    def test_matching_mode_alongside_objective_is_tolerated(self):
        objective = Objective.legacy("delay")
        assert resolve_objective("delay", objective, owner="test") \
            is objective

    def test_bare_mode_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="objective"):
            resolved = resolve_objective("delay", None, owner="test")
        assert resolved == Objective.legacy("delay")

    def test_neither_defaults_to_buffopt(self):
        assert resolve_objective(None, None, owner="test") == \
            Objective.legacy("buffopt")


class TestShimParity:
    """Deprecated spellings warn and stay bit-identical."""

    def test_dp_result_mode_kwarg(self):
        for mode in ("delay", "buffopt"):
            for seed in range(5):
                tree = seeded_tree(seed, max_internal=4, with_rats=True)
                with pytest.warns(DeprecationWarning):
                    legacy = dp_result(tree, LIBRARY, COUPLING, mode=mode)
                modern = dp_result(
                    tree, LIBRARY, COUPLING,
                    objective=Objective.legacy(mode),
                )
                assert _signature(legacy) == _signature(modern), (
                    f"{mode} seed {seed}"
                )

    def test_dp_result_selection_shims(self):
        tree = seeded_tree(3, max_internal=4, with_rats=True)
        result = dp_result(
            tree, LIBRARY, COUPLING, objective=Objective.legacy("buffopt")
        )
        with pytest.warns(DeprecationWarning, match="max-slack"):
            best = result.best()
        assert best == result.select(
            Objective(mode="buffopt", selection="max-slack")
        )
        with pytest.warns(DeprecationWarning, match="fewest-buffers"):
            fewest = result.fewest_buffers()
        assert fewest == result.select(Objective.legacy("buffopt"))
        with pytest.warns(DeprecationWarning):
            cheapest = result.minimize_cost(lambda buffer: 1.0)
        assert cheapest == fewest

    def test_session_options_mode_kwarg(self):
        with pytest.warns(DeprecationWarning):
            legacy = SessionOptions(mode="delay")
        modern = SessionOptions(objective=Objective.legacy("delay"))
        assert legacy.objective == modern.objective
        assert legacy.mode == "delay"

    def test_session_runs_identical_under_both_spellings(self):
        tree = seeded_tree(7, max_internal=4, with_rats=True)
        solutions = []
        for options in (
            SessionOptions(objective=Objective.legacy("buffopt")),
        ):
            with Session(options, library=LIBRARY, coupling=COUPLING) \
                    as session:
                solutions.append(
                    session.optimize(tree).solution().assignment
                )
        with pytest.warns(DeprecationWarning):
            options = SessionOptions(mode="buffopt")
        with Session(options, library=LIBRARY, coupling=COUPLING) as session:
            solutions.append(session.optimize(tree).solution().assignment)
        assert solutions[0] == solutions[1]


class TestBatchConfigObjective:
    def test_objective_pins_the_legacy_mirrors(self):
        objective = Objective(
            mode="delay", selection="min-power", min_slack=0.05
        )
        config = BatchConfig(objective=objective)
        assert config.objective == objective
        assert config.mode == "delay"
        assert config.min_slack == 0.05

    def test_conflicting_mode_and_objective_rejected(self):
        with pytest.raises(WorkloadError, match="conflicts"):
            BatchConfig(mode="delay", objective=Objective.legacy("buffopt"))

    def test_pareto_objective_rejected(self):
        with pytest.raises(WorkloadError, match="pareto"):
            BatchConfig(
                objective=Objective(mode="buffopt", selection="pareto")
            )

    def test_legacy_objectives_keep_the_pre_objective_fingerprint(self):
        """Checkpoints journaled before the Objective API must resume:
        a legacy-shaped objective emits the exact old schema."""
        from repro.batch.optimizer import BatchOptimizer
        from repro.workloads import WorkloadConfig

        workload = WorkloadConfig(nets=4, seed=11)
        with pytest.warns(DeprecationWarning):
            old = BatchOptimizer(
                config=BatchConfig(mode="delay"), workload=workload
            )._fingerprint()
        new = BatchOptimizer(
            config=BatchConfig(objective=Objective.legacy("delay")),
            workload=workload,
        )._fingerprint()
        assert old == new
        assert "objective" not in new
        modern = BatchOptimizer(
            config=BatchConfig(objective=Objective(
                mode="delay", selection="min-power"
            )),
            workload=workload,
        )._fingerprint()
        assert modern["objective"] == {
            "mode": "delay", "selection": "min-power"
        }
