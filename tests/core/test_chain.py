"""Tests for repro.core._chain — the persistent cons list."""

from repro.core._chain import Chain


class TestChain:
    def test_empty(self):
        assert Chain.size(None) == 0
        assert Chain.to_tuple(None) == ()

    def test_push_order(self):
        chain = Chain.push(Chain.push(None, "a"), "b")
        assert Chain.to_tuple(chain) == ("a", "b")
        assert Chain.size(chain) == 2

    def test_concat(self):
        left = Chain.push(Chain.push(None, "a"), "b")
        right = Chain.push(None, "c")
        merged = Chain.concat(left, right)
        assert Chain.to_tuple(merged) == ("c", "a", "b")
        assert Chain.size(merged) == 3

    def test_concat_with_empty(self):
        chain = Chain.push(None, "x")
        assert Chain.concat(None, chain) is chain
        assert Chain.to_tuple(Chain.concat(chain, None)) == ("x",)

    def test_structural_sharing(self):
        base = Chain.push(None, "shared")
        a = Chain.push(base, "a")
        b = Chain.push(base, "b")
        assert a.tail is base and b.tail is base
        assert Chain.to_tuple(a) == ("shared", "a")
        assert Chain.to_tuple(b) == ("shared", "b")

    def test_long_chain(self):
        chain = None
        for i in range(1000):
            chain = Chain.push(chain, i)
        assert Chain.size(chain) == 1000
        assert Chain.to_tuple(chain)[0] == 0
        assert Chain.to_tuple(chain)[-1] == 999
