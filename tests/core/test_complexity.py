"""Deterministic complexity checks via the engine's candidate counters.

Wall-clock scaling belongs to the benchmark suite; these tests pin the
*candidate counts*, which are deterministic, to the complexity story the
paper tells: pruning keeps per-node lists small, so total work grows
essentially linearly with tree size for realistic nets (the O(n^2) bound
is a worst case).
"""

import importlib.util
import pathlib

import numpy as np
import pytest

from repro import (
    CouplingModel,
    DPOptions,
    DriverCell,
    SinkSite,
    default_buffer_library,
    default_technology,
    run_dp,
    segment_tree,
    steiner_tree,
    two_pin_net,
)
from repro.units import FF, MM, NS, UM

TECH = default_technology()
LIBRARY = default_buffer_library()
COUPLING = CouplingModel.estimation_mode(TECH)
DRIVER = DriverCell("d", 250.0, 30e-12)


def chain(segments):
    return two_pin_net(
        TECH, 12 * MM, DRIVER, 20 * FF, 0.8,
        required_arrival=3 * NS, segments=segments,
    )


def fan(sinks):
    rng = np.random.default_rng(sinks)
    sites = [
        SinkSite(
            f"s{i}",
            (float(rng.uniform(0, 8 * MM)), float(rng.uniform(0, 8 * MM))),
            15 * FF, 0.8, 3 * NS,
        )
        for i in range(sinks)
    ]
    return segment_tree(
        steiner_tree(TECH, (0.0, 0.0), sites, driver=DRIVER), 500 * UM
    )


class TestChainScaling:
    def test_generated_grows_linearly_on_chains(self):
        small = run_dp(chain(16), LIBRARY, COUPLING).candidates_generated
        large = run_dp(chain(128), LIBRARY, COUPLING).candidates_generated
        ratio = large / small
        assert ratio <= (128 / 16) * 1.5  # near-linear, not quadratic

    def test_kept_lists_stay_bounded(self):
        for segments in (16, 64, 128):
            result = run_dp(chain(segments), LIBRARY, COUPLING)
            assert result.candidates_kept_peak < 40 * segments ** 0.5 + 200

    def test_noise_mode_generates_no_more(self):
        plain = run_dp(chain(64), LIBRARY, COUPLING)
        noisy = run_dp(
            chain(64), LIBRARY, COUPLING, DPOptions(noise_aware=True)
        )
        assert noisy.candidates_generated <= plain.candidates_generated


class TestFanoutScaling:
    def test_generated_tracks_node_count(self):
        trees = [fan(8), fan(32)]
        counts = [
            run_dp(t, LIBRARY, COUPLING).candidates_generated for t in trees
        ]
        node_ratio = len(trees[1]) / len(trees[0])
        assert counts[1] / counts[0] <= node_ratio * 2.0

    def test_count_tracking_costs_more_but_bounded(self):
        tree = fan(16)
        plain = run_dp(tree, LIBRARY, COUPLING)
        tracked = run_dp(
            tree, LIBRARY, COUPLING,
            DPOptions(track_counts=True, max_buffers=4),
        )
        assert tracked.candidates_generated >= plain.candidates_generated / 2
        # capped counts keep the blow-up bounded
        assert tracked.candidates_generated <= plain.candidates_generated * 30


class TestFastEngineScaling:
    """The fast engine's candidate population scales like the reference's.

    Bit-identity (asserted elsewhere) already implies the *generated*
    counts match; these tests pin the empirical growth rate itself, so a
    future fast-engine change that kept the answers right but regressed
    the pruning discipline (e.g. pruning later, generating more) would
    fail here before it showed up as wall-clock.
    """

    def test_generated_matches_reference_on_doubling_chains(self):
        for segments in (16, 32, 64, 128):
            tree = chain(segments)
            reference = run_dp(tree, LIBRARY, COUPLING)
            fast = run_dp(
                tree, LIBRARY, COUPLING, DPOptions(engine="fast")
            )
            assert fast.candidates_generated == reference.candidates_generated
            assert fast.candidates_kept_peak == reference.candidates_kept_peak

    def test_fast_growth_no_worse_than_reference(self):
        sizes = (16, 32, 64, 128)
        generated = {"reference": [], "fast": []}
        for engine in generated:
            for segments in sizes:
                result = run_dp(
                    chain(segments), LIBRARY, COUPLING,
                    DPOptions(engine=engine),
                )
                generated[engine].append(result.candidates_generated)
        # Per-doubling growth factors must not exceed the reference's
        # (they are equal today; <= keeps the test meaningful if the
        # engines ever legitimately diverge in generation order).
        for step in range(len(sizes) - 1):
            fast_ratio = generated["fast"][step + 1] / generated["fast"][step]
            ref_ratio = (
                generated["reference"][step + 1]
                / generated["reference"][step]
            )
            assert fast_ratio <= ref_ratio * 1.01

    def test_fast_generated_grows_linearly_on_chains(self):
        small = run_dp(
            chain(16), LIBRARY, COUPLING, DPOptions(engine="fast")
        ).candidates_generated
        large = run_dp(
            chain(128), LIBRARY, COUPLING, DPOptions(engine="fast")
        ).candidates_generated
        assert large / small <= (128 / 16) * 1.5  # near-linear, like ref

    def test_fast_noise_mode_generates_no_more(self):
        plain = run_dp(
            chain(64), LIBRARY, COUPLING, DPOptions(engine="fast")
        )
        noisy = run_dp(
            chain(64), LIBRARY, COUPLING,
            DPOptions(noise_aware=True, engine="fast"),
        )
        assert noisy.candidates_generated <= plain.candidates_generated

    def test_fast_fanout_tracks_node_count(self):
        trees = [fan(8), fan(32)]
        counts = [
            run_dp(
                t, LIBRARY, COUPLING, DPOptions(engine="fast")
            ).candidates_generated
            for t in trees
        ]
        node_ratio = len(trees[1]) / len(trees[0])
        assert counts[1] / counts[0] <= node_ratio * 2.0


def _bench_engines():
    """Import the benchmark module for its bench-point net constructor."""
    path = (
        pathlib.Path(__file__).resolve().parents[2]
        / "benchmarks" / "bench_engines.py"
    )
    spec = importlib.util.spec_from_file_location("bench_engines", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestLiShiEngineScaling:
    """The lishi engine's empirical growth matches its O(b n^2) story.

    Unlike the fast engine, lishi is *not* population-identical to the
    reference in count-tracked mode: hull-mediated buffering generates
    one buffered candidate per (group, buffer) argmax instead of the
    full cross product, so its generated counter must sit *strictly
    below* the fast engine's at the benchmark point — that gap is the
    complexity claim made measurable.
    """

    @pytest.fixture(scope="class")
    def bench(self):
        module = _bench_engines()
        library = LIBRARY.restricted(list(module.EIGHT_BUFFER_NAMES))
        return module.chain_net, library

    def _generated(self, tree, library, engine):
        return run_dp(
            tree, library, COUPLING,
            DPOptions(engine=engine, track_counts=True, max_buffers=4),
        ).candidates_generated

    def test_lishi_growth_consistent_with_quadratic_bound(self, bench):
        chain_net, library = bench
        sizes = (60, 125, 250, 500)
        generated = [
            self._generated(chain_net(n), library, "lishi") for n in sizes
        ]
        # O(b n^2) allows at most ~4x per doubling; measured growth is
        # ~2x (near-linear after pruning), so 4.2 leaves slack for the
        # bound while failing any super-quadratic regression.
        for step in range(len(sizes) - 1):
            size_ratio = sizes[step + 1] / sizes[step]
            growth = generated[step + 1] / generated[step]
            assert growth <= size_ratio ** 2 * 1.05, (
                f"{sizes[step]}->{sizes[step + 1]}: generated grew "
                f"{growth:.2f}x, above the quadratic bound"
            )

    def test_lishi_generates_strictly_below_fast_at_bench_point(self, bench):
        chain_net, library = bench
        tree = chain_net(500)
        lishi = self._generated(tree, library, "lishi")
        fast = self._generated(tree, library, "fast")
        assert lishi < fast, (
            f"lishi generated {lishi} candidates at the 500-sink bench "
            f"point, not strictly below fast's {fast}"
        )

    def test_lishi_matches_reference_counts_on_plain_chains(self):
        # without count tracking the hull argmax degenerates to the same
        # single-winner population as the reference scan
        for segments in (16, 64):
            tree = chain(segments)
            reference = run_dp(tree, LIBRARY, COUPLING)
            lishi = run_dp(
                tree, LIBRARY, COUPLING, DPOptions(engine="lishi")
            )
            assert (
                lishi.candidates_generated == reference.candidates_generated
            )

    def test_lishi_fanout_generates_no_more_than_fast(self):
        for sinks in (8, 32):
            tree = fan(sinks)
            lishi = run_dp(
                tree, LIBRARY, COUPLING, DPOptions(engine="lishi")
            ).candidates_generated
            fast = run_dp(
                tree, LIBRARY, COUPLING, DPOptions(engine="fast")
            ).candidates_generated
            assert lishi <= fast


class TestSizingScaling:
    def test_width_menu_multiplies_generation_linearly(self):
        from repro.core import WireSizingSpec

        tree = chain(32)
        plain = run_dp(tree, LIBRARY, COUPLING).candidates_generated
        sized_result = run_dp(
            tree, LIBRARY, COUPLING,
            DPOptions(sizing=WireSizingSpec(widths=(1.0, 1.5, 2.0))),
        )
        # generation counts each wire variant (plain wire application is
        # not counted), so allow a generous constant; the *kept* frontier
        # is the real memory cost and must stay within ~2x per width.
        assert sized_result.candidates_generated <= plain * 25
        plain_kept = run_dp(tree, LIBRARY, COUPLING).candidates_kept_peak
        assert sized_result.candidates_kept_peak <= plain_kept * 6
