"""Tests for repro.core.stages — restoring-stage decomposition."""

import math

import pytest

from repro import AnalysisError, BufferType, decompose_stages, two_pin_net
from repro.units import FF, MM, PS


@pytest.fixture
def buf():
    return BufferType("b", 120.0, 12 * FF, 20 * PS, 0.8)


class TestDecompose:
    def test_unbuffered_single_stage(self, y_tree):
        stages = decompose_stages(y_tree)
        assert len(stages) == 1
        stage = stages[0]
        assert stage.is_source_stage
        assert stage.resistance == y_tree.driver.resistance
        assert {s.node.name for s in stage.sinks} == {"s1", "s2"}
        assert stage.wire_count() == 3

    def test_buffered_creates_m_plus_1_stages(self, tech, driver, buf):
        net = two_pin_net(tech, 6 * MM, driver, 10 * FF, 0.8, segments=3)
        stages = decompose_stages(net, {"n1": buf, "n2": buf})
        assert len(stages) == 3

    def test_source_stage_first(self, tech, driver, buf):
        net = two_pin_net(tech, 6 * MM, driver, 10 * FF, 0.8, segments=3)
        stages = decompose_stages(net, {"n1": buf})
        assert stages[0].is_source_stage
        assert not stages[1].is_source_stage
        assert stages[1].resistance == buf.resistance

    def test_buffer_input_is_stage_sink(self, tech, driver, buf):
        net = two_pin_net(tech, 6 * MM, driver, 10 * FF, 0.8, segments=3)
        stages = decompose_stages(net, {"n1": buf})
        source_stage = stages[0]
        assert len(source_stage.sinks) == 1
        sink = source_stage.sinks[0]
        assert sink.node.name == "n1"
        assert sink.is_buffer_input
        assert sink.noise_margin == buf.noise_margin
        assert sink.capacitance == buf.input_capacitance

    def test_stage_wires_partition_tree(self, tech, driver, buf):
        net = two_pin_net(tech, 8 * MM, driver, 10 * FF, 0.8, segments=4)
        stages = decompose_stages(net, {"n1": buf, "n3": buf})
        all_wires = [w.name for stage in stages for w in stage.wires]
        assert sorted(all_wires) == sorted(w.name for w in net.wires())

    def test_wires_in_parent_before_child_order(self, tech, driver, buf):
        net = two_pin_net(tech, 8 * MM, driver, 10 * FF, 0.8, segments=4)
        for stage in decompose_stages(net, {"n2": buf}):
            seen = {stage.root.name}
            for wire in stage.wires:
                assert wire.parent.name in seen
                seen.add(wire.child.name)

    def test_explicit_driver_resistance(self, y_tree):
        stages = decompose_stages(y_tree, driver_resistance=777.0)
        assert stages[0].resistance == 777.0

    def test_missing_driver_raises(self, tech, buf):
        from repro import TreeBuilder

        builder = TreeBuilder(tech)
        builder.add_source("so")
        builder.add_sink("s", capacitance=1 * FF, noise_margin=0.8)
        builder.add_wire("so", "s", length=1 * MM)
        with pytest.raises(AnalysisError):
            decompose_stages(builder.build())

    def test_buffer_on_sink_rejected(self, y_tree, buf):
        with pytest.raises(AnalysisError):
            decompose_stages(y_tree, {"s1": buf})

    def test_real_sink_capacitance_carried(self, y_tree):
        stage = decompose_stages(y_tree)[0]
        caps = {s.node.name: s.capacitance for s in stage.sinks}
        assert math.isclose(caps["s1"], 15 * FF)
        assert math.isclose(caps["s2"], 25 * FF)
