"""DPResult selection semantics: minimize_cost and require_noise edges.

``minimize_cost`` searches the count-indexed frontier: exact for uniform
costs (where it reduces to Problem 3), the standard frontier heuristic
for non-uniform costs.  These tests pin the tie-breaking rules and the
fallback paths, plus ``best(require_noise=True)`` on nets where no
noise-feasible outcome exists at all.
"""

import pytest

from repro.core.noise_delay import buffopt_result
from repro.core.van_ginneken import delay_opt_result
from repro.errors import InfeasibleError
from repro.tree import two_pin_net
from repro.units import FF, PS, UM


@pytest.fixture
def frontier(tech, driver, library):
    """A delay-mode frontier with several buffer counts represented."""
    net = two_pin_net(
        tech, 7000 * UM, driver, sink_capacitance=25 * FF,
        noise_margin=0.8, required_arrival=1500 * PS, segments=5,
        name="frontier_host",
    )
    result = delay_opt_result(net, library)
    assert len({o.buffer_count for o in result.outcomes}) >= 3
    return result


def _total(outcome, cost):
    return sum(cost(ins.buffer) for ins in outcome.insertions)


class TestMinimizeCost:
    def test_uniform_cost_reduces_to_fewest_buffers(self, frontier):
        chosen = frontier.minimize_cost(lambda b: 1.0)
        reference = frontier.fewest_buffers()
        assert chosen.buffer_count == reference.buffer_count
        assert chosen.slack == reference.slack

    def test_zero_cost_tie_breaks_on_slack(self, frontier):
        # every meeting outcome costs 0.0; the -slack tie-break must
        # pick the max-slack one, i.e. agree with best()
        chosen = frontier.minimize_cost(lambda b: 0.0)
        assert chosen.slack == frontier.best(require_noise=False).slack

    def test_nonuniform_cost_beats_slack_driven_selections(self, frontier):
        def area(buffer):
            return buffer.input_capacitance

        chosen = frontier.minimize_cost(area)
        assert chosen.slack >= 0.0
        best = frontier.best(require_noise=False)
        fewest = frontier.fewest_buffers()
        assert _total(chosen, area) <= _total(best, area)
        assert _total(chosen, area) <= _total(fewest, area)
        # and it is the frontier-wide minimum among meeting outcomes
        meeting = [o for o in frontier.outcomes if o.slack >= 0.0]
        assert _total(chosen, area) == min(
            _total(o, area) for o in meeting
        )

    def test_equal_cost_prefers_more_slack(self, frontier):
        def area(buffer):
            return buffer.input_capacitance

        chosen = frontier.minimize_cost(area)
        meeting = [o for o in frontier.outcomes if o.slack >= 0.0]
        cheapest = min(_total(o, area) for o in meeting)
        ties = [o for o in meeting if _total(o, area) == cheapest]
        assert chosen.slack == max(o.slack for o in ties)

    def test_unreachable_min_slack_falls_back_to_best(self, frontier):
        fallback = frontier.minimize_cost(lambda b: 1.0, min_slack=1.0)
        assert fallback.slack == frontier.best(require_noise=False).slack
        assert fallback.slack < 1.0


class TestRequireNoise:
    @pytest.fixture
    def hopeless(self, tech, driver, library, coupling):
        """A coupled net whose sink margin no insertion can satisfy."""
        net = two_pin_net(
            tech, 8000 * UM, driver, sink_capacitance=20 * FF,
            noise_margin=1e-9, required_arrival=2000 * PS, segments=4,
            name="hopeless_noise",
        )
        return buffopt_result(net, library, coupling)

    def test_best_raises_without_noise_feasible_outcome(self, hopeless):
        with pytest.raises(InfeasibleError, match="no noise-feasible"):
            hopeless.best(require_noise=True)

    def test_fewest_and_cost_raise_too(self, hopeless):
        with pytest.raises(InfeasibleError):
            hopeless.fewest_buffers(require_noise=True)
        with pytest.raises(InfeasibleError):
            hopeless.minimize_cost(lambda b: 1.0, require_noise=True)

    def test_noise_aware_run_has_empty_frontier(
        self, hopeless, tech, driver, library
    ):
        # the noise-aware engine prunes infeasible candidates outright,
        # so even require_noise=False cannot recover an outcome — the
        # remediation path is a delay-mode rerun
        assert hopeless.outcomes == ()
        with pytest.raises(InfeasibleError):
            hopeless.best(require_noise=False)
        net = two_pin_net(
            tech, 8000 * UM, driver, sink_capacitance=20 * FF,
            noise_margin=1e-9, required_arrival=2000 * PS, segments=4,
        )
        assert delay_opt_result(net, library).best(
            require_noise=False
        ) is not None

    def test_best_tie_breaks_on_fewer_buffers(self, frontier):
        best = frontier.best(require_noise=False)
        for outcome in frontier.outcomes:
            assert outcome.slack <= best.slack
            if outcome.slack == best.slack:
                assert best.buffer_count <= outcome.buffer_count
