"""Tests for Algorithm 1 — optimal single-sink noise avoidance."""

import math

import pytest

from repro import (
    BufferType,
    InfeasibleError,
    TreeStructureError,
    analyze_noise,
    insert_buffers_single_sink,
    two_pin_net,
)
from repro.core import max_safe_length, select_noise_buffer
from repro.units import FF, MM


def run(tree, buffer, coupling):
    solution = insert_buffers_single_sink(tree, buffer, coupling)
    buffered, discrete = solution.realize()
    return solution, buffered, discrete


class TestBasics:
    def test_clean_net_gets_no_buffers(self, short_two_pin, single_buffer, coupling):
        solution = insert_buffers_single_sink(
            short_two_pin, single_buffer, coupling
        )
        assert solution.buffer_count == 0

    def test_fixes_all_violations(self, long_two_pin, single_buffer, coupling):
        _, buffered, discrete = run(long_two_pin, single_buffer, coupling)
        report = analyze_noise(buffered, coupling, discrete.buffer_map())
        assert not report.violated

    def test_rejects_multi_sink_tree(self, y_tree, single_buffer, coupling):
        with pytest.raises(TreeStructureError):
            insert_buffers_single_sink(y_tree, single_buffer, coupling)

    def test_works_on_presegmented_chain(self, tech, driver, single_buffer, coupling):
        net = two_pin_net(tech, 9 * MM, driver, 20 * FF, 0.8, segments=6)
        _, buffered, discrete = run(net, single_buffer, coupling)
        assert not analyze_noise(buffered, coupling, discrete.buffer_map()).violated

    def test_library_collapses_to_smallest_resistance(
        self, long_two_pin, library, coupling
    ):
        solution = insert_buffers_single_sink(long_two_pin, library, coupling)
        best = library.smallest_resistance()
        assert all(p.buffer is best for p in solution.placements)

    def test_select_noise_buffer(self, library, single_buffer):
        assert select_noise_buffer(library) is library.smallest_resistance()
        assert select_noise_buffer(single_buffer) is single_buffer


class TestMaximalPlacement:
    def test_first_buffer_at_theorem1_distance(
        self, tech, driver, single_buffer, coupling
    ):
        """The sink-adjacent buffer sits exactly l_max above the sink."""
        net = two_pin_net(tech, 9 * MM, driver, 20 * FF, 0.8, name="n")
        solution = insert_buffers_single_sink(net, single_buffer, coupling)
        assert solution.buffer_count >= 1
        first = min(solution.placements, key=lambda p: p.distance_from_child)
        expected = max_safe_length(
            single_buffer.resistance,
            tech.unit_resistance,
            coupling.unit_current(tech.unit_capacitance),
            0.0,
            0.8,
        )
        assert math.isclose(first.distance_from_child, expected, rel_tol=1e-9)

    def test_buffer_inputs_have_zero_noise_slack(
        self, tech, driver, single_buffer, coupling
    ):
        """Maximality: every interior buffer input is driven exactly at its
        margin (slack 0) when the spans are noise-limited."""
        net = two_pin_net(tech, 12 * MM, driver, 20 * FF, 0.8, name="n")
        _, buffered, discrete = run(net, single_buffer, coupling)
        report = analyze_noise(buffered, coupling, discrete.buffer_map())
        interior = [
            e for e in report.entries
            if e.node in discrete.assignment and e.stage_root != buffered.source.name
        ]
        assert interior
        for entry in interior:
            assert entry.slack >= -1e-9
            assert entry.slack < 1e-6  # placed at the maximal position

    def test_minimality_removing_any_buffer_violates(
        self, tech, driver, single_buffer, coupling
    ):
        """Certificate of optimality: no buffer is redundant."""
        net = two_pin_net(tech, 11 * MM, driver, 20 * FF, 0.8, name="n")
        solution = insert_buffers_single_sink(net, single_buffer, coupling)
        assert solution.buffer_count >= 2
        _, buffered, discrete = run(net, single_buffer, coupling)
        full_map = dict(discrete.buffer_map())
        for name in list(full_map):
            reduced = {k: v for k, v in full_map.items() if k != name}
            assert analyze_noise(buffered, coupling, reduced).violated, (
                f"buffer {name} is redundant — not a minimal solution"
            )

    def test_count_matches_span_arithmetic(
        self, tech, driver, single_buffer, coupling
    ):
        """Buffer count equals the covering count from Theorem 1 spans."""
        unit_i = coupling.unit_current(tech.unit_capacitance)
        for length_mm in (3, 5, 8, 11, 14):
            net = two_pin_net(
                tech, length_mm * MM, driver, 20 * FF, 0.8, name="n"
            )
            solution = insert_buffers_single_sink(net, single_buffer, coupling)
            # Simulate the greedy walk analytically.
            spans = 0
            current, slack = 20 * FF * 0.0, 0.8  # sink pin injects no current
            remaining = length_mm * MM
            while True:
                # can the (hypothetical) next gate cover what's left?
                top_i = unit_i * remaining
                noise = tech.unit_resistance * remaining * (top_i / 2)
                gate_r = single_buffer.resistance
                if gate_r * top_i <= slack - noise or spans > 20:
                    break
                step = max_safe_length(
                    gate_r, tech.unit_resistance, unit_i, 0.0, slack
                )
                spans += 1
                remaining -= min(step, remaining)
                slack = single_buffer.noise_margin
            driver_extra = 0
            top_i = unit_i * remaining
            noise = tech.unit_resistance * remaining * (top_i / 2)
            if driver.resistance * top_i > slack - noise:
                driver_extra = 1
            assert solution.buffer_count == spans + driver_extra, length_mm


class TestSourceFixup:
    def test_weak_driver_gets_buffer_after_source(
        self, tech, single_buffer, coupling
    ):
        from repro import DriverCell

        weak = DriverCell("weak", resistance=5000.0)
        net = two_pin_net(tech, 3 * MM, weak, 20 * FF, 0.8, name="n")
        solution = insert_buffers_single_sink(net, single_buffer, coupling)
        top = max(p.distance_from_child for p in solution.placements)
        # one placement sits at the very top of the first wire
        assert math.isclose(top, 3 * MM)
        _, buffered, discrete = run(net, single_buffer, coupling)
        assert not analyze_noise(buffered, coupling, discrete.buffer_map()).violated

    def test_strong_driver_needs_no_fixup(self, tech, single_buffer, coupling):
        from repro import DriverCell

        strong = DriverCell("strong", resistance=50.0)
        net = two_pin_net(tech, 3 * MM, strong, 20 * FF, 0.8, name="n")
        solution = insert_buffers_single_sink(net, strong_or(single_buffer), coupling)
        tops = [p.distance_from_child for p in solution.placements]
        assert all(t < 3 * MM for t in tops)


def strong_or(buffer):
    return buffer


class TestLumpedWires:
    """Zero-length wires with lumped R/current (abstract example nets)."""

    def _chain(self, resistances, currents, margin=50.0):
        from repro import TreeBuilder

        builder = TreeBuilder()
        builder.add_source("so")
        previous = "so"
        names = []
        for k in range(len(resistances) - 1):
            builder.add_internal(f"m{k}")
            names.append(f"m{k}")
        builder.add_sink("s", capacitance=0.0, noise_margin=margin)
        nodes = [*names, "s"]
        for node, r, i in zip(nodes, resistances, currents):
            builder.add_wire(previous, node, resistance=r, capacitance=0.0,
                             current=i)
            previous = node
        return builder.build("lumped")

    def test_defers_over_quiet_lumped_wires(self, single_buffer, silent):
        tree = self._chain([1.0, 1.0], [0.1, 0.1], margin=50.0)
        solution = insert_buffers_single_sink(
            tree, single_buffer, silent, driver_resistance=10.0
        )
        assert solution.buffer_count == 0

    def test_buffers_at_child_end_when_lump_too_noisy(
        self, single_buffer, silent
    ):
        """A lumped element that breaks the invariant forces a buffer at
        its child end (distance 0); a weak driver forces the source fixup
        as well."""
        # Buffer R = 150, NM = 0.8.  The hot lump (R=10, I=3e-3) fails the
        # 0.2 V sink margin check (0.45 + 0.015 > 0.185) but passes after
        # the reset to the buffer margin (0.465 <= 0.785).
        hot = self._chain([1.0, 10.0], [1e-4, 3e-3], margin=0.2)
        solution = insert_buffers_single_sink(
            hot, single_buffer, silent, driver_resistance=500.0
        )
        assert solution.buffer_count == 2  # lump fix + source fixup
        assert all(p.distance_from_child == 0.0 for p in solution.placements)
        buffered, discrete = solution.realize()
        from repro.noise import noise_violations

        assert not noise_violations(
            buffered, silent, discrete.buffer_map(), driver_resistance=500.0
        )

    def test_hopeless_lump_raises(self, single_buffer, silent):
        """Even buffering both ends of the lump cannot satisfy the margin."""
        hopeless = self._chain([1.0, 1000.0], [1e-4, 1.0], margin=0.2)
        with pytest.raises(InfeasibleError):
            insert_buffers_single_sink(
                hopeless, single_buffer, silent, driver_resistance=10.0
            )


class TestInfeasible:
    def test_hopeless_margin_raises(self, tech, driver, coupling):
        """A buffer whose own drive exceeds the margin cannot fix noise."""
        hopeless = BufferType("h", resistance=1e7, input_capacitance=1 * FF,
                              intrinsic_delay=0.0, noise_margin=1e-3)
        net = two_pin_net(tech, 10 * MM, driver, 20 * FF, 1e-3, name="n")
        with pytest.raises(InfeasibleError):
            insert_buffers_single_sink(net, hopeless, coupling)

    def test_missing_driver_requires_resistance(self, tech, single_buffer, coupling):
        from repro import TreeBuilder

        builder = TreeBuilder(tech)
        builder.add_source("so")
        builder.add_sink("s", capacitance=1 * FF, noise_margin=0.8)
        builder.add_wire("so", "s", length=1 * MM)
        tree = builder.build()
        with pytest.raises(InfeasibleError):
            insert_buffers_single_sink(tree, single_buffer, coupling)
        solution = insert_buffers_single_sink(
            tree, single_buffer, coupling, driver_resistance=100.0
        )
        assert solution.buffer_count == 0
