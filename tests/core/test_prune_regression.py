"""Regression: the sort-free `_prune_timing` equals the old sorted one.

`_prune_timing` used to `sorted()` every candidate list before scanning;
it now skips the sort whenever the list is already ``(load, -slack)``
ordered (the common case — merge and wire passes preserve load order)
and only falls back to sorting when the buffering pass threw the list
out of order.  These tests pin the new implementation to the *old* one,
byte for byte, on frontiers harvested from real engine runs over seeded
nets — not synthetic lists, so every shape the engine actually produces
is covered.
"""

import math
import random

from repro import (
    CouplingModel,
    DPOptions,
    default_buffer_library,
    default_technology,
    run_dp,
)
from repro.core.dp import (
    DPCandidate,
    _Engine,
    _presorted_timing_frontier,
)
from repro.verify.treegen import seeded_tree

LIBRARY = default_buffer_library()
COUPLING = CouplingModel.estimation_mode(default_technology())


def old_prune_timing(candidates):
    """The pre-optimization implementation: always sort, then scan."""
    ordered = sorted(candidates, key=lambda c: (c.load, -c.slack))
    kept = []
    best_slack = -math.inf
    for cand in ordered:
        if cand.slack > best_slack:
            kept.append(cand)
            best_slack = cand.slack
    return kept


class _HarvestingEngine(_Engine):
    """Records every candidate list the prune pass sees, pre-prune."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.harvested = []

    def _prune(self, groups):
        for candidates in groups.values():
            self.harvested.append(list(candidates))
        return super()._prune(groups)


def harvest(seed, noise_aware):
    tree = seeded_tree(seed, with_rats=True)
    options = DPOptions(noise_aware=noise_aware, track_counts=True)
    engine = _HarvestingEngine(
        tree, LIBRARY, COUPLING, options, tree.driver
    )
    engine.run()
    return engine.harvested


class TestPruneRegression:
    def test_identical_to_old_on_harvested_frontiers(self):
        lists = 0
        for seed in range(12):
            for noise_aware in (False, True):
                for candidates in harvest(seed, noise_aware):
                    new = _Engine._prune_timing(list(candidates))
                    old = old_prune_timing(list(candidates))
                    # Same candidate *objects* in the same order — not
                    # merely equal values.
                    assert [id(c) for c in new] == [id(c) for c in old]
                    lists += 1
        assert lists > 200  # the harvest actually exercised the engine

    def test_identical_on_shuffled_frontiers(self):
        """Out-of-order lists must take the sort fallback and still agree."""
        rng = random.Random(7)
        checked = 0
        for seed in range(6):
            for candidates in harvest(seed, noise_aware=False):
                shuffled = list(candidates)
                rng.shuffle(shuffled)
                new = _Engine._prune_timing(list(shuffled))
                old = old_prune_timing(list(shuffled))
                assert [id(c) for c in new] == [id(c) for c in old]
                checked += 1
        assert checked > 50

    def test_presorted_helper_bails_on_disorder(self):
        def cand(load, slack):
            return DPCandidate(load, slack, 0.0, 1.0, 0, None)

        ordered = [cand(1.0, 0.1), cand(2.0, 0.5), cand(3.0, 0.2)]
        assert _presorted_timing_frontier(ordered) == old_prune_timing(ordered)
        # load decreases -> not sorted -> must refuse, not mis-prune.
        assert _presorted_timing_frontier(
            [cand(2.0, 0.5), cand(1.0, 0.1)]
        ) is None
        # equal loads with *rising* slack violate (load, -slack) order.
        assert _presorted_timing_frontier(
            [cand(1.0, 0.1), cand(1.0, 0.5)]
        ) is None
        # equal loads with falling slack are in order; dominated one goes.
        kept = _presorted_timing_frontier([cand(1.0, 0.5), cand(1.0, 0.1)])
        assert kept is not None and len(kept) == 1

    def test_prune_telemetry_counts_both_paths(self):
        tree = seeded_tree(3, with_rats=True)
        result = run_dp(
            tree, LIBRARY, COUPLING,
            DPOptions(noise_aware=True, track_counts=True,
                      collect_stats=True),
        )
        stats = result.stats
        assert stats is not None
        assert stats.engine == "reference"
        # Buffered candidates are appended out of load order at nearly
        # every internal node, so both paths must actually fire.
        assert stats.prune_presorted > 0
        assert stats.prune_sorts > 0
        assert "timing prunes" in stats.describe()

    def test_pareto_runs_count_no_timing_prunes(self):
        tree = seeded_tree(3, with_rats=True)
        result = run_dp(
            tree, LIBRARY, COUPLING,
            DPOptions(prune="pareto", collect_stats=True),
        )
        assert result.stats.prune_presorted == 0
        assert result.stats.prune_sorts == 0
