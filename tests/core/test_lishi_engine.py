"""Lishi engine: semantic equivalence, auto selection, planted mutants.

The lishi engine's contract is *semantic equivalence* with the
reference (equal selected outcomes within the documented tolerance,
certificate-clean, oracle-optimal on small nets), not bit-identity —
see ``tests/core/equivalence.py`` for the harness and the rationale.

The planted-bug self-tests are the teeth of that contract: they prove
the layered harness catches exactly the two bug families the lishi
shortcuts risk — *over-eviction* (eager dominance eviction removing an
optimum; self-consistent, so the certificate alone passes) and *stale
offsets* (a wire's lazy offset not applied, corrupting every decoded
value).  A harness that cannot fail a broken engine gates nothing.
"""

import pathlib
import sys

import pytest
from hypothesis import HealthCheck, given, settings

_HERE = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(_HERE))
sys.path.insert(0, str(_HERE.parent / "properties"))
from equivalence import (  # noqa: E402
    assert_certificate_clean,
    assert_outcomes_equivalent,
    assert_semantic_equivalence,
)
from treegen import random_trees  # noqa: E402

from repro import (  # noqa: E402
    CouplingModel,
    DPOptions,
    default_buffer_library,
    default_technology,
    run_dp,
)
from repro.core import (  # noqa: E402
    AUTO_LISHI_THRESHOLD,
    WireSizingSpec,
    resolve_auto_engine,
)
from repro.core.lishi_engine import LiShiEngine  # noqa: E402
from repro.verify.treegen import seeded_tree  # noqa: E402

LIBRARY = default_buffer_library()
COUPLING = CouplingModel.estimation_mode(default_technology())

default_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


class TestPropertyEquivalence:
    @default_settings
    @given(tree=random_trees(with_rats=True))
    def test_delay_mode_equivalent(self, tree):
        assert_semantic_equivalence(tree, LIBRARY, COUPLING)

    @default_settings
    @given(tree=random_trees(with_rats=True))
    def test_noise_mode_equivalent(self, tree):
        assert_semantic_equivalence(
            tree, LIBRARY, COUPLING, noise_aware=True
        )

    @default_settings
    @given(tree=random_trees(with_rats=True))
    def test_pareto_prune_equivalent(self, tree):
        assert_semantic_equivalence(
            tree, LIBRARY, COUPLING, noise_aware=True, prune="pareto"
        )

    @default_settings
    @given(tree=random_trees(with_rats=True))
    def test_polarity_free_equivalent(self, tree):
        assert_semantic_equivalence(
            tree, LIBRARY, COUPLING, noise_aware=True, enforce_polarity=False
        )

    @default_settings
    @given(tree=random_trees(with_rats=True))
    def test_count_tracking_equivalent(self, tree):
        assert_semantic_equivalence(
            tree, LIBRARY, COUPLING,
            noise_aware=True, track_counts=True, max_buffers=3,
        )

    @default_settings
    @given(tree=random_trees(with_rats=True))
    def test_wire_sizing_equivalent(self, tree):
        assert_semantic_equivalence(
            tree, LIBRARY, COUPLING,
            sizing=WireSizingSpec(widths=(1.0, 1.6)),
        )


class TestSeededEquivalence:
    def test_seeded_family_equivalent_both_modes(self):
        for seed in range(20):
            tree = seeded_tree(seed, with_rats=True)
            for noise_aware in (False, True):
                assert_semantic_equivalence(
                    tree, LIBRARY, COUPLING,
                    noise_aware=noise_aware,
                    track_counts=True,
                    context=f"seed {seed} noise_aware={noise_aware}",
                )

    def test_telemetry_reports_lishi(self):
        tree = seeded_tree(0, with_rats=True)
        result = run_dp(
            tree, LIBRARY, COUPLING,
            DPOptions(engine="lishi", collect_stats=True),
        )
        assert result.stats is not None
        assert result.stats.engine == "lishi"


class TestAutoEngine:
    """The size heuristic: sink count x library size vs the threshold."""

    def test_small_net_resolves_fast(self):
        tree = seeded_tree(0, with_rats=True)
        assert len(tree.sinks) * len(LIBRARY) < AUTO_LISHI_THRESHOLD
        assert resolve_auto_engine(tree, LIBRARY) == "fast"

    def test_large_product_resolves_lishi(self):
        # 128 sinks x the full library clears the threshold.
        import numpy as np

        from repro import DriverCell, SinkSite, segment_tree, steiner_tree
        from repro.units import FF, MM, NS, UM

        tech = default_technology()
        rng = np.random.default_rng(9)
        sites = [
            SinkSite(
                f"s{i}",
                (float(rng.uniform(0, 8 * MM)), float(rng.uniform(0, 8 * MM))),
                15 * FF, 0.8, 3 * NS,
            )
            for i in range(128)
        ]
        tree = segment_tree(
            steiner_tree(
                tech, (0.0, 0.0), sites,
                driver=DriverCell("d", 250.0, 30e-12),
            ),
            500 * UM,
        )
        assert len(tree.sinks) * len(LIBRARY) >= AUTO_LISHI_THRESHOLD
        assert resolve_auto_engine(tree, LIBRARY) == "lishi"

    def test_auto_option_accepted_and_runs(self):
        tree = seeded_tree(1, with_rats=True)
        resolved = resolve_auto_engine(tree, LIBRARY)
        auto = run_dp(
            tree, LIBRARY, COUPLING,
            DPOptions(engine="auto", noise_aware=True),
        )
        explicit = run_dp(
            tree, LIBRARY, COUPLING,
            DPOptions(engine=resolved, noise_aware=True),
        )
        assert auto.outcomes == explicit.outcomes

    def test_resolution_is_stateless(self):
        tree = seeded_tree(2, with_rats=True)
        first = resolve_auto_engine(tree, LIBRARY)
        assert all(
            resolve_auto_engine(tree, LIBRARY) == first for _ in range(3)
        )

    def test_unknown_engine_still_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            DPOptions(engine="turbo")


def _run_with(engine_cls):
    """An ``engine_callable`` for the harness bound to a subclass."""

    def runner(tree, library, coupling, options):
        return engine_cls(tree, library, coupling, options, tree.driver).run()

    return runner


class _OverEvictingLiShiEngine(LiShiEngine):
    """Keeps only the min-load candidate of every group: over-eviction."""

    def _prune_timing(self, candidates, frontier):
        return super()._prune_timing(candidates, frontier)[:1]


class _StaleQOffsetLiShiEngine(LiShiEngine):
    """Loses half of every wire's slack offset: stale lazy ``dq``."""

    def _apply_wire(self, wire, frontier):
        before = frontier.dq
        super()._apply_wire(wire, frontier)
        frontier.dq = before + 0.5 * (frontier.dq - before)


class _StaleNoiseOffsetLiShiEngine(LiShiEngine):
    """Never advances the noise offset: stale lazy ``dns``."""

    def _apply_wire(self, wire, frontier):
        before = frontier.dns
        super()._apply_wire(wire, frontier)
        frontier.dns = before


def _mutant_diverges(engine_cls, **option_kwargs):
    """Whether the harness fails the mutant on at least one seeded net."""
    for seed in range(12):
        tree = seeded_tree(seed, with_rats=True)
        try:
            assert_semantic_equivalence(
                tree, LIBRARY, COUPLING,
                engine_callable=_run_with(engine_cls),
                context=f"mutant seed {seed}",
                **option_kwargs,
            )
        except AssertionError:
            return True
    return False


class TestPlantedBugs:
    """The harness must catch the bug families the shortcuts risk."""

    def test_over_eviction_caught_by_harness(self):
        assert _mutant_diverges(
            _OverEvictingLiShiEngine, track_counts=True
        ), "over-evicting mutant slipped through the equivalence harness"

    def test_over_eviction_passes_certificate_alone(self):
        """Why outcome/oracle layers exist: over-eviction self-certifies.

        Every candidate the mutant keeps is still a *correct* candidate,
        so on at least one net where the harness catches the missing
        optimum, the certificate alone waves the result through.
        """
        certificate_blind = 0
        harness_caught = 0
        for seed in range(12):
            tree = seeded_tree(seed, with_rats=True)
            options = DPOptions(
                engine="lishi", noise_aware=True, track_counts=True
            )
            result = _run_with(_OverEvictingLiShiEngine)(
                tree, LIBRARY, COUPLING, options,
            )
            reference = run_dp(
                tree, LIBRARY, COUPLING,
                DPOptions(
                    engine="reference", noise_aware=True, track_counts=True
                ),
            )
            try:
                assert_outcomes_equivalent(reference, result)
            except AssertionError:
                harness_caught += 1
            else:
                continue
            try:
                assert_certificate_clean(result, COUPLING, tree.driver)
            except AssertionError:
                pass
            else:
                certificate_blind += 1
        assert harness_caught > 0
        assert certificate_blind > 0, (
            "expected the certificate to pass at least one over-evicted "
            "result the outcome comparison rejected"
        )

    def test_stale_slack_offset_caught_by_harness(self):
        assert _mutant_diverges(
            _StaleQOffsetLiShiEngine
        ), "stale-dq mutant slipped through the equivalence harness"

    def test_stale_noise_offset_caught_by_harness(self):
        assert _mutant_diverges(
            _StaleNoiseOffsetLiShiEngine, noise_aware=True
        ), "stale-dns mutant slipped through the equivalence harness"
