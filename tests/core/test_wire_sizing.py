"""Tests for simultaneous wire sizing + buffer insertion (Lillis mode)."""

import itertools
import math

import pytest

from repro import (
    CouplingModel,
    DPOptions,
    TechnologyError,
    run_dp,
    two_pin_net,
)
from repro.core import WireSizingSpec, apply_wire_widths
from repro.core.wire_sizing import WireChoice
from repro.library import single_buffer_library
from repro.noise import has_noise_violation
from repro.timing import source_slack
from repro.units import FF, MM, NS


@pytest.fixture
def spec():
    return WireSizingSpec(widths=(1.0, 2.0), area_fraction=0.6)


@pytest.fixture
def net(tech, driver):
    return two_pin_net(
        tech, 6 * MM, driver, 20 * FF, 0.8,
        required_arrival=1.5 * NS, segments=4, name="sz",
    )


class TestWireSizingSpec:
    def test_scaling_model(self, spec):
        assert spec.resistance(100.0, 2.0) == 50.0
        # C(2) = C0 * (0.6*2 + 0.4) = 1.6 * C0
        assert math.isclose(spec.capacitance(10 * FF, 2.0), 16 * FF)
        assert math.isclose(spec.capacitance_scale(2.0), 1.6)

    def test_unit_width_is_identity(self, spec):
        assert spec.resistance(100.0, 1.0) == 100.0
        assert spec.capacitance(10 * FF, 1.0) == 10 * FF

    def test_validation(self):
        with pytest.raises(TechnologyError):
            WireSizingSpec(widths=())
        with pytest.raises(TechnologyError):
            WireSizingSpec(widths=(2.0,))  # must include 1.0
        with pytest.raises(TechnologyError):
            WireSizingSpec(widths=(1.0, -2.0))
        with pytest.raises(TechnologyError):
            WireSizingSpec(widths=(1.0,), area_fraction=1.5)


class TestApplyWireWidths:
    def test_resizes_named_wires_only(self, net, spec, tech):
        wire = net.node("n1").parent_wire
        resized = apply_wire_widths(net, {("so", "n1"): 2.0}, spec)
        new = resized.node("n1").parent_wire
        assert math.isclose(new.resistance, wire.resistance / 2.0)
        assert math.isclose(
            new.capacitance, spec.capacitance(wire.capacitance, 2.0)
        )
        untouched = resized.node("n2").parent_wire
        old = net.node("n2").parent_wire
        assert untouched.resistance == old.resistance

    def test_unknown_wire_rejected(self, net, spec):
        with pytest.raises(TechnologyError):
            apply_wire_widths(net, {("x", "y"): 2.0}, spec)

    def test_off_menu_width_rejected(self, net, spec):
        with pytest.raises(TechnologyError):
            apply_wire_widths(net, {("so", "n1"): 3.0}, spec)

    def test_explicit_current_scales(self, net, spec):
        wire = net.node("n1").parent_wire
        wire.current = 1e-3
        resized = apply_wire_widths(net, {("so", "n1"): 2.0}, spec)
        assert math.isclose(
            resized.node("n1").parent_wire.current, 1.6e-3
        )


class TestSizedDP:
    def test_sizing_never_hurts_slack(self, net, single_buffer, silent, spec):
        library = single_buffer_library(single_buffer)
        plain = run_dp(net, library, silent)
        sized = run_dp(net, library, silent, DPOptions(sizing=spec))
        assert sized.best(require_noise=False).slack >= (
            plain.best(require_noise=False).slack - 1e-15
        )

    def test_outcome_matches_independent_analysis(
        self, net, single_buffer, silent, spec
    ):
        """The DP's sized arithmetic must agree with the Elmore engine run
        on the realized (resized) tree."""
        library = single_buffer_library(single_buffer)
        result = run_dp(net, library, silent, DPOptions(sizing=spec))
        for outcome in result.outcomes:
            resized, solution = result.sized_solution(outcome)
            analyzed = source_slack(resized, solution.buffer_map())
            assert math.isclose(outcome.slack, analyzed, rel_tol=1e-9), (
                outcome.buffer_count
            )

    def test_against_brute_force(self, tech, driver, single_buffer, silent, spec):
        """Exhaustive search over width x buffer assignments on a small
        net equals the DP's best slack."""
        net = two_pin_net(
            tech, 5 * MM, driver, 25 * FF, 0.8,
            required_arrival=1 * NS, segments=3, name="bf",
        )
        library = single_buffer_library(single_buffer)
        result = run_dp(net, library, silent, DPOptions(sizing=spec))

        wires = [(w.parent.name, w.child.name) for w in net.wires()]
        sites = [n.name for n in net.nodes() if n.is_internal and n.feasible]
        best = -math.inf
        for widths in itertools.product(spec.widths, repeat=len(wires)):
            resized = apply_wire_widths(
                net,
                {key: w for key, w in zip(wires, widths) if w != 1.0},
                spec,
            )
            for combo in itertools.product([None, single_buffer],
                                           repeat=len(sites)):
                assignment = {
                    s: b for s, b in zip(sites, combo) if b is not None
                }
                best = max(best, source_slack(resized, assignment))
        assert math.isclose(
            result.best(require_noise=False).slack, best, rel_tol=1e-12
        )

    def test_noise_aware_sized_outcomes_clean(
        self, net, single_buffer, coupling, spec
    ):
        library = single_buffer_library(single_buffer)
        result = run_dp(
            net, library, coupling,
            DPOptions(noise_aware=True, sizing=spec),
        )
        assert result.outcomes
        for outcome in result.outcomes:
            resized, solution = result.sized_solution(outcome)
            assert not has_noise_violation(
                resized, coupling, solution.buffer_map()
            )

    def test_wide_wires_carry_more_noise_current(self, net, single_buffer,
                                                 coupling, spec):
        """Sanity on the noise model: widening scales the wire current by
        the capacitance factor (estimation-mode assumption)."""
        resized = apply_wire_widths(net, {("so", "n1"): 2.0}, spec)
        old = coupling.wire_current(net.node("n1").parent_wire)
        new = coupling.wire_current(resized.node("n1").parent_wire)
        assert math.isclose(new, old * spec.capacitance_scale(2.0))

    def test_unsized_run_records_no_choices(self, net, single_buffer, silent):
        library = single_buffer_library(single_buffer)
        result = run_dp(net, library, silent)
        assert all(o.wire_choices == () for o in result.outcomes)

    def test_sized_solution_without_sizing_is_copy(self, net, single_buffer, silent):
        library = single_buffer_library(single_buffer)
        result = run_dp(net, library, silent)
        outcome = result.best(require_noise=False)
        resized, solution = result.sized_solution(outcome)
        assert math.isclose(
            resized.total_capacitance(), net.total_capacitance()
        )


class TestMinimizeCost:
    def test_uniform_cost_equals_fewest_buffers(self, net, coupling, library):
        from repro.core import buffopt_result

        result = buffopt_result(net, library, coupling)
        by_cost = result.minimize_cost(lambda b: 1.0, min_slack=0.0)
        by_count = result.fewest_buffers(min_slack=0.0)
        assert by_cost.buffer_count == by_count.buffer_count

    def test_area_cost_prefers_smaller_buffers(self, net, coupling, library):
        from repro.core import buffopt_result

        result = buffopt_result(net, library, coupling)
        outcome = result.minimize_cost(
            lambda b: b.input_capacitance, min_slack=0.0
        )
        total = sum(ins.buffer.input_capacitance for ins in outcome.insertions)
        for other in result.outcomes:
            if other.slack >= 0.0:
                other_total = sum(
                    ins.buffer.input_capacitance for ins in other.insertions
                )
                assert total <= other_total + 1e-18

    def test_infeasible_slack_falls_back(self, net, coupling, library):
        from repro.core import buffopt_result

        result = buffopt_result(net, library, coupling)
        outcome = result.minimize_cost(lambda b: 1.0, min_slack=1e9)
        best = result.best()
        assert outcome.slack == best.slack
