"""Tests for noise-aware segmentation (footnote-3 extension)."""

import pytest

from repro import (
    InfeasibleError,
    analyze_noise,
    buffopt_min_buffers,
    insert_buffers_multi_sink,
    segment_tree,
    two_pin_net,
)
from repro.core import noise_aware_segmentation
from repro.units import FF, MM, NS, UM


class TestNoiseAwareSegmentation:
    def test_reaches_continuous_minimum_count(
        self, tech, driver, library, coupling
    ):
        """BuffOpt on the noise-aware sites achieves the Algorithm-2
        (continuous-optimal) buffer count exactly."""
        for mm in (5, 9, 13):
            net = two_pin_net(
                tech, mm * MM, driver, 20 * FF, 0.8,
                required_arrival=5 * NS, name=f"na{mm}",
            )
            continuous = insert_buffers_multi_sink(net, library, coupling)
            sited = noise_aware_segmentation(net, library, coupling)
            solution = buffopt_min_buffers(sited, library, coupling)
            assert solution.buffer_count == continuous.buffer_count, mm
            assert not analyze_noise(
                sited, coupling, solution.buffer_map()
            ).violated

    def test_far_fewer_nodes_than_fine_uniform(
        self, tech, driver, library, coupling
    ):
        net = two_pin_net(
            tech, 12 * MM, driver, 20 * FF, 0.8, required_arrival=5 * NS
        )
        sited = noise_aware_segmentation(net, library, coupling)
        uniform = segment_tree(net, 200 * UM)
        assert len(sited) < len(uniform) / 5

    def test_sites_carry_no_buffers(self, tech, driver, library, coupling):
        net = two_pin_net(
            tech, 9 * MM, driver, 20 * FF, 0.8, required_arrival=5 * NS
        )
        sited = noise_aware_segmentation(net, library, coupling)
        # it's a plain tree: noise analysis shows the original violation
        assert analyze_noise(sited, coupling).violated

    def test_uniform_extra_overlay(self, tech, driver, library, coupling):
        net = two_pin_net(
            tech, 9 * MM, driver, 20 * FF, 0.8, required_arrival=5 * NS
        )
        bare = noise_aware_segmentation(net, library, coupling)
        rich = noise_aware_segmentation(
            net, library, coupling, uniform_extra=1 * MM
        )
        assert len(rich) > len(bare)
        assert all(w.length <= 1 * MM + 1e-12 for w in rich.wires())

    def test_timing_quality_with_overlay(self, tech, driver, library, coupling):
        """The coarse overlay restores delay-optimization freedom: slack
        on the noise-aware tree is close to the fine-uniform slack."""
        from repro import buffopt
        from repro.timing import source_slack

        net = two_pin_net(
            tech, 9 * MM, driver, 20 * FF, 0.8, required_arrival=2 * NS
        )
        sited = noise_aware_segmentation(
            net, library, coupling, uniform_extra=1 * MM
        )
        fine = segment_tree(net, 300 * UM)
        s_sited = buffopt(sited, library, coupling)
        s_fine = buffopt(fine, library, coupling)
        q_sited = source_slack(sited, s_sited.buffer_map())
        q_fine = source_slack(fine, s_fine.buffer_map())
        assert q_sited >= q_fine - abs(q_fine) * 0.1 - 20e-12

    def test_infeasible_propagates(self, tech, driver, coupling):
        from repro import BufferType
        from repro.library import single_buffer_library

        hopeless = single_buffer_library(
            BufferType("h", 1e7, 1 * FF, 0.0, 1e-3)
        )
        net = two_pin_net(tech, 10 * MM, driver, 20 * FF, 1e-3)
        with pytest.raises(InfeasibleError):
            noise_aware_segmentation(net, hopeless, coupling)
