"""Tests for Algorithm 3 / BuffOpt (repro.core.noise_delay)."""


import pytest

from repro import (
    InfeasibleError,
    analyze_noise,
    buffopt,
    buffopt_min_buffers,
    buffopt_result,
    optimize_delay,
    segment_tree,
    two_pin_net,
)
from repro.noise import has_noise_violation
from repro.timing import max_sink_delay, source_slack
from repro.units import FF, MM, NS, UM


@pytest.fixture
def net(tech, driver):
    return two_pin_net(
        tech, 9 * MM, driver, 25 * FF, 0.8,
        required_arrival=2 * NS, segments=9, name="n9",
    )


class TestBuffOpt:
    def test_always_noise_clean(self, net, library, coupling):
        solution = buffopt(net, library, coupling)
        assert not has_noise_violation(net, coupling, solution.buffer_map())

    def test_delay_close_to_delayopt_upper_bound(self, net, library, coupling):
        """Section V-C: the DelayOpt slack upper-bounds BuffOpt's, and the
        gap is small (paper: < 2 % average; generous 10 % per-net here)."""
        noise_aware = buffopt(net, library, coupling)
        delay_only = optimize_delay(net, library)
        q_noise = source_slack(net, noise_aware.buffer_map())
        q_delay = source_slack(net, delay_only.buffer_map())
        assert q_noise <= q_delay + 1e-15
        d_noise = max_sink_delay(net, noise_aware.buffer_map())
        d_delay = max_sink_delay(net, delay_only.buffer_map())
        assert (d_noise - d_delay) / d_delay < 0.10

    def test_generates_fewer_candidates_than_delayopt(
        self, net, library, coupling
    ):
        """Section V-B: BuffOpt prunes noisy candidates, so it explores a
        subset of DelayOpt's candidate space."""
        from repro import DPOptions, run_dp

        noisy = run_dp(net, library, coupling, DPOptions(noise_aware=True))
        plain = run_dp(net, library, coupling, DPOptions(noise_aware=False))
        assert noisy.candidates_generated <= plain.candidates_generated

    def test_infeasible_raises(self, tech, driver, coupling):
        """No segmentation sites on a long wire: nothing can be fixed."""
        from repro import default_buffer_library

        net = two_pin_net(tech, 12 * MM, driver, 20 * FF, 0.8,
                          required_arrival=3 * NS, segments=1)
        with pytest.raises(InfeasibleError):
            buffopt(net, default_buffer_library(), coupling)


class TestProblem3:
    def test_fewest_buffers_is_noise_clean(self, net, library, coupling):
        solution = buffopt_min_buffers(net, library, coupling)
        assert not has_noise_violation(net, coupling, solution.buffer_map())

    def test_fewest_buffers_minimal_among_outcomes(self, net, library, coupling):
        result = buffopt_result(net, library, coupling)
        fewest = result.fewest_buffers(min_slack=0.0)
        meeting = [o for o in result.outcomes if o.slack >= 0.0]
        assert meeting
        assert fewest.buffer_count == min(o.buffer_count for o in meeting)

    def test_uses_fewer_or_equal_buffers_than_problem2(
        self, net, library, coupling
    ):
        p2 = buffopt(net, library, coupling)
        p3 = buffopt_min_buffers(net, library, coupling)
        assert p3.buffer_count <= p2.buffer_count

    def test_timing_infeasible_falls_back_to_best_slack(
        self, tech, driver, library, coupling
    ):
        """Impossible RAT: Problem 3 returns the max-slack noise-feasible
        solution instead of raising."""
        net = two_pin_net(
            tech, 9 * MM, driver, 25 * FF, 0.8,
            required_arrival=1e-15, segments=9,
        )
        solution = buffopt_min_buffers(net, library, coupling)
        assert not has_noise_violation(net, coupling, solution.buffer_map())
        result = buffopt_result(net, library, coupling)
        best = result.best()
        assert solution.buffer_count == best.buffer_count

    def test_count_cap_respected(self, net, library, coupling):
        result = buffopt_result(net, library, coupling, max_buffers=3)
        assert all(o.buffer_count <= 3 for o in result.outcomes)


class TestAgainstNoiseOnlyAlgorithms:
    def test_buffer_count_not_less_than_algorithm2(
        self, tech, driver, library, coupling
    ):
        """Algorithm 2 computes the true continuous minimum buffer count;
        the discrete Problem-3 DP cannot beat it."""
        from repro import insert_buffers_multi_sink

        for mm in (4, 7, 10):
            raw = two_pin_net(
                tech, mm * MM, driver, 20 * FF, 0.8,
                required_arrival=5 * NS, name=f"m{mm}",
            )
            continuous = insert_buffers_multi_sink(raw, library, coupling)
            discrete_tree = segment_tree(raw, 300 * UM)
            discrete = buffopt_min_buffers(discrete_tree, library, coupling)
            assert discrete.buffer_count >= continuous.buffer_count

    def test_fine_segmentation_approaches_continuous_count(
        self, tech, driver, library, coupling
    ):
        from repro import insert_buffers_multi_sink

        raw = two_pin_net(
            tech, 8 * MM, driver, 20 * FF, 0.8, required_arrival=5 * NS
        )
        continuous = insert_buffers_multi_sink(raw, library, coupling)
        fine = segment_tree(raw, 200 * UM)
        discrete = buffopt_min_buffers(fine, library, coupling)
        assert discrete.buffer_count <= continuous.buffer_count + 1


class TestMultiSinkBuffOpt:
    def test_y_tree_clean_and_timed(self, y_tree, library, coupling):
        tree = segment_tree(y_tree, 500 * UM)
        solution = buffopt(tree, library, coupling)
        assert not has_noise_violation(tree, coupling, solution.buffer_map())
        report = analyze_noise(tree, coupling, solution.buffer_map())
        assert report.worst_slack >= 0
