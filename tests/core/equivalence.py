"""Semantic-equivalence harness for engines that drop bit-identity.

The fast engine is held to *bit-identity* with the reference
(`test_engine_differential.py`).  The lishi engine deliberately gives
that up — lazy offsets reassociate float arithmetic, eager eviction and
hull-mediated buffering change which of several equally-good candidates
survives — so its correctness bar is **semantic equivalence**, asserted
by three independent layers:

1. :func:`assert_outcomes_equivalent` — the *selected outcomes* (the
   per-count frontier the caller actually consumes) must match the
   reference's: the same buffer-count set, each count's slack equal
   within :data:`REL_TOL`/:data:`ABS_TOL`, and the same noise
   feasibility verdicts.  Insertion positions may differ (distinct
   optimal placements with equal slack are legal), slacks may not.
2. :func:`assert_certificate_clean` — every claim is re-derived from
   the physics by the independent certificate checker, so the pair of
   engines cannot drift together into a shared wrong answer.
3. :func:`assert_oracle_optimal` — on small nets, exhaustive
   enumeration confirms nothing optimal was evicted.  This is the layer
   that catches *over-eviction*, which outcome comparison against a
   buggy twin and self-consistent certificates both miss.

:func:`assert_semantic_equivalence` composes the three.  The tolerance
is documented here once: outcome slacks are compared with
``rel_tol=1e-9, abs_tol=1e-12`` (in the repo's slack units), roughly
1e6 ULPs of headroom over the ~1e-15 reassociation drift actually
observed on 500-node chains — tight enough that losing even one
optimal candidate at the 4th significant digit past the drift floor
fails the gate, loose enough that legal float reassociation never does.

This module lives in ``tests/core`` (not a package): import it with the
directory on ``sys.path``, as the engine tests do.
"""

import math

from repro import CouplingModel, DPOptions, run_dp
from repro.errors import InfeasibleError
from repro.verify import (
    certify_result,
    compare_result_to_oracle,
    exhaustive_oracle,
)
from repro.verify.certificate import evaluate_assignment

#: documented slack tolerance for cross-engine outcome comparison.
REL_TOL = 1e-9
ABS_TOL = 1e-12

#: nets up to this many feasible sites get the exhaustive-oracle layer.
ORACLE_MAX_SITES = 6


def outcome_map(result):
    """``{buffer_count: (slack, noise_feasible)}`` for one DP result."""
    return {
        o.buffer_count: (o.slack, o.noise_feasible) for o in result.outcomes
    }


def assert_outcomes_equivalent(reference, other, context=""):
    """Selected outcomes match within the documented float tolerance.

    Candidate *counters* (generated/kept) are deliberately not compared:
    the lishi engine generates far fewer candidates by construction, so
    bit-level population equality is not part of the contract.
    """
    ref_map = outcome_map(reference)
    other_map = outcome_map(other)
    assert ref_map.keys() == other_map.keys(), (
        f"{context}: outcome count sets differ: "
        f"{sorted(ref_map)} vs {sorted(other_map)}"
    )
    for count, (ref_slack, ref_feasible) in ref_map.items():
        other_slack, other_feasible = other_map[count]
        assert math.isclose(
            ref_slack, other_slack, rel_tol=REL_TOL, abs_tol=ABS_TOL
        ), (
            f"{context}: slack diverged at count {count}: "
            f"{ref_slack!r} vs {other_slack!r}"
        )
        assert ref_feasible == other_feasible, (
            f"{context}: noise feasibility diverged at count {count}: "
            f"{ref_feasible} vs {other_feasible}"
        )


def assert_certificate_clean(result, coupling, driver, context=""):
    """The independent certificate re-derives every claim from physics."""
    certificate = certify_result(result, coupling, driver)
    assert certificate.ok, f"{context}: {certificate.describe()}"


def assert_oracle_optimal(
    tree, result, library, coupling, noise_aware, context=""
):
    """Exhaustive enumeration confirms no optimal candidate was evicted."""
    oracle = exhaustive_oracle(
        tree,
        library,
        coupling,
        noise_aware=noise_aware,
        max_buffers=result.options.max_buffers,
        enforce_polarity=result.options.enforce_polarity,
        max_sites=ORACLE_MAX_SITES,
    )
    disagreements = compare_result_to_oracle(
        result, oracle, exact=False, rel_tol=REL_TOL, abs_tol=ABS_TOL
    )
    assert not disagreements, (
        f"{context}: " + "; ".join(d.describe() for d in disagreements)
    )


def oracle_sized(tree):
    """Whether the net is small enough for the exhaustive-oracle layer."""
    sites = sum(1 for n in tree.nodes() if n.is_internal and n.feasible)
    return 1 <= sites <= ORACLE_MAX_SITES


def assert_priced_equivalence(
    tree,
    library,
    site_prices,
    coupling=None,
    engine="lishi",
    engine_callable=None,
    context="",
    **option_kwargs,
):
    """Cross-engine equivalence of the *priced* DP (``site_prices``).

    Priced slacks are compared outcome-for-outcome within the same
    documented tolerance as the unpriced leg; the certificate and
    oracle layers do not apply as-is (they re-derive *physical* slack,
    which a priced run deliberately does not report — branch merges
    absorb non-critical penalties, see ``DPOptions.site_prices``).
    Instead the priced leg anchors each outcome to the physics through
    the sandwich the Lagrangian machinery (``repro.fleet``) depends on:
    the outcome's priced slack ``v`` and the certificate slack of its
    *own* insertions must satisfy ``v <= physical <= v + posted``,
    where ``posted`` is the summed price over the inserted nodes.

    ``engine_callable`` plays the same role as in
    :func:`assert_semantic_equivalence` — the stale-``site_prices``
    planted mutant injects a broken runner through it and the harness
    must throw (staleness surfaces in the cross-engine comparison: the
    honestly-priced reference pays penalties the stale side does not).
    Returns the engine-side priced result.
    """
    if not option_kwargs.get("noise_aware", False):
        coupling = CouplingModel.silent()
    coupling = coupling or CouplingModel.silent()
    context = context or f"{tree.name} [{engine}, priced]"
    reference = run_dp(
        tree, library, coupling,
        DPOptions(
            engine="reference", site_prices=site_prices, **option_kwargs
        ),
    )
    options = DPOptions(engine=engine, site_prices=site_prices,
                        **option_kwargs)
    if engine_callable is not None:
        result = engine_callable(tree, library, coupling, options)
    else:
        result = run_dp(tree, library, coupling, options)
    assert_outcomes_equivalent(reference, result, context)
    for side, priced_result in (("reference", reference), (engine, result)):
        for outcome in priced_result.outcomes:
            assignment = {i.node: i.buffer for i in outcome.insertions}
            physical = evaluate_assignment(
                tree, assignment, coupling,
                check_polarity=option_kwargs.get("enforce_polarity", True),
            ).slack
            posted = sum(
                site_prices.get(node, 0.0) for node in assignment
            )
            slop = ABS_TOL + REL_TOL * abs(physical)
            assert outcome.slack <= physical + slop, (
                f"{context} [{side}]: priced slack {outcome.slack!r} "
                f"exceeds its own assignment's certificate slack "
                f"{physical!r} at count {outcome.buffer_count}"
            )
            assert physical <= outcome.slack + posted + slop, (
                f"{context} [{side}]: certificate slack {physical!r} "
                f"exceeds priced slack {outcome.slack!r} plus the "
                f"posted prices {posted!r} at count {outcome.buffer_count}"
            )
    return result


def _power_selection(result, picker):
    """One power selection as comparable data (or the InfeasibleError)."""
    try:
        outcome = picker(result)
    except InfeasibleError:
        return "infeasible"
    return (outcome.buffer_count, outcome.slack, outcome.power)


def assert_power_selections_equivalent(reference, other, context=""):
    """The power *selections* match within the documented tolerance.

    Power mode relaxes the frontier-shape contract for the lishi
    engine: its ``(slack, power)`` dominance key compares ulp-apart
    values that the reference's merge order collapses, so the raw
    frontiers may split float ties differently.  What callers consume —
    ``min_power`` and ``power_capped`` — must still agree: same buffer
    count, slack and power equal within :data:`REL_TOL`/:data:`ABS_TOL`.
    Caps are probed at the reference's own outcome powers (min, median,
    max), each nudged up one part in 1e12 so a float-equal power an ulp
    above the probe still sits inside the cap on both sides.
    """
    if not reference.outcomes or not other.outcomes:
        assert bool(reference.outcomes) == bool(other.outcomes), (
            f"{context}: one side has an empty frontier: "
            f"{len(reference.outcomes)} vs {len(other.outcomes)} outcomes"
        )
        return
    pickers = [("min_power(0)", lambda r: r.min_power(min_slack=0.0))]
    powers = sorted(o.power for o in reference.outcomes)
    for cap in {powers[0], powers[len(powers) // 2], powers[-1]}:
        nudged = cap * (1.0 + 1e-12) if cap > 0 else cap
        pickers.append((
            f"power_capped({nudged!r})",
            lambda r, c=nudged: r.power_capped(c),
        ))
    for label, picker in pickers:
        ref_pick = _power_selection(reference, picker)
        other_pick = _power_selection(other, picker)
        if ref_pick == "infeasible" or other_pick == "infeasible":
            assert ref_pick == other_pick, (
                f"{context}: {label} feasibility diverged: "
                f"{ref_pick} vs {other_pick}"
            )
            continue
        ref_count, ref_slack, ref_power = ref_pick
        other_count, other_slack, other_power = other_pick
        assert ref_count == other_count, (
            f"{context}: {label} buffer count diverged: "
            f"{ref_count} vs {other_count}"
        )
        for field, ref_value, other_value in (
            ("slack", ref_slack, other_slack),
            ("power", ref_power, other_power),
        ):
            assert math.isclose(
                ref_value, other_value, rel_tol=REL_TOL, abs_tol=ABS_TOL
            ), (
                f"{context}: {label} {field} diverged: "
                f"{ref_value!r} vs {other_value!r}"
            )


def assert_power_equivalence(
    tree,
    library,
    power_model,
    coupling=None,
    engine="lishi",
    engine_callable=None,
    context="",
    **option_kwargs,
):
    """Cross-engine equivalence of the power-carrying DP.

    Three layers, mirroring :func:`assert_semantic_equivalence` but
    holding the *selections* rather than the raw frontier to the float
    tolerance (see :func:`assert_power_selections_equivalent`):

    1. selection equivalence against the reference engine;
    2. the independent certificate, which re-derives every outcome's
       power with the separable model (``repro.verify.recompute_power``)
       — an engine that under-accumulates power cannot pass it;
    3. on oracle-sized nets, the exhaustive power legs of
       :func:`~repro.verify.compare_result_to_oracle` (soundness
       always; exactness in delay mode, where the power DP does a full
       cross merge).

    Returns the engine-side result.
    """
    if not option_kwargs.get("noise_aware", False):
        coupling = CouplingModel.silent()
    coupling = coupling or CouplingModel.silent()
    context = context or f"{tree.name} [{engine}, power]"
    reference = run_dp(
        tree, library, coupling,
        DPOptions(engine="reference", power=power_model, **option_kwargs),
    )
    options = DPOptions(engine=engine, power=power_model, **option_kwargs)
    if engine_callable is not None:
        result = engine_callable(tree, library, coupling, options)
    else:
        result = run_dp(tree, library, coupling, options)
    assert_power_selections_equivalent(reference, result, context)
    assert_certificate_clean(result, coupling, tree.driver, context)
    if oracle_sized(tree) and result.options.sizing is None:
        oracle = exhaustive_oracle(
            tree,
            library,
            coupling,
            noise_aware=option_kwargs.get("noise_aware", False),
            max_buffers=result.options.max_buffers,
            enforce_polarity=result.options.enforce_polarity,
            max_sites=ORACLE_MAX_SITES,
            power_model=power_model,
        )
        disagreements = compare_result_to_oracle(
            result, oracle, exact=False, rel_tol=REL_TOL, abs_tol=ABS_TOL
        )
        assert not disagreements, (
            f"{context}: " + "; ".join(d.describe() for d in disagreements)
        )
    return result


def assert_semantic_equivalence(
    tree,
    library,
    coupling=None,
    engine="lishi",
    engine_callable=None,
    context="",
    **option_kwargs,
):
    """Run ``engine`` against the reference and apply all three layers.

    ``engine_callable`` substitutes a custom runner for the non-reference
    side (the planted-bug self-tests inject broken engines through it);
    it receives ``(tree, library, coupling, options)`` and must return a
    :class:`~repro.core.dp.DPResult`.  Returns the engine-side result so
    callers can stack further checks.

    Delay-mode runs use the silent coupling model regardless of the
    ``coupling`` argument — the repo-wide convention (see the fuzz
    campaign and the oracle suite): delay mode ignores noise by
    construction, so running it under a live coupling model produces
    noise-infeasible selections that the independent certificate and
    oracle rightly reject.
    """
    if not option_kwargs.get("noise_aware", False):
        coupling = CouplingModel.silent()
    coupling = coupling or CouplingModel.silent()
    context = context or f"{tree.name} [{engine}]"
    reference = run_dp(
        tree, library, coupling,
        DPOptions(engine="reference", **option_kwargs),
    )
    options = DPOptions(engine=engine, **option_kwargs)
    if engine_callable is not None:
        result = engine_callable(tree, library, coupling, options)
    else:
        result = run_dp(tree, library, coupling, options)
    assert_outcomes_equivalent(reference, result, context)
    assert_certificate_clean(result, coupling, tree.driver, context)
    if oracle_sized(tree) and result.options.sizing is None:
        assert_oracle_optimal(
            tree,
            result,
            library,
            coupling,
            option_kwargs.get("noise_aware", False),
            context,
        )
    return result
