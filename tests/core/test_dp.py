"""Tests for the shared DP engine (repro.core.dp).

The strongest checks are exhaustive: on small segmented trees the DP's
best slack must equal a brute-force search over *all* buffer assignments,
evaluated with the independent timing/noise analysis engines.
"""

import itertools
import math

import pytest

from repro import (
    BufferLibrary,
    BufferType,
    DPOptions,
    InfeasibleError,
    TreeBuilder,
    run_dp,
    segment_tree,
    two_pin_net,
)
from repro.core.dp import DPCandidate, _Engine
from repro.noise import has_noise_violation
from repro.timing import source_slack
from repro.units import FF, MM, NS, PS


def brute_force_best(tree, library, coupling=None, noise=False):
    """Exhaustive search over all assignments; returns (slack, assignment)."""
    sites = [n.name for n in tree.nodes() if n.is_internal and n.feasible]
    choices = [None, *library.buffers]
    best = (-math.inf, None)
    for combo in itertools.product(choices, repeat=len(sites)):
        assignment = {
            site: buf for site, buf in zip(sites, combo) if buf is not None
        }
        if noise and has_noise_violation(tree, coupling, assignment):
            continue
        slack = source_slack(tree, assignment)
        if slack > best[0]:
            best = (slack, assignment)
    return best


@pytest.fixture
def small_net(tech, driver):
    return two_pin_net(
        tech, 6 * MM, driver, 20 * FF, 0.8,
        required_arrival=1.2 * NS, segments=5, name="small",
    )


@pytest.fixture
def tiny_lib(single_buffer):
    strong = BufferType("b2", 80.0, 35 * FF, 22 * PS, 0.8)
    return BufferLibrary([single_buffer, strong])


class TestAgainstBruteForce:
    def test_delay_only_single_buffer(self, small_net, single_buffer, silent):
        from repro.library import single_buffer_library

        library = single_buffer_library(single_buffer)
        result = run_dp(small_net, library, silent)
        expected_slack, _ = brute_force_best(small_net, library)
        got = result.best(require_noise=False)
        assert math.isclose(got.slack, expected_slack, rel_tol=1e-12)

    def test_delay_only_two_buffers(self, small_net, tiny_lib, silent):
        result = run_dp(small_net, tiny_lib, silent)
        expected_slack, _ = brute_force_best(small_net, tiny_lib)
        assert math.isclose(
            result.best(require_noise=False).slack, expected_slack, rel_tol=1e-12
        )

    def test_delay_only_branching_tree(self, tech, driver, tiny_lib, silent):
        builder = TreeBuilder(tech)
        builder.add_source("so", driver=driver)
        builder.add_internal("u")
        builder.add_wire("so", "u", length=2 * MM)
        builder.add_sink("s1", capacitance=30 * FF, noise_margin=0.8,
                         required_arrival=0.9 * NS)
        builder.add_sink("s2", capacitance=8 * FF, noise_margin=0.8,
                         required_arrival=0.7 * NS)
        builder.add_wire("u", "s1", length=2.5 * MM)
        builder.add_wire("u", "s2", length=1.5 * MM)
        tree = segment_tree(builder.build("branchy"), 1 * MM)
        result = run_dp(tree, tiny_lib, silent)
        expected_slack, _ = brute_force_best(tree, tiny_lib)
        assert math.isclose(
            result.best(require_noise=False).slack, expected_slack, rel_tol=1e-12
        )

    def test_noise_constrained_single_buffer(
        self, tech, driver, single_buffer, coupling
    ):
        from repro.library import single_buffer_library

        net = two_pin_net(
            tech, 6 * MM, driver, 20 * FF, 0.8,
            required_arrival=1.2 * NS, segments=5, name="noisy",
        )
        library = single_buffer_library(single_buffer)
        result = run_dp(
            net, library, coupling, DPOptions(noise_aware=True)
        )
        expected_slack, expected_assignment = brute_force_best(
            net, library, coupling, noise=True
        )
        assert expected_assignment is not None
        got = result.best()
        assert math.isclose(got.slack, expected_slack, rel_tol=1e-12)
        solution = result.solution(got)
        assert not has_noise_violation(net, coupling, solution.buffer_map())

    def test_noise_constrained_count_tracking(
        self, tech, driver, single_buffer, coupling
    ):
        """Per-count outcomes each match a count-restricted brute force."""
        from repro.library import single_buffer_library

        net = two_pin_net(
            tech, 7 * MM, driver, 20 * FF, 0.8,
            required_arrival=1.5 * NS, segments=4, name="noisy",
        )
        library = single_buffer_library(single_buffer)
        result = run_dp(
            net, library, coupling,
            DPOptions(noise_aware=True, track_counts=True),
        )
        sites = [n.name for n in net.nodes() if n.is_internal and n.feasible]
        for outcome in result.outcomes:
            best = -math.inf
            for combo in itertools.combinations(sites, outcome.buffer_count):
                assignment = {s: single_buffer for s in combo}
                if has_noise_violation(net, coupling, assignment):
                    continue
                best = max(best, source_slack(net, assignment))
            assert math.isclose(outcome.slack, best, rel_tol=1e-12), (
                outcome.buffer_count
            )


class TestCandidateConsistency:
    def test_outcome_slack_matches_analysis(self, small_net, tiny_lib, silent):
        """The DP's internal arithmetic must agree with the independent
        Elmore engine on the final solution."""
        result = run_dp(small_net, tiny_lib, silent)
        for outcome in result.outcomes:
            solution = result.solution(outcome)
            analyzed = source_slack(small_net, solution.buffer_map())
            assert math.isclose(outcome.slack, analyzed, rel_tol=1e-9)

    def test_noise_outcomes_all_clean(self, tech, driver, tiny_lib, coupling):
        net = two_pin_net(
            tech, 8 * MM, driver, 20 * FF, 0.8,
            required_arrival=2 * NS, segments=8, name="n",
        )
        result = run_dp(
            net, tiny_lib, coupling,
            DPOptions(noise_aware=True, track_counts=True),
        )
        assert result.outcomes, "expected at least one feasible outcome"
        for outcome in result.outcomes:
            solution = result.solution(outcome)
            assert not has_noise_violation(net, coupling, solution.buffer_map())


class TestOptions:
    def test_max_buffers_requires_count_tracking(self):
        with pytest.raises(ValueError):
            DPOptions(max_buffers=3)

    def test_negative_max_buffers_rejected(self):
        with pytest.raises(ValueError):
            DPOptions(max_buffers=-1, track_counts=True)

    def test_unknown_prune_rejected(self):
        with pytest.raises(ValueError):
            DPOptions(prune="fancy")

    def test_max_buffers_respected(self, small_net, tiny_lib, silent):
        result = run_dp(
            small_net, tiny_lib, silent,
            DPOptions(track_counts=True, max_buffers=2),
        )
        assert all(o.buffer_count <= 2 for o in result.outcomes)

    def test_pareto_prune_never_worse(self, tech, driver, tiny_lib, coupling):
        net = two_pin_net(
            tech, 8 * MM, driver, 20 * FF, 0.8,
            required_arrival=2 * NS, segments=6, name="n",
        )
        timing = run_dp(net, tiny_lib, coupling,
                        DPOptions(noise_aware=True, prune="timing"))
        pareto = run_dp(net, tiny_lib, coupling,
                        DPOptions(noise_aware=True, prune="pareto"))
        assert pareto.best().slack >= timing.best().slack - 1e-15
        assert pareto.candidates_kept_peak >= timing.candidates_kept_peak

    def test_missing_driver_raises(self, tech, tiny_lib, silent):
        builder = TreeBuilder(tech)
        builder.add_source("so")
        builder.add_sink("s", capacitance=1 * FF, noise_margin=0.8,
                         required_arrival=1 * NS)
        builder.add_wire("so", "s", length=1 * MM)
        with pytest.raises(InfeasibleError):
            run_dp(builder.build(), tiny_lib, silent)


class TestPruneRules:
    def make(self, load, slack, current=0.0, noise_slack=1.0):
        return DPCandidate(load, slack, current, noise_slack, 0, None)

    def test_timing_prune_keeps_frontier(self):
        a = self.make(1 * FF, 10 * PS)
        b = self.make(2 * FF, 20 * PS)
        c = self.make(3 * FF, 15 * PS)  # dominated by b
        kept = _Engine._prune_timing([c, a, b])
        assert kept == [a, b]

    def test_timing_prune_equal_loads(self):
        a = self.make(1 * FF, 10 * PS)
        b = self.make(1 * FF, 20 * PS)
        kept = _Engine._prune_timing([a, b])
        assert kept == [b]

    def test_pareto_prune_keeps_noise_distinct(self):
        a = self.make(1 * FF, 20 * PS, current=2.0, noise_slack=0.1)
        b = self.make(2 * FF, 10 * PS, current=1.0, noise_slack=0.5)
        kept = _Engine._prune_pareto([a, b])
        assert len(kept) == 2

    def test_pareto_prune_drops_dominated(self):
        a = self.make(1 * FF, 20 * PS, current=1.0, noise_slack=0.5)
        b = self.make(2 * FF, 10 * PS, current=2.0, noise_slack=0.1)
        kept = _Engine._prune_pareto([a, b])
        assert kept == [a]
