"""The power accumulator and its selections, across all three engines.

The tentpole contracts pinned here, at the DP layer:

* ``DPOptions.power`` is a strict opt-in: a ``power=None`` run is the
  pre-power code path, evidenced by reference/fast signature equality
  (bit-identity pair) and by the *zero-model identity* — a model whose
  powers are all zero produces byte-identical outcomes on the engines
  that guarantee bit-identity (reference, fast).  The lishi engine's
  power key splits float ties differently even at zero, so its
  power-off bar is determinism plus semantic equivalence — the same
  discipline as ``site_prices`` (see ``test_site_prices.py``).
* With a live model, the fast engine stays bit-identical to the
  reference (now including each outcome's accumulated power), and the
  lishi engine passes the three-layer power harness
  (:func:`equivalence.assert_power_equivalence`): selection
  equivalence, independent certificate power re-derivation, exhaustive
  oracle power legs.
* The selection surface — ``min_power`` / ``power_capped`` /
  ``pareto_outcomes`` / ``select(Objective(...))`` — implements the
  documented tie-breaks and refuses to answer without a power model.
* The harness catches a planted power-underaccumulating engine (the
  bug class only the certificate's re-derivation can see).
"""

import math
import pathlib
import sys

import pytest

_HERE = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(_HERE))
from equivalence import (  # noqa: E402
    assert_outcomes_equivalent,
    assert_power_equivalence,
)

from repro import (  # noqa: E402
    CouplingModel,
    DPOptions,
    default_buffer_library,
    default_technology,
    run_dp,
)
from repro.core.objective import Objective  # noqa: E402
from repro.errors import InfeasibleError  # noqa: E402
from repro.library.power import PowerModel, default_power_model  # noqa: E402
from repro.verify import recompute_power  # noqa: E402
from repro.verify.treegen import seeded_tree  # noqa: E402

LIBRARY = default_buffer_library()
SILENT = CouplingModel.silent()
COUPLING = CouplingModel.estimation_mode(default_technology())
POWER = default_power_model()

ENGINES = ("reference", "fast", "lishi")
#: bit-identity pair: these two engines promise byte-equal results.
BIT_ENGINES = ("reference", "fast")

#: the acceptance fleet: 200 seeded nets for the power-off identity.
FLEET_SEEDS = range(200)


class ZeroPowerModel:
    """Duck-typed model whose every power is exactly zero."""

    def wire_power(self, capacitance):
        return 0.0

    def buffer_power(self, buffer):
        return 0.0


def _signature(result, with_power=False):
    return tuple(
        (
            o.buffer_count,
            o.slack,
            o.noise_feasible,
            o.power if with_power else None,
            tuple(sorted(
                (i.node, i.buffer.name) for i in o.insertions
            )),
        )
        for o in result.outcomes
    )


def _run(tree, engine, noise_aware=False, power=None, **kwargs):
    coupling = COUPLING if noise_aware else SILENT
    return run_dp(tree, LIBRARY, coupling, DPOptions(
        engine=engine, noise_aware=noise_aware, power=power, **kwargs
    ))


class TestOptionsValidation:
    def test_power_must_expose_the_model_surface(self):
        with pytest.raises(ValueError, match="power"):
            DPOptions(power=object())

    def test_power_is_incompatible_with_sizing(self):
        from repro.core.wire_sizing import WireSizingSpec

        with pytest.raises(ValueError, match="sizing"):
            DPOptions(power=POWER, sizing=WireSizingSpec())


class TestPowerAccumulator:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("noise_aware", [False, True])
    def test_every_outcome_power_matches_the_re_derivation(
        self, engine, noise_aware
    ):
        """Engine-accumulated power == the independent separable sum."""
        for seed in range(8):
            tree = seeded_tree(seed, max_internal=4, with_rats=True)
            result = _run(tree, engine, noise_aware=noise_aware, power=POWER)
            for outcome in result.outcomes:
                assignment = {
                    i.node: i.buffer for i in outcome.insertions
                }
                expected = recompute_power(tree, assignment, POWER)
                assert math.isclose(
                    outcome.power, expected, rel_tol=1e-9, abs_tol=0.0
                ), (
                    f"seed {seed} [{engine}]: accumulated "
                    f"{outcome.power!r}, re-derived {expected!r}"
                )

    def test_power_off_outcomes_carry_exactly_zero(self):
        # The documented power-off sentinel: DPOutcome.power is exactly
        # 0.0 (not garbage, not the model's value) without a model.
        tree = seeded_tree(0, max_internal=3, with_rats=True)
        result = _run(tree, "reference")
        assert result.outcomes
        assert all(o.power == 0.0 for o in result.outcomes)


class TestFastBitIdentityWithPower:
    @pytest.mark.parametrize("noise_aware", [False, True])
    def test_power_runs_identical(self, noise_aware):
        for seed in range(20):
            tree = seeded_tree(seed, max_internal=4, with_rats=True)
            ref = _run(tree, "reference", noise_aware=noise_aware,
                       power=POWER)
            fast = _run(tree, "fast", noise_aware=noise_aware, power=POWER)
            assert _signature(ref, with_power=True) == \
                _signature(fast, with_power=True), f"seed {seed}"


class TestPowerOffFleetIdentity:
    """The acceptance gate: power-off bit-identity on a 200-net fleet."""

    def test_200_net_power_off_signatures(self):
        for seed in FLEET_SEEDS:
            noise_aware = bool(seed % 2)
            tree = seeded_tree(seed, max_internal=4, with_rats=True)
            runs = {
                engine: _run(tree, engine, noise_aware=noise_aware)
                for engine in ENGINES
            }
            # Bit-identity pair.
            assert _signature(runs["reference"]) == \
                _signature(runs["fast"]), f"seed {seed}: reference vs fast"
            # Zero-model identity on the bit-identical engines: the
            # power machinery at zero is byte-invisible.
            for engine in BIT_ENGINES:
                zero = _run(tree, engine, noise_aware=noise_aware,
                            power=ZeroPowerModel())
                assert _signature(zero) == _signature(runs[engine]), (
                    f"seed {seed} [{engine}]: zero power model changed "
                    "the power-off result"
                )
                assert all(o.power == 0.0 for o in zero.outcomes)
            # Lishi power-off: deterministic and semantically equivalent.
            again = _run(tree, "lishi", noise_aware=noise_aware)
            assert _signature(runs["lishi"]) == _signature(again), (
                f"seed {seed}: lishi power-off run is not deterministic"
            )
            assert_outcomes_equivalent(
                runs["reference"], runs["lishi"],
                f"seed {seed} [lishi, power-off]",
            )


class TestLishiPowerEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_delay_mode(self, seed):
        tree = seeded_tree(seed, max_internal=3, with_rats=True)
        assert_power_equivalence(tree, LIBRARY, POWER)

    @pytest.mark.parametrize("seed", range(6))
    def test_noise_mode(self, seed):
        tree = seeded_tree(seed, max_internal=3, with_rats=True)
        assert_power_equivalence(
            tree, LIBRARY, POWER, coupling=COUPLING, noise_aware=True
        )

    def test_underaccumulating_mutant_is_caught(self):
        """Halving the accumulated power must fail the certificate
        layer — the selections still agree (the ordering is preserved),
        so only the independent re-derivation can see this bug."""
        from dataclasses import replace

        def understating_lishi(tree, library, coupling, options):
            result = run_dp(tree, library, coupling, options)
            return replace(result, outcomes=tuple(
                replace(o, power=o.power * 0.5) for o in result.outcomes
            ))

        caught = 0
        for seed in range(6):
            tree = seeded_tree(seed, max_internal=3, with_rats=True)
            try:
                assert_power_equivalence(
                    tree, LIBRARY, POWER,
                    engine_callable=understating_lishi,
                )
            except AssertionError as exc:
                assert "power" in str(exc)
                caught += 1
        assert caught >= 4, f"mutant escaped on {6 - caught} of 6 nets"


def _buffered_power_result(engine="reference", noise_aware=False):
    """A seeded run with at least two distinct outcome powers."""
    for seed in range(40):
        tree = seeded_tree(seed, max_internal=4, with_rats=True)
        result = _run(tree, engine, noise_aware=noise_aware, power=POWER)
        if len({o.power for o in result.outcomes}) >= 2:
            return result
    raise AssertionError("no seeded net produced a multi-power frontier")


class TestPowerSelections:
    def test_selections_require_a_power_model(self):
        tree = seeded_tree(0, max_internal=3, with_rats=True)
        result = _run(tree, "reference")
        for picker in (
            lambda: result.min_power(),
            lambda: result.power_capped(1.0),
            lambda: result.pareto_outcomes(),
        ):
            with pytest.raises(ValueError, match="power-model"):
                picker()

    def test_min_power_meets_the_floor_with_least_power(self):
        result = _buffered_power_result()
        meeting = [o for o in result.outcomes if o.slack >= 0.0]
        if not meeting:
            pytest.skip("seeded frontier has no slack-meeting outcome")
        chosen = result.min_power(min_slack=0.0)
        assert chosen.slack >= 0.0
        assert chosen.power == min(o.power for o in meeting)

    def test_min_power_falls_back_to_max_slack(self):
        result = _buffered_power_result()
        impossible = max(o.slack for o in result.outcomes) + 1.0
        chosen = result.min_power(min_slack=impossible)
        assert chosen.slack == max(o.slack for o in result.outcomes)

    def test_power_capped_is_a_hard_cap(self):
        result = _buffered_power_result()
        powers = sorted({o.power for o in result.outcomes})
        cap = powers[0]
        chosen = result.power_capped(cap)
        assert chosen.power <= cap
        within = [o for o in result.outcomes if o.power <= cap]
        assert chosen.slack == max(o.slack for o in within)
        with pytest.raises(InfeasibleError, match="power"):
            result.power_capped(powers[0] * 0.5 - 1e-30)

    def test_pareto_outcomes_are_nondominated(self):
        result = _buffered_power_result()
        frontier = result.pareto_outcomes()
        assert frontier, "empty pareto frontier"
        # Best-slack-first ordering.
        slacks = [o.slack for o in frontier]
        assert slacks == sorted(slacks, reverse=True)
        for a in frontier:
            for b in result.outcomes:
                if b is a:
                    continue
                dominates = (
                    b.slack >= a.slack
                    and b.power <= a.power
                    and b.buffer_count <= a.buffer_count
                    and (
                        b.slack > a.slack
                        or b.power < a.power
                        or b.buffer_count < a.buffer_count
                    )
                )
                assert not dominates, (
                    f"frontier outcome {a} dominated by {b}"
                )

    def test_select_dispatches_the_power_rules(self):
        result = _buffered_power_result()
        powers = sorted({o.power for o in result.outcomes})
        assert result.select(
            Objective(mode="delay", selection="min-power")
        ) == result.min_power(min_slack=0.0)
        assert result.select(Objective(
            mode="delay", selection="power-capped", power_cap=powers[-1]
        )) == result.power_capped(powers[-1])
        assert result.select(
            Objective(mode="delay", selection="pareto")
        ) == result.pareto_outcomes()
