"""Differential suite: the fast engine is bit-identical to the reference.

The fast engine (:mod:`repro.core.fast_engine`) promises *bit-identical*
:class:`~repro.core.dp.DPOutcome` frontiers — same floats, same
selections, same order — not merely tolerance-equal ones.  These tests
hold it to that across:

* hypothesis-generated random trees (both prune rules, both polarity
  settings, both modes, with and without count tracking),
* the seeded regression family at the batch level (result signatures),
* the independent certificate and the exhaustive oracle, so the pair
  cannot drift together into a shared wrong answer.

The property tests reuse the shared strategies in
``tests/properties/treegen.py``; the test dirs are not packages, so the
path is inserted explicitly.
"""

import pathlib
import sys

import pytest
from hypothesis import HealthCheck, given, settings

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "properties")
)
from treegen import random_trees  # noqa: E402

from repro import (  # noqa: E402
    CouplingModel,
    DPOptions,
    default_buffer_library,
    default_technology,
    run_dp,
)
from repro.batch import BatchConfig, BatchOptimizer, SerialExecutor  # noqa: E402
from repro.core import WireSizingSpec  # noqa: E402
from repro.verify import (  # noqa: E402
    certify_result,
    compare_result_to_oracle,
    exhaustive_oracle,
)
from repro.verify.treegen import seeded_tree  # noqa: E402
from repro.workloads import WorkloadConfig, population_specs  # noqa: E402

LIBRARY = default_buffer_library()
COUPLING = CouplingModel.estimation_mode(default_technology())

default_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


def both_engines(tree, **option_kwargs):
    reference = run_dp(
        tree, LIBRARY, COUPLING,
        DPOptions(engine="reference", **option_kwargs),
    )
    fast = run_dp(
        tree, LIBRARY, COUPLING,
        DPOptions(engine="fast", **option_kwargs),
    )
    return reference, fast


def assert_identical(reference, fast, context=""):
    # DPOutcome equality is exact float equality field by field, and the
    # tuple comparison is order-sensitive: this is the bit-identity bar.
    assert reference.outcomes == fast.outcomes, context
    assert reference.candidates_generated == fast.candidates_generated, context
    assert reference.candidates_kept_peak == fast.candidates_kept_peak, context


class TestPropertyDifferential:
    @default_settings
    @given(tree=random_trees(with_rats=True))
    def test_delay_mode_identical(self, tree):
        assert_identical(*both_engines(tree))

    @default_settings
    @given(tree=random_trees(with_rats=True))
    def test_noise_mode_identical(self, tree):
        assert_identical(*both_engines(tree, noise_aware=True))

    @default_settings
    @given(tree=random_trees(with_rats=True))
    def test_pareto_prune_identical(self, tree):
        assert_identical(
            *both_engines(tree, noise_aware=True, prune="pareto")
        )

    @default_settings
    @given(tree=random_trees(with_rats=True))
    def test_polarity_free_identical(self, tree):
        assert_identical(
            *both_engines(tree, noise_aware=True, enforce_polarity=False)
        )

    @default_settings
    @given(tree=random_trees(with_rats=True))
    def test_count_tracking_identical(self, tree):
        assert_identical(
            *both_engines(
                tree, noise_aware=True, track_counts=True, max_buffers=3
            )
        )

    @default_settings
    @given(tree=random_trees(with_rats=True))
    def test_wire_sizing_identical(self, tree):
        assert_identical(
            *both_engines(tree, sizing=WireSizingSpec(widths=(1.0, 1.6)))
        )


class TestSeededDifferential:
    def test_seeded_family_identical_with_telemetry(self):
        """Per-node telemetry matches too, not just the final frontier."""
        for seed in range(20):
            tree = seeded_tree(seed, with_rats=True)
            for noise_aware in (False, True):
                reference, fast = both_engines(
                    tree,
                    noise_aware=noise_aware,
                    track_counts=True,
                    collect_stats=True,
                )
                assert_identical(
                    reference, fast,
                    f"seed {seed} noise_aware={noise_aware}",
                )
                ref_stats, fast_stats = reference.stats, fast.stats
                assert ref_stats.engine == "reference"
                assert fast_stats.engine == "fast"
                ref_nodes = {n.name: n for n in ref_stats.nodes}
                fast_nodes = {n.name: n for n in fast_stats.nodes}
                assert ref_nodes.keys() == fast_nodes.keys()
                for name, ref_node in ref_nodes.items():
                    fast_node = fast_nodes[name]
                    assert ref_node.generated == fast_node.generated
                    assert ref_node.pruned == fast_node.pruned
                    assert ref_node.dead == fast_node.dead
                    assert ref_node.frontier == fast_node.frontier
                    assert ref_node.merge_forks == fast_node.merge_forks

    def test_batch_signatures_identical(self):
        workload = WorkloadConfig(nets=12, seed=404)
        specs = population_specs(workload)
        for mode in ("delay", "buffopt"):
            reports = {}
            for engine in ("reference", "fast"):
                optimizer = BatchOptimizer(
                    config=BatchConfig(
                        mode=mode,
                        max_buffers=4,
                        keep_trees=False,
                        engine=engine,
                    ),
                    executor=SerialExecutor(),
                    workload=workload,
                )
                reports[engine] = optimizer.optimize_specs(specs)
            assert (
                reports["reference"].signatures()
                == reports["fast"].signatures()
            ), f"mode {mode}: batch results diverged between engines"


class TestFastEngineIndependentChecks:
    """Fast results against the *independent* validators.

    Bit-identity alone could hide a shared bug; the certificate re-derives
    every claim from the physics and the oracle enumerates assignments.
    """

    def test_fast_results_certify(self):
        for seed in range(8):
            tree = seeded_tree(seed, with_rats=True)
            result = run_dp(
                tree, LIBRARY, COUPLING,
                DPOptions(noise_aware=True, engine="fast"),
            )
            certificate = certify_result(result, COUPLING, tree.driver)
            assert certificate.ok, (
                f"seed {seed}: {certificate.describe()}"
            )

    def test_fast_matches_oracle_on_small_nets(self):
        small = LIBRARY.restricted(["buf_x1", "inv_x2"])
        checked = 0
        seed = 0
        while checked < 10:
            tree = seeded_tree(seed, max_internal=3, with_rats=True)
            seed += 1
            sites = sum(
                1 for n in tree.nodes() if n.is_internal and n.feasible
            )
            if not 1 <= sites <= 6:
                continue
            checked += 1
            result = run_dp(
                tree, small, COUPLING,
                DPOptions(
                    noise_aware=True, track_counts=True, engine="fast"
                ),
            )
            oracle = exhaustive_oracle(
                tree, small, COUPLING, noise_aware=True, max_sites=6
            )
            disagreements = compare_result_to_oracle(
                result, oracle, exact=True
            )
            assert not disagreements, (
                f"{tree.name}: "
                + "; ".join(d.describe() for d in disagreements)
            )


class TestEngineOption:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            DPOptions(engine="turbo")

    def test_default_engine_is_reference(self):
        assert DPOptions().engine == "reference"
