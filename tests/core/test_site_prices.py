"""The ``DPOptions.site_prices`` hook: validation, all three engines,
bit-identity of the zero-price path, and the planted stale-price mutant.

``site_prices`` is the seam the fleet coordinator threads Lagrangian
congestion prices through (see ``repro.fleet``); these tests pin its
core contracts *at the DP layer*, independent of any coordinator:

* pricing a node makes buffering there strictly less attractive — a
  large enough price drives the chosen count to zero in every engine;
* absent, empty, and all-zero price maps are the same run bit-for-bit
  (the coordinator's round-0 ≡ uncoordinated-batch guarantee rests on
  this);
* the lishi engine stays semantically equivalent under prices, and the
  harness proves it can catch a stale-``site_prices`` engine (one that
  silently optimizes under the previous call's prices);
* the ECO frontier cache context changes with effective prices and only
  with effective prices.
"""

import pathlib
import sys

import pytest

_HERE = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(_HERE))
from equivalence import ABS_TOL, assert_priced_equivalence  # noqa: E402

from repro import (  # noqa: E402
    CouplingModel,
    DPOptions,
    default_buffer_library,
    default_technology,
    run_dp,
)
from repro.core.eco import context_key  # noqa: E402
from repro.units import PS  # noqa: E402
from repro.verify.treegen import seeded_tree  # noqa: E402

LIBRARY = default_buffer_library()
SILENT = CouplingModel.silent()
COUPLING = CouplingModel.estimation_mode(default_technology())

#: seeds whose unpriced delay-mode optimum inserts >= 2 buffers over
#: >= 2 distinct feasible sites (verified; pricing has room to bite).
BUFFERED_SEEDS = (0, 5, 8, 10, 11, 16, 18)


def _sites(tree):
    return [n.name for n in tree.nodes() if n.is_internal and n.feasible]


class TestValidation:
    def test_rejects_non_mapping(self):
        with pytest.raises(ValueError, match="site_prices"):
            DPOptions(site_prices=[("n", 1.0)])

    def test_rejects_non_string_keys(self):
        with pytest.raises(ValueError, match="node names"):
            DPOptions(site_prices={3: 1.0})

    def test_rejects_non_numeric_prices(self):
        with pytest.raises(ValueError, match="number"):
            DPOptions(site_prices={"n": "free"})
        with pytest.raises(ValueError, match="number"):
            DPOptions(site_prices={"n": True})

    def test_rejects_negative_and_non_finite_prices(self):
        with pytest.raises(ValueError, match="finite"):
            DPOptions(site_prices={"n": -1.0})
        with pytest.raises(ValueError, match="finite"):
            DPOptions(site_prices={"n": float("inf")})
        with pytest.raises(ValueError, match="finite"):
            DPOptions(site_prices={"n": float("nan")})


class TestEnginesHonorPrices:
    @pytest.mark.parametrize("engine", ["reference", "fast", "lishi"])
    @pytest.mark.parametrize("seed", BUFFERED_SEEDS[:3])
    def test_prohibitive_price_empties_the_solution(self, engine, seed):
        """A price dwarfing any achievable delay gain zeroes the count."""
        tree = seeded_tree(seed, max_internal=3, with_rats=True)
        prices = {name: 1.0 for name in _sites(tree)}  # 1 s >> ns slacks
        result = run_dp(
            tree, LIBRARY, SILENT,
            DPOptions(engine=engine, site_prices=prices),
        )
        assert result.best().buffer_count == 0

    @pytest.mark.parametrize("engine", ["reference", "fast", "lishi"])
    def test_moderate_price_lowers_priced_slack(self, engine):
        """Buffered outcomes pay — never gain — under prices, and the
        critical path pays strictly.

        Penalties on non-critical branches are absorbed by the min at
        merges, so per-count equality is legal; a coordinator-relevant
        price must still show up *somewhere* (on seed 0 the top count's
        critical path is priced — pinned as a strict decrease).
        """
        tree = seeded_tree(0, max_internal=3, with_rats=True)
        prices = {name: 50 * PS for name in _sites(tree)}
        plain = run_dp(tree, LIBRARY, SILENT, DPOptions(engine=engine))
        priced = run_dp(
            tree, LIBRARY, SILENT,
            DPOptions(engine=engine, site_prices=prices),
        )
        plain_map = {o.buffer_count: o.slack for o in plain.outcomes}
        strict = 0
        for outcome in priced.outcomes:
            if outcome.buffer_count not in plain_map:
                continue
            plain_slack = plain_map[outcome.buffer_count]
            assert outcome.slack <= plain_slack + ABS_TOL, (
                f"{engine}: count {outcome.buffer_count} gained "
                "slack from being priced"
            )
            if outcome.slack < plain_slack - ABS_TOL:
                strict += 1
        assert strict >= 1, f"{engine}: no outcome paid any penalty"


class TestZeroPriceBitIdentity:
    @pytest.mark.parametrize("engine", ["reference", "fast"])
    @pytest.mark.parametrize("empty", [None, {}])
    def test_absent_and_empty_identical(self, engine, empty):
        tree = seeded_tree(8, max_internal=3, with_rats=True)
        plain = run_dp(tree, LIBRARY, SILENT, DPOptions(engine=engine))
        priced = run_dp(
            tree, LIBRARY, SILENT,
            DPOptions(engine=engine, site_prices=empty),
        )
        assert _signature(plain) == _signature(priced)

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_all_zero_prices_identical(self, engine):
        """``x - 0.0`` is IEEE bit-identical to ``x``: a zero price map
        must reproduce the unpriced run exactly, not just closely."""
        tree = seeded_tree(8, max_internal=3, with_rats=True)
        zeros = {name: 0.0 for name in _sites(tree)}
        plain = run_dp(tree, LIBRARY, SILENT, DPOptions(engine=engine))
        priced = run_dp(
            tree, LIBRARY, SILENT,
            DPOptions(engine=engine, site_prices=zeros),
        )
        assert _signature(plain) == _signature(priced)


def _signature(result):
    return tuple(
        (
            o.buffer_count,
            o.slack,
            o.noise_feasible,
            tuple(sorted(
                (i.node, i.buffer.name) for i in o.insertions
            )),
        )
        for o in result.outcomes
    )


class TestLishiPricedEquivalence:
    @pytest.mark.parametrize("seed", BUFFERED_SEEDS)
    def test_delay_mode(self, seed):
        tree = seeded_tree(seed, max_internal=3, with_rats=True)
        prices = {
            name: (10 + 7 * i) * PS
            for i, name in enumerate(sorted(_sites(tree)))
        }
        assert_priced_equivalence(tree, LIBRARY, prices)

    @pytest.mark.parametrize("seed", BUFFERED_SEEDS[:3])
    def test_noise_mode(self, seed):
        tree = seeded_tree(seed, max_internal=3, with_rats=True)
        prices = {name: 25 * PS for name in _sites(tree)}
        assert_priced_equivalence(
            tree, LIBRARY, prices, coupling=COUPLING, noise_aware=True
        )

    def test_stale_price_mutant_is_caught(self):
        """A lishi runner that optimizes under the *previous* call's
        prices (here: none at all) must fail the priced harness."""
        tree = seeded_tree(0, max_internal=3, with_rats=True)
        prices = {name: 100 * PS for name in _sites(tree)}

        def stale_lishi(tree, library, coupling, options):
            stale = DPOptions(
                engine=options.engine,
                noise_aware=options.noise_aware,
                site_prices=None,  # the bug: this call's prices dropped
            )
            return run_dp(tree, library, coupling, stale)

        with pytest.raises(AssertionError, match="priced"):
            assert_priced_equivalence(
                tree, LIBRARY, prices, engine_callable=stale_lishi
            )


class TestEcoContextKey:
    def test_effective_prices_change_the_key(self):
        options = DPOptions()
        priced = DPOptions(site_prices={"n1": 10 * PS})
        assert context_key(LIBRARY, SILENT, options) != context_key(
            LIBRARY, SILENT, priced
        )

    def test_zero_prices_share_the_unpriced_key(self):
        """Zero prices are bit-identical to absent ones, so caching them
        under the same context is correct — and asserted, so nobody
        'fixes' it into a spurious cache split."""
        options = DPOptions()
        zeroed = DPOptions(site_prices={"n1": 0.0})
        empty = DPOptions(site_prices={})
        assert context_key(LIBRARY, SILENT, options) == context_key(
            LIBRARY, SILENT, zeroed
        )
        assert context_key(LIBRARY, SILENT, options) == context_key(
            LIBRARY, SILENT, empty
        )

    def test_different_prices_differ(self):
        one = DPOptions(site_prices={"n1": 10 * PS})
        other = DPOptions(site_prices={"n1": 20 * PS})
        assert context_key(LIBRARY, SILENT, one) != context_key(
            LIBRARY, SILENT, other
        )
