"""Tests for repro.core.van_ginneken — the DelayOpt baseline."""

import math

import pytest

from repro import optimize_delay, optimize_delay_per_count, two_pin_net
from repro.core import best_within_count, delay_opt_result
from repro.timing import max_sink_delay, source_slack
from repro.units import FF, MM, NS


@pytest.fixture
def net(tech, driver):
    return two_pin_net(
        tech, 9 * MM, driver, 25 * FF, 0.8,
        required_arrival=2 * NS, segments=9, name="d9",
    )


class TestOptimizeDelay:
    def test_improves_slack_on_long_net(self, net, library):
        solution = optimize_delay(net, library)
        assert solution.buffer_count > 0
        assert source_slack(net, solution.buffer_map()) > source_slack(net)

    def test_short_net_may_stay_unbuffered(self, tech, driver, library):
        net = two_pin_net(
            tech, 0.3 * MM, driver, 5 * FF, 0.8,
            required_arrival=1 * NS, segments=2,
        )
        solution = optimize_delay(net, library)
        base = source_slack(net)
        assert source_slack(net, solution.buffer_map()) >= base

    def test_solution_nodes_are_feasible_sites(self, net, library):
        solution = optimize_delay(net, library)
        for name in solution.buffer_map():
            node = net.node(name)
            assert node.is_internal and node.feasible


class TestPerCount:
    def test_counts_are_distinct_and_bounded(self, net, library):
        solutions = optimize_delay_per_count(net, library, max_buffers=4)
        assert set(solutions) <= {0, 1, 2, 3, 4}
        for count, solution in solutions.items():
            assert solution.buffer_count == count

    def test_slack_improves_weakly_with_count(self, net, library):
        """More allowed buffers can only help (per-count best slacks)."""
        result = delay_opt_result(net, library, max_buffers=4)
        slacks = {o.buffer_count: o.slack for o in result.outcomes}
        best_so_far = -math.inf
        for k in sorted(slacks):
            # best-within-k is nondecreasing
            best_so_far = max(best_so_far, slacks[k])
            within = best_within_count(result, k)
            assert source_slack(net, within.buffer_map()) >= best_so_far - 1e-12

    def test_best_within_count_monotone(self, net, library):
        result = delay_opt_result(net, library, max_buffers=4)
        delays = [
            max_sink_delay(net, best_within_count(result, k).buffer_map())
            for k in range(1, 5)
        ]
        for a, b in zip(delays, delays[1:]):
            assert b <= a + 1e-15

    def test_best_within_count_rejects_empty(self, net, library):
        result = delay_opt_result(net, library, max_buffers=2)
        with pytest.raises(ValueError):
            # counts above the cap were never generated, but 0 always is;
            # ask for a negative bound to force the error path
            best_within_count(result, -1)


class TestPolarity:
    def test_source_sees_even_inversions(self, net, library):
        """With a mixed library and polarity enforcement, every sink must
        see an even number of inverters."""
        solution = optimize_delay(net, library, enforce_polarity=True)
        for sink, inversions in solution.sink_inversions().items():
            assert inversions % 2 == 0, (sink, inversions)

    def test_unenforced_polarity_can_use_odd_inverters(self, net, library):
        free = optimize_delay(net, library, enforce_polarity=False)
        strict = optimize_delay(net, library, enforce_polarity=True)
        assert source_slack(net, free.buffer_map()) >= source_slack(
            net, strict.buffer_map()
        ) - 1e-15

    def test_noninverting_only_library_unaffected_by_flag(self, net, library):
        non_inv = library.non_inverting()
        a = optimize_delay(net, non_inv, enforce_polarity=True)
        b = optimize_delay(net, non_inv, enforce_polarity=False)
        assert source_slack(net, a.buffer_map()) == pytest.approx(
            source_slack(net, b.buffer_map()), rel=1e-12
        )
