"""Tests for repro.core.wire_length — Theorem 1 and its corollaries."""

import math

import pytest

from repro import InfeasibleError, max_safe_length, unloaded_max_length
from repro.core import (
    max_coupling_ratio,
    max_safe_length_estimation,
    min_separation,
    uniform_line_spacing,
    uniform_wire_noise,
    violating_margin_bound,
)

R = 7.6e4  # ohm/m
I = 0.6  # A/m
NM = 0.8  # V


class TestMaxSafeLength:
    def test_noise_at_lmax_exactly_exhausts_slack(self):
        """The defining property: plugging l_max back into the noise
        expression gives exactly the slack."""
        for rb in (0.0, 50.0, 200.0, 800.0):
            for big_i in (0.0, 1e-3, 5e-3):
                slack = NM
                if slack < rb * big_i:
                    continue
                length = max_safe_length(rb, R, I, big_i, slack)
                noise = uniform_wire_noise(rb, R, I, length, big_i)
                assert math.isclose(noise, slack, rel_tol=1e-9), (rb, big_i)

    def test_zero_slack_boundary_gives_zero_length(self):
        """Paper: 'if the noise slack equals Rb*I then the length is 0'."""
        assert max_safe_length(100.0, R, I, 3e-3, 100.0 * 3e-3) == 0.0

    def test_below_boundary_is_infeasible(self):
        with pytest.raises(InfeasibleError):
            max_safe_length(100.0, R, I, 3e-3, 100.0 * 3e-3 * 0.99)

    def test_driverless_closed_form(self):
        """Paper: max length at Rb = I = 0 is sqrt(2*NS/(r*i))."""
        expected = math.sqrt(2 * NM / (R * I))
        assert math.isclose(unloaded_max_length(R, I, NM), expected)

    def test_monotone_decreasing_in_driver_resistance(self):
        lengths = [max_safe_length(rb, R, I, 0.0, NM)
                   for rb in (0.0, 100.0, 300.0, 900.0)]
        assert all(a > b for a, b in zip(lengths, lengths[1:]))

    def test_monotone_decreasing_in_downstream_current(self):
        lengths = [max_safe_length(150.0, R, I, c, NM)
                   for c in (0.0, 1e-3, 3e-3, 5e-3)]
        assert all(a > b for a, b in zip(lengths, lengths[1:]))

    def test_monotone_increasing_in_slack(self):
        lengths = [max_safe_length(150.0, R, I, 0.0, ns)
                   for ns in (0.2, 0.5, 0.8, 1.2)]
        assert all(a < b for a, b in zip(lengths, lengths[1:]))

    def test_infinite_when_no_noise_possible(self):
        assert math.isinf(max_safe_length(100.0, R, 0.0, 0.0, NM))
        assert math.isinf(max_safe_length(0.0, 0.0, 0.0, 0.0, NM))

    def test_linear_case_no_wire_resistance(self):
        """r = 0: budget is linear, l = (NS - Rb*I) / (Rb*i)."""
        rb, big_i = 200.0, 1e-3
        length = max_safe_length(rb, 0.0, I, big_i, NM)
        expected = (NM - rb * big_i) / (rb * I)
        assert math.isclose(length, expected)

    def test_linear_case_no_wire_current(self):
        """i = 0 but downstream current: l = (NS - Rb*I) / (r*I)."""
        rb, big_i = 200.0, 1e-3
        length = max_safe_length(rb, R, 0.0, big_i, NM)
        expected = (NM - rb * big_i) / (R * big_i)
        assert math.isclose(length, expected)

    def test_rejects_negative_parameters(self):
        with pytest.raises(ValueError):
            max_safe_length(-1.0, R, I, 0.0, NM)
        with pytest.raises(ValueError):
            max_safe_length(1.0, R, I, -1e-3, NM)

    def test_estimation_form_matches_direct(self, tech):
        """Eq. 16 == Theorem 1 with i = lambda*c*sigma substituted."""
        lam, sigma = 0.7, 7.2e9
        direct = max_safe_length(
            200.0, tech.unit_resistance,
            lam * tech.unit_capacitance * sigma, 1e-3, NM,
        )
        est = max_safe_length_estimation(
            200.0, tech.unit_resistance, tech.unit_capacitance,
            lam, sigma, 1e-3, NM,
        )
        assert math.isclose(direct, est)


class TestMaxCouplingRatio:
    def test_roundtrip_with_max_length(self, tech):
        """lambda_max at length l_max(lambda) recovers lambda."""
        lam = 0.5
        sigma = 7.2e9
        length = max_safe_length_estimation(
            150.0, tech.unit_resistance, tech.unit_capacitance,
            lam, sigma, 0.0, NM,
        )
        back = max_coupling_ratio(
            length, 150.0, tech.unit_resistance, tech.unit_capacitance,
            sigma, 0.0, NM,
        )
        assert math.isclose(back, lam, rel_tol=1e-9)

    def test_infeasible_when_base_noise_exceeds_slack(self, tech):
        with pytest.raises(InfeasibleError):
            max_coupling_ratio(
                1e-3, 1000.0, tech.unit_resistance, tech.unit_capacitance,
                7.2e9, 1.0, NM,  # 1 A downstream: hopeless
            )

    def test_infinite_when_no_resistance(self, tech):
        assert math.isinf(
            max_coupling_ratio(
                0.0, 0.0, 0.0, tech.unit_capacitance, 7.2e9, 0.0, NM
            )
        )


class TestMinSeparation:
    def test_separation_scales_with_coupling_constant(self, tech):
        args = (2e-3, 150.0, tech.unit_resistance, tech.unit_capacitance,
                7.2e9, 0.0, NM)
        d1 = min_separation(1e-7, *args)
        d2 = min_separation(2e-7, *args)
        assert math.isclose(d2, 2 * d1)

    def test_longer_wire_needs_more_separation(self, tech):
        base = (150.0, tech.unit_resistance, tech.unit_capacitance,
                7.2e9, 0.0, NM)
        near = min_separation(1e-7, 1e-3, *base)
        far = min_separation(1e-7, 4e-3, *base)
        assert far > near

    def test_zero_constant_means_no_constraint(self, tech):
        assert min_separation(
            0.0, 1e-3, 150.0, tech.unit_resistance, tech.unit_capacitance,
            7.2e9, 0.0, NM,
        ) == 0.0


class TestTheorem2Bound:
    def test_margin_below_bound_is_violated(self):
        """Any margin below the wire's noise fails (eq. 19 existence)."""
        noise = violating_margin_bound(200.0, R, I, 4e-3)
        assert noise > 0
        # the bound is exactly the uniform wire noise
        assert math.isclose(noise, uniform_wire_noise(200.0, R, I, 4e-3))

    def test_bound_grows_with_length(self):
        values = [violating_margin_bound(200.0, R, I, l)
                  for l in (1e-3, 2e-3, 4e-3)]
        assert values[0] < values[1] < values[2]

    def test_superlinear_growth(self):
        """Wire noise grows faster than linearly in length (the r*i*l^2/2
        term) — the reason delay-spacing cannot cap noise."""
        v1 = violating_margin_bound(0.0, R, I, 2e-3)
        v2 = violating_margin_bound(0.0, R, I, 4e-3)
        assert v2 > 2 * v1


class TestUniformLineSpacing:
    def test_equal_margins_give_equal_spans(self):
        plan = uniform_line_spacing(150.0, NM, R, I, NM)
        assert math.isclose(plan.first_span, plan.repeat_span)

    def test_larger_buffer_margin_stretches_repeat_span(self):
        plan = uniform_line_spacing(150.0, 2 * NM, R, I, NM)
        assert plan.repeat_span > plan.first_span

    def test_spans_below_driverless_ceiling(self):
        plan = uniform_line_spacing(150.0, NM, R, I, NM)
        assert plan.repeat_span < unloaded_max_length(R, I, NM)
