"""Tests for the cooperative per-run execution budget (RunBudget).

The budget is the innermost layer of the batch resilience stack: a
deadline / candidate-count guard checked once per node inside the DP
loop.  These tests pin down (1) validation and unit behavior, (2) that
a blown budget raises the right structured error with the offending
net/node in the message, and (3) that a generous budget is bit-identical
to no budget at all — the guard must never perturb solutions.
"""

from __future__ import annotations

import time

import pytest

from repro import (
    BudgetExceededError,
    RunBudget,
    TimeoutError,
    two_pin_net,
)
from repro.core.dp import DPOptions
from repro.core.noise_delay import buffopt_result
from repro.core.van_ginneken import delay_opt_result
from repro.library import DriverCell, default_buffer_library, default_technology
from repro.noise import CouplingModel
from repro.tree import segment_tree
from repro.units import FF, PS, UM

TECH = default_technology()
COUPLING = CouplingModel.estimation_mode(TECH)


def _tree(length=9000 * UM):
    net = two_pin_net(
        TECH,
        length,
        DriverCell("drv", 250.0, 30 * PS),
        sink_capacitance=20 * FF,
        noise_margin=0.8,
        required_arrival=2000 * PS,
    )
    return segment_tree(net, 500 * UM)


class TestRunBudgetUnit:
    def test_validation(self):
        with pytest.raises(ValueError):
            RunBudget(deadline_seconds=0.0)
        with pytest.raises(ValueError):
            RunBudget(deadline_seconds=-1.0)
        with pytest.raises(ValueError):
            RunBudget(max_candidates=0)
        # Unbounded budget is legal (a no-op guard).
        RunBudget()

    def test_lazy_start(self):
        budget = RunBudget(deadline_seconds=60.0)
        assert not budget.started
        assert budget.elapsed == 0.0
        budget.charge(1)
        assert budget.started
        assert budget.checks == 1

    def test_candidate_budget_raises_with_context(self):
        budget = RunBudget(max_candidates=10)
        budget.charge(5, net="netA", node="n3")
        with pytest.raises(BudgetExceededError) as excinfo:
            budget.charge(11, net="netA", node="n4")
        message = str(excinfo.value)
        assert "netA" in message and "n4" in message
        assert "11" in message and "10" in message

    def test_deadline_raises_timeout(self):
        budget = RunBudget(deadline_seconds=1e-9)
        budget.start()
        time.sleep(0.01)
        with pytest.raises(TimeoutError) as excinfo:
            budget.charge(1, net="netB", node="n0")
        assert "netB" in str(excinfo.value)

    def test_pressure_telemetry(self):
        budget = RunBudget(max_candidates=100, deadline_seconds=60.0)
        budget.charge(25)
        budget.charge(50)
        budget.charge(40)  # peak stays at 50
        assert budget.candidate_pressure == pytest.approx(0.5)
        assert 0.0 <= budget.time_pressure < 1.0
        assert budget.checks == 3

    def test_unbounded_pressures_are_zero(self):
        budget = RunBudget()
        budget.charge(10_000)
        assert budget.candidate_pressure == 0.0
        assert budget.time_pressure == 0.0

    def test_describe(self):
        text = RunBudget(deadline_seconds=5.0, max_candidates=1000).describe()
        assert "5" in text and "1000" in text


class TestDPIntegration:
    def test_options_reject_non_budget(self):
        with pytest.raises(ValueError):
            DPOptions(budget="10 seconds")

    def test_tiny_candidate_budget_trips(self):
        with pytest.raises(BudgetExceededError):
            buffopt_result(
                _tree(),
                default_buffer_library(),
                COUPLING,
                budget=RunBudget(max_candidates=10),
            )

    def test_tiny_deadline_trips(self):
        budget = RunBudget(deadline_seconds=1e-9)
        budget.start()
        time.sleep(0.01)
        with pytest.raises(TimeoutError):
            buffopt_result(
                _tree(), default_buffer_library(), COUPLING, budget=budget
            )

    def test_delay_engine_honors_budget_too(self):
        with pytest.raises(BudgetExceededError):
            delay_opt_result(
                _tree(),
                default_buffer_library(),
                budget=RunBudget(max_candidates=5),
            )

    def test_generous_budget_is_bit_identical(self):
        # The guard must observe, never steer: same tree, with and
        # without a (large) budget, must agree on every outcome field.
        tree_a, tree_b = _tree(), _tree()
        bare = buffopt_result(tree_a, default_buffer_library(), COUPLING)
        guarded = buffopt_result(
            tree_b,
            default_buffer_library(),
            COUPLING,
            budget=RunBudget(deadline_seconds=3600.0, max_candidates=10**9),
        )
        assert bare.candidates_generated == guarded.candidates_generated
        bare_best = bare.best()
        guarded_best = guarded.best()
        assert bare_best.buffer_count == guarded_best.buffer_count
        assert bare_best.slack == guarded_best.slack
        assert bare_best.insertions == guarded_best.insertions

    def test_stats_carry_budget_telemetry(self):
        budget = RunBudget(deadline_seconds=3600.0, max_candidates=10**9)
        result = buffopt_result(
            _tree(),
            default_buffer_library(),
            COUPLING,
            collect_stats=True,
            budget=budget,
        )
        stats = result.stats
        assert stats is not None
        assert stats.budget_checks == budget.checks > 0
        assert stats.budget_candidate_pressure == budget.candidate_pressure
        assert "budget:" in stats.describe()

    def test_stats_silent_without_budget(self):
        result = buffopt_result(
            _tree(), default_buffer_library(), COUPLING, collect_stats=True
        )
        assert result.stats.budget_checks == 0
        assert "budget:" not in result.stats.describe()
