"""Tests for Algorithm 2 — optimal multi-sink noise avoidance."""

import math

import pytest

from repro import (
    TreeBuilder,
    analyze_noise,
    insert_buffers_multi_sink,
    insert_buffers_single_sink,
    two_pin_net,
)
from repro.core import NoiseCandidate, prune_noise_candidates
from repro.units import FF, MM, UM


def realize_and_check(tree, buffer, coupling):
    solution = insert_buffers_multi_sink(tree, buffer, coupling)
    buffered, discrete = solution.realize()
    report = analyze_noise(buffered, coupling, discrete.buffer_map())
    return solution, buffered, discrete, report


def wide_tree(tech, driver, arm_mm, n_arms=2, margin=0.8):
    builder = TreeBuilder(tech)
    builder.add_source("so", driver=driver)
    builder.add_internal("u")
    builder.add_wire("so", "u", length=1 * MM)
    prev = "u"
    for i in range(n_arms - 1):
        builder.add_internal(f"v{i}")
        builder.add_wire(prev, f"v{i}", length=0.3 * MM)
        builder.add_sink(f"s{i}", capacitance=15 * FF, noise_margin=margin)
        builder.add_wire(f"v{i}" if False else prev, f"s{i}", length=arm_mm * MM)
        prev = f"v{i}"
    builder.add_sink(f"s{n_arms - 1}", capacitance=15 * FF, noise_margin=margin)
    builder.add_wire(prev, f"s{n_arms - 1}", length=arm_mm * MM)
    return builder.build("wide")


class TestPruning:
    def test_dominated_candidate_dropped(self):
        good = NoiseCandidate(current=1.0, slack=0.5, chain=None)
        bad = NoiseCandidate(current=2.0, slack=0.4, chain=None)
        kept = prune_noise_candidates([bad, good])
        assert kept == [good]

    def test_incomparable_candidates_kept(self):
        a = NoiseCandidate(current=1.0, slack=0.4, chain=None)
        b = NoiseCandidate(current=2.0, slack=0.6, chain=None)
        kept = prune_noise_candidates([a, b])
        assert len(kept) == 2
        assert kept[0].current <= kept[1].current  # sorted by current

    def test_equal_candidates_collapse(self):
        a = NoiseCandidate(current=1.0, slack=0.5, chain=None)
        b = NoiseCandidate(current=1.0, slack=0.5, chain=None)
        assert len(prune_noise_candidates([a, b])) == 1

    def test_lower_count_dominates(self):
        from repro.core._chain import Chain
        from repro.core.solution import PlacedBuffer
        from repro import BufferType

        buf = BufferType("b", 100.0, 1 * FF, 0.0, 0.8)
        chain = Chain.push(None, PlacedBuffer("a", "b", 0.0, buf))
        cheap = NoiseCandidate(current=1.0, slack=0.5, chain=None)
        pricey = NoiseCandidate(current=1.0, slack=0.5, chain=chain)
        assert prune_noise_candidates([pricey, cheap]) == [cheap]

    def test_higher_count_with_better_metrics_survives(self):
        from repro.core._chain import Chain
        from repro.core.solution import PlacedBuffer
        from repro import BufferType

        buf = BufferType("b", 100.0, 1 * FF, 0.0, 0.8)
        chain = Chain.push(None, PlacedBuffer("a", "b", 0.0, buf))
        cheap = NoiseCandidate(current=2.0, slack=0.3, chain=None)
        pricey = NoiseCandidate(current=1.0, slack=0.6, chain=chain)
        assert len(prune_noise_candidates([pricey, cheap])) == 2


class TestAgreementWithAlgorithm1:
    @pytest.mark.parametrize("length_mm", [2, 5, 9, 13])
    def test_same_result_on_chains(
        self, tech, driver, single_buffer, coupling, length_mm
    ):
        """On single-sink trees Algorithm 2 must reduce to Algorithm 1."""
        net = two_pin_net(tech, length_mm * MM, driver, 20 * FF, 0.8)
        alg1 = insert_buffers_single_sink(net, single_buffer, coupling)
        alg2 = insert_buffers_multi_sink(net, single_buffer, coupling)
        assert alg2.buffer_count == alg1.buffer_count
        for p1, p2 in zip(
            sorted(alg1.placements, key=lambda p: p.distance_from_child),
            sorted(alg2.placements, key=lambda p: p.distance_from_child),
        ):
            assert math.isclose(
                p1.distance_from_child, p2.distance_from_child, rel_tol=1e-9
            )


class TestMultiSink:
    def test_fixes_y_tree(self, y_tree, single_buffer, coupling):
        _, _, _, report = realize_and_check(y_tree, single_buffer, coupling)
        assert not report.violated

    def test_clean_tree_needs_nothing(self, tech, driver, single_buffer, coupling):
        builder = TreeBuilder(tech)
        builder.add_source("so", driver=driver)
        builder.add_internal("u")
        builder.add_wire("so", "u", length=200 * UM)
        for i in range(2):
            builder.add_sink(f"s{i}", capacitance=5 * FF, noise_margin=0.8)
            builder.add_wire("u", f"s{i}", length=300 * UM)
        solution = insert_buffers_multi_sink(builder.build(), single_buffer, coupling)
        assert solution.buffer_count == 0

    def test_minimality_certificate(self, tech, driver, single_buffer, coupling):
        """Removing any buffer from the solution must create a violation."""
        builder = TreeBuilder(tech)
        builder.add_source("so", driver=driver)
        builder.add_internal("u")
        builder.add_wire("so", "u", length=3 * MM)
        for i, arm in enumerate((5 * MM, 7 * MM)):
            builder.add_sink(f"s{i}", capacitance=20 * FF, noise_margin=0.8)
            builder.add_wire("u", f"s{i}", length=arm)
        tree = builder.build("deep_y")
        _, buffered, discrete, report = realize_and_check(
            tree, single_buffer, coupling
        )
        assert not report.violated
        assert discrete.buffer_count >= 2
        full = dict(discrete.buffer_map())
        for name in full:
            reduced = {k: v for k, v in full.items() if k != name}
            assert analyze_noise(buffered, coupling, reduced).violated, name

    def test_branch_fork_when_merge_violates(self, tech, driver, single_buffer, coupling):
        """Two hot arms whose union is too noisy for a gate right above the
        branch: Algorithm 2 must buffer at least one arm top."""
        builder = TreeBuilder(tech)
        builder.add_source("so", driver=driver)
        builder.add_internal("u")
        builder.add_wire("so", "u", length=100 * UM)
        for i in range(2):
            builder.add_sink(f"s{i}", capacitance=20 * FF, noise_margin=0.8)
            builder.add_wire("u", f"s{i}", length=3.4 * MM)
        tree = builder.build("hot_y")
        solution, _, _, report = realize_and_check(tree, single_buffer, coupling)
        assert not report.violated
        arm_tops = [
            p for p in solution.placements
            if p.parent == "u" and math.isclose(p.distance_from_child, 3.4 * MM)
        ]
        assert arm_tops, "expected a buffer immediately below the branch"

    def test_wide_fanout_tree(self, tech, driver, single_buffer, coupling):
        from repro import binarize

        builder = TreeBuilder(tech)
        builder.add_source("so", driver=driver)
        builder.add_internal("hub")
        builder.add_wire("so", "hub", length=2 * MM)
        for i in range(5):
            builder.add_sink(f"s{i}", capacitance=10 * FF, noise_margin=0.8)
            builder.add_wire("hub", f"s{i}", length=(2 + i) * MM)
        tree = binarize(builder.build("fan", allow_nonbinary=True))
        _, _, _, report = realize_and_check(tree, single_buffer, coupling)
        assert not report.violated

    def test_library_uses_smallest_resistance(self, y_tree, library, coupling):
        solution = insert_buffers_multi_sink(y_tree, library, coupling)
        best = library.smallest_resistance()
        assert all(p.buffer is best for p in solution.placements)

    def test_weak_driver_fixup(self, tech, single_buffer, coupling):
        from repro import DriverCell

        weak = DriverCell("weak", resistance=6000.0)
        builder = TreeBuilder(tech)
        builder.add_source("so", driver=weak)
        builder.add_internal("u")
        builder.add_wire("so", "u", length=1 * MM)
        for i in range(2):
            builder.add_sink(f"s{i}", capacitance=10 * FF, noise_margin=0.8)
            builder.add_wire("u", f"s{i}", length=1 * MM)
        tree = builder.build()
        _, _, _, report = realize_and_check(tree, single_buffer, coupling)
        assert not report.violated


class TestCountOptimality:
    def test_not_worse_than_discrete_brute_force(
        self, tech, driver, single_buffer, coupling
    ):
        """Algorithm 2's count lower-bounds a discrete exhaustive search
        over a fine segmentation (continuous optimum <= discrete optimum)."""
        import itertools

        from repro import segment_tree

        builder = TreeBuilder(tech)
        builder.add_source("so", driver=driver)
        builder.add_internal("u")
        builder.add_wire("so", "u", length=2 * MM)
        for i, arm in enumerate((3 * MM, 4 * MM)):
            builder.add_sink(f"s{i}", capacitance=15 * FF, noise_margin=0.8)
            builder.add_wire("u", f"s{i}", length=arm)
        tree = builder.build("bf")
        solution = insert_buffers_multi_sink(tree, single_buffer, coupling)

        fine = segment_tree(tree, 450 * UM)
        sites = [n.name for n in fine.nodes() if n.is_internal and n.feasible]
        best = None
        for k in range(0, solution.buffer_count + 1):
            for combo in itertools.combinations(sites, k):
                buffers = {name: single_buffer for name in combo}
                if not analyze_noise(fine, coupling, buffers).violated:
                    best = k
                    break
            if best is not None:
                break
        assert best is not None, "brute force found no solution at all?"
        assert solution.buffer_count <= best
