"""Tests for repro.noise.devgan — the metric's arithmetic, Fig. 3 style.

The worked example mirrors the paper's Fig. 3: an abstract victim net with
explicit per-wire resistances and aggressor-induced currents, driver at
``so`` and sinks ``s1``, ``s2``; every number below is hand-computed from
eqs. 7–9.
"""

import math

import pytest

from repro import BufferType, CouplingModel, TreeBuilder
from repro.noise import (
    downstream_currents,
    has_noise_violation,
    noise_slacks,
    noise_violations,
    sink_noise,
    wire_noise,
    worst_noise_slack,
)


@pytest.fixture
def fig3_tree():
    """so --(R=4, I=1)--> a --(R=6, I=2)--> s1
                           \\--(R=10, I=3)--> s2, driver R = 2."""
    builder = TreeBuilder()
    builder.add_source("so")
    builder.add_internal("a")
    builder.add_sink("s1", capacitance=0.0, noise_margin=50.0)
    builder.add_sink("s2", capacitance=0.0, noise_margin=50.0)
    builder.add_wire("so", "a", resistance=4.0, capacitance=0.0, current=1.0)
    builder.add_wire("a", "s1", resistance=6.0, capacitance=0.0, current=2.0)
    builder.add_wire("a", "s2", resistance=10.0, capacitance=0.0, current=3.0)
    return builder.build("fig3")


@pytest.fixture
def model():
    return CouplingModel.silent()  # all currents are explicit on the wires


class TestDownstreamCurrents:
    def test_eq7(self, fig3_tree, model):
        currents = downstream_currents(fig3_tree, model)
        assert currents["s1"] == 0.0
        assert currents["s2"] == 0.0
        assert currents["a"] == 5.0  # I2 + I3
        assert currents["so"] == 6.0  # I1 + I2 + I3

    def test_buffer_cuts_current(self, fig3_tree, model):
        buffer = BufferType("b", 1.0, 0.0, 0.0, 50.0)
        currents = downstream_currents(fig3_tree, model, {"a": buffer})
        assert currents["a"] == 5.0  # what the buffer's own stage sees
        assert currents["so"] == 1.0  # only the top wire's current remains


class TestWireNoise:
    def test_eq8(self):
        class W:  # minimal stand-in
            resistance = 4.0

        assert math.isclose(wire_noise(W(), 1.0, 5.0), 4.0 * (0.5 + 5.0))


class TestSinkNoise:
    def test_hand_computed_example(self, fig3_tree, model):
        """Noise(s1) = 2*6 + 4*(0.5+5) + 6*(1) = 40;
        Noise(s2) = 2*6 + 4*(0.5+5) + 10*(1.5) = 49."""
        entries = {
            e.node: e for e in sink_noise(fig3_tree, model, driver_resistance=2.0)
        }
        assert math.isclose(entries["s1"].noise, 40.0)
        assert math.isclose(entries["s2"].noise, 49.0)
        assert entries["s1"].stage_root == "so"

    def test_violation_flags(self, fig3_tree, model):
        entries = sink_noise(fig3_tree, model, driver_resistance=2.0)
        assert not any(e.violated for e in entries)  # margins are 50
        hot = sink_noise(fig3_tree, model, driver_resistance=10.0)
        # noise(s2) = 10*6 + 22 + 15 = 97 > 50
        assert any(e.violated for e in hot)

    def test_slack_is_margin_minus_noise(self, fig3_tree, model):
        entries = sink_noise(fig3_tree, model, driver_resistance=2.0)
        for entry in entries:
            assert math.isclose(entry.slack, entry.margin - entry.noise)

    def test_buffer_resets_stage(self, fig3_tree, model):
        """With a buffer at 'a': buffer input sees Rd*I1 + R1*(I1/2);
        sinks see Rb*(I2+I3) + own wire noise."""
        buffer = BufferType("b", 3.0, 0.0, 0.0, 50.0)
        entries = {
            e.node: e
            for e in sink_noise(
                fig3_tree, model, {"a": buffer}, driver_resistance=2.0
            )
        }
        assert math.isclose(entries["a"].noise, 2.0 * 1.0 + 4.0 * 0.5)
        assert entries["a"].margin == 50.0
        assert math.isclose(entries["s1"].noise, 3.0 * 5.0 + 6.0 * 1.0)
        assert math.isclose(entries["s2"].noise, 3.0 * 5.0 + 10.0 * 1.5)
        assert entries["s1"].stage_root == "a"


class TestNoiseSlacks:
    def test_eq12_bottom_up(self, fig3_tree, model):
        slacks = noise_slacks(fig3_tree, model)
        assert slacks["s1"] == 50.0
        # NS(a) = min(50 - 6*1, 50 - 10*1.5) = min(44, 35) = 35
        assert math.isclose(slacks["a"], 35.0)
        # NS(so) = NS(a) - 4*(0.5+5) = 35 - 22 = 13
        assert math.isclose(slacks["so"], 13.0)

    def test_feasibility_identity(self, fig3_tree, model):
        """No violation at driver R iff Rd * I(so) <= NS(so)."""
        slacks = noise_slacks(fig3_tree, model)
        currents = downstream_currents(fig3_tree, model)
        boundary = slacks["so"] / currents["so"]  # 13/6
        assert not has_noise_violation(
            fig3_tree, model, driver_resistance=boundary * 0.999
        )
        assert has_noise_violation(
            fig3_tree, model, driver_resistance=boundary * 1.001
        )

    def test_buffered_child_contributes_its_margin(self, fig3_tree, model):
        buffer = BufferType("b", 3.0, 0.0, 0.0, 7.0)
        slacks = noise_slacks(fig3_tree, model, {"a": buffer})
        # NS(so) = NM(b) - Noise(w1) = 7 - 4*(0.5 + 0) = 5
        assert math.isclose(slacks["so"], 5.0)


class TestHelpers:
    def test_worst_noise_slack(self, fig3_tree, model):
        worst = worst_noise_slack(fig3_tree, model, driver_resistance=2.0)
        assert math.isclose(worst, 50.0 - 49.0)

    def test_noise_violations_list(self, fig3_tree, model):
        assert noise_violations(fig3_tree, model, driver_resistance=2.0) == []
        # Rd=10: noise(s1) = 60+22+6 = 88, noise(s2) = 60+22+15 = 97
        hot = noise_violations(fig3_tree, model, driver_resistance=10.0)
        assert [e.node for e in hot] == ["s1", "s2"]

    def test_estimation_mode_on_real_tree(self, y_tree, coupling):
        """On a physical tree, currents derive from wire capacitance."""
        currents = downstream_currents(y_tree, coupling)
        w1 = y_tree.node("s1").parent_wire
        w2 = y_tree.node("s2").parent_wire
        expected_u = coupling.wire_current(w1) + coupling.wire_current(w2)
        assert math.isclose(currents["u"], expected_u)

    def test_long_net_violates_short_does_not(
        self, long_two_pin, short_two_pin, coupling
    ):
        assert has_noise_violation(long_two_pin, coupling)
        assert not has_noise_violation(short_two_pin, coupling)
