"""Tests for the Fig. 2 aggressor-window segmentation scheme."""

import math

import pytest

from repro import (
    Aggressor,
    AnalysisError,
    CouplingModel,
    DriverCell,
    two_pin_net,
)
from repro.noise import (
    AggressorWindow,
    apply_aggressor_windows,
    sink_noise,
    uniform_window,
)
from repro.units import FF, MM

SILENT = CouplingModel.silent()


@pytest.fixture
def net(tech):
    return two_pin_net(
        tech, 4 * MM, DriverCell("d", 200.0), 10 * FF, 0.8, name="win"
    )


class TestSegmentationStructure:
    def test_splits_at_window_boundaries(self, net):
        agg = Aggressor(0.6, 7.2e9, name="a1")
        tree = apply_aggressor_windows(
            net, [AggressorWindow("so", "si", 1 * MM, 3 * MM, agg)]
        )
        lengths = sorted(w.length for w in tree.wires())
        assert [round(l / MM, 9) for l in lengths] == [1.0, 1.0, 2.0]

    def test_totals_preserved(self, net):
        agg = Aggressor(0.6, 7.2e9)
        tree = apply_aggressor_windows(
            net, [AggressorWindow("so", "si", 0.5 * MM, 2 * MM, agg)]
        )
        assert math.isclose(tree.total_wire_length(), 4 * MM, rel_tol=1e-12)
        assert math.isclose(
            sum(w.resistance for w in tree.wires()),
            sum(w.resistance for w in net.wires()),
            rel_tol=1e-12,
        )

    def test_uncovered_spans_are_silent(self, net):
        agg = Aggressor(0.6, 7.2e9)
        tree = apply_aggressor_windows(
            net, [AggressorWindow("so", "si", 1 * MM, 3 * MM, agg)]
        )
        silent = [w for w in tree.wires() if w.current == 0.0]
        assert len(silent) == 2

    def test_windowless_wire_is_fully_silent(self, net):
        tree = apply_aggressor_windows(net, [])
        assert all(w.current == 0.0 for w in tree.wires())
        entries = sink_noise(tree, SILENT)
        assert all(e.noise == 0.0 for e in entries)

    def test_split_nodes_are_feasible(self, net):
        agg = Aggressor(0.6, 7.2e9)
        tree = apply_aggressor_windows(
            net, [AggressorWindow("so", "si", 1 * MM, 3 * MM, agg)]
        )
        new = [n for n in tree.nodes() if "__win" in n.name]
        assert len(new) == 2
        assert all(n.feasible for n in new)


class TestCurrents:
    def test_single_window_current_eq6(self, net, tech):
        agg = Aggressor(0.5, 6e9)
        tree = apply_aggressor_windows(
            net, [AggressorWindow("so", "si", 1 * MM, 3 * MM, agg)]
        )
        covered = [
            w for w in tree.wires()
            if w.current and math.isclose(w.length, 2 * MM)
        ]
        assert len(covered) == 1
        expected = 0.5 * tech.wire_capacitance(2 * MM) * 6e9
        assert math.isclose(covered[0].current, expected, rel_tol=1e-12)

    def test_overlapping_windows_sum(self, net, tech):
        a1 = Aggressor(0.3, 5e9, name="a1")
        a2 = Aggressor(0.4, 8e9, name="a2")
        tree = apply_aggressor_windows(
            net,
            [
                AggressorWindow("so", "si", 0.0, 2 * MM, a1),
                AggressorWindow("so", "si", 1 * MM, 4 * MM, a2),
            ],
        )
        # pieces: [0,1] a1; [1,2] a1+a2; [2,4] a2
        pieces = sorted(tree.wires(), key=lambda w: w.length)
        by_len = {round(w.length / MM, 6): w for w in tree.wires()}
        cap_per_m = tech.unit_capacitance
        middle = by_len[1.0 if by_len[1.0].current else 1.0]
        overlap = [w for w in tree.wires()
                   if math.isclose(w.length, 1 * MM) and w.current]
        # the overlap piece carries both aggressors
        expected_both = (0.3 * 5e9 + 0.4 * 8e9) * cap_per_m * 1 * MM
        assert any(
            math.isclose(w.current, expected_both, rel_tol=1e-12)
            for w in overlap
        )

    def test_total_current_matches_window_charge(self, net, tech):
        """Sum of piece currents == eq. 6 applied to each window span."""
        a1 = Aggressor(0.3, 5e9)
        a2 = Aggressor(0.7, 7.2e9)
        windows = [
            AggressorWindow("so", "si", 0.2 * MM, 1.7 * MM, a1),
            AggressorWindow("so", "si", 2.5 * MM, 3.9 * MM, a2),
        ]
        tree = apply_aggressor_windows(net, windows)
        total = sum(w.current or 0.0 for w in tree.wires())
        expected = (
            0.3 * tech.wire_capacitance(1.5 * MM) * 5e9
            + 0.7 * tech.wire_capacitance(1.4 * MM) * 7.2e9
        )
        assert math.isclose(total, expected, rel_tol=1e-9)


class TestEndToEnd:
    def test_window_noise_below_estimation_mode(self, net, tech, coupling):
        """A partial window injects less noise than the everything-coupled
        estimation-mode assumption."""
        agg = Aggressor(coupling.coupling_ratio, coupling.slope)
        tree = apply_aggressor_windows(
            net, [AggressorWindow("so", "si", 1 * MM, 2.5 * MM, agg)]
        )
        windowed = sink_noise(tree, SILENT)[0].noise
        estimated = sink_noise(net, coupling)[0].noise
        assert 0 < windowed < estimated

    def test_algorithm1_on_windowed_tree(self, tech, coupling, library):
        """Buffering a windowed victim fixes its (localized) violation."""
        from repro import analyze_noise, insert_buffers_single_sink

        net = two_pin_net(
            tech, 10 * MM, DriverCell("d", 300.0), 10 * FF, 0.8, name="w10"
        )
        hot = Aggressor(0.9, 9e9, name="hot")
        tree = apply_aggressor_windows(
            net, [AggressorWindow("so", "si", 2 * MM, 9 * MM, hot)]
        )
        assert analyze_noise(tree, SILENT).violated
        solution = insert_buffers_single_sink(tree, library, SILENT)
        buffered, discrete = solution.realize()
        assert not analyze_noise(
            buffered, SILENT, discrete.buffer_map()
        ).violated
        # the fix is cheaper than under the all-coupled assumption
        full = insert_buffers_single_sink(net, library, coupling)
        assert solution.buffer_count <= full.buffer_count


class TestValidation:
    def test_unknown_wire_rejected(self, net):
        agg = Aggressor(0.5, 5e9)
        with pytest.raises(AnalysisError):
            apply_aggressor_windows(
                net, [AggressorWindow("a", "b", 0.0, 1 * MM, agg)]
            )

    def test_window_beyond_wire_rejected(self, net):
        agg = Aggressor(0.5, 5e9)
        with pytest.raises(AnalysisError):
            apply_aggressor_windows(
                net, [AggressorWindow("so", "si", 0.0, 5 * MM, agg)]
            )

    def test_degenerate_window_rejected(self):
        agg = Aggressor(0.5, 5e9)
        with pytest.raises(AnalysisError):
            AggressorWindow("so", "si", 1 * MM, 1 * MM, agg)
        with pytest.raises(AnalysisError):
            AggressorWindow("so", "si", -1.0, 1 * MM, agg)

    def test_uniform_window_helper(self, net):
        agg = Aggressor(0.5, 5e9)
        window = uniform_window(net, "so", "si", agg)
        assert window.start == 0.0
        assert math.isclose(window.end, 4 * MM)
        with pytest.raises(AnalysisError):
            uniform_window(net, "x", "y", agg)
