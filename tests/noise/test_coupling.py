"""Tests for repro.noise.coupling — eq. 6 and the estimation mode."""

import math

import pytest

from repro import Aggressor, AnalysisError, CouplingModel, TreeBuilder
from repro.noise.coupling import aggressor_current
from repro.units import FF, UM


class TestAggressor:
    def test_rejects_negative_ratio(self):
        with pytest.raises(AnalysisError):
            Aggressor(coupling_ratio=-0.1, slope=1e9)

    def test_rejects_negative_slope(self):
        with pytest.raises(AnalysisError):
            Aggressor(coupling_ratio=0.5, slope=-1e9)


class TestAggressorCurrent:
    def test_single_aggressor_eq6(self):
        current = aggressor_current(100 * FF, [Aggressor(0.7, 7.2e9)])
        assert math.isclose(current, 0.7 * 100 * FF * 7.2e9)

    def test_multiple_aggressors_sum(self):
        aggressors = [Aggressor(0.3, 5e9), Aggressor(0.4, 7e9)]
        expected = 0.3 * 50 * FF * 5e9 + 0.4 * 50 * FF * 7e9
        assert math.isclose(aggressor_current(50 * FF, aggressors), expected)

    def test_no_aggressors_zero(self):
        assert aggressor_current(100 * FF, []) == 0.0

    def test_rejects_negative_capacitance(self):
        with pytest.raises(AnalysisError):
            aggressor_current(-1.0, [])


class TestCouplingModel:
    def test_estimation_mode_uses_technology_defaults(self, tech):
        model = CouplingModel.estimation_mode(tech)
        assert model.coupling_ratio == tech.default_coupling_ratio
        assert math.isclose(model.slope, tech.default_aggressor_slope)

    def test_silent_model_gives_zero_current(self, tech, y_tree):
        model = CouplingModel.silent()
        for wire in y_tree.wires():
            assert model.wire_current(wire) == 0.0

    def test_wire_current_from_capacitance(self, tech, y_tree, coupling):
        wire = y_tree.node("u").parent_wire
        expected = coupling.coupling_ratio * wire.capacitance * coupling.slope
        assert math.isclose(coupling.wire_current(wire), expected)

    def test_explicit_current_wins(self, tech, coupling):
        builder = TreeBuilder(tech)
        builder.add_source("so")
        builder.add_sink("s", capacitance=1 * FF, noise_margin=0.8)
        wire = builder.add_wire("so", "s", length=1000 * UM, current=3.3e-3)
        assert coupling.wire_current(wire) == 3.3e-3

    def test_per_wire_ratio_override(self, tech, coupling):
        builder = TreeBuilder(tech)
        builder.add_source("so")
        builder.add_sink("s", capacitance=1 * FF, noise_margin=0.8)
        wire = builder.add_wire("so", "s", length=1000 * UM, coupling_ratio=0.0)
        assert coupling.wire_current(wire) == 0.0

    def test_per_wire_slope_override(self, tech, coupling):
        builder = TreeBuilder(tech)
        builder.add_source("so")
        builder.add_sink("s", capacitance=1 * FF, noise_margin=0.8)
        wire = builder.add_wire("so", "s", length=1000 * UM, slope=coupling.slope * 2)
        base = coupling.coupling_ratio * wire.capacitance * coupling.slope
        assert math.isclose(coupling.wire_current(wire), 2 * base)

    def test_invalid_ratio_rejected(self):
        with pytest.raises(AnalysisError):
            CouplingModel(coupling_ratio=1.5, slope=1e9)
        with pytest.raises(AnalysisError):
            CouplingModel(coupling_ratio=0.5, slope=-1.0)

    def test_unit_current(self, tech, coupling):
        expected = coupling.coupling_ratio * tech.unit_capacitance * coupling.slope
        assert math.isclose(
            coupling.unit_current(tech.unit_capacitance), expected
        )
