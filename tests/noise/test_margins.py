"""Tests for repro.noise.margins — NoiseReport."""

import math

from repro import analyze_noise


class TestNoiseReport:
    def test_violated_long_net(self, long_two_pin, coupling):
        report = analyze_noise(long_two_pin, coupling)
        assert report.violated
        assert report.violations
        assert report.worst_slack < 0
        assert report.peak_noise > 0.8

    def test_clean_short_net(self, short_two_pin, coupling):
        report = analyze_noise(short_two_pin, coupling)
        assert not report.violated
        assert report.violations == []
        assert report.worst_slack > 0

    def test_describe_mentions_violations(self, long_two_pin, coupling):
        text = analyze_noise(long_two_pin, coupling).describe()
        assert "VIOLATION" in text
        assert "long_two_pin" in text

    def test_describe_clean(self, short_two_pin, coupling):
        text = analyze_noise(short_two_pin, coupling).describe()
        assert "VIOLATION" not in text
        assert "0 violations" in text

    def test_worst_slack_matches_entries(self, y_tree, coupling):
        report = analyze_noise(y_tree, coupling)
        assert math.isclose(
            report.worst_slack, min(e.slack for e in report.entries)
        )
        assert math.isclose(
            report.peak_noise, max(e.noise for e in report.entries)
        )
