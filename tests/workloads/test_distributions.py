"""Tests for repro.workloads.distributions."""

import numpy as np
import pytest

from repro import WorkloadError
from repro.workloads import (
    SinkDistribution,
    SpanDistribution,
    default_sink_distribution,
    realized_histogram,
)


class TestSinkDistribution:
    def test_default_sums_to_500(self):
        assert default_sink_distribution().total_nets == 500

    def test_default_dominated_by_small_nets(self):
        """Table-I shape: one- and two-sink nets are the majority."""
        histogram = default_sink_distribution().histogram()
        small = histogram.get(1, 0) + histogram.get(2, 0)
        assert small > 0.6 * 500
        assert max(histogram) >= 20  # heavy tail exists

    def test_expand_matches_histogram(self):
        dist = default_sink_distribution()
        counts = dist.expand()
        assert len(counts) == 500
        assert realized_histogram(counts) == dist.histogram()

    def test_scaled_preserves_total(self):
        for total in (50, 120, 1000):
            scaled = default_sink_distribution().scaled(total)
            assert scaled.total_nets == total

    def test_scaled_keeps_proportions(self):
        scaled = default_sink_distribution().scaled(100).histogram()
        # 284/500 single-sink nets ~ 57 of 100
        assert 50 <= scaled[1] <= 64
        assert scaled[2] >= 15

    def test_scaled_tiny_population_drops_tail(self):
        scaled = default_sink_distribution().scaled(5)
        assert scaled.total_nets == 5
        assert 1 in scaled.histogram()  # the dominant bucket survives

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(WorkloadError):
            default_sink_distribution().scaled(0)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            SinkDistribution(())
        with pytest.raises(WorkloadError):
            SinkDistribution(((0, 5),))
        with pytest.raises(WorkloadError):
            SinkDistribution(((1, -1),))


class TestSpanDistribution:
    def test_samples_within_bounds(self):
        dist = SpanDistribution()
        rng = np.random.default_rng(0)
        for _ in range(200):
            span = dist.sample(rng)
            assert dist.span_min <= span <= dist.span_max

    def test_log_uniform_median(self):
        dist = SpanDistribution(span_min=1e-3, span_max=16e-3)
        rng = np.random.default_rng(1)
        samples = [dist.sample(rng) for _ in range(4000)]
        median = float(np.median(samples))
        assert 3.2e-3 < median < 5.0e-3  # geometric mean = 4 mm

    def test_validation(self):
        with pytest.raises(WorkloadError):
            SpanDistribution(span_min=0.0, span_max=1.0)
        with pytest.raises(WorkloadError):
            SpanDistribution(span_min=2.0, span_max=1.0)


class TestRealizedHistogram:
    def test_sorted_and_counted(self):
        assert realized_histogram([3, 1, 1, 2, 3, 3]) == {1: 2, 2: 1, 3: 3}
