"""The power-constrained workload family: feasible caps that bite."""

import pytest

from repro import (
    CouplingModel,
    DPOptions,
    default_buffer_library,
    default_technology,
    run_dp,
)
from repro.errors import WorkloadError
from repro.library.power import default_power_model
from repro.workloads import (
    PowerConstrainedNet,
    PowerWorkloadConfig,
    WorkloadConfig,
    generate_power_population,
    median_buffer_power,
    power_cap_for_tree,
)

LIBRARY = default_buffer_library()
POWER = default_power_model()
COUPLING = CouplingModel.estimation_mode(default_technology())

SMALL = PowerWorkloadConfig(base=WorkloadConfig(nets=12, seed=7))


class TestCapConstruction:
    def test_median_buffer_power_is_a_library_member(self):
        median = median_buffer_power(LIBRARY, POWER)
        assert median in {POWER.buffer_power(b) for b in LIBRARY}

    def test_zero_budget_cap_is_the_wire_power(self):
        population = generate_power_population(SMALL)
        tree = population[0].tree
        cap = power_cap_for_tree(tree, POWER, LIBRARY, buffer_budget=0.0)
        wire_power = sum(
            POWER.wire_power(w.capacitance) for w in tree.wires()
        )
        assert cap == wire_power

    def test_negative_budget_rejected(self):
        with pytest.raises(WorkloadError, match="buffer_budget"):
            PowerWorkloadConfig(buffer_budget=-1.0)


class TestPopulation:
    def test_deterministic_in_the_seed(self):
        first = generate_power_population(SMALL)
        second = generate_power_population(SMALL)
        assert [(n.name, n.power_cap) for n in first] == \
            [(n.name, n.power_cap) for n in second]

    def test_nets_carry_ready_power_capped_objectives(self):
        for net in generate_power_population(SMALL):
            assert isinstance(net, PowerConstrainedNet)
            assert net.objective.selection == "power-capped"
            assert net.objective.power_cap == net.power_cap
            assert net.objective.mode == "buffopt"
        delay = PowerWorkloadConfig(
            base=SMALL.base, noise_aware=False
        )
        assert all(
            n.objective.mode == "delay"
            for n in generate_power_population(delay)
        )

    def test_caps_are_feasible_and_usually_binding(self):
        """Every cap admits a solution (by construction the zero-buffer
        one); on a noise-silent delay run most caps also *bind* — the
        capped selection gives up slack against the uncapped optimum."""
        population = generate_power_population(PowerWorkloadConfig(
            base=WorkloadConfig(nets=10, seed=3), noise_aware=False,
        ))
        silent = CouplingModel.silent()
        binding = 0
        for net in population:
            result = run_dp(net.tree, LIBRARY, silent, DPOptions(
                power=POWER,
            ))
            capped = result.power_capped(net.power_cap)  # must not raise
            assert capped.power <= net.power_cap
            best = max(o.slack for o in result.outcomes)
            if capped.slack < best:
                binding += 1
        assert binding >= len(population) // 2, (
            f"caps bind on only {binding} of {len(population)} nets"
        )
