"""Tests for repro.workloads.generator — the synthetic net population."""

import math

import pytest

from repro import WorkloadError, analyze_noise
from repro.timing import meets_timing
from repro.workloads import (
    NetSpec,
    WorkloadConfig,
    generate_net_from_spec,
    generate_population,
    population_sink_histogram,
    population_specs,
    total_capacitance_rank,
)


@pytest.fixture(scope="module")
def population():
    return generate_population(WorkloadConfig(nets=60, seed=123))


class TestDeterminism:
    def test_same_seed_same_nets(self):
        a = generate_population(WorkloadConfig(nets=25, seed=9))
        b = generate_population(WorkloadConfig(nets=25, seed=9))
        for net_a, net_b in zip(a, b):
            assert net_a.name == net_b.name
            assert net_a.sink_count == net_b.sink_count
            assert math.isclose(
                net_a.tree.total_wire_length(), net_b.tree.total_wire_length()
            )

    def test_different_seed_differs(self):
        a = generate_population(WorkloadConfig(nets=25, seed=9))
        b = generate_population(WorkloadConfig(nets=25, seed=10))
        assert any(
            not math.isclose(
                x.tree.total_wire_length(), y.tree.total_wire_length()
            )
            for x, y in zip(a, b)
        )


class TestPopulationShape:
    def test_count(self, population):
        assert len(population) == 60

    def test_all_trees_valid_binary(self, population):
        for net in population:
            assert net.tree.is_binary
            assert net.tree.driver is not None
            assert len(net.tree.sinks) == net.sink_count

    def test_histogram_matches_scaled_table1(self, population):
        histogram = population_sink_histogram(population)
        assert sum(histogram.values()) == 60
        assert histogram[1] >= 20  # single-sink majority preserved

    def test_spans_are_multi_millimeter(self, population):
        spans = [net.span for net in population]
        assert min(spans) >= 1.0e-3
        assert max(spans) <= 15.0e-3
        assert max(spans) > 8e-3  # the tail exists

    def test_majority_violate_noise_before_buffering(self, population, coupling):
        violating = sum(
            1 for net in population
            if analyze_noise(net.tree, coupling).violated
        )
        assert 0.6 * len(population) < violating < len(population)

    def test_unbuffered_timing_met(self, population):
        """rat_fraction > 1: every net meets timing before buffering, so
        Problem-3 BuffOpt buffers only for noise (paper's 77 clean nets)."""
        for net in population[:20]:
            assert meets_timing(net.tree)

    def test_rats_uniform_per_net(self, population):
        for net in population[:10]:
            rats = {s.sink.required_arrival for s in net.tree.sinks}
            assert len(rats) == 1
            assert math.isfinite(rats.pop())


class TestDynamicSinks:
    def test_dynamic_fraction_lowers_some_margins(self):
        nets = generate_population(
            WorkloadConfig(nets=30, seed=3, dynamic_sink_fraction=0.4)
        )
        margins = {
            s.sink.noise_margin for net in nets for s in net.tree.sinks
        }
        assert margins == {0.8, 0.55}

    def test_zero_fraction_keeps_uniform_margin(self):
        nets = generate_population(
            WorkloadConfig(nets=20, seed=3, dynamic_sink_fraction=0.0)
        )
        margins = {
            s.sink.noise_margin for net in nets for s in net.tree.sinks
        }
        assert margins == {0.8}

    def test_dynamic_sinks_increase_violations(self, coupling):
        base = generate_population(WorkloadConfig(nets=40, seed=11))
        hot = generate_population(
            WorkloadConfig(nets=40, seed=11, dynamic_sink_fraction=0.8)
        )
        count = lambda nets: sum(  # noqa: E731
            1 for n in nets if analyze_noise(n.tree, coupling).violated
        )
        assert count(hot) >= count(base)

    def test_config_validation(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(dynamic_sink_fraction=1.5)
        with pytest.raises(WorkloadError):
            WorkloadConfig(dynamic_noise_margin=0.0)

    def test_buffopt_still_fixes_dynamic_population(self, coupling):
        from repro import buffopt_min_buffers, segment_tree
        from repro.library import default_buffer_library
        from repro.units import UM

        library = default_buffer_library()
        nets = generate_population(
            WorkloadConfig(nets=12, seed=4, dynamic_sink_fraction=0.5)
        )
        for net in nets:
            tree = segment_tree(net.tree, 500 * UM)
            solution = buffopt_min_buffers(tree, library, coupling)
            assert not analyze_noise(
                tree, coupling, solution.buffer_map()
            ).violated, net.name


class TestHelpers:
    def test_capacitance_rank_descending(self, population):
        ranked = total_capacitance_rank(population)
        caps = [net.tree.total_capacitance() for net in ranked]
        assert caps == sorted(caps, reverse=True)

    def test_config_validation(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(nets=0)
        with pytest.raises(WorkloadError):
            WorkloadConfig(noise_margin=0.0)
        with pytest.raises(WorkloadError):
            WorkloadConfig(rat_fraction=0.0)
        with pytest.raises(WorkloadError):
            WorkloadConfig(die_size=-1.0)

    def test_generated_net_name(self, population):
        assert population[0].name == population[0].tree.name


class TestNetSpecs:
    def test_specs_match_population_shape(self):
        config = WorkloadConfig(nets=30, seed=77)
        specs = population_specs(config)
        nets = generate_population(config)
        assert len(specs) == 30
        # Sink counts follow the same seeded shuffle as the eager
        # population; spans share the distribution but not the stream
        # (spec generation draws per-net seeds instead of net internals).
        assert [s.sink_count for s in specs] == [n.sink_count for n in nets]
        span_lo = min(n.span for n in nets)
        span_hi = max(n.span for n in nets)
        assert all(0.5 * span_lo <= s.span <= 2.0 * span_hi for s in specs)

    def test_spec_materialization_is_deterministic(self):
        config = WorkloadConfig(nets=6, seed=3)
        spec = population_specs(config)[2]
        a = generate_net_from_spec(spec, config)
        b = generate_net_from_spec(spec, config)
        assert a.tree.name == b.tree.name == spec.name
        wires = lambda net: [
            (w.parent.name, w.child.name, w.length, w.capacitance)
            for w in net.tree.wires()
        ]
        assert wires(a) == wires(b)
        assert a.sink_count == spec.sink_count

    def test_spec_validation(self):
        with pytest.raises(WorkloadError):
            NetSpec(name="bad", sink_count=0, span=1e-3, seed=1)
        with pytest.raises(WorkloadError):
            NetSpec(name="bad", sink_count=1, span=0.0, seed=1)
