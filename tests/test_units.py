"""Tests for repro.units — constants and formatters."""

import math

import pytest

from repro import units


class TestConstants:
    def test_scales(self):
        assert units.FF == 1e-15
        assert units.PF == 1e-12
        assert units.PS == 1e-12
        assert units.NS == 1e-9
        assert units.UM == 1e-6
        assert units.MM == 1e-3
        assert units.KOHM == 1e3


class TestFormatters:
    @pytest.mark.parametrize("value,expected", [
        (336e-12, "336 ps"),
        (1.5e-9, "1.5 ns"),
        (0.0, "0 s"),
    ])
    def test_format_time(self, value, expected):
        assert units.format_time(value) == expected

    @pytest.mark.parametrize("value,expected", [
        (800e-15, "800 fF"),
        (1.2e-12, "1.2 pF"),
    ])
    def test_format_capacitance(self, value, expected):
        assert units.format_capacitance(value) == expected

    def test_format_resistance(self):
        assert units.format_resistance(250.0) == "250 Ohm"
        assert units.format_resistance(1500.0) == "1.5 kOhm"

    def test_format_voltage(self):
        assert units.format_voltage(0.8) == "800 mV"
        assert units.format_voltage(1.8) == "1.8 V"

    def test_format_current(self):
        assert units.format_current(4.03e-3) == "4.03 mA"

    def test_format_length(self):
        assert units.format_length(9e-3) == "9 mm"
        assert units.format_length(250e-6) == "250 um"

    def test_negative_values(self):
        assert units.format_voltage(-0.5) == "-500 mV"

    def test_tiny_values_use_smallest_prefix(self):
        text = units.format_capacitance(1e-19)
        assert "aF" in text


class TestSlope:
    def test_paper_value(self):
        assert math.isclose(units.slope_from_slew(1.8, 0.25e-9), 7.2e9)

    def test_rejects_nonpositive_rise(self):
        with pytest.raises(ValueError):
            units.slope_from_slew(1.8, 0.0)


class TestErrors:
    def test_hierarchy(self):
        from repro import errors

        for cls in (
            errors.TreeStructureError,
            errors.TechnologyError,
            errors.InfeasibleError,
            errors.SimulationError,
            errors.AnalysisError,
            errors.WorkloadError,
        ):
            assert issubclass(cls, errors.ReproError)
            assert issubclass(cls, Exception)
