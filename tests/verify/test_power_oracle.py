"""DP vs the exhaustive oracle in the power modes.

The power twin of ``test_oracle.py``'s seeded battery: 200 seeded
random nets within the oracle's site bound, run with a live power
model.  In delay mode the comparison is *exact* — the power-extended DP
must still select the enumerated optimum, and its ``min_power`` /
``power_capped`` answers must equal the oracle's.  In noise-aware mode
the checks are soundness-only (the linear merge is a heuristic): the DP
can never undercut the exhaustive minimum power, never beat the capped
optimum, and never claim cap feasibility the enumeration refutes.
"""

import random

import pytest

from repro.core.dp import DPOptions, run_dp
from repro.library.buffers import default_buffer_library
from repro.library.power import default_power_model
from repro.library.technology import default_technology
from repro.noise.coupling import CouplingModel
from repro.verify import (
    compare_result_to_oracle,
    exhaustive_oracle,
    random_tree,
)

ORACLE_SITES = 4
NET_TARGET = 200


@pytest.fixture(scope="module")
def setup():
    library = default_buffer_library()
    inverter = next(b.name for b in library if b.inverting)
    small = library.restricted(["buf_x1", inverter])
    technology = default_technology()
    return small, CouplingModel.estimation_mode(technology)


def _seeded_small_nets(count):
    rng = random.Random(7)
    produced = 0
    while produced < count:
        tree = random_tree(rng, max_internal=4, with_rats=True,
                           name=f"poracle{produced}")
        sites = sum(
            1 for n in tree.nodes() if n.is_internal and n.feasible
        )
        if 1 <= sites <= ORACLE_SITES:
            produced += 1
            yield tree


class TestSeededPowerAgreement:
    def test_dp_matches_oracle_on_200_nets_power_modes(self, setup):
        small, coupling = setup
        power = default_power_model()
        checked = 0
        for tree in _seeded_small_nets(NET_TARGET):
            for noise_aware in (False, True):
                mode_coupling = (
                    coupling if noise_aware else CouplingModel.silent()
                )
                result = run_dp(
                    tree, small, coupling=mode_coupling,
                    options=DPOptions(
                        noise_aware=noise_aware, power=power,
                    ),
                )
                oracle = exhaustive_oracle(
                    tree, small, mode_coupling, noise_aware=noise_aware,
                    max_sites=ORACLE_SITES, power_model=power,
                )
                disagreements = compare_result_to_oracle(
                    result, oracle, exact=not noise_aware,
                )
                assert not disagreements, (
                    f"{tree.name} noise_aware={noise_aware}: "
                    + "; ".join(d.describe() for d in disagreements)
                )
            checked += 1
        assert checked == NET_TARGET
