"""Exhaustive oracle vs the DP: optimality, not just feasibility.

The load-bearing test here sweeps 200 seeded random nets within the
oracle's site bound and asserts the DP's selections *equal* the
enumerated optimum — in delay mode that is van Ginneken's theorem; in
noise-aware mode equality is not guaranteed in general (the linear
merge is a heuristic on multi-buffer libraries) but holds empirically
for this seeded family with the restricted library, so it is pinned as
a regression: if pruning ever starts dropping noise-optimal candidates
on these nets, this fails.
"""

import random

import pytest

from repro.core.dp import DPOptions, run_dp
from repro.core.wire_sizing import WireSizingSpec
from repro.errors import InfeasibleError
from repro.library.buffers import default_buffer_library
from repro.library.technology import default_technology
from repro.noise.coupling import CouplingModel
from repro.tree import two_pin_net
from repro.units import FF, PS, UM
from repro.verify import (
    OracleBoundError,
    compare_result_to_oracle,
    exhaustive_oracle,
    random_tree,
)

ORACLE_SITES = 4
NET_TARGET = 200


@pytest.fixture(scope="module")
def setup():
    library = default_buffer_library()
    inverter = next(b.name for b in library if b.inverting)
    small = library.restricted(["buf_x1", inverter])
    technology = default_technology()
    return small, CouplingModel.estimation_mode(technology)


def _seeded_small_nets(count):
    """Seeded random nets with 1..ORACLE_SITES feasible buffer sites."""
    rng = random.Random(7)
    produced = 0
    while produced < count:
        tree = random_tree(rng, max_internal=4, with_rats=True,
                           name=f"oracle{produced}")
        sites = sum(
            1 for n in tree.nodes() if n.is_internal and n.feasible
        )
        if 1 <= sites <= ORACLE_SITES:
            produced += 1
            yield tree


class TestSeededAgreement:
    def test_dp_matches_oracle_on_200_nets_both_modes(self, setup):
        small, coupling = setup
        checked = 0
        for tree in _seeded_small_nets(NET_TARGET):
            for noise_aware in (False, True):
                mode_coupling = (
                    coupling if noise_aware else CouplingModel.silent()
                )
                result = run_dp(
                    tree, small, coupling=mode_coupling,
                    options=DPOptions(
                        noise_aware=noise_aware, track_counts=True
                    ),
                )
                oracle = exhaustive_oracle(
                    tree, small, mode_coupling, noise_aware=noise_aware,
                    max_sites=ORACLE_SITES,
                )
                disagreements = compare_result_to_oracle(
                    result, oracle, exact=True,
                    cost=lambda b: 1.0, cost_library=small, cost_exact=True,
                )
                assert not disagreements, (
                    f"{tree.name} noise_aware={noise_aware}: "
                    + "; ".join(d.describe() for d in disagreements)
                )
            checked += 1
        assert checked == NET_TARGET


class TestSelectionSemantics:
    def test_best_mirrors_dp_tie_breaking(self, setup, tech, driver):
        small, _ = setup
        net = two_pin_net(
            tech, 5000 * UM, driver, sink_capacitance=20 * FF,
            noise_margin=0.8, required_arrival=2000 * PS, segments=4,
        )
        oracle = exhaustive_oracle(
            net, small, CouplingModel.silent(), noise_aware=False
        )
        best = oracle.best(require_noise=False)
        # no other outcome has strictly better slack, and among equal
        # slacks the fewest buffers wins
        for outcome in oracle.outcomes:
            assert outcome.slack <= best.slack
            if outcome.slack == best.slack:
                assert best.buffer_count <= outcome.buffer_count

    def test_fewest_buffers_falls_back_to_best(self, setup, tech, driver):
        small, _ = setup
        net = two_pin_net(
            tech, 5000 * UM, driver, sink_capacitance=20 * FF,
            noise_margin=0.8, required_arrival=1 * PS, segments=3,
        )
        oracle = exhaustive_oracle(
            net, small, CouplingModel.silent(), noise_aware=False
        )
        unreachable = oracle.fewest_buffers(min_slack=1.0)
        assert unreachable.slack == oracle.best(require_noise=False).slack

    def test_empty_noise_pool_raises(self, setup, tech, driver):
        small, coupling = setup
        # microscopic noise margin: no assignment can be noise-feasible
        net = two_pin_net(
            tech, 8000 * UM, driver, sink_capacitance=20 * FF,
            noise_margin=1e-9, required_arrival=2000 * PS, segments=3,
        )
        oracle = exhaustive_oracle(net, small, coupling, noise_aware=True)
        with pytest.raises(InfeasibleError):
            oracle.best(require_noise=True)
        assert oracle.best(require_noise=False) is not None

    def test_minimize_cost_prefers_cheap_cells(self, setup, tech, driver):
        small, _ = setup
        net = two_pin_net(
            tech, 5000 * UM, driver, sink_capacitance=20 * FF,
            noise_margin=0.8, required_arrival=2000 * PS, segments=4,
        )
        oracle = exhaustive_oracle(
            net, small, CouplingModel.silent(), noise_aware=False
        )
        by_name = {b.name: b for b in small}

        def area(buffer):
            return buffer.input_capacitance

        cheap = oracle.minimize_cost(
            area, small, min_slack=0.0, require_noise=False
        )
        assert cheap.slack >= 0.0
        total = sum(area(by_name[n]) for _, n in cheap.assignment)
        for outcome in oracle.outcomes:
            if outcome.slack >= 0.0:
                other = sum(
                    area(by_name[n]) for _, n in outcome.assignment
                )
                assert total <= other + 1e-30


class TestBounds:
    def test_site_bound_refusal(self, setup, tech, driver):
        small, _ = setup
        net = two_pin_net(
            tech, 9000 * UM, driver, sink_capacitance=20 * FF,
            noise_margin=0.8, segments=8,
        )
        with pytest.raises(OracleBoundError):
            exhaustive_oracle(
                net, small, CouplingModel.silent(), max_sites=3
            )

    def test_assignment_bound_refusal(self, setup, tech, driver):
        small, _ = setup
        net = two_pin_net(
            tech, 5000 * UM, driver, sink_capacitance=20 * FF,
            noise_margin=0.8, segments=4,
        )
        with pytest.raises(OracleBoundError):
            exhaustive_oracle(
                net, small, CouplingModel.silent(), max_assignments=5
            )

    def test_polarity_filter_excludes_odd_inversions(self, setup, tech, driver):
        small, _ = setup
        net = two_pin_net(
            tech, 4000 * UM, driver, sink_capacitance=20 * FF,
            noise_margin=0.8, required_arrival=2000 * PS, segments=3,
        )
        oracle = exhaustive_oracle(
            net, small, CouplingModel.silent(), enforce_polarity=True
        )
        inverting = {b.name for b in small if b.inverting}
        for outcome in oracle.outcomes:
            inversions = sum(
                1 for _, name in outcome.assignment if name in inverting
            )
            assert inversions % 2 == 0


class TestWireSizing:
    def test_sized_dp_never_beats_sized_oracle(self, tech, driver):
        library = default_buffer_library().restricted(["buf_x1"])
        net = two_pin_net(
            tech, 6000 * UM, driver, sink_capacitance=25 * FF,
            noise_margin=0.8, required_arrival=2500 * PS, segments=3,
        )
        spec = WireSizingSpec(widths=(1.0, 2.0), area_fraction=0.7)
        silent = CouplingModel.silent()
        result = run_dp(
            net, library, coupling=silent,
            options=DPOptions(
                noise_aware=False, track_counts=True, sizing=spec
            ),
        )
        oracle = exhaustive_oracle(
            net, library, silent, noise_aware=False, sizing=spec
        )
        # Lillis-style sizing is exact in delay mode too
        assert result.best(require_noise=False).slack == pytest.approx(
            oracle.best(require_noise=False).slack, rel=1e-9
        )
