"""Mutation-style self-tests: the certifier must catch every corruption.

A certificate checker that validates everything the engine emits could
simply be a rubber stamp.  These tests corrupt known-good solutions in
every supported mutation class and require a 100% catch rate — any
escaped mutation is a certifier blind spot and fails the suite.
"""

import random

import pytest

from repro import DriverCell
from repro.core.dp import DPOptions, run_dp
from repro.core.noise_delay import buffopt_result
from repro.library.buffers import default_buffer_library
from repro.library.technology import default_technology
from repro.noise.coupling import CouplingModel
from repro.tree import two_pin_net
from repro.units import FF, PS, UM
from repro.verify import (
    MUTATION_CLASSES,
    certificate_for_mutation,
    mutate_claims,
    random_tree,
    surviving_mutations,
)


@pytest.fixture(scope="module")
def buffered_solution():
    """A noisy segmented net plus the engine's chosen repair."""
    technology = default_technology()
    library = default_buffer_library()
    coupling = CouplingModel.estimation_mode(technology)
    driver = DriverCell("drv", resistance=250.0, intrinsic_delay=30 * PS)

    net = two_pin_net(
        technology, 8000 * UM, driver,
        sink_capacitance=20 * FF, noise_margin=0.8,
        required_arrival=2000 * PS, segments=6, name="mutant_host",
    )
    outcome = buffopt_result(net, library, coupling).fewest_buffers()
    assignment = {ins.node: ins.buffer for ins in outcome.insertions}
    assert assignment, "host net must actually need buffers"
    return net, assignment, coupling, library


class TestMutationGeneration:
    def test_every_class_is_generated(self, buffered_solution):
        net, assignment, coupling, library = buffered_solution
        produced = {
            m.mutation
            for m in mutate_claims(net, assignment, coupling, library)
        }
        # ``understate-power`` needs a power model to exist at all.
        assert produced == set(MUTATION_CLASSES) - {"understate-power"}
        assert len(MUTATION_CLASSES) >= 4

    def test_power_class_appears_with_a_model(self, buffered_solution):
        from repro.library.power import default_power_model

        net, assignment, coupling, library = buffered_solution
        produced = {
            m.mutation
            for m in mutate_claims(
                net, assignment, coupling, library,
                power_model=default_power_model(),
            )
        }
        assert produced == set(MUTATION_CLASSES)

    def test_unmutated_claim_still_certifies(self, buffered_solution):
        # sanity: the catch rate below is not explained by a certifier
        # that rejects everything.
        from repro.verify import certify_claim, evaluate_assignment

        net, assignment, coupling, _ = buffered_solution
        truth = evaluate_assignment(net, assignment, coupling)
        certificate = certify_claim(
            net, assignment, coupling,
            claimed_slack=truth.slack,
            claimed_noise_feasible=truth.noise_feasible,
            claimed_buffer_count=len(assignment),
        )
        assert certificate.ok, certificate.describe()


class TestCatchRate:
    def test_all_mutations_caught_on_host_net(self, buffered_solution):
        from repro.library.power import default_power_model

        net, assignment, coupling, library = buffered_solution
        caught, escaped = surviving_mutations(
            net, assignment, coupling, library,
            power_model=default_power_model(),
        )
        assert not escaped, [m.description for m in escaped]
        assert {m.mutation for m in caught} == set(MUTATION_CLASSES)

    def test_power_mutant_needs_the_power_certifier(self, buffered_solution):
        """The understate-power mutant is invisible without the power
        re-derivation — timing and noise stay exactly right — so the
        power-blind battery must not even generate it, while the
        power-aware battery must catch it."""
        from repro.library.power import default_power_model

        net, assignment, coupling, library = buffered_solution
        blind_caught, blind_escaped = surviving_mutations(
            net, assignment, coupling, library
        )
        blind = {m.mutation for m in blind_caught + blind_escaped}
        assert "understate-power" not in blind
        caught, escaped = surviving_mutations(
            net, assignment, coupling, library,
            power_model=default_power_model(),
        )
        assert not escaped, [m.description for m in escaped]
        power_mutants = [
            m for m in caught if m.mutation == "understate-power"
        ]
        assert power_mutants, "no understate-power mutant generated"
        for mutant in power_mutants:
            certificate = certificate_for_mutation(
                net, mutant, coupling,
                power_model=default_power_model(),
            )
            assert any(
                v.kind == "power" for v in certificate.violations
            ), certificate.describe()

    def test_all_mutations_caught_in_delay_mode(self, buffered_solution):
        net, assignment, _, library = buffered_solution
        caught, escaped = surviving_mutations(
            net, assignment, CouplingModel.silent(), library
        )
        assert not escaped, [m.description for m in escaped]

    def test_catch_rate_holds_across_seeded_random_nets(self):
        """100% catch rate across a seeded random-net population."""
        technology = default_technology()
        library = default_buffer_library()
        coupling = CouplingModel.estimation_mode(technology)
        rng = random.Random(23)
        hosts = 0
        while hosts < 10:
            tree = random_tree(rng, max_internal=5, with_rats=True,
                               name=f"mutant{hosts}")
            result = run_dp(
                tree, library, coupling=coupling,
                options=DPOptions(noise_aware=True, track_counts=True),
            )
            buffered = [o for o in result.outcomes if o.buffer_count >= 1]
            if not buffered:
                continue
            hosts += 1
            outcome = buffered[-1]
            assignment = {
                ins.node: ins.buffer for ins in outcome.insertions
            }
            caught, escaped = surviving_mutations(
                tree, assignment, coupling, library
            )
            assert not escaped, (
                tree.name, [m.description for m in escaped]
            )

    def test_each_mutation_yields_violations(self, buffered_solution):
        net, assignment, coupling, library = buffered_solution
        for mutated in mutate_claims(net, assignment, coupling, library):
            certificate = certificate_for_mutation(net, mutated, coupling)
            assert certificate.violations, mutated.description
