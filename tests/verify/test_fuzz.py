"""Fuzz driver self-tests: planted bugs must be found, shrunk, replayed.

The acceptance bar for the fuzz subsystem is a closed loop: a
deliberately buggy engine is detected within a bounded seeded campaign,
the counterexample shrinks to a minimal net, the emitted JSON repro
file replays the failure, and the same repro passes against the healthy
engine.  A clean campaign over the real engine must come back green.
"""

import json
import pathlib

import pytest

from repro.cli import main
from repro.io import net_from_dict, net_to_dict
from repro.verify import (
    FUZZ_MODES,
    FuzzConfig,
    engine_for,
    planted_buggy_engine,
    planted_buggy_fast_engine,
    planted_buggy_lishi_engine,
    planted_buggy_power_engine,
    replay_file,
    run_fuzz,
    shrink_tree,
    seeded_tree,
)


class TestCampaign:
    def test_clean_engine_survives_seeded_campaign(self):
        report = run_fuzz(FuzzConfig(iterations=25, seed=11))
        assert report.ok, report.describe()
        assert report.iterations_run == 25

    def test_planted_bug_is_caught_and_shrunk(self, tmp_path):
        config = FuzzConfig(
            iterations=40, seed=5, out_dir=str(tmp_path),
            max_counterexamples=2,
        )
        report = run_fuzz(config, engine=planted_buggy_engine())
        assert not report.ok
        example = report.counterexamples[0]
        # the planted bug needs >= 2 sinks, so the minimal failing net is
        # source + branch point + two sinks
        assert example.shrunk_nodes < example.original_nodes or (
            example.original_nodes == 4
        )
        assert example.shrunk_nodes >= 4
        assert report.written_files
        for path in report.written_files:
            assert pathlib.Path(path).exists()

    def test_counterexample_json_is_replayable(self, tmp_path):
        config = FuzzConfig(
            iterations=40, seed=5, out_dir=str(tmp_path),
            max_counterexamples=1,
        )
        report = run_fuzz(config, engine=planted_buggy_engine())
        assert report.written_files
        path = report.written_files[0]
        data = json.loads(pathlib.Path(path).read_text())
        assert data["kind"] == "buffopt-fuzz-counterexample"
        # buggy engine: the repro still fails
        failures = replay_file(path, engine=planted_buggy_engine())
        assert failures
        # healthy engine: the repro passes
        assert replay_file(path) == []

    def test_shrunk_net_round_trips_standalone(self, tmp_path):
        # repro files carry explicit wire R/C, so replaying needs no
        # technology object
        config = FuzzConfig(
            iterations=40, seed=5, out_dir=str(tmp_path),
            max_counterexamples=1,
        )
        report = run_fuzz(config, engine=planted_buggy_engine())
        shrunk = report.counterexamples[0].shrunk_net
        net, _ = net_from_dict(shrunk)
        assert net_to_dict(net) == shrunk


class TestFastEngineCampaign:
    """The fuzz loop exercised through the fast engine seam.

    The planted fast-engine bug over-prunes the frontier, which keeps the
    surviving claims self-consistent (the certificate passes) — only the
    oracle cross-check catches it.  This proves the campaign's oracle leg
    pulls its weight for the fast engine, not just the reference one.
    """

    def test_clean_fast_engine_survives_seeded_campaign(self):
        report = run_fuzz(
            FuzzConfig(iterations=25, seed=11, engine="fast")
        )
        assert report.ok, report.describe()
        assert report.iterations_run == 25

    def test_planted_fast_bug_is_caught_and_shrunk(self, tmp_path):
        config = FuzzConfig(
            iterations=40, seed=5, out_dir=str(tmp_path),
            max_counterexamples=2,
        )
        report = run_fuzz(config, engine=planted_buggy_fast_engine())
        assert not report.ok
        example = report.counterexamples[0]
        assert example.shrunk_nodes <= example.original_nodes
        assert report.written_files
        # the repro replays against the buggy fast engine and passes
        # against both healthy engines
        path = report.written_files[0]
        assert replay_file(path, engine=planted_buggy_fast_engine())
        assert replay_file(path, engine=engine_for("fast")) == []
        assert replay_file(path) == []

    def test_fuzz_config_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="engine"):
            FuzzConfig(iterations=5, engine="turbo")


class TestLiShiEngineCampaign:
    """The fuzz loop exercised through the lishi engine seam.

    The planted lishi bug over-evicts during the timing prune — every
    surviving candidate is still a genuine candidate, so the claims
    self-certify and only the differential/oracle legs can catch the
    missing optimum.  Same closed loop as the fast seam: detected,
    shrunk, replayable, and cleanly green on the healthy engines.
    """

    def test_clean_lishi_engine_survives_seeded_campaign(self):
        report = run_fuzz(
            FuzzConfig(iterations=25, seed=11, engine="lishi")
        )
        assert report.ok, report.describe()
        assert report.iterations_run == 25

    def test_planted_lishi_bug_is_caught_and_shrunk(self, tmp_path):
        config = FuzzConfig(
            iterations=40, seed=5, out_dir=str(tmp_path),
            max_counterexamples=2,
        )
        report = run_fuzz(config, engine=planted_buggy_lishi_engine())
        assert not report.ok
        example = report.counterexamples[0]
        assert example.shrunk_nodes <= example.original_nodes
        assert report.written_files
        # the repro replays against the buggy lishi engine and passes
        # against the healthy lishi and reference engines
        path = report.written_files[0]
        assert replay_file(path, engine=planted_buggy_lishi_engine())
        assert replay_file(path, engine=engine_for("lishi")) == []
        assert replay_file(path) == []

    def test_auto_engine_campaign_is_clean(self):
        report = run_fuzz(
            FuzzConfig(iterations=15, seed=23, engine="auto")
        )
        assert report.ok, report.describe()


class TestPowerCampaign:
    """The fuzz loop in the ``*-power`` modes.

    The planted power bug understates accumulated power while leaving
    timing and noise untouched — it is detectable *only* by the
    certificate's independent power re-derivation and the oracle's
    power selections, and *only* when the campaign runs a power mode.
    """

    def test_power_modes_are_registered(self):
        assert "delay-power" in FUZZ_MODES
        assert "buffopt-power" in FUZZ_MODES
        with pytest.raises(ValueError, match="mode"):
            FuzzConfig(iterations=5, modes=("delay", "warp-power"))

    def test_clean_power_campaign_is_green(self):
        report = run_fuzz(FuzzConfig(
            iterations=15, seed=11,
            modes=("delay-power", "buffopt-power"),
        ))
        assert report.ok, report.describe()
        assert report.iterations_run == 15

    def test_planted_power_bug_is_caught_and_shrunk(self, tmp_path):
        config = FuzzConfig(
            iterations=40, seed=5, out_dir=str(tmp_path),
            max_counterexamples=1, modes=("delay-power", "buffopt-power"),
        )
        report = run_fuzz(config, engine=planted_buggy_power_engine())
        assert not report.ok
        assert report.written_files
        path = report.written_files[0]
        # repro replays against the buggy engine, passes on the real one
        assert replay_file(path, engine=planted_buggy_power_engine())
        assert replay_file(path) == []

    def test_planted_power_bug_is_invisible_without_power(self):
        """The same mutant survives a power-blind campaign — proof the
        power legs add discriminating power, not redundant coverage."""
        report = run_fuzz(
            FuzzConfig(iterations=40, seed=5, modes=("delay", "buffopt")),
            engine=planted_buggy_power_engine(),
        )
        assert report.ok, report.describe()


class TestShrinker:
    def test_shrinks_to_sink_count_predicate(self):
        tree = seeded_tree(0, max_internal=6, with_rats=True)
        assert len(tree.sinks) >= 3
        shrunk = shrink_tree(tree, lambda t: len(t.sinks) >= 2)
        assert len(shrunk.sinks) == 2
        # every surviving internal node is a real branch point or a
        # feasible site kept because splicing it broke the predicate
        assert len(list(shrunk.nodes())) <= len(list(tree.nodes()))

    def test_never_returns_a_passing_tree(self):
        tree = seeded_tree(7, max_internal=5, with_rats=True)
        predicate = lambda t: len(list(t.nodes())) >= 3
        shrunk = shrink_tree(tree, predicate)
        assert predicate(shrunk)

    def test_single_sink_is_preserved(self):
        tree = seeded_tree(3, max_internal=3, with_rats=True)
        shrunk = shrink_tree(tree, lambda t: True)
        assert len(shrunk.sinks) >= 1
        assert shrunk.source is not None


class TestCli:
    def test_fuzz_cli_self_test_with_planted_bug(self, tmp_path, capsys):
        out = tmp_path / "repros"
        code = main([
            "fuzz", "--iters", "40", "--seed", "5", "--plant-bug",
            "--out", str(out), "--max-counterexamples", "1",
        ])
        assert code == 1
        files = sorted(out.glob("*.json"))
        assert files
        stdout = capsys.readouterr().out
        assert "counterexample" in stdout.lower()

        # replay against the buggy engine reproduces...
        assert main([
            "fuzz", "--replay", str(files[0]), "--plant-bug"
        ]) == 1
        # ...and against the real engine it no longer does
        assert main(["fuzz", "--replay", str(files[0])]) == 0

    def test_fuzz_cli_clean_run_is_green(self, capsys):
        code = main(["fuzz", "--iters", "10", "--seed", "11"])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_fuzz_cli_fast_engine_clean_and_planted(self, tmp_path, capsys):
        code = main([
            "fuzz", "--iters", "10", "--seed", "11", "--engine", "fast",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "OK" in captured.out
        assert "engine fast" in captured.err  # progress line names it

        out = tmp_path / "repros"
        code = main([
            "fuzz", "--iters", "40", "--seed", "5", "--engine", "fast",
            "--plant-bug", "--out", str(out), "--max-counterexamples", "1",
        ])
        assert code == 1
        assert sorted(out.glob("*.json"))


@pytest.mark.fuzz
class TestNightlyCampaign:
    """Long seeded campaign, deselected by default (``-m fuzz`` runs it)."""

    def test_long_campaign_finds_nothing(self):
        report = run_fuzz(FuzzConfig(iterations=400, seed=2026))
        assert report.ok, report.describe()

    def test_long_power_campaign_finds_nothing(self):
        report = run_fuzz(FuzzConfig(
            iterations=400, seed=2027,
            modes=("delay-power", "buffopt-power"),
        ))
        assert report.ok, report.describe()
