"""Certificate checker: agreement with the engine and with analysis.

The certifier's recomputation is fully independent of ``core/dp.py``;
these tests pin (a) that it validates everything the real engine
produces — including every golden net of the Table 1/2 population — and
(b) that its recomputed slack matches the independent Elmore analysis
in :mod:`repro.timing`.
"""

import math

import pytest

from repro import segment_tree
from repro.core.dp import DPOptions, run_dp
from repro.core.noise_delay import buffopt_result
from repro.core.van_ginneken import delay_opt_result
from repro.core.wire_sizing import WireSizingSpec
from repro.errors import CertificateError
from repro.experiments import default_experiment
from repro.noise.coupling import CouplingModel
from repro.timing import source_slack
from repro.tree import two_pin_net
from repro.units import FF, PS, UM
from repro.verify import (
    certify_claim,
    certify_or_raise,
    certify_result,
    evaluate_assignment,
)


@pytest.fixture(scope="module")
def golden_population():
    experiment = default_experiment(nets=16)
    return experiment, [
        (net.name, segment_tree(net.tree, experiment.max_segment_length))
        for net in experiment.nets
    ]


class TestGoldenNets:
    def test_buffopt_outcomes_all_certify(self, golden_population):
        experiment, nets = golden_population
        for name, tree in nets:
            result = buffopt_result(
                tree, experiment.library, experiment.coupling, max_buffers=4
            )
            certificate = certify_result(result, experiment.coupling)
            assert certificate.ok, f"{name}: {certificate.describe()}"

    def test_delayopt_outcomes_all_certify(self, golden_population):
        experiment, nets = golden_population
        for name, tree in nets:
            result = delay_opt_result(
                tree, experiment.library, max_buffers=4
            )
            # DelayOpt runs the engine with silent coupling; certify
            # against the same physics.
            certificate = certify_result(result, CouplingModel.silent())
            assert certificate.ok, f"{name}: {certificate.describe()}"

    def test_selected_outcome_certifies_via_raise_helper(
        self, golden_population
    ):
        experiment, nets = golden_population
        for name, tree in nets:
            outcome = buffopt_result(
                tree, experiment.library, experiment.coupling, max_buffers=4
            ).fewest_buffers()
            certificate = certify_or_raise(
                tree,
                {ins.node: ins.buffer for ins in outcome.insertions},
                experiment.coupling,
                claimed_slack=outcome.slack,
                claimed_noise_feasible=outcome.noise_feasible,
                claimed_buffer_count=outcome.buffer_count,
                require_noise=True,
            )
            assert certificate.ok, name


class TestRecomputation:
    def test_matches_independent_elmore_analysis(
        self, y_tree, library, silent
    ):
        result = delay_opt_result(y_tree, library, max_buffers=3)
        for outcome in result.outcomes:
            assignment = {ins.node: ins.buffer for ins in outcome.insertions}
            certificate = evaluate_assignment(y_tree, assignment, silent)
            independent = source_slack(y_tree, assignment)
            assert certificate.slack == pytest.approx(independent, rel=1e-9)

    def test_empty_assignment_on_unbuffered_net(
        self, short_two_pin, coupling
    ):
        certificate = evaluate_assignment(short_two_pin, {}, coupling)
        assert certificate.buffer_count == 0
        assert certificate.slack == pytest.approx(
            source_slack(short_two_pin, {}), rel=1e-9
        )

    def test_noisy_unbuffered_net_flagged(self, long_two_pin, coupling):
        # 9 mm of unbuffered coupled wire: the source driver's injected
        # noise must exceed the sink margin.
        certificate = evaluate_assignment(long_two_pin, {}, coupling)
        assert not certificate.noise_feasible
        assert any(v.kind == "noise" for v in certificate.violations)

    def test_claim_mismatches_are_flagged(self, short_two_pin, coupling):
        truth = evaluate_assignment(short_two_pin, {}, coupling)
        certificate = certify_claim(
            short_two_pin, {}, coupling,
            claimed_slack=truth.slack * 2 + 1 * PS,
            claimed_noise_feasible=not truth.noise_feasible,
            claimed_buffer_count=3,
        )
        kinds = {v.kind for v in certificate.violations}
        assert {"slack", "noise-claim", "count"} <= kinds

    def test_certify_or_raise_raises_on_bad_claim(
        self, short_two_pin, coupling
    ):
        with pytest.raises(CertificateError):
            certify_or_raise(
                short_two_pin, {}, coupling, claimed_buffer_count=5
            )

    def test_structural_violation_for_unknown_node(
        self, short_two_pin, coupling, single_buffer
    ):
        certificate = evaluate_assignment(
            short_two_pin, {"nonexistent": single_buffer}, coupling
        )
        assert any(v.kind == "structure" for v in certificate.violations)

    def test_polarity_violation_for_odd_inversions(
        self, tech, driver, library, silent
    ):
        tree = two_pin_net(
            tech, 4000 * UM, driver, sink_capacitance=20 * FF,
            noise_margin=0.8, required_arrival=2000 * PS, segments=4,
        )
        inverter = next(b for b in library if b.inverting)
        site = next(
            n.name for n in tree.nodes() if n.is_internal and n.feasible
        )
        certificate = evaluate_assignment(tree, {site: inverter}, silent)
        assert any(v.kind == "polarity" for v in certificate.violations)


class TestResultCertificate:
    def test_sizing_runs_certify_on_realized_trees(self, tech, driver, library):
        net = two_pin_net(
            tech, 6000 * UM, driver, sink_capacitance=25 * FF,
            noise_margin=0.8, required_arrival=2500 * PS, segments=4,
        )
        spec = WireSizingSpec(widths=(1.0, 2.0), area_fraction=0.7)
        options = DPOptions(
            noise_aware=False, track_counts=True, sizing=spec
        )
        result = run_dp(
            net, library, coupling=CouplingModel.silent(), options=options
        )
        assert any(o.wire_choices for o in result.outcomes)
        certificate = certify_result(result, CouplingModel.silent())
        assert certificate.ok, certificate.describe()

    def test_malformed_frontier_is_flagged(self, y_tree, library, silent):
        import dataclasses

        result = delay_opt_result(y_tree, library, max_buffers=2)
        assert len(result.outcomes) >= 2
        # duplicate the first outcome: counts no longer strictly increase
        broken = dataclasses.replace(
            result, outcomes=(result.outcomes[0], *result.outcomes)
        )
        certificate = certify_result(broken, silent)
        assert any(
            v.kind == "pareto" for v in certificate.all_violations()
        )

    def test_cap_overrun_is_flagged(self, y_tree, library, silent):
        import dataclasses

        result = delay_opt_result(y_tree, library)
        heavy = max(result.outcomes, key=lambda o: o.buffer_count)
        if heavy.buffer_count == 0:
            pytest.skip("net never takes a buffer")
        capped_options = dataclasses.replace(
            result.options, track_counts=True, max_buffers=0
        )
        broken = dataclasses.replace(
            result, outcomes=(heavy,), options=capped_options
        )
        certificate = certify_result(broken, silent)
        assert any(v.kind == "cap" for v in certificate.all_violations())

    def test_infinite_rat_slack_stays_infinite(self, tech, driver, library):
        net = two_pin_net(
            tech, 2000 * UM, driver, sink_capacitance=15 * FF,
            noise_margin=0.8, name="no_rat",
        )
        certificate = evaluate_assignment(net, {}, CouplingModel.silent())
        assert math.isinf(certificate.slack)


class TestPowerCertification:
    """The certifier's independent power re-derivation."""

    @pytest.fixture
    def power_run(self, tech, driver, library):
        from repro.library.power import default_power_model

        net = two_pin_net(
            tech, 8000 * UM, driver, sink_capacitance=20 * FF,
            noise_margin=0.8, required_arrival=2000 * PS, segments=6,
            name="power_host",
        )
        power = default_power_model()
        result = run_dp(
            net, library, coupling=CouplingModel.silent(),
            options=DPOptions(noise_aware=False, power=power),
        )
        assert any(o.buffer_count for o in result.outcomes)
        return net, power, result

    def test_recompute_power_is_the_separable_sum(self, power_run):
        from repro.verify import recompute_power

        net, power, result = power_run
        wire_total = sum(
            power.wire_power(w.capacitance) for w in net.wires()
        )
        assert recompute_power(net, {}, power) == pytest.approx(wire_total)
        outcome = max(result.outcomes, key=lambda o: o.buffer_count)
        assignment = {i.node: i.buffer for i in outcome.insertions}
        expected = wire_total + sum(
            power.buffer_power(b) for b in assignment.values()
        )
        assert recompute_power(net, assignment, power) == \
            pytest.approx(expected)

    def test_true_power_claim_certifies(self, power_run):
        net, power, result = power_run
        outcome = max(result.outcomes, key=lambda o: o.buffer_count)
        certificate = certify_claim(
            net, {i.node: i.buffer for i in outcome.insertions},
            CouplingModel.silent(),
            claimed_slack=outcome.slack,
            claimed_noise_feasible=outcome.noise_feasible,
            claimed_buffer_count=outcome.buffer_count,
            claimed_power=outcome.power,
            power_model=power,
        )
        assert certificate.ok, certificate.describe()
        assert certificate.power == pytest.approx(outcome.power)

    def test_understated_power_claim_is_flagged(self, power_run):
        net, power, result = power_run
        outcome = max(result.outcomes, key=lambda o: o.buffer_count)
        certificate = certify_claim(
            net, {i.node: i.buffer for i in outcome.insertions},
            CouplingModel.silent(),
            claimed_slack=outcome.slack,
            claimed_noise_feasible=outcome.noise_feasible,
            claimed_buffer_count=outcome.buffer_count,
            claimed_power=outcome.power * 0.5,
            power_model=power,
        )
        assert any(v.kind == "power" for v in certificate.violations)

    def test_claimed_power_requires_a_model(self, power_run):
        net, _, result = power_run
        with pytest.raises(CertificateError, match="power_model"):
            certify_claim(
                net, {}, CouplingModel.silent(), claimed_power=1.0
            )

    def test_certify_result_re_derives_every_outcome(self, power_run):
        import dataclasses

        net, power, result = power_run
        certificate = certify_result(result, CouplingModel.silent())
        assert certificate.ok, certificate.describe()
        # Corrupt a single outcome's accumulated power: the result-level
        # certificate must localize the lie.
        victim = max(result.outcomes, key=lambda o: o.buffer_count)
        broken = dataclasses.replace(result, outcomes=tuple(
            dataclasses.replace(o, power=o.power * 0.5)
            if o is victim else o
            for o in result.outcomes
        ))
        corrupt = certify_result(broken, CouplingModel.silent())
        assert any(
            v.kind == "power" for v in corrupt.all_violations()
        ), corrupt.describe()

    def test_power_frontier_shape_is_checked(self, power_run):
        import dataclasses

        _, power, result = power_run
        if len(result.outcomes) < 2:
            pytest.skip("single-outcome frontier cannot be disordered")
        # Reverse the frontier: counts no longer non-decreasing.
        broken = dataclasses.replace(
            result, outcomes=tuple(reversed(result.outcomes))
        )
        certificate = certify_result(broken, CouplingModel.silent())
        assert any(
            v.kind == "pareto" for v in certificate.all_violations()
        ), certificate.describe()
