"""Property-based tests for the Devgan metric (hypothesis)."""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import CouplingModel, segment_tree
from repro.analysis import DetailedNoiseAnalyzer
from repro.noise import downstream_currents, noise_slacks, sink_noise
from repro.timing import sink_delays
from repro.units import MM, UM
from treegen import TECH, random_trees

COUPLING = CouplingModel.estimation_mode(TECH)

default_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestMetricStructure:
    @default_settings
    @given(tree=random_trees())
    def test_currents_nonnegative_and_monotone_upstream(self, tree):
        """I(parent) >= I(child): current accumulates toward the source."""
        currents = downstream_currents(tree, COUPLING)
        for node in tree.nodes():
            assert currents[node.name] >= 0
            for child in node.children:
                assert currents[node.name] >= currents[child.name] - 1e-18

    @default_settings
    @given(tree=random_trees())
    def test_noise_slack_nonincreasing_upstream(self, tree):
        """Climbing toward the source can only consume noise slack."""
        slacks = noise_slacks(tree, COUPLING)
        for node in tree.nodes():
            for child in node.children:
                if child.is_sink or child.name not in slacks:
                    continue
                assert slacks[node.name] <= slacks[child.name] + 1e-15

    @default_settings
    @given(tree=random_trees())
    def test_feasibility_identity(self, tree):
        """Violation at the sinks iff Rd * I(so) > NS(so) (eq. 11/12)."""
        slacks = noise_slacks(tree, COUPLING)
        currents = downstream_currents(tree, COUPLING)
        rd = tree.driver.resistance
        entries = sink_noise(tree, COUPLING)
        violated = any(e.violated for e in entries)
        predicted = rd * currents[tree.source.name] > slacks[tree.source.name]
        assert violated == predicted

    @default_settings
    @given(tree=random_trees(), cut=st.floats(min_value=0.1, max_value=2.0))
    def test_segmentation_invariance(self, tree, cut):
        """Wire segmenting changes neither noise nor delay (pi split)."""
        segmented = segment_tree(tree, cut * MM)
        before = {e.node: e.noise for e in sink_noise(tree, COUPLING)}
        after = {e.node: e.noise for e in sink_noise(segmented, COUPLING)}
        for name, value in before.items():
            assert math.isclose(after[name], value, rel_tol=1e-9, abs_tol=1e-15)
        d_before = sink_delays(tree)
        d_after = sink_delays(segmented)
        for name, value in d_before.items():
            assert math.isclose(d_after[name], value, rel_tol=1e-9)

    @default_settings
    @given(tree=random_trees(), scale=st.floats(min_value=0.0, max_value=1.0))
    def test_noise_monotone_in_coupling_ratio(self, tree, scale):
        """Weaker coupling can only reduce every sink's noise."""
        weaker = CouplingModel(
            coupling_ratio=COUPLING.coupling_ratio * scale,
            slope=COUPLING.slope,
        )
        strong = {e.node: e.noise for e in sink_noise(tree, COUPLING)}
        weak = {e.node: e.noise for e in sink_noise(tree, weaker)}
        for name in strong:
            assert weak[name] <= strong[name] + 1e-15


class TestUpperBound:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(tree=random_trees(max_internal=3))
    def test_metric_upper_bounds_transient_peak(self, tree):
        """The headline property: Devgan >= simulated peak, per stage sink,
        on arbitrary victim trees."""
        analyzer = DetailedNoiseAnalyzer(
            COUPLING, TECH.vdd, max_segment_length=100 * UM, steps_per_rise=30
        )
        metric = {e.node: e.noise for e in sink_noise(tree, COUPLING)}
        detailed = analyzer.analyze(tree)
        for entry in detailed.entries:
            assert entry.peak <= metric[entry.node] * (1 + 1e-6) + 1e-12

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(tree=random_trees(max_internal=3))
    def test_awe_agrees_with_transient(self, tree):
        """The two independent detailed verifiers agree per stage sink."""
        from repro.analysis import AweNoiseAnalyzer

        transient = DetailedNoiseAnalyzer(
            COUPLING, TECH.vdd, max_segment_length=100 * UM, steps_per_rise=40
        ).analyze(tree)
        awe = AweNoiseAnalyzer(
            COUPLING, TECH.vdd, max_segment_length=100 * UM
        ).analyze(tree)
        peaks = {e.node: e.peak for e in transient.entries}
        for entry in awe.entries:
            reference = peaks[entry.node]
            assert abs(entry.peak - reference) <= 0.08 * reference + 2e-3, (
                entry.node
            )
