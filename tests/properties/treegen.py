"""Shared hypothesis strategies: random routing trees and parameters.

The parameter ranges live in :mod:`repro.verify.treegen` (the seeded
``random.Random`` twin of these strategies used by ``buffopt fuzz``), so
the fuzz driver and the property suite always explore the same space.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro import DriverCell, TreeBuilder, default_technology
from repro.verify.treegen import (
    MARGIN_RANGE,
    RAT_RANGE,
    RESISTANCE_RANGE,
    SINK_CAP_RANGE,
    WIRE_LENGTH_RANGE,
)

TECH = default_technology()

resistances = st.floats(*RESISTANCE_RANGE)
margins = st.floats(*MARGIN_RANGE)
sink_caps = st.floats(*SINK_CAP_RANGE)
wire_lengths = st.floats(*WIRE_LENGTH_RANGE)


@st.composite
def random_trees(draw, max_internal=5, with_rats=False):
    """A random valid binary routing tree with a driver.

    Grows from the source: each step attaches a new node (internal with
    probability ~1/2, else sink) under a random node that still has room.
    Guarantees at least one sink and every internal node has a child.
    """
    driver = DriverCell("drv", draw(resistances), 0.0)
    builder = TreeBuilder(TECH)
    builder.add_source("so", driver=driver)

    open_slots = {"so": 1}  # node -> children it may still take (source: 1)
    internal_budget = draw(st.integers(min_value=0, max_value=max_internal))
    names: list = []

    def rat():
        return draw(st.floats(*RAT_RANGE)) if with_rats else float("inf")

    count = 0
    while internal_budget > 0 and open_slots:
        parent = draw(st.sampled_from(sorted(open_slots)))
        name = f"i{count}"
        count += 1
        builder.add_internal(name)
        builder.add_wire(parent, name, length=draw(wire_lengths))
        open_slots[parent] -= 1
        if open_slots[parent] == 0:
            del open_slots[parent]
        open_slots[name] = 2
        internal_budget -= 1
        names.append(name)

    # Every open slot that must be filled gets a sink; internal nodes
    # need at least one child, the source needs its single child.
    sink_index = 0
    for parent in sorted(open_slots):
        builder.add_sink(
            f"s{sink_index}",
            capacitance=draw(sink_caps),
            noise_margin=draw(margins),
            required_arrival=rat(),
        )
        builder.add_wire(parent, f"s{sink_index}", length=draw(wire_lengths))
        sink_index += 1
    return builder.build("random")


@st.composite
def random_chains(draw, max_hops=4):
    """A random single-sink chain (for Algorithm 1/2 agreement)."""
    driver = DriverCell("drv", draw(resistances), 0.0)
    builder = TreeBuilder(TECH)
    builder.add_source("so", driver=driver)
    previous = "so"
    for index in range(draw(st.integers(min_value=0, max_value=max_hops))):
        name = f"m{index}"
        builder.add_internal(name)
        builder.add_wire(previous, name, length=draw(wire_lengths))
        previous = name
    builder.add_sink(
        "s",
        capacitance=draw(sink_caps),
        noise_margin=draw(margins),
    )
    builder.add_wire(previous, "s", length=draw(wire_lengths))
    return builder.build("chain")
