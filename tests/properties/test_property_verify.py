"""Theorem 1 boundary properties: the safe-length formula vs the certifier.

Theorem 1's closed form and the certificate checker's bottom-up noise
recurrence are two independent derivations of the same constraint
``Rb*(i*l + I) + r*l*(i*l/2 + I) <= NS``.  At the computed ``l_max``
boundary they must agree: a wire fractionally shorter certifies as
noise-feasible, fractionally longer fails.  Edge cases pinned here:
``NS == Rb*I`` gives zero length, ``NS < Rb*I`` is infeasible outright,
and the driverless bound collapses to ``sqrt(2*NS / (r*i))``.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import CouplingModel, DriverCell, TreeBuilder
from repro.core.wire_length import (
    max_safe_length,
    uniform_wire_noise,
    unloaded_max_length,
)
from repro.errors import InfeasibleError
from repro.units import FF
from repro.verify import evaluate_assignment

SILENT = CouplingModel.silent()
EPS = 1e-6

default_settings = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

driver_resistances = st.floats(min_value=30.0, max_value=2000.0)
unit_resistances = st.floats(min_value=1e3, max_value=1e6)  # ohm/m
unit_currents = st.floats(min_value=1e-6, max_value=1e-2)  # A/m
noise_margins = st.floats(min_value=0.2, max_value=1.5)


def _single_wire_net(driver_resistance, length, resistance, current, margin):
    """``source --wire--> sink`` with fully explicit wire parameters."""
    builder = TreeBuilder(None)
    builder.add_source(
        "so", driver=DriverCell("drv", driver_resistance, 0.0)
    )
    builder.add_sink("s", capacitance=10 * FF, noise_margin=margin)
    builder.add_wire(
        "so", "s", length=length,
        resistance=resistance, capacitance=1 * FF, current=current,
    )
    return builder.build("theorem1")


def _certified_feasible(driver_resistance, r, i, length, margin):
    net = _single_wire_net(
        driver_resistance, length, r * length, i * length, margin
    )
    return evaluate_assignment(net, {}, SILENT).noise_feasible


class TestBoundaryAgreement:
    @default_settings
    @given(
        rd=driver_resistances, r=unit_resistances,
        i=unit_currents, margin=noise_margins,
    )
    def test_formula_and_certifier_agree_at_l_max(self, rd, r, i, margin):
        l_max = max_safe_length(rd, r, i, 0.0, margin)
        assert 0.0 < l_max < math.inf
        # the closed form claims equality exactly at l_max
        assert uniform_wire_noise(rd, r, i, l_max) == pytest.approx(
            margin, rel=1e-9
        )
        assert _certified_feasible(rd, r, i, l_max * (1 - EPS), margin)
        assert not _certified_feasible(rd, r, i, l_max * (1 + EPS), margin)

    @default_settings
    @given(
        rd=driver_resistances, r=unit_resistances,
        i=unit_currents, margin=noise_margins,
        lower=st.floats(min_value=0.1, max_value=0.9),
    )
    def test_agreement_with_downstream_current(
        self, rd, r, i, margin, lower
    ):
        """Two-segment chain: the lower wire supplies ``(I, NS)``."""
        total = max_safe_length(rd, r, i, 0.0, margin)
        l2 = total * lower  # sink-adjacent segment, fixed
        current2 = i * l2
        ns_above = margin - (r * l2) * (current2 / 2.0)
        l1_max = max_safe_length(rd, r, i, current2, ns_above)
        assert 0.0 < l1_max < math.inf

        def chain_feasible(l1):
            builder = TreeBuilder(None)
            builder.add_source("so", driver=DriverCell("drv", rd, 0.0))
            builder.add_internal("m")
            builder.add_sink("s", capacitance=10 * FF, noise_margin=margin)
            builder.add_wire(
                "so", "m", length=l1,
                resistance=r * l1, capacitance=1 * FF, current=i * l1,
            )
            builder.add_wire(
                "m", "s", length=l2,
                resistance=r * l2, capacitance=1 * FF, current=current2,
            )
            net = builder.build("theorem1_chain")
            return evaluate_assignment(net, {}, SILENT).noise_feasible

        assert chain_feasible(l1_max * (1 - EPS))
        assert not chain_feasible(l1_max * (1 + EPS))


class TestEdgeCases:
    @default_settings
    @given(
        rd=driver_resistances, r=unit_resistances,
        i=unit_currents, current=st.floats(min_value=1e-6, max_value=1e-2),
    )
    def test_zero_budget_means_zero_length(self, rd, r, i, current):
        # NS == Rb*I exactly: buffering here is exactly marginal
        assert max_safe_length(rd, r, i, current, rd * current) == 0.0

    @default_settings
    @given(
        rd=driver_resistances, r=unit_resistances,
        i=unit_currents, current=st.floats(min_value=1e-6, max_value=1e-2),
        deficit=st.floats(min_value=1e-6, max_value=0.5),
    )
    def test_negative_budget_is_infeasible(self, rd, r, i, current, deficit):
        with pytest.raises(InfeasibleError):
            max_safe_length(rd, r, i, current, rd * current * (1 - deficit))

    @default_settings
    @given(r=unit_resistances, i=unit_currents, margin=noise_margins)
    def test_driverless_bound_closed_form(self, r, i, margin):
        bound = unloaded_max_length(r, i, margin)
        assert bound == pytest.approx(
            math.sqrt(2.0 * margin / (r * i)), rel=1e-9
        )
        # the certifier agrees in the driverless limit (negligible Rb)
        assert _certified_feasible(1e-12, r, i, bound * (1 - EPS), margin)
        assert not _certified_feasible(
            1e-12, r, i, bound * (1 + EPS), margin
        )
