"""Property-based tests for the circuit substrate."""

import math

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuit import (
    Circuit,
    PiecewiseLinear,
    Waveform,
    dc_operating_point,
    simulate,
    tree_moments,
)
from repro.timing import sink_delays
from treegen import random_trees

default_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestWaveformProperties:
    @default_settings
    @given(
        values=st.lists(
            st.floats(min_value=-10, max_value=10), min_size=2, max_size=50
        ),
        t=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_interpolation_within_range(self, values, t):
        times = np.linspace(0.0, 1.0, len(values))
        wave = Waveform(times, values)
        assert min(values) - 1e-12 <= wave.at(t) <= max(values) + 1e-12

    @default_settings
    @given(
        points=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1.0),
                st.floats(min_value=-5.0, max_value=5.0),
            ),
            min_size=1,
            max_size=10,
        ),
        t=st.floats(min_value=-1.0, max_value=2.0),
    )
    def test_pwl_bounded_by_its_values(self, points, t):
        points.sort()
        times = tuple(p[0] for p in points)
        values = tuple(p[1] for p in points)
        pwl = PiecewiseLinear(times, values)
        assert min(values) - 1e-12 <= pwl(t) <= max(values) + 1e-12


class TestLadderProperties:
    ladder = st.lists(
        st.tuples(
            st.floats(min_value=10.0, max_value=5000.0),  # series R
            st.floats(min_value=1e-15, max_value=200e-15),  # shunt C
        ),
        min_size=1,
        max_size=8,
    )

    @default_settings
    @given(stages=ladder, vdd=st.floats(min_value=0.5, max_value=3.0))
    def test_dc_maximum_principle(self, stages, vdd):
        """All DC node voltages of a driven RC ladder lie in [0, vdd]."""
        circuit = Circuit()
        circuit.add_voltage_source("in", "0", PiecewiseLinear.constant(vdd))
        previous = "in"
        for index, (r, c) in enumerate(stages):
            node = f"n{index}"
            circuit.add_resistor(previous, node, r)
            circuit.add_capacitor(node, "0", c)
            previous = node
        circuit.add_resistor(previous, "0", 1e6)  # DC path for all nodes
        dc = dc_operating_point(circuit)
        for node, value in dc.items():
            assert -1e-9 <= value <= vdd + 1e-9

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(stages=ladder, vdd=st.floats(min_value=0.5, max_value=3.0))
    def test_transient_bounded_and_monotone_settling(self, stages, vdd):
        """Step response of an RC ladder: bounded by vdd and converging to
        it at every internal node (no DC leak here)."""
        circuit = Circuit()
        circuit.add_voltage_source("in", "0", PiecewiseLinear.constant(vdd))
        previous = "in"
        tau = 0.0
        for index, (r, c) in enumerate(stages):
            node = f"n{index}"
            circuit.add_resistor(previous, node, r)
            circuit.add_capacitor(node, "0", c)
            tau += r * sum(cc for _, cc in stages[index:])
            previous = node
        tau = max(tau, 1e-12)
        result = simulate(circuit, stop=8 * tau, step=tau / 100,
                          probes=[previous])
        wave = result[previous]
        assert wave.peak <= vdd * (1 + 1e-9)
        assert math.isclose(wave.final, vdd, rel_tol=2e-2)


class TestMomentProperties:
    @default_settings
    @given(tree=random_trees(max_internal=4))
    def test_first_moment_equals_elmore_everywhere(self, tree):
        moments = tree_moments(tree, order=1)
        delays = sink_delays(tree, include_driver=True)
        intrinsic = tree.driver.intrinsic_delay
        for sink in tree.sinks:
            assert math.isclose(
                -moments[sink.name][0],
                delays[sink.name] - intrinsic,
                rel_tol=1e-9,
                abs_tol=1e-18,
            )

    @default_settings
    @given(tree=random_trees(max_internal=4))
    def test_second_moment_positive(self, tree):
        moments = tree_moments(tree, order=2)
        for sink in tree.sinks:
            m1, m2 = moments[sink.name]
            if m1 == 0.0:
                continue
            assert m2 > 0
            # Taylor moments relate to distribution moments as m1 = -mu1,
            # m2 = mu2/2; nonnegative impulse response gives mu2 >= mu1^2,
            # i.e. m2 >= m1^2 / 2 (single-pole responses sit at m2 = m1^2).
            assert m2 >= m1 * m1 / 2.0 * (1 - 1e-9)
