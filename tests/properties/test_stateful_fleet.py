"""Stateful property test for the million-net fleet machinery.

A :class:`~hypothesis.stateful.RuleBasedStateMachine` drives the sharded
checkpoint + streaming report + ECO frontier stack through arbitrary
interleavings of partial fleet runs, torn shard tails, reshards, merges,
and incremental ECO edits, against a plain-dict model of "the signature
every net must always have".  The invariants under any sequence:

* a net's signature never changes — not across resumes, reshards, torn
  tails, or a merge back to a single journal;
* a resume recomputes *exactly* the nets the journal is missing;
* a frontier-cache-assisted re-run after an in-place edit stays
  bit-identical (telemetry included) to a cold run of the edited tree.

The ``TestPlantedMutants`` class at the bottom proves the harness has
teeth: three deliberately re-introduced bugs — stale cached frontiers,
a shard dropped during recovery, a result folded twice — each trip the
same checks the machine runs.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro import CouplingModel, DriverCell, TreeBuilder, default_technology
from repro.api import dp_result
from repro.batch import (
    BatchConfig,
    BatchOptimizer,
    SerialExecutor,
    load_checkpoint,
    load_sharded_checkpoint,
    merge_sharded_checkpoint,
)
from repro.batch import optimizer as optimizer_module
from repro.batch import sharding as sharding_module
from repro.batch.optimizer import _FOLDED
from repro.batch.resilience import WorkItemFailure
from repro.core import FrontierCache
from repro.core import eco as eco_module
from repro.units import FF, PS, UM
from repro.workloads import WorkloadConfig, population_specs

NETS = 8
WORKLOAD = WorkloadConfig(nets=NETS, seed=31)
SPECS = population_specs(WORKLOAD)
NAMES = [spec.name for spec in SPECS]


def fleet_config():
    return BatchConfig(max_buffers=4, keep_trees=False)


_EXPECTED = None


def expected_signatures():
    """The model: one clean serial run, computed once per session."""
    global _EXPECTED
    if _EXPECTED is None:
        report = BatchOptimizer(
            config=fleet_config(), workload=WORKLOAD
        ).optimize(SPECS)
        _EXPECTED = dict(zip(NAMES, report.signatures()))
    return _EXPECTED


class CountingSerialExecutor(SerialExecutor):
    """Serial executor that records which nets it actually computed —
    the probe for "resume recomputes exactly the missing nets"."""

    def __init__(self):
        self.computed = []

    def map(self, fn, items, on_result=None):
        def spy(index, value):
            if not isinstance(value, WorkItemFailure):
                self.computed.append(value.name)
            if on_result is not None:
                on_result(index, value)

        return super().map(fn, items, on_result=spy)


def eco_tree():
    """A small segmented chain with a stub — cheap enough to re-optimize
    inside a state-machine rule, branchy enough to exercise merges."""
    tech = default_technology()
    builder = TreeBuilder(tech)
    builder.add_source(
        "so",
        driver=DriverCell("drv", resistance=250.0, intrinsic_delay=30 * PS),
    )
    builder.add_internal("a")
    builder.add_wire("so", "a", length=900 * UM)
    builder.add_internal("b")
    builder.add_wire("a", "b", length=700 * UM)
    builder.add_sink(
        "s1", capacitance=15 * FF, noise_margin=0.8,
        required_arrival=1500 * PS,
    )
    builder.add_wire("b", "s1", length=600 * UM)
    builder.add_sink(
        "s2", capacitance=24 * FF, noise_margin=0.8,
        required_arrival=1800 * PS,
    )
    builder.add_wire("a", "s2", length=1100 * UM)
    return builder.build("eco_state")


def eco_result_key(result):
    outcome = result.best(require_noise=False)
    return (
        outcome.slack,
        outcome.buffer_count,
        tuple(sorted(
            (ins.node, ins.buffer.name) for ins in outcome.insertions
        )),
        result.candidates_generated,
        result.candidates_kept_peak,
    )


def check_eco_equivalence(tree, library, coupling, cache):
    """Shared check: a cached re-run must equal a cold run exactly."""
    cold = dp_result(tree, library, coupling)
    warm = dp_result(tree, library, coupling, frontier_cache=cache)
    assert eco_result_key(warm) == eco_result_key(cold), (
        "frontier-cache run diverged from cold run"
    )


def check_recovery(directory, library, expected):
    """Shared check: sharded recovery holds exactly the model."""
    recovery = load_sharded_checkpoint(directory, library)
    assert set(recovery.results) == set(expected), (
        "recovered nets differ from the model"
    )
    for name, signature in expected.items():
        assert recovery.results[name].signature() == signature, name


class FleetCheckpointMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.workdir = Path(tempfile.mkdtemp(prefix="fleet-state-"))
        self.directory = self.workdir / "fleet.ckpt"
        self.shards = 2
        self.completed = {}  # name -> signature, the journal's model
        self.merges = 0
        self.library = BatchOptimizer(
            config=fleet_config(), workload=WORKLOAD
        ).library
        self.coupling = CouplingModel.estimation_mode(default_technology())
        self.eco_tree = eco_tree()
        self.eco_cache = FrontierCache()
        # populate once so later edits exercise the reuse path
        dp_result(
            self.eco_tree, self.library, self.coupling,
            frontier_cache=self.eco_cache,
        )

    # -- fleet rules ---------------------------------------------------

    @rule(count=st.integers(min_value=1, max_value=NETS))
    def run_prefix(self, count):
        """(Re)run the first ``count`` nets; a prefix shorter than a
        previous one models a crash that lost the in-flight tail."""
        executor = CountingSerialExecutor()
        optimizer = BatchOptimizer(
            config=fleet_config(), workload=WORKLOAD, executor=executor
        )
        report = optimizer.optimize(
            SPECS[:count],
            checkpoint=self.directory,
            shards=self.shards,
            resume=True,
            stream_report=True,
        )
        expected_new = [
            name for name in NAMES[:count] if name not in self.completed
        ]
        assert executor.computed == expected_new, (
            "resume recomputed the wrong nets"
        )
        assert len(report) == count
        model = expected_signatures()
        for name in NAMES[:count]:
            self.completed[name] = model[name]

    @rule(new_shards=st.integers(min_value=1, max_value=6))
    def reshard(self, new_shards):
        """Topology is not part of the fingerprint: just start writing
        under a different count next run."""
        self.shards = new_shards

    @precondition(lambda self: self.directory.is_dir())
    @rule(victim=st.integers(min_value=0, max_value=63))
    def tear_shard_tail(self, victim):
        """SIGKILL mid-write: a torn half-record on some shard tail."""
        paths = sorted(self.directory.glob("shard-*.jsonl"))
        if not paths:
            return
        with paths[victim % len(paths)].open("a") as handle:
            handle.write('{"kind": "result", "name": "torn-mid-wri')

    @precondition(lambda self: bool(self.completed))
    @rule()
    def merge_to_single_journal(self):
        merged = self.workdir / f"merged-{self.merges}.jsonl"
        self.merges += 1
        merge_sharded_checkpoint(self.directory, merged)
        loaded = load_checkpoint(merged, self.library)
        assert set(loaded) == set(self.completed)
        for name, signature in self.completed.items():
            assert loaded[name].signature() == signature, name

    # -- ECO rules -----------------------------------------------------

    @rule(
        factor=st.sampled_from([0.8, 0.93, 1.0, 1.06, 1.3]),
        which=st.integers(min_value=0, max_value=31),
    )
    def eco_edit_and_rerun(self, factor, which):
        """Scale one wire in place, then demand the cached re-run match
        a cold run of the edited tree exactly."""
        wires = [
            node.parent_wire
            for node in self.eco_tree.postorder()
            if node.parent_wire is not None
        ]
        wire = wires[which % len(wires)]
        wire.resistance *= factor
        wire.capacitance *= factor
        check_eco_equivalence(
            self.eco_tree, self.library, self.coupling, self.eco_cache
        )

    # -- invariants ----------------------------------------------------

    @invariant()
    def journal_recovers_to_the_model(self):
        if self.completed and self.directory.is_dir():
            check_recovery(self.directory, self.library, self.completed)

    def teardown(self):
        shutil.rmtree(self.workdir, ignore_errors=True)


TestFleetCheckpointMachine = FleetCheckpointMachine.TestCase
# Derandomized: tier-1 gate policy — the suite must be reproducible.
TestFleetCheckpointMachine.settings = settings(
    max_examples=8,
    stateful_step_count=8,
    deadline=None,
    derandomize=True,
)


class TestPlantedMutants:
    """Re-introduce the three bugs this harness exists to catch and
    prove the shared checks reject each one."""

    def test_stale_cached_frontier_is_caught(self, library, coupling,
                                             monkeypatch):
        """Mutant: fingerprints keyed by node *name* only — edits no
        longer invalidate, so the cache serves pre-edit frontiers."""

        def name_only_fingerprints(tree, context):
            return {
                node.name: f"{context}:{node.name}"
                for node in tree.postorder()
            }

        monkeypatch.setattr(
            eco_module, "subtree_fingerprints", name_only_fingerprints
        )
        tree = eco_tree()
        cache = FrontierCache()
        dp_result(tree, library, coupling, frontier_cache=cache)
        victim = next(
            node for node in tree.postorder()
            if node.parent_wire is not None and not node.is_source
        )
        victim.parent_wire.resistance *= 6.0
        victim.parent_wire.capacitance *= 6.0
        with pytest.raises(AssertionError, match="diverged"):
            check_eco_equivalence(tree, library, coupling, cache)

    def test_dropped_shard_is_caught(self, tmp_path, monkeypatch):
        """Mutant: recovery silently skips the last shard file."""
        optimizer = BatchOptimizer(
            config=fleet_config(), workload=WORKLOAD
        )
        directory = tmp_path / "fleet.ckpt"
        optimizer.optimize(SPECS, checkpoint=directory, shards=4)
        model = expected_signatures()

        check_recovery(directory, optimizer.library, model)  # healthy

        real_paths = sharding_module._shard_paths
        monkeypatch.setattr(
            sharding_module,
            "_shard_paths",
            lambda directory: real_paths(directory)[:-1],
        )
        with pytest.raises(AssertionError, match="differ from the model"):
            check_recovery(directory, optimizer.library, model)

    def test_double_fold_is_caught(self, monkeypatch):
        """Mutant: the record hook folds failures on arrival, but parked
        failures fold again after the fallback pass — every failed net
        counts twice."""

        def buggy_run_pending(self, worker, units, pending, results,
                              journal, fold=None):
            def record(sub_index, value):
                index = pending[sub_index]
                if isinstance(value, WorkItemFailure):
                    value = self._wrap_sentinel(units[index], value)
                results[index] = value
                if journal is not None:
                    journal.append(value)
                self._observe_result(value)
                if fold is not None:
                    fold.fold(value)  # BUG: failures folded here AND later
                    if value.ok:
                        results[index] = _FOLDED

            payload = [units[index] for index in pending]
            self.executor.map(worker, payload, on_result=record)

        workload = WorkloadConfig(nets=10, seed=31)
        specs = population_specs(workload)
        config = BatchConfig(
            max_buffers=4, keep_trees=False, net_max_candidates=300
        )
        retained = BatchOptimizer(
            config=config, workload=workload
        ).optimize(specs)
        assert retained.failure_count > 0

        monkeypatch.setattr(
            optimizer_module.BatchOptimizer, "_run_pending",
            buggy_run_pending,
        )
        streamed = BatchOptimizer(
            config=config, workload=workload
        ).optimize(specs, stream_report=True)
        with pytest.raises(AssertionError):
            assert streamed.to_json()["nets"] == retained.to_json()["nets"]
            assert (
                streamed.failure_taxonomy() == retained.failure_taxonomy()
            )
