"""Property-based tests for the buffer-insertion algorithms."""

import math

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro import (
    BufferType,
    CouplingModel,
    DPOptions,
    InfeasibleError,
    analyze_noise,
    insert_buffers_multi_sink,
    insert_buffers_single_sink,
    run_dp,
    segment_tree,
)
from repro.core import max_safe_length, prune_noise_candidates, uniform_wire_noise
from repro.core.noise_multi import NoiseCandidate
from repro.library import single_buffer_library
from repro.timing import source_slack
from repro.units import FF, MM, PS
from treegen import TECH, random_chains, random_trees

COUPLING = CouplingModel.estimation_mode(TECH)
BUFFER = BufferType("pb", 120.0, 15 * FF, 25 * PS, 0.8)

default_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


class TestTheorem1Property:
    @default_settings
    @given(
        rb=st.floats(min_value=0.0, max_value=5000.0),
        big_i=st.floats(min_value=0.0, max_value=5e-3),
        slack=st.floats(min_value=1e-3, max_value=3.0),
        r=st.floats(min_value=1e3, max_value=5e5),
        i=st.floats(min_value=1e-3, max_value=5.0),
    )
    def test_lmax_is_exact_boundary(self, rb, big_i, slack, r, i):
        assume(slack >= rb * big_i)
        length = max_safe_length(rb, r, i, big_i, slack)
        assume(math.isfinite(length))
        # The quadratic solve cancels catastrophically for extreme
        # parameter ratios; allow ~1e-8 relative float dust.
        at_max = uniform_wire_noise(rb, r, i, length, big_i)
        assert at_max <= slack * (1 + 1e-8) + 1e-15
        beyond = uniform_wire_noise(rb, r, i, length * 1.01 + 1e-9, big_i)
        assert beyond > slack * (1 - 1e-8) - 1e-15


class TestAlgorithm1Properties:
    @default_settings
    @given(chain=random_chains())
    def test_result_is_noise_clean(self, chain):
        try:
            solution = insert_buffers_single_sink(chain, BUFFER, COUPLING)
        except InfeasibleError:
            assume(False)
        buffered, discrete = solution.realize()
        report = analyze_noise(buffered, COUPLING, discrete.buffer_map())
        assert not report.violated

    @default_settings
    @given(chain=random_chains())
    def test_minimality_certificate(self, chain):
        """Dropping any placed buffer must re-create a violation."""
        try:
            solution = insert_buffers_single_sink(chain, BUFFER, COUPLING)
        except InfeasibleError:
            assume(False)
        assume(solution.buffer_count > 0)
        buffered, discrete = solution.realize()
        full = dict(discrete.buffer_map())
        for name in full:
            reduced = {k: v for k, v in full.items() if k != name}
            assert analyze_noise(buffered, COUPLING, reduced).violated

    @default_settings
    @given(chain=random_chains())
    def test_agrees_with_algorithm2(self, chain):
        try:
            alg1 = insert_buffers_single_sink(chain, BUFFER, COUPLING)
            alg2 = insert_buffers_multi_sink(chain, BUFFER, COUPLING)
        except InfeasibleError:
            assume(False)
        assert alg1.buffer_count == alg2.buffer_count


class TestAlgorithm2Properties:
    @default_settings
    @given(tree=random_trees())
    def test_result_is_noise_clean(self, tree):
        try:
            solution = insert_buffers_multi_sink(tree, BUFFER, COUPLING)
        except InfeasibleError:
            assume(False)
        buffered, discrete = solution.realize()
        assert not analyze_noise(
            buffered, COUPLING, discrete.buffer_map()
        ).violated

    @default_settings
    @given(tree=random_trees())
    def test_clean_input_needs_no_buffers(self, tree):
        assume(not analyze_noise(tree, COUPLING).violated)
        solution = insert_buffers_multi_sink(tree, BUFFER, COUPLING)
        assert solution.buffer_count == 0


class TestDPProperties:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.filter_too_much])
    @given(tree=random_trees(max_internal=3, with_rats=True),
           cut=st.floats(min_value=0.4, max_value=1.5))
    def test_outcome_slack_matches_independent_analysis(self, tree, cut):
        library = single_buffer_library(BUFFER)
        segmented = segment_tree(tree, cut * MM)
        result = run_dp(segmented, library, CouplingModel.silent())
        for outcome in result.outcomes:
            solution = result.solution(outcome)
            analyzed = source_slack(segmented, solution.buffer_map())
            assert math.isclose(outcome.slack, analyzed,
                                rel_tol=1e-9, abs_tol=1e-18)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.filter_too_much])
    @given(tree=random_trees(max_internal=3, with_rats=True),
           cut=st.floats(min_value=0.4, max_value=1.5))
    def test_noise_aware_outcomes_clean(self, tree, cut):
        library = single_buffer_library(BUFFER)
        segmented = segment_tree(tree, cut * MM)
        result = run_dp(
            segmented, library, COUPLING, DPOptions(noise_aware=True)
        )
        for outcome in result.outcomes:
            solution = result.solution(outcome)
            assert not analyze_noise(
                segmented, COUPLING, solution.buffer_map()
            ).violated

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.filter_too_much])
    @given(tree=random_trees(max_internal=3, with_rats=True))
    def test_noise_aware_never_beats_delay_only(self, tree):
        """Constraints can only cost slack, never gain it."""
        library = single_buffer_library(BUFFER)
        segmented = segment_tree(tree, 0.8 * MM)
        plain = run_dp(segmented, library, CouplingModel.silent())
        try:
            noisy = run_dp(
                segmented, library, COUPLING, DPOptions(noise_aware=True)
            )
            best_noisy = noisy.best()
        except InfeasibleError:
            assume(False)
        assert best_noisy.slack <= plain.best(require_noise=False).slack + 1e-12


class TestWireSizingProperties:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.filter_too_much])
    @given(tree=random_trees(max_internal=3, with_rats=True),
           cut=st.floats(min_value=0.5, max_value=1.5))
    def test_sized_outcome_matches_realized_analysis(self, tree, cut):
        """On random trees, the sizing DP's slack equals the independent
        Elmore analysis of the realized (resized) tree."""
        from repro.core import WireSizingSpec

        library = single_buffer_library(BUFFER)
        segmented = segment_tree(tree, cut * MM)
        spec = WireSizingSpec(widths=(1.0, 2.0), area_fraction=0.6)
        result = run_dp(
            segmented, library, CouplingModel.silent(),
            DPOptions(sizing=spec),
        )
        for outcome in result.outcomes:
            resized, solution = result.sized_solution(outcome)
            analyzed = source_slack(resized, solution.buffer_map())
            assert math.isclose(outcome.slack, analyzed,
                                rel_tol=1e-9, abs_tol=1e-18)


class TestEngineStatsProperties:
    """Invariants of the telemetry collector (Section V-B made testable)."""

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.filter_too_much])
    @given(tree=random_trees(max_internal=3, with_rats=True),
           cut=st.floats(min_value=0.4, max_value=1.5),
           noise_aware=st.booleans())
    def test_accounting_invariants(self, tree, cut, noise_aware):
        library = single_buffer_library(BUFFER)
        segmented = segment_tree(tree, cut * MM)
        result = run_dp(
            segmented, library, COUPLING,
            DPOptions(noise_aware=noise_aware, collect_stats=True),
        )
        stats = result.stats
        assert stats is not None
        # Pruned (and dead-dropped) candidates were all generated first.
        assert stats.candidates_pruned <= stats.candidates_generated
        assert (stats.candidates_pruned + stats.candidates_dead
                <= stats.candidates_generated)
        assert stats.candidates_kept >= 0
        # Telemetry agrees with the engine's own counters.
        assert stats.candidates_generated == result.candidates_generated
        assert stats.frontier_peak == result.candidates_kept_peak
        # One record per tree node, each internally consistent.
        assert len(stats.nodes) == sum(1 for _ in segmented.nodes())
        assert sum(n.generated for n in stats.nodes) == stats.candidates_generated
        assert sum(n.pruned for n in stats.nodes) == stats.candidates_pruned
        assert sum(n.dead for n in stats.nodes) == stats.candidates_dead
        if result.outcomes:
            # A feasible run means no node's frontier ever died out.
            assert all(n.frontier >= 1 for n in stats.nodes)
        if not noise_aware:
            assert stats.candidates_dead == 0

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.filter_too_much])
    @given(tree=random_trees(max_internal=3, with_rats=True),
           cut=st.floats(min_value=0.4, max_value=1.5))
    def test_collection_never_changes_results(self, tree, cut):
        library = single_buffer_library(BUFFER)
        segmented = segment_tree(tree, cut * MM)
        options = DPOptions(noise_aware=True, track_counts=True)
        plain = run_dp(segmented, library, COUPLING, options)
        instrumented = run_dp(
            segmented, library, COUPLING,
            DPOptions(noise_aware=True, track_counts=True,
                      collect_stats=True),
        )
        assert plain.outcomes == instrumented.outcomes
        assert plain.candidates_generated == instrumented.candidates_generated
        assert plain.candidates_kept_peak == instrumented.candidates_kept_peak

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.filter_too_much])
    @given(tree=random_trees(max_internal=3, with_rats=True),
           cut=st.floats(min_value=0.4, max_value=1.5))
    def test_timing_prune_generates_no_more_than_pareto(self, tree, cut):
        """The paper's Theorem-5 (C, q) pruning keeps a subset of the
        4-field Pareto frontier at every node, so the noise-aware run
        generates no more candidates than its prune="pareto" ablation."""
        library = single_buffer_library(BUFFER)
        segmented = segment_tree(tree, cut * MM)
        timing = run_dp(
            segmented, library, COUPLING, DPOptions(noise_aware=True)
        )
        pareto = run_dp(
            segmented, library, COUPLING,
            DPOptions(noise_aware=True, prune="pareto"),
        )
        assert timing.candidates_generated <= pareto.candidates_generated


class TestPruneProperties:
    candidates = st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=10.0),
            st.floats(min_value=0.0, max_value=2.0),
            st.integers(min_value=0, max_value=4),
        ),
        min_size=0,
        max_size=30,
    )

    @staticmethod
    def _build(raw):
        from repro.core._chain import Chain
        from repro.core.solution import PlacedBuffer

        out = []
        for current, slack, count in raw:
            chain = None
            for k in range(count):
                chain = Chain.push(
                    chain, PlacedBuffer("a", "b", float(k), BUFFER)
                )
            out.append(NoiseCandidate(current, slack, chain))
        return out

    @default_settings
    @given(raw=candidates)
    def test_prune_matches_naive_pareto(self, raw):
        pool = self._build(raw)
        kept = prune_noise_candidates(pool)

        def dominated(c, by):
            return (
                by.current <= c.current
                and by.slack >= c.slack
                and by.count <= c.count
                and (by.current, -by.slack, by.count)
                != (c.current, -c.slack, c.count)
            )

        # every kept candidate is non-dominated within the original pool
        for cand in kept:
            assert not any(dominated(cand, other) for other in kept
                           if other is not cand)
        # every dropped candidate is dominated (or a duplicate) of a kept one
        kept_keys = [(c.current, c.slack, c.count) for c in kept]
        for cand in pool:
            key = (cand.current, cand.slack, cand.count)
            if key in kept_keys:
                continue
            assert any(
                other.current <= cand.current
                and other.slack >= cand.slack
                and other.count <= cand.count
                for other in kept
            )
