"""Stateful property test for the service's checkpoint/resume/cache spine.

A :class:`~hypothesis.stateful.RuleBasedStateMachine` drives a real
journal-backed :class:`~repro.service.OptimizationService` through
arbitrary interleavings of submits, cache resubmits, crash-restarts
(with and without a torn journal tail), and graceful drains, against a
plain-dict model of "every answer the service has ever given".  The
invariants under any sequence:

* a net's deterministic ``result`` payload never changes — not across
  resubmits, not across restarts, not across torn tails;
* after a restart, the warm cache holds exactly the model (every
  journalled answer, nothing else);
* a restarted service keeps every promise: work accepted before the
  crash finishes and matches what a clean run produces.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.batch.resilience import RetryPolicy
from repro.service import (
    OptimizationService,
    ServiceConfig,
    ServiceJournal,
    parse_request,
    tear_journal_tail,
)
from repro.units import MM

#: the small fixed net pool the machine draws from (tiny on purpose —
#: the state machine explores lifecycle interleavings, not the DP).
NET_POOL = [
    {
        "name": f"state-{index}",
        "sink_count": 2 + index % 2,
        "span": (1.0 + 0.5 * index) * MM,
        "seed": 11 + index,
    }
    for index in range(4)
]


def _payload(index, wait=True):
    return {"net": dict(NET_POOL[index]), "wait": wait}


class ServiceJournalMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.workdir = Path(tempfile.mkdtemp(prefix="buffopt-stateful-"))
        self.journal = self.workdir / "service.jsonl"
        #: net name -> the deterministic result payload, forever.
        self.model = {}
        #: fingerprints promised (accepted-journalled) but whose result
        #: the model hasn't seen yet.
        self.promised = []
        self.restarts = 0
        self.service = self._boot()

    def _boot(self):
        return OptimizationService(ServiceConfig(
            workers=1,
            queue_limit=16,
            supervision="inline",
            retry=RetryPolicy(max_attempts=1),
            journal_path=self.journal,
            journal_fsync=False,  # flush-only is the same-machine story
            wait_timeout=30.0,
        )).start()

    # -- rules -------------------------------------------------------------

    @rule(index=st.integers(min_value=0, max_value=len(NET_POOL) - 1))
    def submit(self, index):
        status, body = self.service.submit(_payload(index))
        assert status == 200
        assert body["result"]["ok"] is True
        name = NET_POOL[index]["name"]
        if name in self.model:
            assert body["result"] == self.model[name]
        else:
            self.model[name] = body["result"]

    @rule(index=st.integers(min_value=0, max_value=len(NET_POOL) - 1))
    def journal_a_promise(self, index):
        """An accepted record with no result: in-flight work at a crash."""
        request = parse_request(_payload(index))
        side = ServiceJournal.append_to(self.journal)
        side.record_accepted(request.fingerprint(), request, "job-side")
        side.close()
        self.promised.append(index)

    def _restart_checks(self):
        """Shared post-restart assertions + promise absorption."""
        self.restarts += 1
        # the warm cache is exactly the journalled answers.
        assert self.service.recovered_results == len(self.model)
        # every promise is re-enqueued (unless its answer already
        # landed, in which case it is cache, not pending).
        expected_pending = sorted({
            NET_POOL[index]["name"]
            for index in self.promised
            if NET_POOL[index]["name"] not in self.model
        })
        assert self.service.recovered_jobs == len(expected_pending)
        # the restarted server keeps the promises in the background;
        # fold their answers into the model once kept, so the next
        # restart's recovered_results accounting stays exact.
        deadline = time.monotonic() + 30.0
        for name in expected_pending:
            index = next(
                i for i, net in enumerate(NET_POOL) if net["name"] == name
            )
            fingerprint = parse_request(_payload(index)).fingerprint()
            while self.service._cache.peek(fingerprint) is None:
                assert time.monotonic() < deadline, (
                    f"recovered job for {name} never finished"
                )
                time.sleep(0.01)
            self.model[name] = self.service._cache.peek(
                fingerprint
            )["result"]

    @rule(torn=st.booleans())
    def crash_and_restart(self, torn):
        old = self.service
        if torn:
            tear_journal_tail(self.journal)
        self.service = self._boot()
        self._restart_checks()
        # reap the abandoned incarnation's worker threads; its journal
        # handle is stale but the new service owns the file now.
        old.drain(timeout=10.0)

    @rule()
    def graceful_drain_and_restart(self):
        assert self.service.drain(timeout=10.0) is True
        self.service = self._boot()
        self._restart_checks()

    @precondition(lambda self: self.model)
    @rule()
    def resubmit_known_net_hits_cache(self):
        name = sorted(self.model)[0]
        index = next(
            i for i, net in enumerate(NET_POOL) if net["name"] == name
        )
        status, body = self.service.submit(_payload(index))
        assert status == 200
        assert body["result"] == self.model[name]

    # -- invariants --------------------------------------------------------

    @invariant()
    def promises_resolve_to_model_answers(self):
        # any promised net the service has since answered must agree
        # with the model (the recovered path and the submit path are
        # the same computation).
        for index in set(self.promised):
            name = NET_POOL[index]["name"]
            if name in self.model:
                request = parse_request(_payload(index))
                cached = self.service._cache.peek(request.fingerprint())
                if cached is not None:
                    assert cached["result"] == self.model[name]

    def teardown(self):
        self.service.drain(timeout=10.0)
        shutil.rmtree(self.workdir, ignore_errors=True)


TestServiceJournalMachine = ServiceJournalMachine.TestCase
# derandomize: the tier-1 gate replays a fixed set of sequences (this
# machine already earned its keep — it caught the two-writer O_APPEND
# journal bug); open-ended exploration belongs to the nightly fuzz job.
TestServiceJournalMachine.settings = settings(
    max_examples=12,
    stateful_step_count=10,
    deadline=None,
    derandomize=True,
)
