"""Property-based tests for structural transforms and the DP merge."""

import math

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro import Aggressor, BufferType, CouplingModel, segment_tree
from repro.core import ContinuousSolution, PlacedBuffer
from repro.core.dp import DPCandidate, DPOptions, _Engine
from repro.library import BufferLibrary, DriverCell
from repro.noise import apply_aggressor_windows, uniform_window
from repro.noise.windows import AggressorWindow
from repro.units import FF, MM, PS
from treegen import TECH, random_trees

default_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

BUFFER = BufferType("pb", 120.0, 15 * FF, 25 * PS, 0.8)


def make_engine(prune="timing"):
    return _Engine(
        tree=None,  # merge/prune don't touch the tree
        library=BufferLibrary([BUFFER]),
        coupling=CouplingModel.silent(),
        options=DPOptions(prune=prune),
        driver=DriverCell("d", 100.0),
    )


def frontier(raw):
    """Build a load-sorted pruned frontier from raw (load, slack) pairs."""
    candidates = [
        DPCandidate(load, slack, 0.0, 1.0, 0, None) for load, slack in raw
    ]
    return _Engine._prune_timing(candidates)


class TestLinearMergeProperty:
    pairs = st.lists(
        st.tuples(
            st.floats(min_value=1e-15, max_value=1e-12),
            st.floats(min_value=-1e-9, max_value=1e-9),
        ),
        min_size=1,
        max_size=12,
    )

    @default_settings
    @given(left=pairs, right=pairs)
    def test_merge_covers_cartesian_frontier(self, left, right):
        """The |L|+|R| linear merge must dominate every Cartesian pair:
        for any (a, b), some merged candidate has load <= a.load+b.load
        and slack >= min(a.slack, b.slack)."""
        lf, rf = frontier(left), frontier(right)
        engine = make_engine()
        merged = _Engine._prune_timing(engine._linear_merge(lf, rf))
        for a in lf:
            for b in rf:
                load = a.load + b.load
                slack = min(a.slack, b.slack)
                assert any(
                    m.load <= load + 1e-24 and m.slack >= slack - 1e-18
                    for m in merged
                ), (load, slack)

    @default_settings
    @given(left=pairs, right=pairs)
    def test_merged_candidates_are_realizable_pairs(self, left, right):
        """Every merged candidate equals some Cartesian combination."""
        lf, rf = frontier(left), frontier(right)
        engine = make_engine()
        merged = engine._linear_merge(lf, rf)
        cartesian = {
            (round(a.load + b.load, 24), round(min(a.slack, b.slack), 18))
            for a in lf
            for b in rf
        }
        for m in merged:
            assert (round(m.load, 24), round(m.slack, 18)) in cartesian


class TestContinuousRealizeProperties:
    @default_settings
    @given(
        tree=random_trees(max_internal=3),
        data=st.data(),
    )
    def test_realize_preserves_totals(self, tree, data):
        wires = [w for w in tree.wires() if w.length > 0]
        assume(wires)
        placements = []
        for index in range(data.draw(st.integers(min_value=1, max_value=3))):
            wire = data.draw(st.sampled_from(wires))
            distance = data.draw(
                st.floats(min_value=0.0, max_value=wire.length)
            )
            placements.append(
                PlacedBuffer(wire.parent.name, wire.child.name,
                             distance, BUFFER)
            )
        buffered, solution = ContinuousSolution(
            tree, tuple(placements)
        ).realize()
        assert solution.buffer_count == len(placements)
        assert math.isclose(
            buffered.total_wire_length(), tree.total_wire_length(),
            rel_tol=1e-9, abs_tol=1e-18,
        )
        total_r = sum(w.resistance for w in buffered.wires())
        orig_r = sum(w.resistance for w in tree.wires())
        assert math.isclose(total_r, orig_r, rel_tol=1e-9, abs_tol=1e-18)


class TestWindowProperties:
    @default_settings
    @given(
        tree=random_trees(max_internal=3),
        data=st.data(),
    )
    def test_window_charge_conservation(self, tree, data):
        """Total stamped current equals eq. 6 summed over the windows."""
        wires = [w for w in tree.wires() if w.length > 0]
        assume(wires)
        windows = []
        expected = 0.0
        for _ in range(data.draw(st.integers(min_value=1, max_value=3))):
            wire = data.draw(st.sampled_from(wires))
            a = data.draw(st.floats(min_value=0.0, max_value=wire.length * 0.9))
            b = data.draw(st.floats(min_value=a + wire.length * 0.05,
                                    max_value=wire.length))
            ratio = data.draw(st.floats(min_value=0.05, max_value=1.0))
            slope = data.draw(st.floats(min_value=1e9, max_value=1e10))
            windows.append(
                AggressorWindow(wire.parent.name, wire.child.name, a, b,
                                Aggressor(ratio, slope))
            )
            expected += ratio * slope * wire.capacitance * (b - a) / wire.length
        out = apply_aggressor_windows(tree, windows)
        total = sum(w.current or 0.0 for w in out.wires())
        # The stamp is applied per split segment, and the float segment
        # lengths need not sum to exactly (b - a) — allow a few orders of
        # magnitude of headroom over the ~1e-9 relative error that window
        # splitting can legitimately accumulate.
        assert math.isclose(total, expected, rel_tol=1e-7, abs_tol=1e-15)

    @default_settings
    @given(tree=random_trees(max_internal=3))
    def test_full_windows_match_estimation_mode(self, tree):
        """Covering every wire with the estimation-mode aggressor gives
        the same noise as estimation mode itself."""
        from repro.noise import sink_noise

        coupling = CouplingModel.estimation_mode(TECH)
        agg = Aggressor(coupling.coupling_ratio, coupling.slope)
        windows = [
            uniform_window(tree, w.parent.name, w.child.name, agg)
            for w in tree.wires()
            if w.length > 0
        ]
        assume(windows)
        covered = apply_aggressor_windows(tree, windows)
        a = {e.node: e.noise for e in sink_noise(tree, coupling)}
        b = {e.node: e.noise
             for e in sink_noise(covered, CouplingModel.silent())}
        for name, value in a.items():
            # zero-length wires are silent in the windowed tree; their
            # contribution in estimation mode is also zero (C = 0)
            assert math.isclose(b[name], value, rel_tol=1e-9, abs_tol=1e-15)
