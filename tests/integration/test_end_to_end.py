"""End-to-end integration tests: the full pipeline on realistic nets.

These tie every subsystem together the way the paper's tool flow does:
workload -> Steiner tree -> segmentation -> optimization -> metric
verification -> detailed transient verification -> timing comparison.
"""

import math

import pytest

from repro import (
    analyze_noise,
    buffopt_min_buffers,
    insert_buffers_multi_sink,
    segment_tree,
)
from repro.analysis import DetailedNoiseAnalyzer, assess_net
from repro.core import best_within_count, delay_opt_result
from repro.timing import max_sink_delay, meets_timing


@pytest.fixture(scope="module")
def pipeline():
    from repro.experiments import default_experiment

    experiment = default_experiment(nets=25, seed=777)
    analyzer = DetailedNoiseAnalyzer.estimation_mode(experiment.technology)
    return experiment, analyzer


class TestFullPipeline:
    def test_buffopt_fixes_every_net_and_keeps_timing(self, pipeline):
        experiment, analyzer = pipeline
        for net in experiment.nets:
            tree = segment_tree(net.tree, experiment.max_segment_length)
            solution = buffopt_min_buffers(
                tree, experiment.library, experiment.coupling
            )
            # metric-clean
            assert not analyze_noise(
                tree, experiment.coupling, solution.buffer_map()
            ).violated, net.name
            # timing preserved (the workload guarantees feasibility)
            assert meets_timing(tree, solution.buffer_map()), net.name
            # bounded effort
            assert solution.buffer_count <= 6, net.name

    def test_detailed_verifier_agrees_on_sample(self, pipeline):
        experiment, analyzer = pipeline
        for net in experiment.nets[:8]:
            tree = segment_tree(net.tree, experiment.max_segment_length)
            solution = buffopt_min_buffers(
                tree, experiment.library, experiment.coupling
            )
            assessment = assess_net(
                tree, experiment.coupling, analyzer, solution.buffer_map()
            )
            assert not assessment.detailed_violated, net.name
            assert assessment.metric_is_upper_bound, net.name

    def test_algorithm2_and_buffopt_counts_compatible(self, pipeline):
        """The continuous optimum lower-bounds the discrete Problem-3
        count on every workload net."""
        experiment, _ = pipeline
        for net in experiment.nets[:10]:
            continuous = insert_buffers_multi_sink(
                net.tree, experiment.library, experiment.coupling
            )
            tree = segment_tree(net.tree, experiment.max_segment_length)
            discrete = buffopt_min_buffers(
                tree, experiment.library, experiment.coupling
            )
            assert discrete.buffer_count >= continuous.buffer_count, net.name
            assert discrete.buffer_count <= continuous.buffer_count + 2, net.name

    def test_delay_penalty_small_across_sample(self, pipeline):
        experiment, _ = pipeline
        penalties = []
        for net in experiment.nets[:12]:
            tree = segment_tree(net.tree, experiment.max_segment_length)
            buffered = buffopt_min_buffers(
                tree, experiment.library, experiment.coupling
            )
            if buffered.buffer_count == 0:
                continue
            matched = best_within_count(
                delay_opt_result(
                    tree, experiment.library,
                    max_buffers=buffered.buffer_count,
                ),
                buffered.buffer_count,
            )
            d_buff = max_sink_delay(tree, buffered.buffer_map())
            d_best = max_sink_delay(tree, matched.buffer_map())
            assert d_best <= d_buff + 1e-15
            penalties.append((d_buff - d_best) / d_best)
        assert penalties
        assert sum(penalties) / len(penalties) < 0.05

    def test_delayopt_leaves_violations_somewhere(self, pipeline):
        """Theorem 2 at population level: delay-only optimization leaves
        at least one noisy net at small k."""
        experiment, _ = pipeline
        noisy = 0
        for net in experiment.nets:
            tree = segment_tree(net.tree, experiment.max_segment_length)
            result = delay_opt_result(tree, experiment.library, max_buffers=1)
            solution = best_within_count(result, 1)
            if analyze_noise(
                tree, experiment.coupling, solution.buffer_map()
            ).violated:
                noisy += 1
        assert noisy > 0


class TestLargeNet:
    def test_32_sink_net_end_to_end(self, pipeline):
        """A 32-sink Steiner net through the full flow: segment, BuffOpt,
        stage decomposition, metric + transient verification."""
        import numpy as np

        from repro import DriverCell, SinkSite, steiner_tree
        from repro.core import decompose_stages
        from repro.units import FF, MM, NS

        experiment, analyzer = pipeline
        rng = np.random.default_rng(2024)
        sites = [
            SinkSite(
                f"s{i}",
                (float(rng.uniform(0, 10 * MM)),
                 float(rng.uniform(0, 10 * MM))),
                capacitance=float(rng.uniform(5, 40)) * FF,
                noise_margin=0.8,
                required_arrival=5 * NS,
            )
            for i in range(32)
        ]
        tree = steiner_tree(
            experiment.technology, (5 * MM, 5 * MM), sites,
            driver=DriverCell("drv_big", 90.0, 28e-12), name="big32",
        )
        tree = segment_tree(tree, experiment.max_segment_length)
        solution = buffopt_min_buffers(
            tree, experiment.library, experiment.coupling
        )
        assert not analyze_noise(
            tree, experiment.coupling, solution.buffer_map()
        ).violated
        assert meets_timing(tree, solution.buffer_map())

        stages = decompose_stages(tree, solution.buffer_map())
        assert len(stages) == solution.buffer_count + 1
        stage_wires = sum(len(s.wires) for s in stages)
        assert stage_wires == sum(1 for _ in tree.wires())

        detailed = analyzer.analyze(tree, solution.buffer_map())
        assert not detailed.violated


class TestDeterministicPipeline:
    def test_two_runs_identical(self):
        from repro.experiments import default_experiment, run_population

        a = run_population(default_experiment(nets=8, seed=5))
        b = run_population(default_experiment(nets=8, seed=5))
        for ra, rb in zip(a.records, b.records):
            assert ra.buffopt_count == rb.buffopt_count
            assert math.isclose(ra.buffopt_delay, rb.buffopt_delay)
            assert ra.delayopt[2].buffer_count == rb.delayopt[2].buffer_count
