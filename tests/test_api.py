"""The repro.api facade: Session, dp_result, and the deprecation shims."""

import pytest

import repro
from repro.api import OptimizeResult, Session, SessionOptions, dp_result
from repro.core.noise_delay import buffopt_result
from repro.core.van_ginneken import delay_opt_result
from repro.obs import MetricsRegistry, Tracer, parse_prometheus, read_events


def test_facade_is_reexported_from_package_root():
    assert repro.Session is Session
    assert repro.SessionOptions is SessionOptions
    assert repro.OptimizeResult is OptimizeResult
    assert repro.dp_result is dp_result


# -- dp_result -------------------------------------------------------------


def test_dp_result_rejects_unknown_mode(y_tree, library, coupling):
    with pytest.raises(ValueError, match="unknown mode"):
        dp_result(y_tree, library, coupling, mode="noise")


def test_dp_result_buffopt_requires_coupling(y_tree, library):
    with pytest.raises(ValueError, match="requires a coupling model"):
        dp_result(y_tree, library, mode="buffopt")


def test_dp_result_delay_mode_ignores_coupling(y_tree, library, coupling):
    with_coupling = dp_result(y_tree, library, coupling, mode="delay")
    without = dp_result(y_tree, library, mode="delay")
    assert with_coupling.outcomes == without.outcomes


# -- deprecation shims -----------------------------------------------------


@pytest.mark.parametrize("engine", ["reference", "fast"])
def test_buffopt_shim_parity(y_tree, library, coupling, engine):
    with pytest.warns(DeprecationWarning, match="buffopt_result"):
        legacy = buffopt_result(
            y_tree, library, coupling, max_buffers=4, engine=engine
        )
    modern = dp_result(
        y_tree, library, coupling, mode="buffopt", max_buffers=4,
        engine=engine,
    )
    assert legacy.outcomes == modern.outcomes
    assert legacy.candidates_generated == modern.candidates_generated


@pytest.mark.parametrize("engine", ["reference", "fast"])
def test_delay_opt_shim_parity(y_tree, library, engine):
    with pytest.warns(DeprecationWarning, match="delay_opt_result"):
        legacy = delay_opt_result(
            y_tree, library, max_buffers=4, engine=engine
        )
    modern = dp_result(
        y_tree, library, mode="delay", max_buffers=4, engine=engine
    )
    assert legacy.outcomes == modern.outcomes
    assert legacy.candidates_generated == modern.candidates_generated


# -- SessionOptions validation ---------------------------------------------


def test_session_options_validation():
    with pytest.raises(ValueError, match="unknown mode"):
        SessionOptions(mode="noise")
    with pytest.raises(ValueError, match="unknown engine"):
        SessionOptions(engine="turbo")
    with pytest.raises(ValueError, match="unknown prune rule"):
        SessionOptions(prune="aggressive")
    with pytest.raises(ValueError, match="max_segment_length"):
        SessionOptions(max_segment_length=0.0)
    # None disables segmentation and is valid
    SessionOptions(max_segment_length=None)


# -- Session ---------------------------------------------------------------


def test_session_optimize_buffopt(y_tree, library, coupling, tech):
    with Session(
        SessionOptions(mode="buffopt", max_buffers=8),
        library=library, coupling=coupling, technology=tech,
    ) as session:
        outcome = session.optimize(y_tree)
    assert outcome.mode == "buffopt"
    assert outcome.noise_feasible
    assert outcome.buffer_count >= 0
    assert outcome.seconds > 0.0
    solution = outcome.solution()
    assert solution.buffer_count == outcome.buffer_count
    assert "buffer(s)" in outcome.describe()


def test_session_optimize_delay_matches_raw_dp(y_tree, library, tech):
    options = SessionOptions(
        mode="delay", engine="fast", max_segment_length=None
    )
    with Session(options, library=library, technology=tech) as session:
        outcome = session.optimize(y_tree)
    raw = dp_result(y_tree, library, mode="delay", engine="fast")
    assert outcome.result.outcomes == raw.outcomes
    assert outcome.tree is y_tree  # segmentation disabled: same tree
    assert outcome.slack == raw.best(require_noise=False).slack


def test_session_meters_optimize_calls(y_tree, library, coupling):
    with Session(
        SessionOptions(mode="buffopt"), library=library, coupling=coupling
    ) as session:
        session.optimize(y_tree)
        session.optimize(y_tree)
        nets = session.metrics.get("buffopt_session_nets_total")
        assert nets.value(
            mode="buffopt", engine="reference", status="ok"
        ) == 2
        seconds = session.metrics.get("buffopt_session_optimize_seconds")
        assert seconds.count(mode="buffopt", engine="reference") == 2


def test_session_profile_phases(y_tree, library, coupling):
    with Session(
        SessionOptions(mode="buffopt", profile_phases=True),
        library=library, coupling=coupling,
    ) as session:
        profiled = session.optimize(y_tree)
    assert profiled.phase_seconds is not None
    assert set(profiled.phase_seconds) == {
        "merge", "buffering", "wire", "prune"
    }
    # profiling never changes the arithmetic
    with Session(
        SessionOptions(mode="buffopt"), library=library, coupling=coupling
    ) as session:
        plain = session.optimize(y_tree)
    assert plain.phase_seconds is None
    assert plain.result.outcomes == profiled.result.outcomes


def test_session_writes_trace_and_metrics_files(
        tmp_path, y_tree, library, coupling):
    trace = tmp_path / "session.jsonl"
    prom = tmp_path / "session.prom"
    options = SessionOptions(
        mode="buffopt", trace_path=str(trace), metrics_path=str(prom)
    )
    with Session(options, library=library, coupling=coupling) as session:
        session.optimize(y_tree)

    spans = [r for r in read_events(trace) if r["type"] == "span"]
    assert [s["name"] for s in spans] == ["session.optimize"]
    assert spans[0]["attributes"]["net"] == y_tree.name
    assert spans[0]["duration"] > 0.0

    samples = parse_prometheus(prom.read_text())
    key = (("engine", "reference"), ("mode", "buffopt"), ("status", "ok"))
    assert samples["buffopt_session_nets_total"][key] == 1


def test_session_external_tracer_not_closed(y_tree, library, coupling):
    tracer = Tracer()
    metrics = MetricsRegistry()
    with Session(
        SessionOptions(mode="delay"),
        library=library, coupling=coupling,
        tracer=tracer, metrics=metrics,
    ) as session:
        assert session.metrics is metrics
        session.optimize(y_tree)
    # the session must not close instrumentation it does not own
    with tracer.span("still-usable"):
        pass
    tracer.close()
    assert [s.name for s in tracer.spans] == [
        "session.optimize", "still-usable"
    ]


def test_session_traced_run_is_bit_identical(
        tmp_path, y_tree, library, coupling):
    options = dict(mode="buffopt", max_buffers=6)
    with Session(
        SessionOptions(**options), library=library, coupling=coupling
    ) as session:
        untraced = session.optimize(y_tree)
    with Session(
        SessionOptions(
            **options,
            trace_path=str(tmp_path / "t.jsonl"),
            profile_phases=True,
        ),
        library=library, coupling=coupling,
    ) as session:
        traced = session.optimize(y_tree)
    assert untraced.result.outcomes == traced.result.outcomes
    assert untraced.buffer_count == traced.buffer_count
    assert (
        untraced.result.candidates_generated
        == traced.result.candidates_generated
    )
