"""Tests for repro.circuit.transient — backward Euler vs analytic RC."""

import math

import numpy as np
import pytest

from repro import SimulationError
from repro.circuit import (
    Circuit,
    PiecewiseLinear,
    dc_operating_point,
    simulate,
)


def rc_step_circuit(r=1000.0, c=1e-12, vdd=1.0):
    circuit = Circuit()
    circuit.add_voltage_source("in", "0", PiecewiseLinear((0.0,), (vdd,)))
    circuit.add_resistor("in", "out", r)
    circuit.add_capacitor("out", "0", c)
    return circuit


class TestRCStep:
    def test_matches_analytic_exponential(self):
        r, c, vdd = 1000.0, 1e-12, 1.0
        tau = r * c
        result = simulate(rc_step_circuit(r, c, vdd), stop=5 * tau,
                          step=tau / 200, probes=["out"])
        wave = result["out"]
        for frac in (0.5, 1.0, 2.0, 4.0):
            t = frac * tau
            expected = vdd * (1.0 - math.exp(-t / tau))
            assert math.isclose(wave.at(t), expected, rel_tol=2e-2), frac

    def test_converges_first_order_in_step(self):
        """Halving the step roughly halves the error (backward Euler)."""
        r, c = 1000.0, 1e-12
        tau = r * c
        errors = []
        for divisor in (20, 40, 80):
            result = simulate(rc_step_circuit(r, c), stop=2 * tau,
                              step=tau / divisor, probes=["out"])
            t = tau
            expected = 1.0 - math.exp(-1.0)
            errors.append(abs(result["out"].at(t) - expected))
        assert errors[0] > errors[1] > errors[2]
        assert errors[0] / errors[2] > 2.5  # ~4x for first order

    def test_settles_to_dc(self):
        result = simulate(rc_step_circuit(), stop=20e-9, step=0.05e-9,
                          probes=["out"])
        assert math.isclose(result["out"].final, 1.0, rel_tol=1e-3)

    def test_no_overshoot(self):
        """Backward Euler on a monotone RC response never overshoots."""
        result = simulate(rc_step_circuit(), stop=10e-9, step=0.1e-9,
                          probes=["out"])
        assert result["out"].peak <= 1.0 + 1e-12


class TestCoupledNoise:
    def test_ramp_coupling_peak_below_devgan_bound(self):
        """A single coupled segment: the transient peak must sit below the
        Devgan estimate R * I (with I = C_c * slope)."""
        r_drv, c_couple, c_gnd = 500.0, 40e-15, 20e-15
        slope = 7.2e9
        vdd = 1.8
        circuit = Circuit()
        circuit.add_voltage_source(
            "aggr", "0", PiecewiseLinear.ramp(vdd, vdd / slope)
        )
        circuit.add_resistor("victim", "0", r_drv)
        circuit.add_capacitor("victim", "aggr", c_couple)
        circuit.add_capacitor("victim", "0", c_gnd)
        rise = vdd / slope
        result = simulate(circuit, stop=rise * 8, step=rise / 200,
                          probes=["victim"])
        peak = result["victim"].peak
        devgan = r_drv * c_couple * slope
        assert 0 < peak <= devgan * (1 + 1e-6)
        # and for this strongly-driven case the bound is reasonably tight
        assert peak > 0.4 * devgan

    def test_noise_returns_to_zero(self):
        circuit = Circuit()
        circuit.add_voltage_source(
            "aggr", "0", PiecewiseLinear.ramp(1.8, 0.25e-9)
        )
        circuit.add_resistor("victim", "0", 500.0)
        circuit.add_capacitor("victim", "aggr", 40e-15)
        result = simulate(circuit, stop=5e-9, step=0.01e-9, probes=["victim"])
        assert abs(result["victim"].final) < 1e-3


class TestInterface:
    def test_probe_selection(self):
        result = simulate(rc_step_circuit(), stop=1e-9, step=0.1e-9,
                          probes=["out"])
        assert "out" in result.waveforms
        with pytest.raises(SimulationError):
            result["in"]

    def test_default_probes_all_nodes(self):
        result = simulate(rc_step_circuit(), stop=1e-9, step=0.1e-9)
        assert set(result.waveforms) == {"in", "out"}

    def test_initial_conditions(self):
        circuit = Circuit()
        circuit.add_resistor("out", "0", 1000.0)
        circuit.add_capacitor("out", "0", 1e-12)
        # keep assembly happy with a dormant source
        circuit.add_voltage_source("x", "0", PiecewiseLinear.constant(0.0))
        circuit.add_resistor("x", "out", 1e9)
        result = simulate(circuit, stop=5e-9, step=0.01e-9,
                          probes=["out"], initial={"out": 1.0})
        wave = result["out"]
        assert wave.values[0] == 1.0
        assert wave.final < 0.01  # discharged

    def test_bad_time_parameters(self):
        circuit = rc_step_circuit()
        with pytest.raises(SimulationError):
            simulate(circuit, stop=0.0, step=1e-12)
        with pytest.raises(SimulationError):
            simulate(circuit, stop=1e-9, step=0.0)
        with pytest.raises(SimulationError):
            simulate(circuit, stop=1.0, step=1e-12)  # too many points

    def test_floating_node_reported_at_dc(self):
        """A node with no resistive path to ground is fine in transient
        (the C/h term regularizes it) but singular at DC."""
        circuit = Circuit()
        circuit.add_voltage_source("a", "0", PiecewiseLinear.constant(1.0))
        circuit.add_resistor("a", "b", 10.0)
        circuit.add_capacitor("c", "0", 1e-15)  # 'c' floats (no DC path)
        circuit.add_resistor("b", "0", 10.0)
        result = simulate(circuit, stop=1e-10, step=1e-11, probes=["c"])
        assert result["c"].peak == 0.0  # stays at its initial voltage
        with pytest.raises(SimulationError):
            dc_operating_point(circuit)


class TestDCOperatingPoint:
    def test_divider(self):
        circuit = Circuit()
        circuit.add_voltage_source("in", "0", PiecewiseLinear.constant(2.0))
        circuit.add_resistor("in", "mid", 1000.0)
        circuit.add_resistor("mid", "0", 1000.0)
        dc = dc_operating_point(circuit)
        assert math.isclose(dc["mid"], 1.0)

    def test_uses_late_source_values(self):
        circuit = Circuit()
        circuit.add_voltage_source(
            "in", "0", PiecewiseLinear.ramp(1.8, 1e-9)
        )
        circuit.add_resistor("in", "out", 10.0)
        circuit.add_resistor("out", "0", 1e12)
        dc = dc_operating_point(circuit)
        assert math.isclose(dc["out"], 1.8, rel_tol=1e-6)
