"""Tests for repro.circuit.netlist."""

import pytest

from repro import SimulationError
from repro.circuit import Circuit, PiecewiseLinear, is_ground


class TestElements:
    def test_resistor_must_be_positive(self):
        circuit = Circuit()
        with pytest.raises(SimulationError):
            circuit.add_resistor("a", "0", 0.0)
        with pytest.raises(SimulationError):
            circuit.add_resistor("a", "0", -5.0)

    def test_capacitor_may_be_zero(self):
        circuit = Circuit()
        circuit.add_capacitor("a", "0", 0.0)
        with pytest.raises(SimulationError):
            circuit.add_capacitor("a", "0", -1e-15)

    def test_auto_naming(self):
        circuit = Circuit()
        r0 = circuit.add_resistor("a", "0", 1.0)
        r1 = circuit.add_resistor("b", "0", 1.0)
        assert r0.name == "R0"
        assert r1.name == "R1"

    def test_explicit_names_unique(self):
        circuit = Circuit()
        circuit.add_resistor("a", "0", 1.0, name="Rx")
        with pytest.raises(SimulationError):
            circuit.add_resistor("b", "0", 1.0, name="Rx")

    def test_name_spaces_per_kind(self):
        circuit = Circuit()
        circuit.add_resistor("a", "0", 1.0, name="X")
        circuit.add_capacitor("a", "0", 1e-15, name="X")  # different kind: OK


class TestCircuitQueries:
    def test_nodes_excludes_ground(self):
        circuit = Circuit()
        circuit.add_resistor("a", "0", 1.0)
        circuit.add_resistor("b", "gnd", 1.0)
        circuit.add_capacitor("a", "b", 1e-15)
        assert set(circuit.nodes()) == {"a", "b"}

    def test_nodes_in_first_appearance_order(self):
        circuit = Circuit()
        circuit.add_resistor("z", "a", 1.0)
        circuit.add_resistor("a", "m", 1.0)
        assert circuit.nodes() == ("z", "a", "m")

    def test_element_count(self):
        circuit = Circuit()
        circuit.add_resistor("a", "0", 1.0)
        circuit.add_capacitor("a", "0", 1e-15)
        circuit.add_voltage_source("a", "0", PiecewiseLinear.constant(1.0))
        assert circuit.element_count() == 3

    def test_is_ground(self):
        assert is_ground("0")
        assert is_ground("gnd")
        assert is_ground("GND")
        assert not is_ground("n1")
