"""Tests for repro.circuit.mna — stamp correctness on analytic circuits."""

import math

import numpy as np
import pytest
from scipy.sparse.linalg import spsolve

from repro import SimulationError
from repro.circuit import Circuit, PiecewiseLinear, assemble


def solve_dc(circuit, t=1e3):
    system = assemble(circuit)
    rhs = system.source_map @ system.input_vector(t)
    solution = spsolve(system.conductance.tocsc(), rhs)
    return system, np.atleast_1d(solution)


class TestResistiveNetworks:
    def test_voltage_divider(self):
        circuit = Circuit()
        circuit.add_voltage_source("in", "0", PiecewiseLinear.constant(2.0))
        circuit.add_resistor("in", "mid", 1000.0)
        circuit.add_resistor("mid", "0", 3000.0)
        system, x = solve_dc(circuit)
        assert math.isclose(x[system.index_of("mid")], 1.5)

    def test_current_source_into_resistor(self):
        circuit = Circuit()
        circuit.add_current_source("a", "0", PiecewiseLinear.constant(2e-3))
        circuit.add_resistor("a", "0", 500.0)
        system, x = solve_dc(circuit)
        assert math.isclose(x[system.index_of("a")], 1.0)

    def test_branch_current_of_voltage_source(self):
        """MNA extra row: the source's branch current is solved too."""
        circuit = Circuit()
        vs = circuit.add_voltage_source("in", "0", PiecewiseLinear.constant(1.0))
        circuit.add_resistor("in", "0", 100.0)
        system, x = solve_dc(circuit)
        branch = x[system.branch_index[vs.name]]
        assert math.isclose(abs(branch), 1.0 / 100.0)

    def test_wheatstone_like_mesh(self):
        """3-node mesh with two sources; checked against hand nodal math."""
        circuit = Circuit()
        circuit.add_voltage_source("s", "0", PiecewiseLinear.constant(10.0))
        circuit.add_resistor("s", "a", 1000.0)
        circuit.add_resistor("a", "b", 2000.0)
        circuit.add_resistor("a", "0", 2000.0)
        circuit.add_resistor("b", "0", 1000.0)
        system, x = solve_dc(circuit)
        va = x[system.index_of("a")]
        vb = x[system.index_of("b")]
        # node a: (va-10)/1k + va/2k + (va-vb)/2k = 0
        # node b: (vb-va)/2k + vb/1k = 0  => vb = va/3
        assert math.isclose(vb, va / 3.0, rel_tol=1e-9)
        assert math.isclose(va, 10.0 * (6.0 / 11.0), rel_tol=1e-9)


class TestStampStructure:
    def test_dimension_counts_nodes_plus_branches(self):
        circuit = Circuit()
        circuit.add_voltage_source("a", "0", PiecewiseLinear.constant(1.0))
        circuit.add_resistor("a", "b", 1.0)
        circuit.add_resistor("b", "0", 1.0)
        system = assemble(circuit)
        assert system.dimension == 2 + 1

    def test_conductance_row_sums_zero_without_ground(self):
        """Conservation: rows of G for internal nodes not touching ground
        or sources sum to zero (KCL stamp symmetry)."""
        circuit = Circuit()
        circuit.add_voltage_source("a", "0", PiecewiseLinear.constant(1.0))
        circuit.add_resistor("a", "m", 10.0)
        circuit.add_resistor("m", "b", 20.0)
        circuit.add_resistor("b", "0", 30.0)
        system = assemble(circuit)
        dense = system.conductance.toarray()
        m = system.index_of("m")
        node_cols = len(system.node_index)
        assert math.isclose(dense[m, :node_cols].sum(), 0.0, abs_tol=1e-15)

    def test_capacitance_matrix_symmetric(self):
        circuit = Circuit()
        circuit.add_voltage_source("a", "0", PiecewiseLinear.constant(1.0))
        circuit.add_resistor("a", "b", 1.0)
        circuit.add_capacitor("a", "b", 2e-15)
        circuit.add_capacitor("b", "0", 3e-15)
        system = assemble(circuit)
        dense = system.capacitance.toarray()
        assert np.allclose(dense, dense.T)

    def test_ground_has_no_row(self):
        circuit = Circuit()
        circuit.add_resistor("a", "0", 1.0)
        system = assemble(circuit)
        with pytest.raises(SimulationError):
            system.index_of("0")
        with pytest.raises(SimulationError):
            system.index_of("missing")

    def test_empty_circuit_rejected(self):
        with pytest.raises(SimulationError):
            assemble(Circuit())
