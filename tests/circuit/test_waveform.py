"""Tests for repro.circuit.waveform."""

import math

import numpy as np
import pytest

from repro import SimulationError
from repro.circuit import PiecewiseLinear, Waveform


class TestPiecewiseLinear:
    def test_constant(self):
        src = PiecewiseLinear.constant(1.8)
        assert src(0.0) == 1.8
        assert src(1e9) == 1.8
        assert src.max_slope == 0.0

    def test_ramp_values(self):
        ramp = PiecewiseLinear.ramp(vdd=1.8, rise_time=0.25e-9)
        assert ramp(0.0) == 0.0
        assert math.isclose(ramp(0.125e-9), 0.9)
        assert ramp(0.25e-9) == 1.8
        assert ramp(1.0) == 1.8  # constant extrapolation

    def test_ramp_slope(self):
        ramp = PiecewiseLinear.ramp(vdd=1.8, rise_time=0.25e-9)
        assert math.isclose(ramp.max_slope, 7.2e9)

    def test_delayed_ramp(self):
        ramp = PiecewiseLinear.ramp(vdd=1.0, rise_time=1e-9, start=2e-9)
        assert ramp(1e-9) == 0.0
        assert math.isclose(ramp(2.5e-9), 0.5)

    def test_interpolation_between_points(self):
        pwl = PiecewiseLinear((0.0, 1.0, 2.0), (0.0, 2.0, 0.0))
        assert math.isclose(pwl(0.5), 1.0)
        assert math.isclose(pwl(1.5), 1.0)

    def test_before_first_point_constant(self):
        pwl = PiecewiseLinear((1.0, 2.0), (5.0, 6.0))
        assert pwl(0.0) == 5.0

    def test_validation(self):
        with pytest.raises(SimulationError):
            PiecewiseLinear((), ())
        with pytest.raises(SimulationError):
            PiecewiseLinear((0.0, 1.0), (0.0,))
        with pytest.raises(SimulationError):
            PiecewiseLinear((1.0, 0.0), (0.0, 1.0))
        with pytest.raises(SimulationError):
            PiecewiseLinear.ramp(1.8, 0.0)


class TestWaveform:
    def test_peak_uses_absolute_value(self):
        wave = Waveform([0.0, 1.0, 2.0], [0.0, -0.5, 0.2])
        assert wave.peak == 0.5
        assert wave.peak_time == 1.0

    def test_at_interpolates(self):
        wave = Waveform([0.0, 1.0], [0.0, 2.0])
        assert math.isclose(wave.at(0.25), 0.5)

    def test_at_clamps(self):
        wave = Waveform([0.0, 1.0], [0.0, 2.0])
        assert wave.at(-1.0) == 0.0
        assert wave.at(9.0) == 2.0

    def test_final_and_settle(self):
        values = np.concatenate([np.linspace(0, 1, 50), np.full(50, 1.0)])
        wave = Waveform(np.linspace(0, 1, 100), values)
        assert wave.final == 1.0
        assert math.isclose(wave.settle_value(0.2), 1.0)

    def test_width_above(self):
        times = np.linspace(0.0, 1.0, 101)
        values = np.where((times > 0.3) & (times < 0.5), 1.0, 0.0)
        wave = Waveform(times, values)
        width = wave.width_above(0.5)
        assert 0.15 < width < 0.25

    def test_width_above_nothing(self):
        wave = Waveform([0.0, 1.0], [0.1, 0.1])
        assert wave.width_above(0.5) == 0.0

    def test_width_rejects_negative_threshold(self):
        with pytest.raises(SimulationError):
            Waveform([0.0], [0.0]).width_above(-1.0)

    def test_shape_validation(self):
        with pytest.raises(SimulationError):
            Waveform([0.0, 1.0], [0.0])
        with pytest.raises(SimulationError):
            Waveform([], [])

    def test_len(self):
        assert len(Waveform([0.0, 1.0, 2.0], [0.0, 0.0, 0.0])) == 3
