"""Tests for repro.circuit.moments — path-tracing moments vs Elmore and
the transient simulator."""

import math

import pytest

from repro import AnalysisError, BufferType, two_pin_net
from repro.circuit import (
    d2m_delay,
    dominant_time_constant,
    elmore_from_moments,
    stage_capacitances,
    tree_moments,
)
from repro.timing import sink_delays
from repro.units import FF, MM


class TestStageCapacitances:
    def test_total_matches_tree(self, y_tree):
        caps = stage_capacitances(y_tree)
        assert math.isclose(sum(caps.values()), y_tree.total_capacitance())

    def test_buffer_cuts_subtree(self, tech, driver):
        net = two_pin_net(tech, 4 * MM, driver, 10 * FF, 0.8, segments=2)
        buf = BufferType("b", 100.0, 7 * FF, 0.0, 0.8)
        caps = stage_capacitances(net, {"n1": buf})
        half_wire = tech.wire_capacitance(2 * MM)
        expected = half_wire + 7 * FF  # first wire + buffer pin
        assert math.isclose(sum(caps.values()), expected)


class TestFirstMoment:
    def test_minus_m1_equals_elmore_two_pin(self, tech, driver):
        net = two_pin_net(tech, 3 * MM, driver, 12 * FF, 0.8)
        moments = tree_moments(net, order=1)
        elmore = elmore_from_moments(moments)
        expected = sink_delays(net)["si"] - driver.intrinsic_delay
        assert math.isclose(elmore["si"], expected, rel_tol=1e-12)

    def test_minus_m1_equals_elmore_branching(self, y_tree):
        moments = tree_moments(y_tree, order=2)
        elmore = elmore_from_moments(moments)
        delays = sink_delays(y_tree)
        for sink in ("s1", "s2"):
            expected = delays[sink] - y_tree.driver.intrinsic_delay
            assert math.isclose(elmore[sink], expected, rel_tol=1e-12)

    def test_buffered_source_stage_only(self, tech, driver):
        net = two_pin_net(tech, 6 * MM, driver, 10 * FF, 0.8, segments=2)
        buf = BufferType("b", 100.0, 7 * FF, 0.0, 0.8)
        moments = tree_moments(net, order=1, buffers={"n1": buf})
        assert set(moments) == {"so", "n1"}  # stage members only


class TestHigherMoments:
    def test_moment_signs_alternate(self, y_tree):
        """RC-tree impulse-response moments alternate in sign: m1<0, m2>0."""
        moments = tree_moments(y_tree, order=3)
        for values in moments.values():
            if values[0] == 0.0:
                continue
            assert values[0] < 0
            assert values[1] > 0
            assert values[2] < 0

    def test_single_pole_identity(self, tech):
        """For one lumped RC (driver R, single cap): m_k = (-RC)^k, so
        m2 == m1^2 and D2M == ln2 * RC == exact 50 % delay."""
        from repro import DriverCell, TreeBuilder

        builder = TreeBuilder(tech)
        builder.add_source("so", driver=DriverCell("d", 1000.0))
        builder.add_sink("s", capacitance=100 * FF, noise_margin=0.8)
        builder.add_wire("so", "s", length=0.0)  # no wire: pure lumped load
        tree = builder.build()
        moments = tree_moments(tree, order=2)["s"]
        rc = 1000.0 * 100 * FF
        assert math.isclose(moments[0], -rc, rel_tol=1e-12)
        assert math.isclose(moments[1], rc * rc, rel_tol=1e-12)
        assert math.isclose(d2m_delay(moments), math.log(2) * rc, rel_tol=1e-12)
        assert math.isclose(dominant_time_constant(moments), rc, rel_tol=1e-12)

    def test_d2m_at_most_elmore_far_from_driver(self, tech, driver):
        """D2M <= Elmore at the far sink of a distributed line (the metric
        was designed to correct Elmore's far-node pessimism)."""
        net = two_pin_net(tech, 6 * MM, driver, 10 * FF, 0.8)
        moments = tree_moments(net, order=2)["si"]
        assert d2m_delay(moments) <= -moments[0] + 1e-18


class TestAgainstTransient:
    def test_elmore_upper_bounds_50pct_delay(self, tech):
        """Elmore is a provable upper bound on the 50 % step delay for RC
        trees; D2M should sit closer to the simulated truth."""
        from repro import DriverCell
        from repro.circuit import Circuit, PiecewiseLinear, simulate

        r_drv, length = 200.0, 4 * MM
        net = two_pin_net(tech, length, DriverCell("d", r_drv), 20 * FF, 0.8)
        moments = tree_moments(net, order=2)["si"]
        elmore = -moments[0]
        d2m = d2m_delay(moments)

        # distributed ladder simulation
        segments = 40
        rw = tech.wire_resistance(length) / segments
        cw = tech.wire_capacitance(length) / segments
        circuit = Circuit()
        circuit.add_voltage_source("in", "0", PiecewiseLinear.constant(1.0))
        circuit.add_resistor("in", "n0", r_drv)
        previous = "n0"
        for i in range(segments):
            circuit.add_capacitor(previous, "0", cw / 2)
            node = f"n{i + 1}"
            circuit.add_resistor(previous, node, rw)
            circuit.add_capacitor(node, "0", cw / 2)
            previous = node
        circuit.add_capacitor(previous, "0", 20 * FF)
        result = simulate(circuit, stop=6 * elmore, step=elmore / 400,
                          probes=[previous])
        wave = result[previous]
        crossing = wave.times[wave.values >= 0.5][0]
        assert crossing <= elmore  # Elmore upper bound
        assert abs(d2m - crossing) <= abs(elmore - crossing)

    def test_order_validation(self, y_tree):
        with pytest.raises(AnalysisError):
            tree_moments(y_tree, order=0)
        with pytest.raises(AnalysisError):
            d2m_delay([1.0])
        with pytest.raises(AnalysisError):
            dominant_time_constant([-1.0])
