"""Thread-safety of the obs primitives the service layer shares.

The optimization server funnels every HTTP handler thread and worker
thread through one :class:`~repro.obs.MetricsRegistry` and (when tracing)
one :class:`~repro.obs.EventSink`.  These tests hammer both from many
threads and assert nothing is lost, torn, or interleaved — exactly the
failure modes unlocked writes would produce.
"""

from __future__ import annotations

import json
import threading

from repro.obs import EventSink, MetricsRegistry, parse_prometheus, read_events

THREADS = 8
ROUNDS = 400


def _run_threads(worker) -> None:
    threads = [
        threading.Thread(target=worker, args=(index,))
        for index in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestMetricsConcurrency:
    def test_counter_increments_are_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("hammered_total")

        def worker(index):
            for _ in range(ROUNDS):
                counter.inc()
                counter.inc(2.0, shard=str(index % 2))

        _run_threads(worker)
        assert counter.value() == THREADS * ROUNDS
        assert (
            counter.value(shard="0") + counter.value(shard="1")
            == 2.0 * THREADS * ROUNDS
        )

    def test_histogram_observations_are_not_lost(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("hammered_seconds")

        def worker(index):
            for round_number in range(ROUNDS):
                histogram.observe(0.001 * (round_number % 7))

        _run_threads(worker)
        assert histogram.count() == THREADS * ROUNDS

    def test_gauge_add_is_atomic(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("hammered_level")

        def worker(index):
            for _ in range(ROUNDS):
                gauge.add(1.0)

        _run_threads(worker)
        assert gauge.value() == THREADS * ROUNDS

    def test_concurrent_registration_returns_one_metric(self):
        registry = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(THREADS)

        def worker(index):
            barrier.wait()
            seen.append(registry.counter("contested_total"))

        _run_threads(worker)
        assert len({id(metric) for metric in seen}) == 1
        assert len(registry) == 1

    def test_export_while_writing_stays_parseable(self):
        """An exporter racing the writers sees a consistent snapshot."""
        registry = MetricsRegistry()
        counter = registry.counter("raced_total")
        histogram = registry.histogram("raced_seconds")
        stop = threading.Event()
        errors = []

        def writer(index):
            while not stop.is_set():
                counter.inc(label=str(index))
                histogram.observe(0.01)

        def reader(index):
            for _ in range(50):
                try:
                    parsed = parse_prometheus(registry.to_prometheus())
                    registry.to_json()
                except Exception as exc:  # noqa: BLE001 - recorded, re-raised
                    errors.append(exc)
                    return
                # bucket counts within one snapshot stay cumulative
                buckets = parsed.get("raced_seconds_bucket", {})
                by_bound = sorted(
                    (float(dict(key)["le"]), value)
                    for key, value in buckets.items()
                )
                counts = [value for _, value in by_bound]
                assert counts == sorted(counts)

        writers = [
            threading.Thread(target=writer, args=(i,)) for i in range(4)
        ]
        readers = [
            threading.Thread(target=reader, args=(i,)) for i in range(2)
        ]
        for thread in writers + readers:
            thread.start()
        for thread in readers:
            thread.join()
        stop.set()
        for thread in writers:
            thread.join()
        assert not errors


class TestEventSinkConcurrency:
    def test_concurrent_emits_never_tear_lines(self, tmp_path):
        path = tmp_path / "hammered.jsonl"
        sink = EventSink(path)

        def worker(index):
            for round_number in range(ROUNDS):
                sink.emit({
                    "thread": index,
                    "round": round_number,
                    # long payload makes interleaving visible if it happens
                    "padding": "x" * 200,
                })

        _run_threads(worker)
        sink.close()
        assert sink.emitted == THREADS * ROUNDS

        # Every line must parse on its own: no interleaved writes.
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == THREADS * ROUNDS
        for line in lines:
            json.loads(line)

        # And every (thread, round) pair arrived exactly once.
        records = read_events(path)
        seen = {(r["thread"], r["round"]) for r in records}
        assert len(seen) == THREADS * ROUNDS
