"""Tracer spans: nesting, timing, stats deltas, journaling, null twin."""

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    NULL_TRACER,
    EventSink,
    NullTracer,
    Tracer,
    read_events,
)


class FakeClock:
    """Deterministic monotonic clock advancing on demand."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def test_stacked_spans_nest_and_time():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    with tracer.span("outer") as outer:
        clock.advance(1.0)
        with tracer.span("inner", kind="unit") as inner:
            clock.advance(0.25)
        clock.advance(0.5)
    tracer.close()

    assert [s.name for s in tracer.spans] == ["inner", "outer"]
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None
    assert inner.duration == pytest.approx(0.25)
    assert outer.duration == pytest.approx(1.75)
    assert inner.attributes["kind"] == "unit"
    assert not outer.open


def test_free_standing_spans_overlap():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    with tracer.span("batch"):
        first = tracer.start_span("attempt", index=0)
        clock.advance(1.0)
        second = tracer.start_span("attempt", index=1)
        clock.advance(1.0)
        # out-of-order completion: overlapping lifetimes a stack can't model
        tracer.end_span(first, outcome="ok")
        clock.advance(1.0)
        tracer.end_span(second, outcome="crash")
    tracer.close()

    first_rec, second_rec = tracer.spans[0], tracer.spans[1]
    assert first_rec.attributes == {"index": 0, "outcome": "ok"}
    assert first_rec.duration == pytest.approx(2.0)
    assert second_rec.duration == pytest.approx(2.0)
    # both attempts parent under the stacked batch span
    batch = tracer.spans[-1]
    assert first_rec.parent_id == batch.span_id
    assert second_rec.parent_id == batch.span_id


def test_double_end_raises():
    tracer = Tracer()
    span = tracer.start_span("once")
    tracer.end_span(span)
    with pytest.raises(ObservabilityError, match="already ended"):
        tracer.end_span(span)


def test_duration_of_open_span_raises():
    tracer = Tracer()
    span = tracer.start_span("open")
    with pytest.raises(ObservabilityError, match="has not ended"):
        span.duration


def test_exception_annotates_error():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("doomed"):
            raise ValueError("boom")
    assert tracer.spans[0].attributes["error"] == "ValueError"
    tracer.close()


def test_close_with_open_stacked_span_raises():
    tracer = Tracer()
    context = tracer.span("left-open")
    context.__enter__()
    with pytest.raises(ObservabilityError, match="open span"):
        tracer.close()
    context.__exit__(None, None, None)
    tracer.close()


def test_stats_deltas_captured_at_boundaries():
    from repro.core.stats import EngineStats

    stats = EngineStats()
    stats.candidates_generated = 100
    stats.candidates_pruned = 40
    tracer = Tracer()
    with tracer.span("dp", stats=stats):
        stats.candidates_generated += 250
        stats.candidates_pruned += 10
    tracer.close()
    span = tracer.spans[0]
    assert span.attributes["candidates_generated"] == 250
    assert span.attributes["candidates_pruned"] == 10
    assert span.attributes["candidates_dead"] == 0


def test_events_attach_to_current_span():
    tracer = Tracer()
    orphan = tracer.event("standalone", n=1)
    with tracer.span("work") as span:
        attached = tracer.event("progress", n=2)
    tracer.close()
    assert orphan["span_id"] is None
    assert attached["span_id"] == span.span_id
    assert attached["attributes"] == {"n": 2}


def test_sink_journaling_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = Tracer(sink=EventSink(path))
    with tracer.span("outer"):
        tracer.event("tick", n=1)
        with tracer.span("inner"):
            pass
    tracer.close()

    records = read_events(path)
    kinds = [(r["type"], r["name"]) for r in records]
    # journal order: event at emit time, spans at end time (inner first)
    assert kinds == [
        ("event", "tick"), ("span", "inner"), ("span", "outer"),
    ]
    by_name = {r["name"]: r for r in records if r["type"] == "span"}
    assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
    assert by_name["outer"]["duration"] >= 0.0


def test_null_tracer_is_inert():
    assert isinstance(NULL_TRACER, NullTracer)
    assert not NULL_TRACER.enabled
    with NULL_TRACER.span("anything", stats=object()) as span:
        span.annotate(ignored=True)
    free = NULL_TRACER.start_span("free")
    assert NULL_TRACER.end_span(free, outcome="ok") is free
    assert NULL_TRACER.event("nothing") == {}
    assert NULL_TRACER.current is None
    assert NULL_TRACER.spans == []
    NULL_TRACER.close()  # never raises
