"""EventSink / read_events: JSONL journaling with torn-tail tolerance."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import EventSink, read_events


def test_emit_read_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    with EventSink(path) as sink:
        sink.emit({"type": "event", "name": "first", "value": 1})
        sink.emit({"type": "span", "name": "second", "nested": {"a": [1, 2]}})
        assert sink.emitted == 2
    records = read_events(path)
    assert len(records) == 2
    assert records[0]["name"] == "first"
    assert records[1]["nested"] == {"a": [1, 2]}


def test_torn_final_line_is_dropped(tmp_path):
    path = tmp_path / "trace.jsonl"
    with EventSink(path) as sink:
        sink.emit({"index": 0})
        sink.emit({"index": 1})
    # simulate a writer killed mid-record: an unterminated JSON fragment
    with path.open("a", encoding="utf-8") as handle:
        handle.write('{"index": 2, "torn')
    records = read_events(path)
    assert [r["index"] for r in records] == [0, 1]


def test_interior_corruption_raises(tmp_path):
    path = tmp_path / "trace.jsonl"
    lines = [json.dumps({"index": 0}), "garbage{{{", json.dumps({"index": 2})]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    with pytest.raises(ObservabilityError, match="line 2 is corrupt"):
        read_events(path)


def test_blank_lines_are_skipped(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('{"index": 0}\n\n{"index": 1}\n', encoding="utf-8")
    assert [r["index"] for r in read_events(path)] == [0, 1]


def test_emit_after_close_raises(tmp_path):
    sink = EventSink(tmp_path / "trace.jsonl")
    sink.emit({"index": 0})
    sink.close()
    assert sink.closed
    with pytest.raises(ObservabilityError, match="closed"):
        sink.emit({"index": 1})


def test_append_mode_preserves_existing_records(tmp_path):
    path = tmp_path / "trace.jsonl"
    with EventSink(path) as sink:
        sink.emit({"index": 0})
    with EventSink(path, append=True) as sink:
        sink.emit({"index": 1})
    assert [r["index"] for r in read_events(path)] == [0, 1]
    # the default (truncate) mode starts the file over
    with EventSink(path) as sink:
        sink.emit({"index": 9})
    assert [r["index"] for r in read_events(path)] == [9]


def test_sink_creates_parent_directories(tmp_path):
    path = tmp_path / "deep" / "nested" / "trace.jsonl"
    with EventSink(path) as sink:
        sink.emit({"ok": True})
    assert read_events(path) == [{"ok": True}]
