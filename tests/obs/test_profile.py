"""PhaseProfiler: bit-identity under profiling, per-run accounting."""

import pytest

from repro.api import dp_result
from repro.obs import PHASE_METHODS, MetricsRegistry, PhaseProfiler

PHASES = tuple(phase for _, phase in PHASE_METHODS)


@pytest.mark.parametrize("engine", ["reference", "fast"])
@pytest.mark.parametrize("mode", ["delay", "buffopt"])
def test_profiled_run_is_bit_identical(y_tree, library, coupling, engine,
                                       mode):
    plain = dp_result(
        y_tree, library, coupling, mode=mode, max_buffers=4, engine=engine,
    )
    profiler = PhaseProfiler()
    traced = dp_result(
        y_tree, library, coupling, mode=mode, max_buffers=4, engine=engine,
        profile=profiler,
    )
    assert plain.outcomes == traced.outcomes
    assert plain.candidates_generated == traced.candidates_generated
    assert profiler.runs == 1
    assert sum(profiler.calls.values()) > 0
    assert profiler.total_seconds() >= 0.0
    assert set(profiler.phase_seconds) == set(PHASES)


def test_counters_accumulate_across_runs(y_tree, library, coupling):
    profiler = PhaseProfiler()
    dp_result(
        y_tree, library, coupling, mode="buffopt", max_buffers=4,
        profile=profiler,
    )
    first_calls = dict(profiler.calls)
    dp_result(
        y_tree, library, coupling, mode="buffopt", max_buffers=4,
        profile=profiler,
    )
    assert profiler.runs == 2
    for phase in PHASES:
        assert profiler.calls[phase] == 2 * first_calls[phase]


def test_finish_returns_per_run_deltas_and_feeds_histogram(
        y_tree, library, coupling):
    registry = MetricsRegistry()
    profiler = PhaseProfiler(metrics=registry)
    dp_result(
        y_tree, library, coupling, mode="buffopt", max_buffers=4,
        profile=profiler,
    )
    first = profiler.finish()
    assert set(first) == set(PHASES)
    assert sum(first.values()) == pytest.approx(profiler.total_seconds())

    dp_result(
        y_tree, library, coupling, mode="buffopt", max_buffers=4,
        profile=profiler,
    )
    second = profiler.finish()
    for phase in PHASES:
        assert profiler.phase_seconds[phase] == pytest.approx(
            first[phase] + second[phase]
        )

    histogram = registry.get("buffopt_dp_phase_seconds")
    assert histogram is not None
    for phase in PHASES:
        assert histogram.count(phase=phase) == 2
        assert histogram.sum(phase=phase) == pytest.approx(
            first[phase] + second[phase]
        )


def test_install_wraps_only_that_instance(y_tree, library, coupling):
    # the class methods are untouched: a fresh unprofiled run after a
    # profiled one sees zero profiler activity
    profiler = PhaseProfiler()
    dp_result(
        y_tree, library, coupling, mode="buffopt", max_buffers=4,
        profile=profiler,
    )
    calls_after_profiled = dict(profiler.calls)
    dp_result(y_tree, library, coupling, mode="buffopt", max_buffers=4)
    assert profiler.calls == calls_after_profiled


def test_describe_reports_runs_and_phases(y_tree, library, coupling):
    profiler = PhaseProfiler()
    dp_result(
        y_tree, library, coupling, mode="delay", max_buffers=4,
        profile=profiler,
    )
    text = profiler.describe()
    assert "profiled 1 run(s)" in text
    for phase in PHASES:
        assert phase in text
