"""Counters / gauges / histograms and the Prometheus round-trip."""

import math

import pytest

from repro.errors import ObservabilityError
from repro.obs import MetricsRegistry, parse_prometheus


def test_counter_inc_and_labels():
    registry = MetricsRegistry()
    nets = registry.counter("nets_total", "nets processed")
    nets.inc()
    nets.inc(2.0)
    nets.inc(mode="delay")
    assert nets.value() == 3.0
    assert nets.value(mode="delay") == 1.0
    assert nets.value(mode="buffopt") == 0.0


def test_counter_rejects_decrease():
    counter = MetricsRegistry().counter("c_total")
    with pytest.raises(ObservabilityError, match="cannot decrease"):
        counter.inc(-1.0)


def test_gauge_set_add_and_set_max():
    gauge = MetricsRegistry().gauge("pressure")
    gauge.set(0.4)
    gauge.set(0.2)
    assert gauge.value() == 0.2
    gauge.set_max(0.9, resource="candidates")
    gauge.set_max(0.5, resource="candidates")
    assert gauge.value(resource="candidates") == 0.9
    gauge.add(1.0)
    gauge.add(0.5)
    assert gauge.value() == pytest.approx(1.7)


def test_histogram_cumulative_buckets():
    histogram = MetricsRegistry().histogram(
        "seconds", buckets=(0.1, 1.0, 10.0)
    )
    for value in (0.05, 0.5, 5.0, 50.0):
        histogram.observe(value)
    assert histogram.count() == 4
    assert histogram.sum() == pytest.approx(55.55)
    samples = {
        (name, key): value
        for name, key, value in histogram.samples()
    }
    assert samples[("seconds_bucket", (("le", "0.1"),))] == 1
    assert samples[("seconds_bucket", (("le", "1"),))] == 2
    assert samples[("seconds_bucket", (("le", "10"),))] == 3
    assert samples[("seconds_bucket", (("le", "+Inf"),))] == 4


def test_histogram_rejects_unsorted_buckets():
    registry = MetricsRegistry()
    with pytest.raises(ObservabilityError, match="strictly increasing"):
        registry.histogram("bad", buckets=(1.0, 0.5))
    with pytest.raises(ObservabilityError, match="strictly increasing"):
        registry.histogram("dup", buckets=(1.0, 1.0, 2.0))


def test_registration_is_idempotent_per_kind():
    registry = MetricsRegistry()
    first = registry.counter("hits_total")
    first.inc(5)
    # same name + kind returns the existing metric (state preserved)
    assert registry.counter("hits_total") is first
    assert registry.counter("hits_total").value() == 5
    with pytest.raises(ObservabilityError, match="already registered"):
        registry.gauge("hits_total")
    assert registry.get("hits_total") is first
    assert registry.get("missing") is None
    assert len(registry) == 1


def test_invalid_names_raise():
    registry = MetricsRegistry()
    with pytest.raises(ObservabilityError, match="invalid metric name"):
        registry.counter("bad-name")
    counter = registry.counter("ok_total")
    with pytest.raises(ObservabilityError, match="invalid label name"):
        counter.inc(**{"0bad": "x"})


def test_prometheus_round_trip():
    registry = MetricsRegistry()
    nets = registry.counter("buffopt_nets_total", "nets processed")
    nets.inc(12, mode="buffopt", status="ok")
    nets.inc(3, mode="buffopt", status="deadline")
    wall = registry.gauge("buffopt_wall_seconds", "batch wall time")
    wall.set(1.5)
    seconds = registry.histogram(
        "buffopt_net_seconds", "per-net seconds", buckets=(0.5, 2.0)
    )
    seconds.observe(0.25, mode="buffopt")
    seconds.observe(1.0, mode="buffopt")

    text = registry.to_prometheus()
    assert "# HELP buffopt_nets_total nets processed" in text
    assert "# TYPE buffopt_net_seconds histogram" in text

    samples = parse_prometheus(text)
    key = (("mode", "buffopt"), ("status", "ok"))
    assert samples["buffopt_nets_total"][key] == 12
    assert samples["buffopt_wall_seconds"][()] == 1.5
    bucket = samples["buffopt_net_seconds_bucket"]
    assert bucket[(("le", "0.5"), ("mode", "buffopt"))] == 1
    assert bucket[(("le", "+Inf"), ("mode", "buffopt"))] == 2
    assert samples["buffopt_net_seconds_sum"][(("mode", "buffopt"),)] == 1.25
    assert samples["buffopt_net_seconds_count"][(("mode", "buffopt"),)] == 2


def test_prometheus_escaping_round_trip():
    registry = MetricsRegistry()
    counter = registry.counter("odd_total")
    counter.inc(1, path='a"b\\c', note="two\nlines")
    samples = parse_prometheus(registry.to_prometheus())
    key = (("note", "two\nlines"), ("path", 'a"b\\c'))
    assert samples["odd_total"][key] == 1


def test_parse_rejects_malformed_lines():
    with pytest.raises(ObservabilityError, match="unparseable"):
        parse_prometheus("this is not exposition format\n")


def test_parse_handles_infinities():
    samples = parse_prometheus("edge_bucket{le=\"+Inf\"} 3\nlow -Inf\n")
    assert samples["edge_bucket"][(("le", "+Inf"),)] == 3
    assert samples["low"][()] == -math.inf


def test_to_json_view():
    registry = MetricsRegistry()
    registry.counter("hits_total", "hits").inc(2, kind="a")
    view = registry.to_json()
    assert view["hits_total"]["type"] == "counter"
    assert view["hits_total"]["help"] == "hits"
    assert view["hits_total"]["samples"] == [
        {"name": "hits_total", "labels": {"kind": "a"}, "value": 2.0}
    ]


def test_write_prometheus_creates_directories(tmp_path):
    registry = MetricsRegistry()
    registry.counter("ok_total").inc()
    target = tmp_path / "out" / "metrics.prom"
    registry.write_prometheus(target)
    assert parse_prometheus(target.read_text())["ok_total"][()] == 1
