"""Tests for repro.io — JSON net descriptions and solution export."""

import json
import math

import pytest

from repro import BufferType, CouplingModel, analyze_noise
from repro.core import BufferSolution
from repro.io import (
    NetFormatError,
    load_net,
    net_from_dict,
    net_to_dict,
    save_net,
    save_solution,
    solution_to_dict,
)
from repro.units import FF, MM, PS


def sample_dict():
    return {
        "name": "demo",
        "technology": {
            "unit_resistance": 7.6e4,
            "unit_capacitance": 1.18e-10,
            "vdd": 1.8,
            "coupling_ratio": 0.7,
            "aggressor_slew": 2.5e-10,
        },
        "driver": {"name": "drv", "resistance": 200.0,
                   "intrinsic_delay": 3e-11},
        "source": {"name": "so", "position": [0.0, 0.0]},
        "sinks": [
            {"name": "s1", "capacitance": 2e-14, "noise_margin": 0.8,
             "required_arrival": 1.5e-9, "position": [5e-3, 0.0]},
            {"name": "s2", "capacitance": 1e-14, "noise_margin": 0.8},
        ],
        "internals": [{"name": "u", "feasible": True}],
        "wires": [
            {"parent": "so", "child": "u", "length": 2e-3},
            {"parent": "u", "child": "s1", "length": 3e-3},
            {"parent": "u", "child": "s2", "length": 1e-3,
             "coupling_ratio": 0.4},
        ],
    }


class TestLoad:
    def test_round_structure(self):
        tree, tech = net_from_dict(sample_dict())
        assert tree.name == "demo"
        assert len(tree.sinks) == 2
        assert tree.driver.resistance == 200.0
        assert tech is not None and tech.vdd == 1.8
        assert math.isclose(tree.total_wire_length(), 6e-3)

    def test_wire_overrides_preserved(self):
        tree, _ = net_from_dict(sample_dict())
        wire = tree.node("s2").parent_wire
        assert wire.coupling_ratio == 0.4

    def test_infinite_rat_default(self):
        tree, _ = net_from_dict(sample_dict())
        assert math.isinf(tree.node("s2").sink.required_arrival)

    def test_missing_keys_reported(self):
        data = sample_dict()
        del data["sinks"]
        with pytest.raises(NetFormatError):
            net_from_dict(data)
        data = sample_dict()
        del data["sinks"][0]["capacitance"]
        with pytest.raises(NetFormatError):
            net_from_dict(data)

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "net.json"
        path.write_text(json.dumps(sample_dict()))
        tree, tech = load_net(path)
        assert tree.name == "demo"

    def test_invalid_json_reported(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(NetFormatError):
            load_net(path)
        path.write_text("[1, 2]")
        with pytest.raises(NetFormatError):
            load_net(path)


class TestRoundTrip:
    def test_save_load_identity(self, tmp_path):
        tree, tech = net_from_dict(sample_dict())
        path = tmp_path / "roundtrip.json"
        save_net(tree, path, tech)
        again, tech2 = load_net(path)
        assert {n.name for n in again.nodes()} == {n.name for n in tree.nodes()}
        assert math.isclose(
            again.total_capacitance(), tree.total_capacitance()
        )
        assert tech2.unit_resistance == tech.unit_resistance
        # analyses agree on both
        coupling = CouplingModel.estimation_mode(tech)
        a = analyze_noise(tree, coupling).peak_noise
        b = analyze_noise(again, coupling).peak_noise
        assert math.isclose(a, b, rel_tol=1e-12)

    def test_roundtrip_without_technology(self, tmp_path):
        tree, tech = net_from_dict(sample_dict())
        path = tmp_path / "plain.json"
        save_net(tree, path)  # wires carry explicit R/C, so tech-free
        again, tech2 = load_net(path)
        assert tech2 is None
        wire = again.node("s1").parent_wire
        original = tree.node("s1").parent_wire
        assert math.isclose(wire.resistance, original.resistance)


class TestSolutionExport:
    def test_solution_dict(self, tmp_path):
        tree, _ = net_from_dict(sample_dict())
        buffer = BufferType("bx", 100.0, 10 * FF, 20 * PS, 0.8)
        solution = BufferSolution(tree, {"u": buffer})
        data = solution_to_dict(solution)
        assert data["net"] == "demo"
        assert data["buffers"][0]["node"] == "u"
        assert data["buffers"][0]["cell"] == "bx"
        path = tmp_path / "sol.json"
        save_solution(solution, path)
        assert json.loads(path.read_text())["buffers"][0]["cell"] == "bx"


class TestCliFix:
    def test_fix_command(self, tmp_path, capsys):
        from repro.cli import main

        net_path = tmp_path / "net.json"
        net_path.write_text(json.dumps(sample_dict()))
        out_path = tmp_path / "solution.json"
        assert main(["fix", str(net_path), "--out", str(out_path)]) == 0
        captured = capsys.readouterr().out
        assert "0 noise violations" in captured
        assert out_path.exists()

    def test_fix_modes(self, tmp_path, capsys):
        from repro.cli import main

        net_path = tmp_path / "net.json"
        net_path.write_text(json.dumps(sample_dict()))
        for mode in ("delay", "noise"):
            assert main(["fix", str(net_path), "--mode", mode]) == 0

    def test_fix_svg_output(self, tmp_path, capsys):
        from repro.cli import main

        net_path = tmp_path / "net.json"
        net_path.write_text(json.dumps(sample_dict()))
        svg_path = tmp_path / "net.svg"
        assert main(["fix", str(net_path), "--svg", str(svg_path)]) == 0
        assert svg_path.read_text().startswith("<svg")

    def test_sensitivity_command(self, tmp_path, capsys):
        from repro.cli import main

        data = sample_dict()
        del data["wires"][2]["coupling_ratio"]  # pure estimation mode
        net_path = tmp_path / "net.json"
        net_path.write_text(json.dumps(data))
        assert main(["sensitivity", str(net_path)]) == 0
        out = capsys.readouterr().out
        assert "critical coupling ratio" in out

    def test_export_roundtrips_through_fix(self, tmp_path, capsys):
        """export -> load -> fix: the workload interchanges cleanly."""
        from repro.cli import main

        out_dir = tmp_path / "nets"
        assert main(["export", str(out_dir), "--nets", "6", "--seed", "5"]) == 0
        files = sorted(out_dir.glob("*.json"))
        assert len(files) == 6
        assert main(["fix", str(files[0])]) == 0
        assert "0 noise violations" in capsys.readouterr().out

    def test_sensitivity_rejects_overridden_net(self, tmp_path, capsys):
        from repro.cli import main

        net_path = tmp_path / "net.json"
        net_path.write_text(json.dumps(sample_dict()))  # has an override
        assert main(["sensitivity", str(net_path)]) == 1
        assert "sensitivity unavailable" in capsys.readouterr().err
