"""The JSON-over-HTTP surface against a live ``ThreadingHTTPServer``."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.batch.resilience import RetryPolicy
from repro.service import (
    MAX_BODY_BYTES,
    OptimizationService,
    ServiceConfig,
    make_http_server,
    raw_malformed_bodies,
)

from .conftest import tiny_payload


def _round_trip(method, url, data=None, headers=None, timeout=60.0):
    request = urllib.request.Request(
        url, data=data, headers=headers or {}, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, dict(reply.headers), reply.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def _json(method, url, payload=None):
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    status, headers, raw = _round_trip(
        method, url, data, {"Content-Type": "application/json"}
    )
    try:
        return status, headers, json.loads(raw.decode("utf-8"))
    except json.JSONDecodeError:
        return status, headers, raw.decode("utf-8", errors="replace")


@pytest.fixture(scope="module")
def live():
    """One server shared by the whole module (each test uses its own
    nets, so no cross-talk through the cache)."""
    service = OptimizationService(ServiceConfig(
        workers=2, queue_limit=32, supervision="inline",
        retry=RetryPolicy(max_attempts=1), wait_timeout=60.0,
    )).start()
    server = make_http_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield service, f"http://127.0.0.1:{server.port}"
    finally:
        service.drain()
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


class TestProbes:
    def test_healthz(self, live):
        _, base = live
        status, _, body = _json("GET", f"{base}/healthz")
        assert status == 200
        assert body["status"] == "ok"

    def test_readyz(self, live):
        _, base = live
        status, _, body = _json("GET", f"{base}/readyz")
        assert status == 200
        assert body["ready"] is True
        assert {"queue_depth", "inflight", "cache_size"} <= set(body)

    def test_metrics_is_prometheus_text(self, live):
        _, base = live
        status, headers, body = _json("GET", f"{base}/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert isinstance(body, str)
        assert "buffopt_service_requests_total" in body


class TestSubmitOverHttp:
    def test_sync_submit_and_cached_resubmit(self, live):
        _, base = live
        payload = tiny_payload("http-sync", wait=True)
        status, _, first = _json("POST", f"{base}/v1/optimize", payload)
        assert status == 200
        assert first["kind"] == "buffopt-service-result"
        assert first["result"]["ok"] is True

        status, _, second = _json("POST", f"{base}/v1/optimize", payload)
        assert status == 200
        assert second["cached"] is True
        assert second["result"] == first["result"]

    def test_async_lifecycle_over_http(self, live):
        _, base = live
        status, _, job = _json(
            "POST", f"{base}/v1/optimize", tiny_payload("http-async")
        )
        assert status == 202
        assert job["kind"] == "buffopt-service-job"
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            status, _, poll = _json("GET", f"{base}/v1/jobs/{job['id']}")
            assert status == 200
            if poll["status"] == "done":
                break
            time.sleep(0.02)
        else:
            raise AssertionError("async job never finished")
        status, _, result = _json(
            "GET", f"{base}/v1/jobs/{job['id']}/result"
        )
        assert status == 200
        assert result["result"]["name"] == "http-async"

    def test_shed_carries_retry_after_header_semantics(self, live):
        # can't force a full queue deterministically on the shared
        # server; the body contract is covered in test_server — here we
        # just confirm rejections arrive as structured JSON over HTTP.
        _, base = live
        status, _, body = _json(
            "POST", f"{base}/v1/optimize", {"net": "nope"}
        )
        assert status == 400
        assert body["kind"] == "buffopt-service-error"
        assert body["error"] == "malformed"


class TestHttpRejections:
    def test_raw_garbage_bodies_are_400s(self, live):
        _, base = live
        for label, data in raw_malformed_bodies(seed=1):
            status, _, raw = _round_trip(
                "POST", f"{base}/v1/optimize", data,
                {"Content-Type": "application/json"},
            )
            assert status == 400, (label, status)
            body = json.loads(raw.decode("utf-8"))
            assert body["error"] == "malformed", label

    def test_oversized_body_is_413(self, live):
        _, base = live
        blob = json.dumps(
            {"net": {"name": "x" * (MAX_BODY_BYTES + 10)}}
        ).encode("utf-8")
        status, _, raw = _round_trip(
            "POST", f"{base}/v1/optimize", blob,
            {"Content-Type": "application/json"},
        )
        assert status == 413
        assert json.loads(raw.decode("utf-8"))["error"] == "too_large"

    def test_unknown_routes_are_404(self, live):
        _, base = live
        status, _, body = _json("GET", f"{base}/no/such/route")
        assert status == 404
        status, _, body = _json("GET", f"{base}/v1/jobs/job-404")
        assert status == 404
        assert body["error"] == "not_found"

    def test_wrong_verbs_are_405(self, live):
        _, base = live
        status, _, body = _json("GET", f"{base}/v1/optimize")
        assert status == 405
        assert body["error"] == "method_not_allowed"
        status, _, _ = _json("POST", f"{base}/healthz", {})
        assert status == 405

    def test_pending_result_is_409_or_done_200(self, live):
        _, base = live
        status, _, job = _json(
            "POST", f"{base}/v1/optimize",
            tiny_payload("http-pending", sink_count=5),
        )
        assert status == 202
        status, _, body = _json(
            "GET", f"{base}/v1/jobs/{job['id']}/result"
        )
        assert status in (409, 200)
        if status == 409:
            assert body["error"] == "pending"


class TestDrainOverHttp:
    def test_readyz_flips_to_503_after_drain(self):
        service = OptimizationService(ServiceConfig(
            workers=1, supervision="inline",
            retry=RetryPolicy(max_attempts=1),
        )).start()
        server = make_http_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.port}"
        try:
            assert _json("GET", f"{base}/readyz")[0] == 200
            assert service.drain() is True
            status, _, body = _json("GET", f"{base}/readyz")
            assert status == 503
            assert body["ready"] is False
            # submits now refuse with the draining contract.
            status, _, body = _json(
                "POST", f"{base}/v1/optimize", tiny_payload("late")
            )
            assert status == 503
            assert body["error"] == "draining"
            assert "retry_after" in body
            # liveness stays up so the orchestrator can tell "draining"
            # from "dead".
            assert _json("GET", f"{base}/healthz")[0] == 200
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)
