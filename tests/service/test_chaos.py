"""The chaos harness and the ISSUE's acceptance run.

The acceptance test drives the real resilient (process-per-request)
supervision path with crash + hang + slow faults on >= 5% of requests,
plus a torn journal tail and a restart mid-load, and checks the two
properties the ISSUE demands: **zero dropped requests** and responses
whose deterministic ``result`` payloads are **bit-identical** to a
fault-free serial run.
"""

from __future__ import annotations

import json

import pytest

from repro.batch.checkpoint import TORN_TAIL_COUNTER
from repro.batch.resilience import RetryPolicy
from repro.errors import WorkloadError
from repro.service import (
    ChaosConfig,
    InProcessClient,
    LoadTestConfig,
    OptimizationService,
    ServiceConfig,
    malformed_requests,
    parse_request,
    tear_journal_tail,
)

from .conftest import tiny_payload


class TestChaosConfig:
    def test_decisions_are_deterministic_and_order_independent(self):
        config = ChaosConfig(rate=0.4, seed=9)
        names = [f"net-{n}" for n in range(64)]
        forward = [config.spec_for(name) for name in names]
        backward = [
            ChaosConfig(rate=0.4, seed=9).spec_for(name)
            for name in reversed(names)
        ]
        assert forward == list(reversed(backward))

    def test_rate_lands_in_the_right_ballpark(self):
        names = [f"net-{n}" for n in range(400)]
        fraction = len(ChaosConfig(rate=0.3, seed=1).faulted(names)) / 400
        assert 0.15 < fraction < 0.45
        assert ChaosConfig(rate=0.0, seed=1).faulted(names) == []
        assert len(ChaosConfig(rate=1.0, seed=1).faulted(names)) == 400

    def test_seconds_track_the_fault_kind(self):
        config = ChaosConfig(
            rate=1.0, seed=0, hang_seconds=9.0, slow_seconds=0.1,
        )
        seen = {}
        for n in range(200):
            spec = config.spec_for(f"net-{n}")
            seen[spec.kind] = spec.seconds
        assert seen["hang"] == 9.0
        assert seen["slow"] == 0.1

    def test_plan_for_wraps_a_single_net(self):
        config = ChaosConfig(rate=1.0, seed=0)
        plan = config.plan_for("only")
        assert plan.spec_for("only") is not None
        assert plan.spec_for("other") is None
        assert ChaosConfig(rate=0.0).plan_for("only") is None

    @pytest.mark.parametrize("overrides", [
        {"rate": -0.1},
        {"rate": 1.5},
        {"kinds": ()},
        {"kinds": ("raise", "gremlin")},
        {"attempts": ()},
        {"attempts": (0,)},
    ])
    def test_bad_config_raises(self, overrides):
        with pytest.raises(WorkloadError):
            ChaosConfig(**overrides)


class TestMalformedBarrage:
    def test_every_payload_is_rejected_and_leaves_no_trace(
        self, inline_service
    ):
        service = inline_service()
        client = InProcessClient(service)
        for label, payload in malformed_requests(seed=3):
            status, body = client.submit(payload)
            assert status == 400, (label, status, body)
            assert body["error"] == "malformed", label
        # the barrage affected nothing: a good request still answers,
        # and no malformed payload was admitted as a job.
        status, body = client.submit(tiny_payload("after", wait=True))
        assert status == 200 and body["result"]["ok"] is True
        text = service.metrics_text()
        assert 'outcome="malformed"' in text


@pytest.mark.slow
class TestChaosAcceptance:
    """Crash + hang + slow + torn tail + restart, vs a fault-free run."""

    CONFIG = LoadTestConfig(
        clients=2, requests=14, unique_nets=10, seed=3,
        min_sinks=2, max_sinks=4,
    )
    CHAOS = ChaosConfig(
        rate=0.5, seed=4, kinds=("raise", "exit", "hang", "slow"),
        hang_seconds=3.0, slow_seconds=0.05,
    )

    def _service_config(self, journal):
        return ServiceConfig(
            workers=2,
            queue_limit=len(self.CONFIG.payloads()) + 1,
            retry=RetryPolicy(max_attempts=3, backoff_seconds=0.02, seed=5),
            hard_deadline=1.5,
            supervision="resilient",
            journal_path=journal,
            chaos=self.CHAOS,
        )

    def test_chaos_run_matches_the_fault_free_run_exactly(self, tmp_path):
        payloads = self.CONFIG.payloads()
        names = sorted({p["net"]["name"] for p in payloads})
        faulted = self.CHAOS.faulted(names)
        kinds = {self.CHAOS.spec_for(name).kind for name in faulted}
        # the run must actually inject meaningful chaos: >= 5% of nets,
        # including at least one process-killing kind.
        assert len(faulted) / len(names) >= 0.05
        assert kinds & {"exit", "hang", "raise"}

        # fault-free serial baseline (inline, one worker, no chaos).
        baseline_service = OptimizationService(ServiceConfig(
            workers=1, queue_limit=len(payloads) + 1, supervision="inline",
        )).start()
        baseline = {}
        client = InProcessClient(baseline_service)
        for payload in payloads:
            status, body = client.submit(payload)
            assert status == 200
            baseline[payload["net"]["name"]] = body["result"]
        baseline_service.drain()

        # phase 1: first half under chaos, then a simulated crash — the
        # service is abandoned without drain.  The journal is left with
        # (a) an accepted-but-unfinished promise, exactly what a death
        # mid-request leaves behind, and (b) a torn final line, exactly
        # what a kill mid-write leaves behind.  (The promise is written
        # directly rather than by abandoning a live async job so the
        # tear deterministically stays the *final* line — a still-running
        # worker appending after the tear would turn an interrupted
        # write into interior corruption, which recovery rightly refuses.)
        journal = tmp_path / "service.jsonl"
        split = len(payloads) // 2
        phase1 = OptimizationService(self._service_config(journal)).start()
        client = InProcessClient(phase1)
        for payload in payloads[:split]:
            status, body = client.submit(payload)
            assert status == 200, (status, body)
            assert body["result"] == baseline[payload["net"]["name"]]
        phase1.drain()

        from repro.service import ServiceJournal

        unfinished = parse_request(payloads[split])
        side = ServiceJournal.append_to(journal)
        side.record_accepted(unfinished.fingerprint(), unfinished, "job-99")
        side.close()
        tear_journal_tail(journal)

        # phase 2: restart on the torn journal; everything must answer
        # and match the baseline exactly — zero dropped requests.
        phase2 = OptimizationService(self._service_config(journal)).start()
        try:
            assert phase2.recovered_results == split
            assert phase2.recovered_jobs == 1  # the torn-off promise
            text = phase2.metrics_text()
            assert TORN_TAIL_COUNTER in text
            assert 'journal="service"' in text

            client = InProcessClient(phase2)
            dropped = []
            cache_hits = 0
            for payload in payloads:
                status, body = client.submit(payload)
                if status != 200:
                    dropped.append((payload["net"]["name"], status))
                    continue
                cache_hits += bool(body.get("cached"))
                name = payload["net"]["name"]
                assert body["result"] == baseline[name], name
            assert dropped == []
            assert cache_hits >= split  # phase-1 work survived the crash
        finally:
            phase2.drain()

    def test_structured_failures_survive_the_journal_roundtrip(
        self, tmp_path
    ):
        # a net that exhausts its retries must come back as the SAME
        # structured failure after a restart — failure responses are
        # cached and journalled like any other result.
        chaos = ChaosConfig(
            rate=1.0, seed=0, kinds=("raise",), attempts=(1, 2, 3),
        )
        journal = tmp_path / "service.jsonl"

        def config():
            return ServiceConfig(
                workers=1, supervision="inline",
                retry=RetryPolicy(max_attempts=2, backoff_seconds=0.01),
                journal_path=journal, chaos=chaos,
            )

        first = OptimizationService(config()).start()
        status, body = first.submit(tiny_payload("cursed", wait=True))
        assert status == 200
        assert body["result"]["ok"] is False
        assert body["result"]["failure"]["error"] == "InjectedFault"
        first.drain()

        second = OptimizationService(config()).start()
        status, again = second.submit(tiny_payload("cursed", wait=True))
        second.drain()
        assert status == 200
        assert again["cached"] is True
        assert again["result"] == body["result"]


class TestTornTailHelper:
    def test_tear_leaves_an_unterminated_final_line(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"kind": "header"}\n')
        tear_journal_tail(path)
        tail = path.read_text().splitlines()[-1]
        with pytest.raises(json.JSONDecodeError):
            json.loads(tail)
