"""The service core: admission order, supervision, recovery, drain."""

from __future__ import annotations

import time

import pytest

from repro.batch.resilience import RetryPolicy
from repro.errors import ServiceError
from repro.obs import MetricsRegistry
from repro.service import (
    ChaosConfig,
    OptimizationService,
    RequestRejected,
    ServiceConfig,
    ServiceJournal,
    parse_request,
    recover_journal,
)

from .conftest import tiny_payload

#: chaos that slows every request down — the deterministic way to keep
#: a worker busy while a test inspects queued / running state.
SLOW = dict(rate=1.0, kinds=("slow",))


def _wait_done(service, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, body = service.job_status(job_id)
        assert status == 200
        if body["status"] == "done":
            return body
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} did not finish in {timeout}s")


class TestConfigValidation:
    @pytest.mark.parametrize("overrides", [
        {"workers": 0},
        {"queue_limit": 0},
        {"supervision": "hope"},
        {"retry_after_seconds": 0.0},
    ])
    def test_bad_config_raises(self, overrides):
        with pytest.raises(ServiceError):
            ServiceConfig(**overrides)

    def test_start_twice_raises(self, inline_service):
        service = inline_service()
        with pytest.raises(ServiceError, match="cannot start"):
            service.start()


class TestSubmitLifecycle:
    def test_sync_submit_returns_a_full_result_body(self, inline_service):
        service = inline_service()
        status, body = service.submit(tiny_payload("sync", wait=True))
        assert status == 200
        assert body["kind"] == "buffopt-service-result"
        assert body["cached"] is False
        assert body["result"]["name"] == "sync"
        assert body["result"]["ok"] is True
        fingerprint = parse_request(tiny_payload("sync")).fingerprint()
        assert body["fingerprint"] == fingerprint

    def test_resubmit_is_a_cache_hit_with_the_identical_result(
        self, inline_service
    ):
        service = inline_service()
        _, first = service.submit(tiny_payload("hit", wait=True))
        status, second = service.submit(tiny_payload("hit", wait=True))
        assert status == 200
        assert second["cached"] is True
        assert second["result"] == first["result"]
        assert 'outcome="cache_hit"' in service.metrics_text()

    def test_async_submit_returns_202_then_result(self, inline_service):
        service = inline_service()
        status, body = service.submit(tiny_payload("async"))
        assert status == 202
        assert body["kind"] == "buffopt-service-job"
        assert body["status"] in ("queued", "running", "done")
        done = _wait_done(service, body["id"])
        assert done["fingerprint"] == body["fingerprint"]
        status, result = service.job_result(body["id"])
        assert status == 200
        assert result["result"]["name"] == "async"

    def test_unknown_job_is_404(self, inline_service):
        service = inline_service()
        with pytest.raises(RequestRejected) as caught:
            service.job_status("job-999")
        assert caught.value.http_status == 404
        with pytest.raises(RequestRejected):
            service.job_result("job-999")

    def test_result_before_done_is_409_pending(self, inline_service):
        service = inline_service(chaos=ChaosConfig(slow_seconds=0.4, **SLOW))
        _, body = service.submit(tiny_payload("pending"))
        with pytest.raises(RequestRejected) as caught:
            service.job_result(body["id"])
        assert caught.value.code == "pending"
        assert caught.value.http_status == 409
        _wait_done(service, body["id"])
        status, _ = service.job_result(body["id"])
        assert status == 200

    def test_malformed_submit_raises_and_counts(self, inline_service):
        service = inline_service()
        with pytest.raises(RequestRejected) as caught:
            service.submit({"net": {"name": "x"}})
        assert caught.value.http_status == 400
        assert 'outcome="malformed"' in service.metrics_text()


class TestAdmissionControl:
    def test_identical_inflight_submits_coalesce(self, inline_service):
        service = inline_service(chaos=ChaosConfig(slow_seconds=0.4, **SLOW))
        _, first = service.submit(tiny_payload("co"))
        _, second = service.submit(tiny_payload("co"))
        assert second["id"] == first["id"]
        assert 'outcome="coalesced"' in service.metrics_text()
        _wait_done(service, first["id"])

    def test_full_queue_sheds_with_retry_after(self, inline_service):
        service = inline_service(
            queue_limit=1, chaos=ChaosConfig(slow_seconds=0.6, **SLOW),
            retry_after_seconds=2.0,
        )
        _, first = service.submit(tiny_payload("shed-a"))
        # wait until the worker picked the first job up, so the second
        # lands in the queue rather than being shed itself.
        deadline = time.monotonic() + 10.0
        while service.job_status(first["id"])[1]["status"] == "queued":
            assert time.monotonic() < deadline
            time.sleep(0.01)
        service.submit(tiny_payload("shed-b"))
        with pytest.raises(RequestRejected) as caught:
            service.submit(tiny_payload("shed-c"))
        assert caught.value.code == "shed"
        assert caught.value.http_status == 429
        assert caught.value.retry_after == 2.0
        assert 'outcome="shed"' in service.metrics_text()
        # the shed request was refused, not half-admitted: it can be
        # submitted again once the queue clears.
        _wait_done(service, first["id"])
        status, body = service.submit(tiny_payload("shed-c", wait=True))
        assert status == 200

    def test_unstarted_service_refuses_as_draining(self):
        service = OptimizationService(ServiceConfig(supervision="inline"))
        with pytest.raises(RequestRejected) as caught:
            service.submit(tiny_payload("early"))
        assert caught.value.code == "draining"
        assert caught.value.http_status == 503

    def test_drained_service_refuses_but_still_serves_cache(
        self, inline_service
    ):
        service = inline_service()
        _, first = service.submit(tiny_payload("late", wait=True))
        assert service.drain() is True
        with pytest.raises(RequestRejected) as caught:
            service.submit(tiny_payload("other"))
        assert caught.value.code == "draining"
        # cache hits outrank the draining refusal: finished work stays
        # servable through shutdown.
        status, body = service.submit(tiny_payload("late", wait=True))
        assert status == 200
        assert body["cached"] is True
        assert body["result"] == first["result"]

    def test_wait_timeout_is_504_and_the_job_continues(self, inline_service):
        service = inline_service(
            wait_timeout=0.05, chaos=ChaosConfig(slow_seconds=0.5, **SLOW),
        )
        with pytest.raises(RequestRejected) as caught:
            service.submit(tiny_payload("slowpoke", wait=True))
        assert caught.value.code == "deadline"
        assert caught.value.http_status == 504
        # the job it mentions is pollable and finishes.
        job_id = caught.value.message.split("/v1/jobs/")[-1].rstrip(")")
        done = _wait_done(service, job_id)
        assert done["status"] == "done"


class TestSupervision:
    def test_inline_retry_recovers_a_first_attempt_raise(
        self, inline_service
    ):
        service = inline_service(
            retry=RetryPolicy(max_attempts=3, backoff_seconds=0.01, seed=1),
            chaos=ChaosConfig(rate=1.0, kinds=("raise",)),
        )
        status, body = service.submit(tiny_payload("flaky", wait=True))
        assert status == 200
        assert body["result"]["ok"] is True
        assert body["result"]["failure"] is None
        assert body["meta"]["attempts"] == 2

    def test_exhausted_retries_quarantine_into_a_structured_failure(
        self, inline_service
    ):
        service = inline_service(
            retry=RetryPolicy(max_attempts=1),
            chaos=ChaosConfig(rate=1.0, kinds=("raise",)),
        )
        status, body = service.submit(tiny_payload("doomed", wait=True))
        assert status == 200  # answered, not dropped
        result = body["result"]
        assert result["ok"] is False
        assert result["failure"] == {
            "error": "InjectedFault", "phase": "worker",
        }
        assert result["name"] == "doomed"
        assert 'status="failed"' in service.metrics_text()


class TestRecovery:
    def test_restart_serves_finished_work_and_reruns_pending(
        self, inline_service, tmp_path
    ):
        journal = tmp_path / "service.jsonl"
        first = inline_service(journal_path=journal)
        _, done_a = first.submit(tiny_payload("done-a", wait=True))
        _, done_b = first.submit(tiny_payload("done-b", wait=True))
        # abandon `first` without draining (the fixture reaps it later)
        # and journal a promise it never kept.
        pending_request = parse_request(tiny_payload("unfinished"))
        side = ServiceJournal.append_to(journal)
        side.record_accepted(
            pending_request.fingerprint(), pending_request, "job-99"
        )
        side.close()

        second = inline_service(journal_path=journal)
        assert second.recovered_results == 2
        assert second.recovered_jobs == 1
        assert 'outcome="recovered"' in second.metrics_text()

        status, body = second.submit(tiny_payload("done-a", wait=True))
        assert status == 200
        assert body["cached"] is True
        assert body["result"] == done_a["result"]

        # the recovered promise is kept: waiting on the same payload
        # coalesces onto the re-enqueued job and gets the real answer.
        status, body = second.submit(tiny_payload("unfinished", wait=True))
        assert status == 200
        assert body["result"]["name"] == "unfinished"
        assert body["result"]["ok"] is True

    def test_recovered_jobs_are_not_rejournalled(
        self, inline_service, tmp_path
    ):
        journal = tmp_path / "service.jsonl"
        request = parse_request(tiny_payload("once"))
        created = ServiceJournal.create(journal)
        created.record_accepted(request.fingerprint(), request, "job-1")
        created.close()

        service = inline_service(journal_path=journal)
        service.submit(tiny_payload("once", wait=True))
        service.drain()
        state = recover_journal(journal)
        lines = journal.read_text().splitlines()
        accepted = [line for line in lines if '"accepted"' in line]
        assert len(accepted) == 1
        assert state.pending == []  # the result record closed it out


class TestDrainAndProbes:
    def test_drain_flips_ready_and_closes_the_journal(
        self, inline_service, tmp_path
    ):
        journal = tmp_path / "service.jsonl"
        service = inline_service(journal_path=journal)
        status, body = service.ready()
        assert status == 200 and body["ready"] is True
        status, body = service.health()
        assert status == 200 and body["status"] == "ok"

        assert service.drain() is True
        assert service.drain() is True  # idempotent
        status, body = service.ready()
        assert status == 503 and body["ready"] is False
        status, _ = service.health()
        assert status == 200  # liveness never flips
        assert service._journal.closed

    def test_drain_finishes_queued_work_first(self, inline_service):
        service = inline_service(chaos=ChaosConfig(slow_seconds=0.3, **SLOW))
        _, a = service.submit(tiny_payload("drain-a"))
        _, b = service.submit(tiny_payload("drain-b"))
        assert service.drain() is True
        for job in (a, b):
            status, body = service.job_status(job["id"])
            assert body["status"] == "done"
            assert body is not None

    def test_events_are_emitted_when_a_sink_is_attached(self):
        events = []

        class Sink:
            def emit(self, record):
                events.append(record)

        service = OptimizationService(
            ServiceConfig(
                workers=1, supervision="inline",
                retry=RetryPolicy(max_attempts=1),
            ),
            events=Sink(),
        ).start()
        service.submit(tiny_payload("observed", wait=True))
        service.drain()
        kinds = [record["event"] for record in events]
        assert "service.accepted" in kinds
        assert "service.done" in kinds


class TestMetricsSurface:
    def test_prometheus_text_names_the_service_metrics(self, inline_service):
        service = inline_service()
        service.submit(tiny_payload("metrics", wait=True))
        text = service.metrics_text()
        for name in (
            "buffopt_service_requests_total",
            "buffopt_service_jobs_total",
            "buffopt_service_request_seconds",
            "buffopt_service_queue_depth",
            "buffopt_service_inflight_jobs",
        ):
            assert name in text
        assert 'outcome="accepted"' in text
        assert 'status="ok"' in text
