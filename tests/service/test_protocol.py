"""The wire contract: strict parsing, fingerprints, response shaping."""

from __future__ import annotations

import pytest

from repro.service import (
    PROTOCOL_VERSION,
    CanonicalRequest,
    RequestRejected,
    WorkPayload,
    error_response,
    execute_request,
    parse_request,
)
from repro.service.protocol import (
    ERROR_CODES,
    client_id,
    rejection_response,
    request_from_json,
    wants_wait,
)

from .conftest import tiny_payload


class TestParseRequest:
    def test_minimal_payload_gets_the_documented_defaults(self):
        request = parse_request(tiny_payload("n", sink_count=4, seed=9))
        assert request.net_name == "n"
        assert request.sink_count == 4
        assert request.seed == 9
        assert request.mode == "buffopt"
        assert request.engine == "reference"
        assert request.prune == "timing"
        assert request.max_buffers is None
        assert request.certify is False

    def test_every_field_round_trips_through_canonical_json(self):
        request = parse_request(tiny_payload(
            "rt", mode="delay", engine="fast", max_buffers=3,
            prune="pareto", min_slack=1e-12, deadline_seconds=5.0,
            max_candidates=1000, certify=True,
        ))
        assert request_from_json(request.to_json()) == request

    @pytest.mark.parametrize("mutate", [
        lambda p: [p],                                    # not an object
        lambda p: dict(p, max_bufers=4),                  # unknown top key
        lambda p: dict(p, net=dict(p["net"], extra=1)),   # unknown net key
        lambda p: {"net": {"name": "x", "sink_count": 3}},  # missing fields
        lambda p: dict(p, net=dict(p["net"], sink_count=0)),
        lambda p: dict(p, net=dict(p["net"], sink_count=True)),
        lambda p: dict(p, net=dict(p["net"], span=-1.0)),
        lambda p: dict(p, net=dict(p["net"], span="wide")),
        lambda p: dict(p, net=dict(p["net"], name="")),
        lambda p: dict(p, mode="warp"),
        lambda p: dict(p, engine="warp"),
        lambda p: dict(p, prune="vibes"),
        lambda p: dict(p, max_buffers=0),
        lambda p: dict(p, min_slack=float("nan")),
        lambda p: dict(p, deadline_seconds=0),
        lambda p: dict(p, max_candidates=0),
        lambda p: dict(p, certify="yes"),
        lambda p: dict(p, wait="true"),
        lambda p: dict(p, id=7),
    ])
    def test_invalid_payloads_reject_as_malformed_400(self, mutate):
        with pytest.raises(RequestRejected) as caught:
            parse_request(mutate(tiny_payload("bad")))
        assert caught.value.code == "malformed"
        assert caught.value.http_status == 400

    def test_envelope_fields_are_accepted_but_not_canonical(self):
        bare = parse_request(tiny_payload("env"))
        tagged = parse_request(tiny_payload("env", id="client-1", wait=True))
        assert tagged == bare
        assert tagged.fingerprint() == bare.fingerprint()

    def test_envelope_helpers(self):
        payload = tiny_payload("env", id="client-1", wait=True)
        assert client_id(payload) == "client-1"
        assert wants_wait(payload) is True
        assert client_id(tiny_payload("env")) is None
        assert wants_wait(tiny_payload("env")) is False
        assert wants_wait("garbage") is False


class TestFingerprint:
    def test_stable_across_equal_requests(self):
        one = parse_request(tiny_payload("f", seed=3))
        two = parse_request(tiny_payload("f", seed=3))
        assert one.fingerprint() == two.fingerprint()

    @pytest.mark.parametrize("extra", [
        {"engine": "fast"},
        {"mode": "delay"},
        {"max_buffers": 2},
        {"prune": "pareto"},
        {"deadline_seconds": 1.0},
        {"max_candidates": 10},
        {"certify": True},
        {"min_slack": 1e-12},
        {"max_segment_length": None},
    ])
    def test_every_solution_affecting_field_perturbs_it(self, extra):
        base = parse_request(tiny_payload("f"))
        other = parse_request(tiny_payload("f", **extra))
        assert base.fingerprint() != other.fingerprint()

    def test_net_identity_perturbs_it(self):
        base = parse_request(tiny_payload("f", sink_count=3, seed=1))
        assert base.fingerprint() != parse_request(
            tiny_payload("g", sink_count=3, seed=1)
        ).fingerprint()
        assert base.fingerprint() != parse_request(
            tiny_payload("f", sink_count=4, seed=1)
        ).fingerprint()
        assert base.fingerprint() != parse_request(
            tiny_payload("f", sink_count=3, seed=2)
        ).fingerprint()


class TestResultPayload:
    def test_executed_request_splits_result_from_meta(self):
        request = parse_request(tiny_payload("exec", sink_count=3, seed=5))
        response = execute_request(WorkPayload(request=request))
        result, meta = response["result"], response["meta"]
        assert set(result) == {
            "name", "ok", "sink_count", "node_count", "buffer_count",
            "slack", "noise_feasible", "assignment",
            "candidates_generated", "candidates_kept_peak", "certified",
            "failure",
        }
        assert result["name"] == "exec"
        assert result["ok"] is True
        assert result["failure"] is None
        assert isinstance(result["assignment"], dict)
        assert all(
            isinstance(k, str) and isinstance(v, str)
            for k, v in result["assignment"].items()
        )
        assert set(meta) == {"seconds", "attempts", "error_message"}
        assert meta["attempts"] == 1

    def test_result_is_deterministic_but_meta_is_not_compared(self):
        request = parse_request(tiny_payload("det", sink_count=4, seed=7))
        first = execute_request(WorkPayload(request=request))
        second = execute_request(WorkPayload(request=request), attempt=2)
        assert first["result"] == second["result"]
        assert second["meta"]["attempts"] == 2


class TestRejectionShapes:
    def test_every_error_code_maps_to_its_http_status(self):
        expected = {
            "malformed": 400, "not_found": 404, "method_not_allowed": 405,
            "pending": 409, "too_large": 413, "shed": 429,
            "draining": 503, "deadline": 504,
        }
        assert set(expected) == set(ERROR_CODES)
        for code, status in expected.items():
            assert RequestRejected(code, "x").http_status == status

    def test_unknown_code_is_a_programming_error(self):
        with pytest.raises(ValueError):
            RequestRejected("tuesday", "x")

    def test_rejection_response_carries_retry_after_only_when_set(self):
        shed = RequestRejected.shed("full", retry_after=2.5)
        body = rejection_response(shed)
        assert body == {
            "kind": "buffopt-service-error",
            "protocol": PROTOCOL_VERSION,
            "error": "shed",
            "message": "full",
            "retry_after": 2.5,
        }
        assert "retry_after" not in error_response("malformed", "nope")

    def test_canonical_request_is_frozen(self):
        request = CanonicalRequest(
            net_name="x", sink_count=2, span=0.001, seed=0
        )
        with pytest.raises(AttributeError):
            request.seed = 1
