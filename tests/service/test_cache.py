"""The service journal and its recovery semantics."""

from __future__ import annotations

import json

import pytest

from repro.errors import ServiceError
from repro.batch.checkpoint import TORN_TAIL_COUNTER
from repro.obs import MetricsRegistry
from repro.service import (
    ResultCache,
    ServiceJournal,
    parse_request,
    read_journal_header,
    recover_journal,
    tear_journal_tail,
)

from .conftest import tiny_payload


def _request(name="jnl", **extra):
    return parse_request(tiny_payload(name, **extra))


def _response(name="jnl"):
    return {
        "result": {"name": name, "ok": True},
        "meta": {"seconds": 0.01, "attempts": 1, "error_message": None},
    }


class TestJournalRoundtrip:
    def test_accepted_then_result_recovers_as_cache(self, tmp_path):
        path = tmp_path / "service.jsonl"
        journal = ServiceJournal.create(path)
        request = _request()
        fingerprint = request.fingerprint()
        journal.record_accepted(fingerprint, request, "job-1")
        journal.record_result(fingerprint, _response())
        journal.close()

        state = recover_journal(path)
        assert state.cache == {fingerprint: _response()}
        assert state.pending == []
        assert state.torn_tail is False

    def test_accepted_without_result_comes_back_pending_in_order(
        self, tmp_path
    ):
        path = tmp_path / "service.jsonl"
        journal = ServiceJournal.create(path)
        first, second = _request("a"), _request("b")
        journal.record_accepted(first.fingerprint(), first, "job-1")
        journal.record_accepted(second.fingerprint(), second, "job-2")
        journal.record_result(first.fingerprint(), _response("a"))
        journal.close()

        state = recover_journal(path)
        assert [req.net_name for _, req in state.pending] == ["b"]
        assert state.pending[0][0] == second.fingerprint()

    def test_duplicate_accepted_lines_deduplicate(self, tmp_path):
        path = tmp_path / "service.jsonl"
        journal = ServiceJournal.create(path)
        request = _request()
        journal.record_accepted(request.fingerprint(), request, "job-1")
        journal.record_accepted(request.fingerprint(), request, "job-2")
        journal.close()
        assert len(recover_journal(path).pending) == 1

    def test_result_without_accepted_still_populates_cache(self, tmp_path):
        # the accepted line may have been a previous incarnation's torn
        # tail; the finished work is still good.
        path = tmp_path / "service.jsonl"
        journal = ServiceJournal.create(path)
        journal.record_result("f" * 64, _response())
        journal.close()
        state = recover_journal(path)
        assert state.cache == {"f" * 64: _response()}
        assert state.pending == []

    def test_append_to_continues_an_existing_journal(self, tmp_path):
        path = tmp_path / "service.jsonl"
        ServiceJournal.create(path).close()
        journal = ServiceJournal.append_to(path)
        request = _request()
        journal.record_accepted(request.fingerprint(), request, "job-1")
        journal.close()
        assert len(recover_journal(path).pending) == 1

    def test_closed_journal_refuses_further_writes(self, tmp_path):
        journal = ServiceJournal.create(tmp_path / "service.jsonl")
        journal.close()
        assert journal.closed
        with pytest.raises(ServiceError, match="closed"):
            journal.record_result("f" * 64, _response())

    def test_fsync_flag_controls_the_fsync_calls(self, tmp_path, monkeypatch):
        import repro.service.cache as cache_module

        calls = []
        monkeypatch.setattr(
            cache_module.os, "fsync", lambda fd: calls.append(fd)
        )
        synced = ServiceJournal.create(tmp_path / "synced.jsonl", fsync=True)
        synced.record_result("a" * 64, _response())
        synced.close()
        assert len(calls) == 2  # header + result

        calls.clear()
        lazy = ServiceJournal.create(tmp_path / "lazy.jsonl", fsync=False)
        lazy.record_result("a" * 64, _response())
        lazy.close()
        assert calls == []
        # flush still happened: the record is on disk either way.
        assert len(recover_journal(tmp_path / "lazy.jsonl").cache) == 1


class TestHeaderValidation:
    def test_create_writes_a_valid_header(self, tmp_path):
        path = tmp_path / "service.jsonl"
        ServiceJournal.create(path).close()
        header = read_journal_header(path)
        assert header["journal"] == "service"

    @pytest.mark.parametrize("first_line", [
        "",                                            # empty file
        "not json\n",
        json.dumps({"kind": "header", "journal": "batch"}) + "\n",
        json.dumps(
            {"kind": "header", "journal": "service", "protocol": 99}
        ) + "\n",
    ])
    def test_bad_headers_raise_service_error(self, tmp_path, first_line):
        path = tmp_path / "bad.jsonl"
        path.write_text(first_line)
        with pytest.raises(ServiceError):
            read_journal_header(path)
        with pytest.raises(ServiceError):
            recover_journal(path)


class TestCorruption:
    def test_torn_tail_is_tolerated_counted_and_truncated(self, tmp_path):
        path = tmp_path / "service.jsonl"
        journal = ServiceJournal.create(path)
        request = _request()
        journal.record_result(request.fingerprint(), _response())
        journal.close()
        clean_size = path.stat().st_size
        tear_journal_tail(path)

        metrics = MetricsRegistry()
        state = recover_journal(path, metrics=metrics)
        assert state.torn_tail is True
        assert len(state.cache) == 1
        text = metrics.to_prometheus()
        assert TORN_TAIL_COUNTER in text
        assert 'journal="service"' in text
        # recovery truncates the fragment so later appends start a
        # fresh line instead of garbling it into interior corruption.
        assert path.stat().st_size == clean_size
        follow_up = ServiceJournal.append_to(path)
        follow_up.record_result("b" * 64, _response("later"))
        follow_up.close()
        assert len(recover_journal(path).cache) == 2

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "service.jsonl"
        journal = ServiceJournal.create(path)
        journal.record_result("a" * 64, _response())
        journal.close()
        lines = path.read_text().splitlines()
        lines.insert(1, '{"kind": "result", "fing')  # torn, NOT at the tail
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ServiceError, match="corrupt"):
            recover_journal(path)

    def test_fingerprint_mismatch_raises(self, tmp_path):
        path = tmp_path / "service.jsonl"
        journal = ServiceJournal.create(path)
        request = _request()
        journal.record_accepted("0" * 64, request, "job-1")  # wrong print
        journal.close()
        with pytest.raises(ServiceError, match="fingerprint"):
            recover_journal(path)

    def test_unknown_record_kind_raises(self, tmp_path):
        path = tmp_path / "service.jsonl"
        ServiceJournal.create(path).close()
        with path.open("a") as handle:
            handle.write(json.dumps({"kind": "gossip"}) + "\n")
        with pytest.raises(ServiceError, match="unknown"):
            recover_journal(path)

    def test_invalid_journalled_request_raises(self, tmp_path):
        path = tmp_path / "service.jsonl"
        ServiceJournal.create(path).close()
        with path.open("a") as handle:
            handle.write(json.dumps({
                "kind": "accepted",
                "fingerprint": "0" * 64,
                "job_id": "job-1",
                "request": {"net": {"name": "x"}},
            }) + "\n")
        with pytest.raises(ServiceError, match="invalid request"):
            recover_journal(path)


class TestResultCache:
    def test_get_counts_hits_and_peek_does_not(self):
        cache = ResultCache({"a": {"result": {}}})
        assert cache.peek("a") is not None
        assert cache.hits == 0
        assert cache.get("a") is not None
        assert cache.get("missing") is None
        assert cache.hits == 1
        cache.put("b", {"result": {}})
        assert len(cache) == 2
