"""Protocol v2: the objective block, canonicalization, and v1 compat.

The version bump's contracts:

* requests may carry one structured ``objective`` block, mutually
  exclusive with the top-level ``mode``/``min_slack`` it supersedes;
  unknown objective keys and service-inappropriate shapes (``pareto``)
  reject as malformed, never silently pass;
* canonicalization has exactly one spelling per request: legacy-shaped
  objectives serialize to the *v1 form* (no ``objective`` key), so
  fingerprints — and therefore caches and journals written by v1
  builds — keep hitting; non-legacy objectives drop the superseded
  top-level fields and round-trip through the journal form;
* journal headers from protocol 1 stay readable
  (:data:`~repro.service.COMPATIBLE_PROTOCOLS`), and recovery replays
  v1-shaped records unchanged;
* the worker threads a request objective into the batch layer.
"""

from __future__ import annotations

import pytest

from repro.core.objective import Objective
from repro.errors import ServiceError
from repro.service import (
    COMPATIBLE_PROTOCOLS,
    PROTOCOL_VERSION,
    RequestRejected,
    parse_request,
)
from repro.service.cache import (
    ServiceJournal,
    read_journal_header,
    recover_journal,
)
from repro.service.protocol import request_from_json
from repro.service.worker import batch_config_for

from .conftest import tiny_payload


def objective_payload(name="n", **objective):
    payload = tiny_payload(name)
    payload.pop("mode", None)
    payload["objective"] = objective
    return payload


class TestObjectiveBlock:
    def test_version_bump(self):
        assert PROTOCOL_VERSION == 2
        assert 1 in COMPATIBLE_PROTOCOLS
        assert PROTOCOL_VERSION in COMPATIBLE_PROTOCOLS

    def test_objective_block_parses(self):
        request = parse_request(objective_payload(
            mode="delay", selection="min-power", min_slack=0.1,
        ))
        assert request.objective == Objective(
            mode="delay", selection="min-power", min_slack=0.1
        )
        # The legacy mirrors stay coherent for downstream consumers.
        assert request.mode == "delay"
        assert request.min_slack == 0.1

    @pytest.mark.parametrize("mutate", [
        lambda p: dict(p, mode="delay"),          # mode alongside objective
        lambda p: dict(p, min_slack=0.0),         # superseded top-level key
        lambda p: dict(
            p, objective=dict(p["objective"], surprise=1)
        ),                                        # unknown objective key
        lambda p: dict(
            p, objective=dict(p["objective"], selection="pareto")
        ),                                        # frontier, not an answer
        lambda p: dict(p, objective="min-power"),  # not an object
        lambda p: dict(
            p, objective={"mode": "warp", "selection": "max-slack"}
        ),
    ])
    def test_bad_objective_payloads_reject_as_malformed(self, mutate):
        payload = mutate(objective_payload(
            mode="buffopt", selection="min-power"
        ))
        with pytest.raises(RequestRejected) as excinfo:
            parse_request(payload)
        assert excinfo.value.http_status == 400


class TestCanonicalization:
    def test_legacy_objective_canonicalizes_to_the_v1_form(self):
        """Same fingerprint as a plain mode request — v1 caches hit."""
        v1 = parse_request(tiny_payload("same", mode="delay"))
        v2 = parse_request(objective_payload(
            "same", mode="delay", selection="max-slack",
            require_noise=False,
        ))
        assert v2.objective.is_legacy()
        assert "objective" not in v2.to_json()
        assert v2.to_json() == v1.to_json()
        assert v2.fingerprint() == v1.fingerprint()

    def test_non_legacy_objective_round_trips_the_journal_form(self):
        request = parse_request(objective_payload(
            "rt", mode="buffopt", selection="power-capped",
            power_cap=2e-4,
        ))
        body = request.to_json()
        assert "mode" not in body
        assert "min_slack" not in body
        assert body["objective"]["selection"] == "power-capped"
        assert request_from_json(body) == request

    def test_distinct_objectives_fingerprint_apart(self):
        base = objective_payload(
            "fp", mode="buffopt", selection="min-power"
        )
        capped = objective_payload(
            "fp", mode="buffopt", selection="power-capped", power_cap=1e-4,
        )
        assert parse_request(base).fingerprint() != \
            parse_request(capped).fingerprint()


class TestJournalCompat:
    def test_v1_header_is_still_readable(self, tmp_path):
        path = tmp_path / "v1.jsonl"
        journal = ServiceJournal.create(path, fsync=False)
        journal.close()
        # Rewrite the header as a v1 build would have stamped it.
        lines = path.read_text().splitlines()
        lines[0] = lines[0].replace(
            f'"protocol": {PROTOCOL_VERSION}', '"protocol": 1'
        )
        path.write_text("\n".join(lines) + "\n")
        assert read_journal_header(path)["protocol"] == 1
        state = recover_journal(path)
        assert state.cache == {} and state.pending == []

    def test_alien_protocol_refused(self, tmp_path):
        path = tmp_path / "v9.jsonl"
        journal = ServiceJournal.create(path, fsync=False)
        journal.close()
        lines = path.read_text().splitlines()
        lines[0] = lines[0].replace(
            f'"protocol": {PROTOCOL_VERSION}', '"protocol": 9'
        )
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ServiceError, match="protocol"):
            read_journal_header(path)

    def test_objective_requests_survive_journal_recovery(self, tmp_path):
        path = tmp_path / "v2.jsonl"
        journal = ServiceJournal.create(path, fsync=False)
        request = parse_request(objective_payload(
            "pending", mode="delay", selection="min-power",
        ))
        journal.record_accepted(request.fingerprint(), request, "job-1")
        journal.close()
        state = recover_journal(path)
        assert state.pending == [(request.fingerprint(), request)]
        assert state.pending[0][1].objective == request.objective


class TestWorkerThreading:
    def test_objective_reaches_the_batch_config(self):
        request = parse_request(objective_payload(
            "w", mode="delay", selection="min-power", min_slack=0.1,
        ))
        config = batch_config_for(request)
        assert config.objective.selection == "min-power"
        assert config.mode == "delay"
        assert config.min_slack == 0.1

    def test_legacy_request_keeps_the_legacy_config_shape(self):
        request = parse_request(tiny_payload("w", mode="buffopt"))
        config = batch_config_for(request)
        assert config.objective.is_legacy()
        assert config.mode == "buffopt"
