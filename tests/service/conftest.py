"""Shared fixtures for the service-layer tests.

Everything here runs the real DP on tiny nets (2-4 sinks, ~1 mm spans)
— the service tests exercise the lifecycle, not the optimizer, so the
work units are kept as small as the engine allows.
"""

from __future__ import annotations

import pytest

from repro.batch.resilience import RetryPolicy
from repro.service import OptimizationService, ServiceConfig


def tiny_payload(name, sink_count=3, span=0.001, seed=1, **extra):
    """A small well-formed submit payload."""
    body = {
        "net": {
            "name": name,
            "sink_count": sink_count,
            "span": span,
            "seed": seed,
        },
    }
    body.update(extra)
    return body


@pytest.fixture
def make_payload():
    return tiny_payload


@pytest.fixture
def inline_service():
    """Factory for started inline-supervision services, drained on exit.

    Inline supervision keeps the lifecycle tests in-process and fast;
    the resilient (process-per-request) path is covered by the chaos
    acceptance test.
    """
    started = []

    def factory(**overrides):
        options = dict(
            workers=1,
            queue_limit=8,
            supervision="inline",
            retry=RetryPolicy(max_attempts=1),
            wait_timeout=30.0,
            drain_timeout=15.0,
        )
        options.update(overrides)
        service = OptimizationService(ServiceConfig(**options)).start()
        started.append(service)
        return service

    yield factory
    for service in started:
        service.drain(timeout=15.0)
