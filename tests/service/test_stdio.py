"""The stdin/stdout worker mode: envelopes, ops, drain-on-EOF."""

from __future__ import annotations

import io
import json

from repro.batch.resilience import RetryPolicy
from repro.service import OptimizationService, ServiceConfig, run_stdio

from .conftest import tiny_payload


def _service():
    return OptimizationService(ServiceConfig(
        workers=1, queue_limit=8, supervision="inline",
        retry=RetryPolicy(max_attempts=1), wait_timeout=30.0,
    )).start()


def _run(lines):
    """Feed ``lines`` (objects or raw strings) through a fresh service."""
    raw = "\n".join(
        line if isinstance(line, str) else json.dumps(line)
        for line in lines
    ) + "\n"
    stdout = io.StringIO()
    drained = run_stdio(_service(), stdin=io.StringIO(raw), stdout=stdout)
    envelopes = [
        json.loads(line) for line in stdout.getvalue().splitlines()
    ]
    assert all(
        env["kind"] == "buffopt-service-response" for env in envelopes
    )
    return drained, envelopes


class TestStdioSession:
    def test_full_session_one_envelope_per_line_in_order(self):
        net = tiny_payload("stdio-1")
        drained, envelopes = _run([
            {"op": "optimize", "request": dict(net, wait=False)},  # 202
            net,                              # bare line: wait implied, 200
            {"op": "status", "id": "job-1"},  # 200 done
            {"op": "result", "id": "job-1"},  # 200
            {"op": "health"},                 # 200
            {"op": "ready"},                  # 200
            {"op": "metrics"},                # 200
            "this is not json",               # 400, loop survives
            {"op": "result", "id": "job-9"},  # 404
            {"op": "result"},                 # 400: id required
            {"op": "teleport"},               # 400: unknown op
            {"op": "drain"},                  # 200, exits
        ])
        assert drained is True
        statuses = [env["status"] for env in envelopes]
        assert statuses == [
            202, 200, 200, 200, 200, 200, 200, 400, 404, 400, 400, 200,
        ]

        submitted, waited, status, result = (
            env["body"] for env in envelopes[:4]
        )
        assert submitted["kind"] == "buffopt-service-job"
        assert submitted["id"] == "job-1"
        assert waited["kind"] == "buffopt-service-result"
        assert waited["result"]["ok"] is True
        assert status["status"] == "done"
        assert result["result"] == waited["result"]

        metrics = envelopes[6]["body"]
        assert metrics["kind"] == "buffopt-service-metrics"
        assert "buffopt_service_requests_total" in metrics["prometheus"]

        final = envelopes[-1]["body"]
        assert final["kind"] == "buffopt-service-drained"
        assert final["drained"] is True

    def test_bare_payload_defaults_to_synchronous(self):
        _, envelopes = _run([tiny_payload("stdio-sync"), {"op": "drain"}])
        assert envelopes[0]["status"] == 200
        assert envelopes[0]["body"]["kind"] == "buffopt-service-result"

    def test_explicit_wait_false_stays_async(self):
        _, envelopes = _run([
            tiny_payload("stdio-async", wait=False), {"op": "drain"},
        ])
        assert envelopes[0]["status"] == 202

    def test_eof_without_drain_still_drains(self):
        drained, envelopes = _run([tiny_payload("stdio-eof")])
        assert drained is True
        assert len(envelopes) == 1

    def test_blank_lines_are_skipped(self):
        drained, envelopes = _run(["", "   ", {"op": "health"}])
        assert drained is True
        assert len(envelopes) == 1
        assert envelopes[0]["status"] == 200

    def test_malformed_submit_payload_is_a_400_envelope(self):
        _, envelopes = _run([
            {"net": {"name": "x"}},  # missing net fields
            {"op": "drain"},
        ])
        assert envelopes[0]["status"] == 400
        assert envelopes[0]["body"]["error"] == "malformed"
