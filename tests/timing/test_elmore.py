"""Tests for repro.timing.elmore — loads, wire delays, arrival times."""

import math

import pytest

from repro import AnalysisError, BufferType, TreeBuilder
from repro.timing import (
    arrival_times,
    max_sink_delay,
    node_loads,
    sink_delays,
    stage_count,
    wire_delay,
)
from repro.units import FF, PS, UM


@pytest.fixture
def buffer_b():
    return BufferType("b", 150.0, 12 * FF, 20 * PS, 0.8)


class TestWireDelay:
    def test_formula(self, y_tree):
        wire = y_tree.node("u").parent_wire
        load = 33 * FF
        expected = wire.resistance * (wire.capacitance / 2 + load)
        assert math.isclose(wire_delay(wire, load), expected)


class TestNodeLoads:
    def test_unbuffered_loads_sum_downstream(self, y_tree, tech):
        driven, upward = node_loads(y_tree)
        w1 = y_tree.node("s1").parent_wire
        w2 = y_tree.node("s2").parent_wire
        expected_u = w1.capacitance + 15 * FF + w2.capacitance + 25 * FF
        assert math.isclose(driven["u"], expected_u)
        assert math.isclose(upward["u"], expected_u)
        assert math.isclose(upward["s1"], 15 * FF)

    def test_source_driven_load_is_total(self, y_tree):
        driven, _ = node_loads(y_tree)
        assert math.isclose(driven["so"], y_tree.total_capacitance())

    def test_buffer_cuts_upward_load(self, y_tree, buffer_b):
        driven, upward = node_loads(y_tree, {"u": buffer_b})
        assert math.isclose(upward["u"], buffer_b.input_capacitance)
        # what the buffer itself drives is unchanged
        _, upward_plain = node_loads(y_tree)
        assert math.isclose(driven["u"], upward_plain["u"])

    def test_buffer_on_sink_rejected(self, y_tree, buffer_b):
        with pytest.raises(AnalysisError):
            node_loads(y_tree, {"s1": buffer_b})

    def test_buffer_on_unknown_node_rejected(self, y_tree, buffer_b):
        with pytest.raises(KeyError):
            node_loads(y_tree, {"nope": buffer_b})


class TestArrivalTimes:
    def test_hand_computed_two_pin(self, tech, driver):
        """so --1mm-- s : delay = Rd*(Cw+Cs) + Rw*(Cw/2+Cs) + dd."""
        from repro import two_pin_net

        net = two_pin_net(tech, 1000 * UM, driver, 10 * FF, 0.8)
        rw = tech.wire_resistance(1000 * UM)
        cw = tech.wire_capacitance(1000 * UM)
        expected = (
            driver.intrinsic_delay
            + driver.resistance * (cw + 10 * FF)
            + rw * (cw / 2 + 10 * FF)
        )
        assert math.isclose(sink_delays(net)["si"], expected, rel_tol=1e-12)

    def test_additivity_along_path(self, y_tree):
        """Path delay equals the sum of edge delays (footnote 4)."""
        arrivals = arrival_times(y_tree)
        _, upward = node_loads(y_tree)
        w_u = y_tree.node("u").parent_wire
        w_s1 = y_tree.node("s1").parent_wire
        driver_delay = y_tree.driver.gate_delay(
            node_loads(y_tree)[0]["so"]
        )
        expected = (
            driver_delay
            + wire_delay(w_u, upward["u"])
            + wire_delay(w_s1, upward["s1"])
        )
        assert math.isclose(arrivals["s1"], expected, rel_tol=1e-12)

    def test_without_driver_contribution(self, y_tree):
        with_d = arrival_times(y_tree, include_driver=True)
        without = arrival_times(y_tree, include_driver=False)
        gap = with_d["s1"] - without["s1"]
        assert gap > 0
        assert math.isclose(
            gap, with_d["s2"] - without["s2"], rel_tol=1e-12
        )

    def test_missing_driver_raises(self, tech):
        builder = TreeBuilder(tech)
        builder.add_source("so")
        builder.add_sink("s", capacitance=1 * FF, noise_margin=0.8)
        builder.add_wire("so", "s", length=10 * UM)
        tree = builder.build()
        with pytest.raises(AnalysisError):
            arrival_times(tree)
        assert arrival_times(tree, include_driver=False)["s"] > 0

    def test_buffer_decouples_far_branch(self, y_tree, buffer_b):
        """Buffering the long branch reduces the near sink's delay."""
        plain = sink_delays(y_tree)
        s2_wire_node = y_tree.node("s2").parent_wire.parent  # 'u'
        # buffer at u drives both sinks; instead check source load drop:
        buffered = sink_delays(y_tree, {"u": buffer_b})
        # s1/s2 see added buffer delay, but the source wire now carries
        # only Cb -> driver sees less load.
        arr_plain = arrival_times(y_tree)
        arr_buff = arrival_times(y_tree, {"u": buffer_b})
        assert arr_buff["u"] < arr_plain["u"]

    def test_long_net_buffering_reduces_delay(self, tech, driver, buffer_b):
        """Quadratic-vs-linear: a midpoint buffer helps a long wire."""
        from repro import two_pin_net

        net = two_pin_net(tech, 10000 * UM, driver, 20 * FF, 0.8, segments=2)
        unbuffered = max_sink_delay(net)
        buffered = max_sink_delay(net, {"n1": buffer_b})
        assert buffered < unbuffered


class TestStageCount:
    def test_counts_driver_plus_buffers(self, y_tree, buffer_b):
        assert stage_count(y_tree) == 1
        assert stage_count(y_tree, {"u": buffer_b}) == 2
