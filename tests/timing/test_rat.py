"""Tests for repro.timing.rat — footnote-6 RAT manipulations."""

import math

import pytest

from repro import AnalysisError, optimize_delay, segment_tree
from repro.timing import (
    budget_from_unbuffered,
    make_critical,
    set_uniform_rat,
    sink_delays,
    source_slack,
)
from repro.units import NS, UM


class TestSetUniformRat:
    def test_all_sinks_updated(self, y_tree):
        tree = set_uniform_rat(y_tree, 3 * NS)
        assert all(s.sink.required_arrival == 3 * NS for s in tree.sinks)

    def test_original_untouched(self, y_tree):
        original = [s.sink.required_arrival for s in y_tree.sinks]
        set_uniform_rat(y_tree, 3 * NS)
        assert [s.sink.required_arrival for s in y_tree.sinks] == original

    def test_uniform_rat_slack_is_rat_minus_worst_delay(self, y_tree):
        tree = set_uniform_rat(y_tree, 3 * NS)
        expected = 3 * NS - max(sink_delays(tree).values())
        assert math.isclose(source_slack(tree), expected, rel_tol=1e-12)


class TestMakeCritical:
    def test_single_finite_rat(self, y_tree):
        tree = make_critical(y_tree, "s2")
        rats = {s.name: s.sink.required_arrival for s in tree.sinks}
        assert math.isfinite(rats["s2"])
        assert math.isinf(rats["s1"])

    def test_unknown_sink_rejected(self, y_tree):
        with pytest.raises(AnalysisError):
            make_critical(y_tree, "nope")

    def test_optimizer_targets_critical_sink(self, y_tree, library):
        """Slack maximization with one critical sink minimizes that
        sink's delay; the optimum differs per chosen sink on an
        asymmetric tree (or at least never worsens it)."""
        base = segment_tree(y_tree, 400 * UM)
        for name in ("s1", "s2"):
            tree = make_critical(base, name)
            solution = optimize_delay(tree, library)
            optimized = sink_delays(tree, solution.buffer_map())[name]
            unbuffered = sink_delays(tree)[name]
            assert optimized <= unbuffered + 1e-15


class TestBudgetFromUnbuffered:
    def test_fraction_above_one_is_feasible(self, y_tree):
        tree = budget_from_unbuffered(y_tree, 1.1)
        assert source_slack(tree) > 0

    def test_fraction_below_one_is_infeasible_unbuffered(self, y_tree):
        tree = budget_from_unbuffered(y_tree, 0.8)
        assert source_slack(tree) < 0

    def test_floor_applies(self, y_tree):
        tree = budget_from_unbuffered(y_tree, 0.0001, floor=5 * NS)
        assert all(s.sink.required_arrival == 5 * NS for s in tree.sinks)

    def test_rejects_nonpositive_fraction(self, y_tree):
        with pytest.raises(AnalysisError):
            budget_from_unbuffered(y_tree, 0.0)
