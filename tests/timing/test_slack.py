"""Tests for repro.timing.slack — RAT propagation and q(so)."""

import math

import pytest

from repro import AnalysisError, BufferType, TreeBuilder
from repro.timing import (
    meets_timing,
    node_slacks,
    sink_delays,
    source_slack,
    worst_sink,
)
from repro.units import FF, NS, PS, UM


class TestSourceSlack:
    def test_equals_min_rat_minus_delay(self, y_tree):
        """The backward and forward computations must agree exactly."""
        delays = sink_delays(y_tree)
        expected = min(
            sink.sink.required_arrival - delays[sink.name]
            for sink in y_tree.sinks
        )
        assert math.isclose(source_slack(y_tree), expected, rel_tol=1e-12)

    def test_agreement_with_buffers(self, y_tree):
        buffer = BufferType("b", 150.0, 12 * FF, 20 * PS, 0.8)
        buffers = {"u": buffer}
        delays = sink_delays(y_tree, buffers)
        expected = min(
            sink.sink.required_arrival - delays[sink.name]
            for sink in y_tree.sinks
        )
        assert math.isclose(
            source_slack(y_tree, buffers), expected, rel_tol=1e-12
        )

    def test_infinite_rat_gives_infinite_slack(self, tech, driver):
        from repro import two_pin_net

        net = two_pin_net(tech, 1000 * UM, driver, 10 * FF, 0.8)
        assert math.isinf(source_slack(net))

    def test_missing_driver_raises(self, tech):
        builder = TreeBuilder(tech)
        builder.add_source("so")
        builder.add_sink("s", capacitance=1 * FF, noise_margin=0.8,
                         required_arrival=1 * NS)
        builder.add_wire("so", "s", length=10 * UM)
        with pytest.raises(AnalysisError):
            source_slack(builder.build())


class TestNodeSlacks:
    def test_sink_slack_is_rat(self, y_tree):
        slacks = node_slacks(y_tree)
        assert slacks["s1"] == y_tree.node("s1").sink.required_arrival

    def test_branch_takes_minimum(self, y_tree):
        slacks = node_slacks(y_tree)
        from repro.timing import node_loads, wire_delay

        _, upward = node_loads(y_tree)
        w1 = y_tree.node("s1").parent_wire
        w2 = y_tree.node("s2").parent_wire
        expected = min(
            slacks["s1"] - wire_delay(w1, upward["s1"]),
            slacks["s2"] - wire_delay(w2, upward["s2"]),
        )
        assert math.isclose(slacks["u"], expected, rel_tol=1e-12)

    def test_slack_decreases_upstream(self, y_tree):
        slacks = node_slacks(y_tree)
        assert slacks["so"] < slacks["u"] < max(slacks["s1"], slacks["s2"])


class TestMeetsTiming:
    def test_infinite_rats_always_met(self, tech, driver):
        from repro import two_pin_net

        net = two_pin_net(tech, 9000 * UM, driver, 10 * FF, 0.8)
        assert meets_timing(net)

    def test_tight_rat_fails(self, tech, driver):
        from repro import two_pin_net

        net = two_pin_net(
            tech, 9000 * UM, driver, 10 * FF, 0.8, required_arrival=1 * PS
        )
        assert not meets_timing(net)

    def test_loose_rat_passes(self, tech, driver):
        from repro import two_pin_net

        net = two_pin_net(
            tech, 1000 * UM, driver, 10 * FF, 0.8, required_arrival=100 * NS
        )
        assert meets_timing(net)


class TestWorstSink:
    def test_identifies_binding_sink(self, tech, driver):
        builder = TreeBuilder(tech)
        builder.add_source("so", driver=driver)
        builder.add_internal("u")
        builder.add_wire("so", "u", length=100 * UM)
        builder.add_sink("near", capacitance=5 * FF, noise_margin=0.8,
                         required_arrival=1 * PS)  # tiny budget => binding
        builder.add_sink("far", capacitance=5 * FF, noise_margin=0.8,
                         required_arrival=10 * NS)
        builder.add_wire("u", "near", length=100 * UM)
        builder.add_wire("u", "far", length=5000 * UM)
        assert worst_sink(builder.build()) == "near"
