#!/usr/bin/env python
"""Mini microprocessor sweep: the paper's evaluation in miniature.

Generates a seeded 60-net population shaped like the paper's 500 nets
(Table I), runs BuffOpt and DelayOpt(1..4) over all of it, and prints the
reduced Tables I–IV.  ``python -m repro.cli all --nets 500`` runs the same
pipeline at full scale.

Run:  python examples/design_sweep.py
"""

from repro.experiments import (
    build_table1,
    build_table2,
    build_table3,
    build_table4,
    default_experiment,
    format_table1,
    format_table2,
    format_table3,
    format_table4,
    run_population,
)


def main() -> None:
    experiment = default_experiment(nets=60)
    print(f"generated {len(experiment.nets)} nets "
          f"(seed {experiment.workload.seed}); optimizing ...\n")
    run = run_population(experiment)

    print(format_table1(build_table1(experiment)))
    print()
    print(format_table2(build_table2(experiment, run)))
    print()
    print(format_table3(build_table3(run)))
    print()
    print(format_table4(build_table4(experiment, run)))

    print("\npaper shapes to look for:")
    print(" * Table II: detailed violations are a subset of metric ones; "
          "both zero after BuffOpt")
    print(" * Table III: DelayOpt(k) inserts more buffers yet stays noisy "
          "at small k")
    print(" * Table IV: the weighted delay penalty is a couple of percent "
          "at most")


if __name__ == "__main__":
    main()
