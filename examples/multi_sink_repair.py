#!/usr/bin/env python
"""Repair a multi-sink Steiner net three ways and compare.

Builds a 6-sink rectilinear Steiner net spanning several millimeters,
then:

* **Algorithm 2** — minimum-buffer noise avoidance (continuous buffer
  positions; timing is ignored);
* **DelayOpt** — Van Ginneken slack-optimal buffering (noise is ignored);
* **BuffOpt / Algorithm 3** — fewest buffers meeting *both* noise and
  timing.

The detailed transient verifier then adjudicates all three, reproducing
the paper's qualitative result: DelayOpt may stay noisy, the noise-aware
flows never do, and BuffOpt pays almost nothing in delay for it.

Run:  python examples/multi_sink_repair.py
"""

from repro import (
    CouplingModel,
    DriverCell,
    SinkSite,
    analyze_noise,
    buffopt_min_buffers,
    default_buffer_library,
    default_technology,
    insert_buffers_multi_sink,
    optimize_delay,
    segment_tree,
    steiner_tree,
)
from repro.analysis import DetailedNoiseAnalyzer
from repro.timing import max_sink_delay, source_slack
from repro.units import FF, MM, NS, PS, UM, format_time


def build_net(technology):
    sites = [
        SinkSite("alu_a", (5.5 * MM, 1.0 * MM), 22 * FF, 0.8, 1.5 * NS),
        SinkSite("alu_b", (6.0 * MM, 2.5 * MM), 15 * FF, 0.8, 1.5 * NS),
        SinkSite("lsu", (4.0 * MM, 5.0 * MM), 28 * FF, 0.8, 1.5 * NS),
        SinkSite("fpu", (1.5 * MM, 6.0 * MM), 15 * FF, 0.8, 1.5 * NS),
        SinkSite("dec", (2.5 * MM, 3.0 * MM), 8 * FF, 0.8, 1.5 * NS),
        SinkSite("rob", (0.5 * MM, 4.0 * MM), 15 * FF, 0.8, 1.5 * NS),
    ]
    driver = DriverCell("drv_x8", resistance=120.0, intrinsic_delay=30 * PS)
    return steiner_tree(technology, (0.0, 0.0), sites, driver=driver,
                        name="dispatch_bus")


def main() -> None:
    technology = default_technology()
    library = default_buffer_library()
    coupling = CouplingModel.estimation_mode(technology)
    analyzer = DetailedNoiseAnalyzer.estimation_mode(technology)

    raw = build_net(technology)
    print(f"net {raw.name}: {len(raw.sinks)} sinks, "
          f"{raw.total_wire_length() * 1e3:.2f} mm of wire")
    before = analyze_noise(raw, coupling)
    print(f"before: {len(before.violations)} metric violations, "
          f"unbuffered delay {format_time(max_sink_delay(raw))}\n")

    # --- Algorithm 2: pure noise avoidance, continuous positions ---------
    alg2 = insert_buffers_multi_sink(raw, library, coupling)
    tree2, solution2 = alg2.realize()
    report2 = analyzer.analyze(tree2, solution2.buffer_map())
    print(f"Algorithm 2: {alg2.buffer_count} buffers, "
          f"detailed verifier violations: {len(report2.violations)}, "
          f"delay {format_time(max_sink_delay(tree2, solution2.buffer_map()))}")

    # --- discrete flows share one segmented tree -------------------------
    tree = segment_tree(raw, 500 * UM)

    delay_only = optimize_delay(tree, library)
    noisy = analyze_noise(tree, coupling, delay_only.buffer_map())
    print(f"DelayOpt:    {delay_only.buffer_count} buffers, "
          f"metric violations: {len(noisy.violations)}, "
          f"delay {format_time(max_sink_delay(tree, delay_only.buffer_map()))}, "
          f"slack {format_time(source_slack(tree, delay_only.buffer_map()))}")

    buffopt = buffopt_min_buffers(tree, library, coupling)
    clean = analyzer.analyze(tree, buffopt.buffer_map())
    print(f"BuffOpt:     {buffopt.buffer_count} buffers, "
          f"detailed verifier violations: {len(clean.violations)}, "
          f"delay {format_time(max_sink_delay(tree, buffopt.buffer_map()))}, "
          f"slack {format_time(source_slack(tree, buffopt.buffer_map()))}")

    # Apples to apples (the Table IV methodology): rerun DelayOpt limited
    # to the same number of buffers BuffOpt chose.
    from repro.core import best_within_count, delay_opt_result

    matched = best_within_count(
        delay_opt_result(tree, library, max_buffers=buffopt.buffer_count),
        buffopt.buffer_count,
    )
    d_matched = max_sink_delay(tree, matched.buffer_map())
    d_buff = max_sink_delay(tree, buffopt.buffer_map())
    print(f"\nDelayOpt({buffopt.buffer_count}) matched-count delay: "
          f"{format_time(d_matched)}")
    print(f"delay penalty of noise awareness at matched buffer count: "
          f"{(d_buff - d_matched) / d_matched * 100:.2f} % "
          "(the paper reports < 2 % on average)")

    assert not report2.violated and not clean.violated
    print("noise-aware flows are clean under detailed verification.")


if __name__ == "__main__":
    main()
