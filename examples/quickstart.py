#!/usr/bin/env python
"""Quickstart: fix the noise on one long two-pin net.

Builds a 9 mm global wire in the default technology, shows that it
violates its 0.8 V noise margin under the paper's estimation-mode
aggressor assumptions, repairs it with Algorithm 1 (optimal single-sink
noise avoidance), and verifies the fix twice — with the Devgan metric and
with the detailed transient simulator.

Run:  python examples/quickstart.py
"""

from repro import (
    CouplingModel,
    DriverCell,
    analyze_noise,
    default_buffer_library,
    default_technology,
    insert_buffers_single_sink,
    two_pin_net,
)
from repro.analysis import DetailedNoiseAnalyzer
from repro.units import FF, MM, PS, format_length, format_voltage


def main() -> None:
    technology = default_technology()
    library = default_buffer_library()
    coupling = CouplingModel.estimation_mode(technology)

    print("== the net ==")
    net = two_pin_net(
        technology,
        length=9 * MM,
        driver=DriverCell("drv_x4", resistance=190.0, intrinsic_delay=33 * PS),
        sink_capacitance=20 * FF,
        noise_margin=0.8,
        name="quickstart",
    )
    print(f"9 mm two-pin net, coupling ratio {coupling.coupling_ratio}, "
          f"aggressor slope {coupling.slope / 1e9:.1f} V/ns")

    print("\n== before buffering ==")
    before = analyze_noise(net, coupling)
    print(before.describe())

    print("\n== Algorithm 1: optimal noise-avoidance buffering ==")
    solution = insert_buffers_single_sink(net, library, coupling)
    print(f"inserted {solution.buffer_count} buffers "
          f"(type {library.smallest_resistance().name}):")
    for placement in solution.placements:
        print(f"  {placement.buffer.name} at "
              f"{format_length(placement.distance_from_child)} above the sink "
              f"on wire {placement.parent}->{placement.child}")

    print("\n== after buffering: Devgan metric ==")
    buffered, discrete = solution.realize()
    after = analyze_noise(buffered, coupling, discrete.buffer_map())
    print(after.describe())

    print("\n== after buffering: detailed transient verification ==")
    analyzer = DetailedNoiseAnalyzer.estimation_mode(technology)
    detailed = analyzer.analyze(buffered, discrete.buffer_map())
    print(detailed.describe())
    for entry in detailed.entries:
        print(f"  {entry.node}: simulated peak {format_voltage(entry.peak)} "
              f"vs margin {format_voltage(entry.margin)}")

    assert not after.violated and not detailed.violated
    print("\nall noise constraints satisfied.")


if __name__ == "__main__":
    main()
