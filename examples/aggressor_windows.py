#!/usr/bin/env python
"""Fig. 2 in action: buffer insertion with known aggressor geometry.

Post-routing, a victim's neighbors are known: aggressors couple only
along the spans where they run parallel to the victim.  This example
builds an 11 mm victim crossed by three aggressors of different strength
and overlap (the paper's Fig. 2 situation), segments it with
``apply_aggressor_windows``, and compares:

* the **estimation-mode** fix (pre-routing assumption: one aggressor
  everywhere at coupling ratio 0.7) — conservative, more buffers;
* the **window-aware** fix — buffers only where the real coupling is.

Run:  python examples/aggressor_windows.py
"""

from repro import (
    Aggressor,
    CouplingModel,
    DriverCell,
    analyze_noise,
    default_buffer_library,
    default_technology,
    insert_buffers_single_sink,
    two_pin_net,
)
from repro.noise import AggressorWindow, apply_aggressor_windows
from repro.units import FF, MM, format_length, format_voltage


def main() -> None:
    technology = default_technology()
    library = default_buffer_library()
    estimation = CouplingModel.estimation_mode(technology)
    silent = CouplingModel.silent()

    victim = two_pin_net(
        technology, 11 * MM, DriverCell("drv", 250.0),
        sink_capacitance=18 * FF, noise_margin=0.8, name="victim",
    )

    print("== aggressor geometry (distance from the driver) ==")
    windows = [
        AggressorWindow("so", "si", 0.5 * MM, 4.0 * MM,
                        Aggressor(0.55, 7.2e9, name="bus_a")),
        AggressorWindow("so", "si", 3.0 * MM, 6.5 * MM,
                        Aggressor(0.35, 5.0e9, name="bus_b")),
        AggressorWindow("so", "si", 8.0 * MM, 9.5 * MM,
                        Aggressor(0.70, 9.0e9, name="clk_spine")),
    ]
    for window in windows:
        print(f"  {window.aggressor.name:<10} couples over "
              f"[{window.start / MM:.1f}, {window.end / MM:.1f}] mm "
              f"(ratio {window.aggressor.coupling_ratio}, "
              f"slope {window.aggressor.slope / 1e9:.1f} V/ns)")

    windowed = apply_aggressor_windows(victim, windows)
    print(f"\nFig. 2 segmentation: {sum(1 for _ in windowed.wires())} pieces "
          "(each coupled to a fixed aggressor set)")

    print("\n== noise under each model ==")
    est_noise = analyze_noise(victim, estimation)
    win_noise = analyze_noise(windowed, silent)
    print(f"estimation mode: peak {format_voltage(est_noise.peak_noise)} "
          f"({len(est_noise.violations)} violations)")
    print(f"window-aware:    peak {format_voltage(win_noise.peak_noise)} "
          f"({len(win_noise.violations)} violations)")

    print("\n== Algorithm 1 fixes, side by side ==")
    est_fix = insert_buffers_single_sink(victim, library, estimation)
    win_fix = insert_buffers_single_sink(windowed, library, silent)
    print(f"estimation mode: {est_fix.buffer_count} buffers")
    for p in est_fix.placements:
        print(f"   at {format_length(p.distance_from_child)} above the sink")
    print(f"window-aware:    {win_fix.buffer_count} buffers")
    for p in win_fix.placements:
        print(f"   at {format_length(p.distance_from_child)} above the sink")

    buffered, discrete = win_fix.realize()
    after = analyze_noise(buffered, silent, discrete.buffer_map())
    assert not after.violated
    print("\nwindow-aware fix verified clean; knowing the geometry saved "
          f"{est_fix.buffer_count - win_fix.buffer_count} buffer(s).")


if __name__ == "__main__":
    main()
