#!/usr/bin/env python
"""Walk through the Devgan noise metric on the paper's Fig. 3 example.

An abstract victim net with explicit per-wire resistances and
aggressor-induced currents (driver at ``so``, internal node ``a``, sinks
``s1`` and ``s2``).  Reproduces, step by step, the computation of
Section II-B: downstream currents (eq. 7), per-wire noise (eq. 8), sink
noise through the driver (eq. 9), and noise slacks (eq. 12) — then shows
Theorem 1's maximal noise-safe wire length on a physical wire.

Run:  python examples/noise_walkthrough.py
"""

from repro import CouplingModel, TreeBuilder, default_technology
from repro.core import max_safe_length, unloaded_max_length
from repro.noise import downstream_currents, noise_slacks, sink_noise
from repro.units import format_length


def fig3_example() -> None:
    print("== Fig. 3-style worked example ==")
    print("so --(R=4, I=1)--> a --(R=6, I=2)--> s1")
    print("                    \\--(R=10, I=3)--> s2     driver R = 2\n")

    builder = TreeBuilder()
    builder.add_source("so")
    builder.add_internal("a")
    builder.add_sink("s1", capacitance=0.0, noise_margin=50.0)
    builder.add_sink("s2", capacitance=0.0, noise_margin=50.0)
    builder.add_wire("so", "a", resistance=4.0, capacitance=0.0, current=1.0)
    builder.add_wire("a", "s1", resistance=6.0, capacitance=0.0, current=2.0)
    builder.add_wire("a", "s2", resistance=10.0, capacitance=0.0, current=3.0)
    tree = builder.build("fig3")
    model = CouplingModel.silent()  # currents are explicit on the wires

    currents = downstream_currents(tree, model)
    print("downstream currents I(v), eq. 7:")
    for name in ("s1", "s2", "a", "so"):
        print(f"  I({name}) = {currents[name]:g} A")

    print("\nnoise seen at each stage sink, eq. 9 (driver R = 2):")
    for entry in sink_noise(tree, model, driver_resistance=2.0):
        print(f"  Noise({entry.node}) = {entry.noise:g} V "
              f"(margin {entry.margin:g}, slack {entry.slack:g})")
    print("  by hand: Noise(s1) = 2*6 + 4*(0.5+5) + 6*1  = 40")
    print("           Noise(s2) = 2*6 + 4*(0.5+5) + 10*1.5 = 49")

    slacks = noise_slacks(tree, model)
    print("\nnoise slacks NS(v), eq. 12 (bottom-up):")
    for name in ("s1", "s2", "a", "so"):
        print(f"  NS({name}) = {slacks[name]:g} V")
    print("  feasibility at the driver: Rd * I(so) <= NS(so)  <=>  "
          f"Rd <= {slacks['so'] / currents['so']:.3f} Ohm")


def theorem1_example() -> None:
    print("\n== Theorem 1 on a physical wire ==")
    technology = default_technology()
    coupling = CouplingModel.estimation_mode(technology)
    unit_r = technology.unit_resistance
    unit_i = coupling.unit_current(technology.unit_capacitance)
    margin = 0.8

    ceiling = unloaded_max_length(unit_r, unit_i, margin)
    print(f"driverless ceiling sqrt(2*NM/(r*i)) = {format_length(ceiling)}")
    print(f"{'Rb (Ohm)':>10} {'L_max':>12}")
    for rb in (50.0, 100.0, 200.0, 400.0, 800.0):
        length = max_safe_length(rb, unit_r, unit_i, 0.0, margin)
        print(f"{rb:>10.0f} {format_length(length):>12}")
    print("every row plugs back into the noise expression at exactly the "
          "0.8 V slack — the boundary of feasibility.")


if __name__ == "__main__":
    fig3_example()
    theorem1_example()
