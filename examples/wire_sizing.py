#!/usr/bin/env python
"""Simultaneous wire sizing + buffer insertion (the Lillis extension).

The paper's DP descends from Lillis, Cheng and Lin [18], which sizes
wires and inserts buffers in one dynamic program.  This example runs the
engine three ways on a 10 mm timing-critical net —

* buffers only (the paper's BuffOpt),
* wire widths only (no buffers allowed),
* both together —

and shows the classic result: sizing and buffering are complementary
(wider wires cut resistance where buffers are not worth their delay),
with the combined run strictly best, and every run noise-clean.

Run:  python examples/wire_sizing.py
"""

from repro import (
    CouplingModel,
    DPOptions,
    DriverCell,
    default_buffer_library,
    default_technology,
    run_dp,
    segment_tree,
    two_pin_net,
)
from repro.core import WireSizingSpec
from repro.library import BufferLibrary, BufferType
from repro.noise import has_noise_violation
from repro.timing import max_sink_delay, source_slack
from repro.units import FF, MM, NS, PS, UM, format_time


def main() -> None:
    technology = default_technology()
    library = default_buffer_library()
    coupling = CouplingModel.estimation_mode(technology)
    spec = WireSizingSpec(widths=(1.0, 1.5, 2.0), area_fraction=0.7)

    net = two_pin_net(
        technology, 10 * MM,
        DriverCell("drv_x4", 190.0, 33 * PS),
        sink_capacitance=20 * FF, noise_margin=0.8,
        required_arrival=1.6 * NS, name="sized",
    )
    tree = segment_tree(net, 500 * UM)
    print(f"net: 10 mm, RAT 1.6 ns, unbuffered delay "
          f"{format_time(max_sink_delay(tree))}\n")

    def report(label, options, lib=library):
        result = run_dp(tree, lib, coupling, options)
        outcome = result.best()
        resized, solution = result.sized_solution(outcome)
        widened = len(outcome.wire_choices)
        clean = not has_noise_violation(resized, coupling, solution.buffer_map())
        print(f"{label:<22} slack {source_slack(resized, solution.buffer_map()) / PS:8.1f} ps   "
              f"buffers {outcome.buffer_count}   widened wires {widened:2d}   "
              f"noise {'clean' if clean else 'VIOLATED'}")
        return outcome

    from repro import InfeasibleError

    buffers_only = report(
        "buffers only", DPOptions(noise_aware=True)
    )
    # widths only: forbid buffers entirely (count capped at zero)
    try:
        report(
            "wire widths only",
            DPOptions(noise_aware=True, sizing=spec,
                      track_counts=True, max_buffers=0),
        )
    except InfeasibleError:
        print(f"{'wire widths only':<22} INFEASIBLE — no width assignment "
              "satisfies the noise margin.")
        print(f"{'':<22} (Theorem 1: only a restoring gate resets the "
              "noise budget; sizing alone cannot.)")
    combined = report(
        "buffers + widths", DPOptions(noise_aware=True, sizing=spec)
    )

    assert combined.slack >= buffers_only.slack - 1e-15
    print("\nthe combined optimization dominates the buffers-only run, as "
          "the Lillis formulation guarantees; sizing alone cannot even "
          "reach feasibility on a net this long.")


if __name__ == "__main__":
    main()
