"""Subgradient price updates and the Lagrangian dual bound.

The coordinator relaxes the shared-site capacity constraints into the
per-net objective: buffering a node of site *s* costs an extra
``lambda_s`` slack.  Each round the multipliers move along the
(negative) constraint subgradient and project back onto the
nonnegative orthant::

    lambda_s  <-  max(0, lambda_s + step * (usage_s - cap_s))

so overloaded sites get pricier, idle ones decay toward free.  For any
``lambda >= 0`` the relaxed problem upper-bounds the capacitated one::

    L(lambda) = sum_n max_x [slack_n(x) - lambda . use_n(x)]
                + lambda . cap
              >= OPT,

because subtracting ``lambda . (use - cap) <= 0`` from any feasible
``x`` only raises its score.  The per-net maxima are exactly what the
priced DP returns in delay mode, so the dual bound is free: it is the
priced slack total of any round plus ``lambda . cap`` (with
``lambda = 0`` that is just the uncoordinated round-0 total).

One subtlety keeps this sound: penalties ride the *slack* recurrence,
and branch merges take a min over children, so the DP actually
maximizes the min-over-sinks *path-priced* slack ``v_n(x)`` — penalties
on non-critical branches are absorbed by the merge.  That only helps:
``v_n(x) >= slack_n(x) - lambda . use_n(x)`` for every ``x``, hence
``sum_n max_x v_n(x) + lambda . cap >= L(lambda) >= OPT`` and the bound
above survives the absorption.  It does mean a priced root slack is
*not* simply the physical slack minus the summed prices — physical
slack must be re-derived on the tree (the fleet worker does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..errors import WorkloadError


@dataclass(frozen=True)
class PriceSchedule:
    """Step-size policy: constant ``step``, escalated by ``growth`` after
    ``patience`` consecutive rounds without max-violation progress.

    Escalation-on-stall is the practical fix for the classic constant-step
    failure mode where the multipliers oscillate around the feasible set
    without ever entering it.
    """

    step: float
    growth: float = 2.0
    patience: int = 2

    def __post_init__(self) -> None:
        if not self.step > 0.0:
            raise WorkloadError(f"price step must be > 0, got {self.step}")
        if not self.growth >= 1.0:
            raise WorkloadError(
                f"step growth must be >= 1, got {self.growth}"
            )
        if self.patience < 1:
            raise WorkloadError(
                f"stall patience must be >= 1, got {self.patience}"
            )


def update_prices(
    prices: Sequence[float],
    usage: Sequence[int],
    capacities: Sequence[int],
    step: float,
) -> Tuple[float, ...]:
    """One projected-subgradient step over every site."""
    if not (len(prices) == len(usage) == len(capacities)):
        raise WorkloadError(
            f"price/usage/capacity vectors disagree: "
            f"{len(prices)}/{len(usage)}/{len(capacities)}"
        )
    return tuple(
        max(0.0, price + step * (used - cap))
        for price, used, cap in zip(prices, usage, capacities)
    )


def lagrangian_bound(
    priced_total: float,
    prices: Sequence[float],
    capacities: Sequence[int],
) -> float:
    """``L(lambda)``: an upper bound on any capacity-feasible fleet's
    total slack, from one priced round's slack total."""
    if len(prices) != len(capacities):
        raise WorkloadError(
            f"price/capacity vectors disagree: "
            f"{len(prices)}/{len(capacities)}"
        )
    return priced_total + sum(
        price * cap for price, cap in zip(prices, capacities)
    )
