"""Planted coordinator bugs the fleet audit must catch — all of them.

A verification layer that has never caught a bug proves nothing.  In
the style of :mod:`repro.verify.mutations`, this module subclasses
:class:`~repro.fleet.coordinator.FleetCoordinator` through its three
sanctioned override seams and plants one realistic coordination bug per
seam:

* :class:`StalePricesFleetCoordinator` — dispatches the *previous*
  round's prices to the workers while recording the current ones (a
  classic cache-one-round-behind bug).  Caught by the audit's
  price-consistency re-run: the recorded prices do not reproduce the
  recorded outcome.
* :class:`CapacityOffByOneFleetCoordinator` — checks violations against
  ``capacity + 1`` (a ``<`` vs ``<=`` slip), converging one buffer too
  early.  Caught by recomputing true usage against true capacities on a
  ``feasible=True`` claim.
* :class:`DroppedNetFleetCoordinator` — silently drops the
  lexicographically last feasible net from usage accounting and
  re-optimization targeting (a fencepost in a sharded tally).  Caught
  because the audit recomputes usage from *every* net's assignment.

:func:`run_mutation_battery` runs honest + mutants over a battery of
fleets and reports per-mutant catches; the self-test asserts a 100%
catch rate and a clean honest audit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Type

from ..batch.optimizer import BatchItem
from .coordinator import FleetCoordinator, FleetNetState
from .sites import SiteMap
from .verify import audit_fleet


class StalePricesFleetCoordinator(FleetCoordinator):
    """Dispatches last round's prices; records this round's."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._previous_prices: Optional[Tuple[float, ...]] = None

    def _dispatch_prices(
        self, prices: Tuple[float, ...]
    ) -> Tuple[float, ...]:
        stale = self._previous_prices
        self._previous_prices = prices
        if stale is None:
            return prices  # round 0 has no previous round to be stale from
        return stale


class CapacityOffByOneFleetCoordinator(FleetCoordinator):
    """Believes every site holds one more buffer than it does."""

    def _capacities(self, site_map: SiteMap) -> Tuple[int, ...]:
        return tuple(cap + 1 for cap in site_map.capacities)


class DroppedNetFleetCoordinator(FleetCoordinator):
    """Loses the lexicographically last feasible net from the tally."""

    def _accounted(
        self, ok_states: Dict[str, FleetNetState]
    ) -> Dict[str, FleetNetState]:
        if not ok_states:
            return ok_states
        dropped = max(ok_states)
        return {
            name: state
            for name, state in ok_states.items()
            if name != dropped
        }


MUTATION_CLASSES: Tuple[Type[FleetCoordinator], ...] = (
    StalePricesFleetCoordinator,
    CapacityOffByOneFleetCoordinator,
    DroppedNetFleetCoordinator,
)


@dataclass(frozen=True)
class MutationCatch:
    """One mutant's fate over the whole battery."""

    mutant: str
    #: battery instances on which the audit flagged the mutant.
    caught_on: int
    instances: int
    #: first instance's violations (diagnostics for an escape).
    sample_violations: Tuple[str, ...]

    @property
    def caught(self) -> bool:
        return self.caught_on > 0


@dataclass(frozen=True)
class MutationBatteryReport:
    """Honest-baseline violations plus per-mutant catch records."""

    honest_violations: Tuple[Tuple[str, ...], ...]
    catches: Tuple[MutationCatch, ...]

    @property
    def honest_clean(self) -> bool:
        return all(not v for v in self.honest_violations)

    @property
    def all_caught(self) -> bool:
        return all(catch.caught for catch in self.catches)

    def describe(self) -> str:
        lines = [
            f"honest audit: "
            f"{'clean' if self.honest_clean else 'VIOLATIONS'} over "
            f"{len(self.honest_violations)} instance(s)"
        ]
        for catch in self.catches:
            verdict = (
                f"caught on {catch.caught_on}/{catch.instances}"
                if catch.caught
                else "ESCAPED"
            )
            lines.append(f"{catch.mutant}: {verdict}")
        return "\n".join(lines)


def run_mutation_battery(
    fleets: Sequence[Sequence[BatchItem]],
    coordinator_kwargs: Optional[dict] = None,
    mutants: Sequence[Type[FleetCoordinator]] = MUTATION_CLASSES,
) -> MutationBatteryReport:
    """Audit honest + every mutant coordinator over each fleet.

    ``fleets`` is a sequence of item lists (one fleet each);
    ``coordinator_kwargs`` is forwarded to every coordinator
    construction (config, library, executor, ...).  A mutant counts as
    *caught* when the audit flags it on at least one instance — planted
    bugs are latent by design and need contention to surface, which is
    why the battery runs many seeded instances.
    """
    kwargs = dict(coordinator_kwargs or {})
    honest_violations: List[Tuple[str, ...]] = []
    audit_context = {
        key: kwargs[key]
        for key in ("config", "library", "coupling", "technology",
                    "cells", "workload")
        if key in kwargs
    }
    for items in fleets:
        honest = FleetCoordinator(**kwargs)
        result = honest.coordinate(list(items))
        honest_violations.append(
            tuple(audit_fleet(result, list(items), **audit_context))
        )
    catches: List[MutationCatch] = []
    for mutant_cls in mutants:
        caught_on = 0
        sample: Tuple[str, ...] = ()
        for items in fleets:
            mutant = mutant_cls(**kwargs)
            result = mutant.coordinate(list(items))
            violations = audit_fleet(
                result, list(items), **audit_context
            )
            if violations:
                if not caught_on:
                    sample = tuple(violations)
                caught_on += 1
        catches.append(MutationCatch(
            mutant=mutant_cls.__name__,
            caught_on=caught_on,
            instances=len(fleets),
            sample_violations=sample,
        ))
    return MutationBatteryReport(
        honest_violations=tuple(honest_violations),
        catches=tuple(catches),
    )
