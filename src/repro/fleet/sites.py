"""Deterministic shared buffer-site capacity maps.

A :class:`SiteMap` answers one question — *which shared site does this
node of this net occupy, and how many buffers does that site hold?* —
as a pure function of the fleet's identity, so every worker process,
resumed incarnation, and auditor derives the identical map without any
coordination:

* the fleet **salt** folds every item's ``(name, seed)`` pair (sorted,
  so item order is irrelevant) through SHA-256;
* each net hashes into one of ``families`` net families; only nets in
  the same family contend for sites (``families=1``, the default, makes
  the whole fleet one shared fabric);
* each (net, node) pair hashes into one of the family's
  ``sites_per_family`` sites, so two nets' nodes can — and at any real
  contention level do — collide on the same site;
* site capacities derive from the same salt: ``base_capacity`` plus a
  salted residue in ``[0, capacity_spread]``.

Only *internal, feasible* nodes are buffer sites (the same eligibility
rule the DP engines and the exhaustive oracle use); sinks, sources, and
binarization dummies never consume capacity.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence, Tuple

from ..errors import WorkloadError
from ..tree.topology import RoutingTree
from ..workloads import GeneratedNet, NetSpec

#: finite price used to *ban* a site for one net during the repair pass.
#: Dwarfs any physical slack (seconds-scale arithmetic) while keeping
#: every candidate float finite, so no engine path ever sees an inf.
BAN_PRICE = 1e18


def _digest(text: str) -> int:
    return int.from_bytes(
        hashlib.sha256(text.encode("utf-8")).digest()[:8], "big"
    )


def item_seed_pairs(items: Iterable) -> Tuple[Tuple[str, int], ...]:
    """``(name, seed)`` identity pairs for any batch-item mix.

    Specs carry their explicit per-net seed; pre-built trees (and
    generated nets) contribute seed 0 — their identity is the name.
    """
    pairs = []
    for item in items:
        if isinstance(item, NetSpec):
            pairs.append((item.name, item.seed))
        elif isinstance(item, GeneratedNet):
            pairs.append((item.tree.name, 0))
        elif isinstance(item, RoutingTree):
            pairs.append((item.name, 0))
        else:
            raise WorkloadError(
                f"fleet items must be NetSpec / GeneratedNet / "
                f"RoutingTree, got {type(item).__name__}"
            )
    return tuple(sorted(pairs))


def fleet_salt(items: Iterable) -> str:
    """The fleet's identity digest (order-independent)."""
    joined = "|".join(f"{name}:{seed}" for name, seed in item_seed_pairs(items))
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class SiteMap:
    """A deterministic (net, node) -> shared-site mapping with capacities.

    ``sites`` is the *total* site count (``families * sites_per_family``);
    ``capacities`` has one entry per site.
    """

    families: int
    sites_per_family: int
    capacities: Tuple[int, ...]
    salt: str

    @property
    def sites(self) -> int:
        return self.families * self.sites_per_family

    def __post_init__(self) -> None:
        if self.families < 1:
            raise WorkloadError(
                f"families must be >= 1, got {self.families}"
            )
        if self.sites_per_family < 1:
            raise WorkloadError(
                f"sites_per_family must be >= 1, got {self.sites_per_family}"
            )
        if len(self.capacities) != self.sites:
            raise WorkloadError(
                f"capacities must cover all {self.sites} sites, got "
                f"{len(self.capacities)}"
            )
        if any(c < 0 for c in self.capacities):
            raise WorkloadError("site capacities must be >= 0")

    def family_of(self, net_name: str) -> int:
        if self.families == 1:
            return 0
        return _digest(f"{self.salt}|fam|{net_name}") % self.families

    def site_of(self, net_name: str, node_name: str) -> int:
        local = _digest(
            f"{self.salt}|site|{net_name}|{node_name}"
        ) % self.sites_per_family
        return self.family_of(net_name) * self.sites_per_family + local

    def usage(
        self, assignments: Mapping[str, Iterable[str]]
    ) -> Tuple[int, ...]:
        """Per-site buffer counts for ``{net_name: buffered node names}``."""
        counts = [0] * self.sites
        for net_name, nodes in assignments.items():
            for node_name in nodes:
                counts[self.site_of(net_name, node_name)] += 1
        return tuple(counts)

    def to_json(self) -> Dict[str, object]:
        return {
            "families": self.families,
            "sites_per_family": self.sites_per_family,
            "capacities": list(self.capacities),
            "salt": self.salt,
        }

    @classmethod
    def from_json(cls, record: Mapping[str, object]) -> "SiteMap":
        return cls(
            families=int(record["families"]),
            sites_per_family=int(record["sites_per_family"]),
            capacities=tuple(int(c) for c in record["capacities"]),
            salt=str(record["salt"]),
        )


def derive_site_map(
    items: Iterable,
    sites_per_family: int,
    families: int = 1,
    base_capacity: int = 2,
    capacity_spread: int = 0,
) -> SiteMap:
    """The fleet's canonical :class:`SiteMap` (a pure function of it).

    Capacities are ``base_capacity`` plus a per-site salted residue in
    ``[0, capacity_spread]``, so heterogeneous fabrics are one knob away
    while the default stays uniform.
    """
    if sites_per_family < 1:
        raise WorkloadError(
            f"sites_per_family must be >= 1, got {sites_per_family}"
        )
    if families < 1:
        raise WorkloadError(f"families must be >= 1, got {families}")
    if base_capacity < 0:
        raise WorkloadError(
            f"base_capacity must be >= 0, got {base_capacity}"
        )
    if capacity_spread < 0:
        raise WorkloadError(
            f"capacity_spread must be >= 0, got {capacity_spread}"
        )
    salt = fleet_salt(items)
    total = families * sites_per_family
    capacities = tuple(
        base_capacity + (_digest(f"{salt}|cap|{k}") % (capacity_spread + 1))
        for k in range(total)
    )
    return SiteMap(
        families=families,
        sites_per_family=sites_per_family,
        capacities=capacities,
        salt=salt,
    )


def node_prices_for(
    site_map: SiteMap,
    net_name: str,
    tree: RoutingTree,
    prices: Sequence[float],
    banned: Iterable[int] = (),
) -> Dict[str, float]:
    """The per-node ``site_prices`` dict one net's DP run should see.

    Only nonzero entries are emitted, so a zero price vector yields an
    empty dict — the bit-identity path.  ``banned`` sites (the repair
    pass) price at :data:`BAN_PRICE`, which no finite-slack alternative
    ever loses to.
    """
    banned_set = frozenset(banned)
    out: Dict[str, float] = {}
    for node in tree.nodes():
        if not node.is_internal or not node.feasible:
            continue
        site = site_map.site_of(net_name, node.name)
        if site in banned_set:
            out[node.name] = BAN_PRICE
            continue
        price = prices[site] if prices else 0.0
        if price != 0.0:
            out[node.name] = price
    return out
