"""DP-free audit of a coordinated fleet's claims.

:func:`audit_fleet` re-derives everything a
:class:`~repro.fleet.coordinator.FleetResult` asserts, each check
through a path the coordinator did not take:

1. **fabric** — the site map must equal an independent
   :func:`~repro.fleet.sites.derive_site_map` of the same items;
2. **usage & feasibility** — per-site usage recomputed from *every*
   feasible net's assignment must match the claimed usage, and a
   ``feasible=True`` claim must respect the true capacities (this is
   what catches the capacity-off-by-one and dropped-net mutants);
3. **physics** — each net's ``true_slack`` / buffer count / noise
   verdict must survive the certificate evaluator
   (:func:`~repro.verify.certificate.evaluate_assignment`);
4. **price consistency** — the penalty (physical minus priced slack)
   must land inside the bounds the producing round's prices imply:
   non-negative, and at most the summed node prices over the buffered
   nodes (branch merges min over children, absorbing the non-critical
   side's penalties, so exact equality is *not* required); re-running
   the per-net DP under exactly those prices must also reproduce the
   recorded priced outcome (this catches the stale-prices mutant: the
   recorded prices were not the ones dispatched);
5. **duality** — in delay mode, ``primal_total <= dual_bound``.

Violations come back as human-readable strings, empty list = clean;
the mutation battery (:mod:`~repro.fleet.mutations`) asserts the honest
coordinator audits clean and every planted mutant does not.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import List, Optional, Sequence

from ..batch.optimizer import BatchItem, optimize_net
from ..library.buffers import BufferLibrary, default_buffer_library
from ..library.cells import CellLibrary, default_cell_library
from ..library.technology import Technology, default_technology
from ..noise.coupling import CouplingModel
from ..tree.segmenting import segment_tree
from ..tree.topology import RoutingTree
from ..verify.certificate import evaluate_assignment
from ..workloads.generator import (
    GeneratedNet,
    NetSpec,
    WorkloadConfig,
    generate_net_from_spec,
)
from .coordinator import FleetConfig, FleetResult
from .sites import derive_site_map, node_prices_for

REL_TOL = 1e-9
ABS_TOL = 1e-12


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=REL_TOL, abs_tol=ABS_TOL)


def audit_fleet(
    result: FleetResult,
    items: Sequence[BatchItem],
    config: Optional[FleetConfig] = None,
    library: Optional[BufferLibrary] = None,
    coupling: Optional[CouplingModel] = None,
    technology: Optional[Technology] = None,
    cells: Optional[CellLibrary] = None,
    workload: Optional[WorkloadConfig] = None,
    rerun: bool = True,
) -> List[str]:
    """Every way ``result`` disagrees with an independent re-derivation.

    ``items`` / ``config`` (and the library/coupling/workload context)
    must be what the coordinator ran with — defaults mirror
    :class:`~repro.fleet.coordinator.FleetCoordinator`'s.  ``rerun=False``
    skips the per-net DP re-runs of check 4 (the expensive part),
    keeping the structural, physical, and capacity checks.
    """
    config = config or FleetConfig()
    technology = technology or default_technology()
    library = library or default_buffer_library()
    coupling = coupling or CouplingModel.estimation_mode(technology)
    workload = workload or WorkloadConfig()
    cells = cells or default_cell_library(
        noise_margin=workload.noise_margin
    )
    batch = config.batch
    violations: List[str] = []

    # 1. fabric: the site map is a pure function of items + config.
    expected_map = derive_site_map(
        list(items),
        config.sites_per_family,
        config.families,
        config.base_capacity,
        config.capacity_spread,
    )
    if expected_map != result.site_map:
        violations.append(
            "site map mismatch: result's fabric is not the deterministic "
            f"derivation (expected capacities {expected_map.capacities}, "
            f"salt {expected_map.salt}; found {result.site_map.capacities}, "
            f"salt {result.site_map.salt})"
        )

    # Rebuild each net's work tree exactly as the worker does.
    trees = {}
    for item in items:
        if isinstance(item, NetSpec):
            item = generate_net_from_spec(item, workload, technology, cells)
        tree = item.tree if isinstance(item, GeneratedNet) else item
        if batch.max_segment_length is not None:
            tree = segment_tree(tree, batch.max_segment_length)
        trees[tree.name] = tree

    unknown = sorted(set(result.states) - set(trees))
    if unknown:
        violations.append(
            f"states for nets not in the fleet: {', '.join(unknown)}"
        )
    missing = sorted(set(trees) - set(result.states))
    if missing:
        violations.append(
            f"nets with no recorded state: {', '.join(missing)}"
        )

    # 2. usage and feasibility against the *true* fabric.
    counts = [0] * expected_map.sites
    for name, state in result.states.items():
        if not state.ok or state.result.assignment is None:
            continue
        for node in state.result.assignment:
            counts[expected_map.site_of(name, node)] += 1
    true_usage = tuple(counts)
    if true_usage != result.usage:
        violations.append(
            f"usage mismatch: recomputed {true_usage} from every feasible "
            f"net's assignment, result claims {result.usage}"
        )
    overloaded = [
        (site, used, cap)
        for site, (used, cap) in enumerate(
            zip(true_usage, expected_map.capacities)
        )
        if used > cap
    ]
    if result.feasible and overloaded:
        detail = ", ".join(
            f"site {site}: {used}/{cap}" for site, used, cap in overloaded
        )
        violations.append(
            f"feasibility claim refuted: true usage overloads {detail}"
        )

    cert_coupling = (
        coupling if batch.mode == "buffopt" else CouplingModel.silent()
    )
    for name in sorted(result.states):
        state = result.states[name]
        if not state.ok:
            continue
        tree = trees.get(name)
        if tree is None:
            continue
        assignment = dict(state.result.assignment or {})

        # 3. physics: the certificate evaluator re-derives true slack.
        certificate = evaluate_assignment(
            tree, assignment, cert_coupling,
            check_polarity=True,
        )
        if state.true_slack is None or not _close(
            certificate.slack, state.true_slack
        ):
            violations.append(
                f"net {name!r}: certified slack {certificate.slack!r} != "
                f"recorded true slack {state.true_slack!r}"
            )
        if certificate.buffer_count != state.result.buffer_count:
            violations.append(
                f"net {name!r}: certified buffer count "
                f"{certificate.buffer_count} != recorded "
                f"{state.result.buffer_count}"
            )
        if (
            batch.mode == "buffopt"
            and certificate.noise_feasible != state.result.noise_feasible
        ):
            violations.append(
                f"net {name!r}: certified noise verdict "
                f"{certificate.noise_feasible} != recorded "
                f"{state.result.noise_feasible}"
            )

        # 4. price consistency against the producing round's prices.
        if state.round_index >= len(result.rounds):
            violations.append(
                f"net {name!r}: round {state.round_index} has no record"
            )
            continue
        round_prices = result.rounds[state.round_index].prices
        node_prices = node_prices_for(
            expected_map, name, tree, round_prices, state.banned
        )
        max_penalty = sum(
            node_prices.get(node, 0.0) for node in assignment
        )
        slop = ABS_TOL + REL_TOL * abs(max_penalty)
        if not -slop <= state.penalty <= max_penalty + slop:
            violations.append(
                f"net {name!r}: penalty {state.penalty!r} outside "
                f"[0, {max_penalty!r}], the bounds implied by round "
                f"{state.round_index}'s prices"
            )
        if rerun:
            per_net = replace(
                batch, max_segment_length=None, keep_trees=False
            )
            fresh = optimize_net(
                tree, library, coupling, per_net,
                site_prices=node_prices or None,
            )
            if not fresh.ok:
                violations.append(
                    f"net {name!r}: re-run under its recorded prices "
                    f"failed ({fresh.error}) but a solution was recorded"
                )
            else:
                if not _close(fresh.slack, state.priced_slack):
                    violations.append(
                        f"net {name!r}: re-run priced slack "
                        f"{fresh.slack!r} != recorded "
                        f"{state.priced_slack!r} — the recorded prices "
                        "are not the prices this net was optimized under"
                    )
                # lishi/auto are only semantically equivalent — their
                # re-run may legitimately pick a different argmax, so
                # exact-assignment comparison is reference/fast only.
                if batch.engine in ("reference", "fast"):
                    fresh_assignment = {
                        node: buffer.name
                        for node, buffer in (fresh.assignment or {}).items()
                    }
                    recorded_assignment = {
                        node: buffer.name
                        for node, buffer in assignment.items()
                    }
                    if fresh_assignment != recorded_assignment:
                        violations.append(
                            f"net {name!r}: re-run assignment "
                            f"{sorted(fresh_assignment.items())} != recorded "
                            f"{sorted(recorded_assignment.items())}"
                        )

    # 5. weak duality (delay mode).
    if (
        batch.mode == "delay"
        and result.primal_total is not None
        and result.dual_bound is not None
        and result.primal_total
        > result.dual_bound + ABS_TOL + REL_TOL * abs(result.dual_bound)
    ):
        violations.append(
            f"weak duality violated: primal total {result.primal_total!r} "
            f"exceeds dual bound {result.dual_bound!r}"
        )
    return violations
