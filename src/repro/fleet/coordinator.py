"""The fleet round driver: price, re-optimize, repeat until feasible.

:class:`FleetCoordinator` couples the independent per-net DP runs of the
batch layer through shared buffer-site capacities.  Each **round**:

1. the violating nets (round 0: every net) re-optimize through the
   exact batch worker body (:func:`~repro.batch.optimizer.optimize_net`)
   with the current Lagrangian prices threaded in as per-node
   ``site_prices`` — any batch executor, same bit-identical worker;
2. the shared-site usage of the whole fleet is re-tallied and compared
   against capacity;
3. prices move one projected-subgradient step
   (:func:`~repro.fleet.pricing.update_prices`), with the step escalated
   on stall per the :class:`~repro.fleet.pricing.PriceSchedule`.

The loop stops at the first capacity-feasible round or after
``max_rounds``; an optional **repair pass** then forces feasibility by
deterministically banning (net, site) pairs — most-overloaded site,
heaviest user, name tiebreaks — and re-running just those nets.

Round state is checkpointable in the batch journal dialect (header +
JSONL; ``fleet_net`` records then one closing ``round`` record per
round).  Resume replays *closed* rounds only — net records of an
unfinished round are dropped and recomputed — so an interrupted run
converges to the bit-identical final state; the determinism currency is
:meth:`FleetNetState.net_result_signature`, byte-compatible with
:meth:`~repro.batch.optimizer.NetResult.signature`.

Every quantity the coordinator *claims* (usage, feasibility, prices,
penalties, the dual bound) is independently re-derivable by
:func:`~repro.fleet.verify.audit_fleet`, which is what keeps the three
planted coordinator mutants (:mod:`~repro.fleet.mutations`) detectable.
"""

from __future__ import annotations

import functools
import inspect
from dataclasses import dataclass, field, replace
from pathlib import Path
from time import perf_counter
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..batch.checkpoint import (
    CheckpointJournal,
    JournalReader,
    check_fingerprint,
    read_checkpoint_header,
    result_from_json,
    result_to_json,
)
from ..batch.executors import SerialExecutor
from ..batch.optimizer import (
    BatchConfig,
    BatchItem,
    FailureRecord,
    NetResult,
    failure_net_result,
    item_identity,
    optimize_net,
)
from ..errors import ReproError, WorkloadError
from ..library.buffers import BufferLibrary, default_buffer_library
from ..library.cells import CellLibrary, default_cell_library
from ..library.technology import Technology, default_technology
from ..noise.coupling import CouplingModel
from ..obs import NULL_TRACER, MetricsRegistry, Tracer
from ..tree.segmenting import segment_tree
from ..units import PS
from ..workloads.generator import (
    GeneratedNet,
    NetSpec,
    WorkloadConfig,
    generate_net_from_spec,
)
from .pricing import PriceSchedule, lagrangian_bound, update_prices
from .sites import SiteMap, derive_site_map, node_prices_for

#: obs names for the fleet loop (rows in docs/observability.md).
FLEET_ROUNDS_COUNTER = "buffopt_fleet_rounds_total"
FLEET_REOPT_COUNTER = "buffopt_fleet_reoptimized_nets_total"
FLEET_VIOLATION_HISTOGRAM = "buffopt_fleet_site_violation"
FLEET_PRICE_HISTOGRAM = "buffopt_fleet_site_price"
FLEET_MAX_VIOLATION_GAUGE = "buffopt_fleet_max_violation"

#: site-overload counts are small integers.
VIOLATION_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
#: prices live on the slack scale (seconds); ps-centered decades.
PRICE_BUCKETS = (1e-15, 1e-13, 1e-12, 1e-11, 1e-10, 1e-9, 1e-6)

_DEFAULT_SCHEDULE = PriceSchedule(step=1 * PS)


@dataclass(frozen=True)
class FleetConfig:
    """Shared-fabric model plus the coordination loop's knobs.

    ``batch`` is the per-net policy every DP run uses — the same object
    a :class:`~repro.batch.BatchOptimizer` would take, so a fleet with
    zero contention reproduces the uncoordinated batch bit-for-bit.
    """

    batch: BatchConfig = field(default_factory=BatchConfig)
    #: shared buffer sites per net family.
    sites_per_family: int = 8
    #: independent contention domains (nets hash into one each).
    families: int = 1
    #: buffers each site holds, before the salted spread.
    base_capacity: int = 2
    #: max salted extra capacity per site (0 = uniform fabric).
    capacity_spread: int = 0
    #: price-update rounds before giving up (round 0 included).
    max_rounds: int = 25
    #: subgradient step policy.
    schedule: PriceSchedule = _DEFAULT_SCHEDULE
    #: force feasibility by banning (net, site) pairs after the rounds.
    repair: bool = True
    #: after convergence, spend one full-fleet priced pass tightening
    #: the dual bound at the final prices (delay mode only).
    tight_bound: bool = False

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise WorkloadError(
                f"max_rounds must be >= 1, got {self.max_rounds}"
            )
        # sites/families/capacity knobs are validated by derive_site_map;
        # validate eagerly so bad configs fail at construction.
        derive_site_map(
            (),
            self.sites_per_family,
            self.families,
            self.base_capacity,
            self.capacity_spread,
        )


@dataclass(frozen=True)
class _FleetTask:
    """One net's work order for a round (picklable for Pool.map)."""

    item: BatchItem
    prices: Tuple[float, ...]
    banned: Tuple[int, ...]


@dataclass(frozen=True)
class _FleetSetup:
    """Worker-side context (pickled once per dispatch, not per net)."""

    library: BufferLibrary
    coupling: CouplingModel
    batch: BatchConfig
    workload: WorkloadConfig
    technology: Technology
    cells: CellLibrary
    site_map: SiteMap


@dataclass(frozen=True)
class _FleetNetOutcome:
    """What a fleet worker hands back: the priced DP result plus the
    certificate-derived *physical* slack of the chosen assignment.

    The two differ exactly when a priced node hosts a buffer: penalties
    ride the slack recurrence, where branch merges (min over children)
    absorb the non-critical side, so the physical slack cannot be
    recovered from the priced one arithmetically — it has to be
    re-derived on the tree, and the worker is the last place that still
    holds the tree.
    """

    result: NetResult
    #: physical slack (``None`` for failed nets); equals
    #: ``result.slack`` bit-for-bit on the unpriced path.
    true_slack: Optional[float]


def _fleet_item(setup: _FleetSetup, task: _FleetTask) -> _FleetNetOutcome:
    """Module-level worker body: materialize, segment, price, optimize.

    Segmentation happens *here* (then ``max_segment_length=None`` goes
    into :func:`optimize_net`) because prices key on the segmented
    tree's node names.  With empty prices and no bans this is the exact
    arithmetic of the batch worker, which is what makes round 0
    signature-identical to an uncoordinated :class:`BatchOptimizer` run.
    """
    item = task.item
    start = perf_counter()
    if isinstance(item, NetSpec):
        try:
            item = generate_net_from_spec(
                item, setup.workload, setup.technology, setup.cells
            )
        except ReproError as exc:
            return _FleetNetOutcome(
                result=failure_net_result(item, FailureRecord(
                    error=type(exc).__name__,
                    message=str(exc),
                    phase="generate",
                    attempts=1,
                    elapsed=perf_counter() - start,
                )),
                true_slack=None,
            )
    tree = item.tree if isinstance(item, GeneratedNet) else item
    if setup.batch.max_segment_length is not None:
        work_tree = segment_tree(tree, setup.batch.max_segment_length)
    else:
        work_tree = tree
    node_prices = node_prices_for(
        setup.site_map, work_tree.name, work_tree, task.prices, task.banned
    )
    per_net = replace(setup.batch, max_segment_length=None, keep_trees=False)
    result = optimize_net(
        work_tree,
        setup.library,
        setup.coupling,
        per_net,
        site_prices=node_prices or None,
    )
    true_slack = result.slack
    if (
        result.ok
        and result.assignment
        and any(node in node_prices for node in result.assignment)
    ):
        from ..verify.certificate import evaluate_assignment

        cert_coupling = (
            setup.coupling
            if setup.batch.mode == "buffopt"
            else CouplingModel.silent()
        )
        true_slack = evaluate_assignment(
            work_tree,
            dict(result.assignment),
            cert_coupling,
        ).slack
    return _FleetNetOutcome(result=result, true_slack=true_slack)


@dataclass(frozen=True)
class FleetNetState:
    """One net's latest coordinated outcome.

    ``result.slack`` is the *priced* slack the DP maximized;
    :attr:`true_slack` is the certificate-derived physical slack of the
    same assignment.  The two differ when priced nodes host buffers —
    and not by exactly the summed prices: branch merges take a min over
    children, absorbing penalties paid on the non-critical side, so the
    delta (:attr:`penalty`) is only *bounded* by the summed node prices.
    """

    result: NetResult
    #: the round whose prices this result was computed under.
    round_index: int
    #: physical slack re-derived on the tree (None for failed nets).
    true_slack: Optional[float]
    #: shared site of each buffered node, sorted, with multiplicity.
    sites_used: Tuple[int, ...]
    #: sites banned for this net by the repair pass.
    banned: Tuple[int, ...]

    @property
    def name(self) -> str:
        return self.result.name

    @property
    def ok(self) -> bool:
        return self.result.ok

    @property
    def priced_slack(self) -> Optional[float]:
        return self.result.slack

    @property
    def penalty(self) -> float:
        """Lagrangian penalty the DP actually paid: physical minus
        priced slack.  Satisfies ``0 <= penalty <= sum(node prices over
        buffered nodes)`` — both bounds are audited."""
        if self.result.slack is None or self.true_slack is None:
            return 0.0
        return self.true_slack - self.result.slack

    def net_result_signature(self) -> Tuple:
        """Exactly :meth:`NetResult.signature` — the cross-layer
        bit-identity currency (zero prices ≡ uncoordinated batch)."""
        return self.result.signature()

    def signature(self) -> Tuple:
        """Deterministic comparison key for the whole coordinated state."""
        return (
            self.net_result_signature(),
            self.round_index,
            self.true_slack,
            self.sites_used,
            self.banned,
        )


def _make_state(
    site_map: SiteMap,
    outcome: _FleetNetOutcome,
    round_index: int,
    banned: Tuple[int, ...],
) -> FleetNetState:
    result = outcome.result
    sites_used: List[int] = []
    if result.assignment:
        for node in sorted(result.assignment):
            sites_used.append(site_map.site_of(result.name, node))
    return FleetNetState(
        result=result,
        round_index=round_index,
        true_slack=outcome.true_slack,
        sites_used=tuple(sorted(sites_used)),
        banned=tuple(sorted(set(banned))),
    )


@dataclass(frozen=True)
class RoundRecord:
    """One closed round's claims (journaled; audited)."""

    index: int
    #: prices every re-optimized net ran under this round.
    prices: Tuple[float, ...]
    #: subgradient step in effect when this round's update fires.
    step: float
    #: nets re-optimized this round.
    reoptimized: int
    #: post-round fleet usage per site.
    usage: Tuple[int, ...]
    max_violation: int
    total_violation: int
    #: failed (no-solution) nets after this round, fleet-wide.
    failed: int
    #: priced slack summed over feasible nets.
    priced_total: float
    #: physical slack summed over feasible nets.
    true_total: float

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": "round",
            "index": self.index,
            "prices": list(self.prices),
            "step": self.step,
            "reoptimized": self.reoptimized,
            "usage": list(self.usage),
            "max_violation": self.max_violation,
            "total_violation": self.total_violation,
            "failed": self.failed,
            "priced_total": self.priced_total,
            "true_total": self.true_total,
        }

    @classmethod
    def from_json(cls, record: Mapping[str, Any]) -> "RoundRecord":
        return cls(
            index=int(record["index"]),
            prices=tuple(float(p) for p in record["prices"]),
            step=float(record["step"]),
            reoptimized=int(record["reoptimized"]),
            usage=tuple(int(u) for u in record["usage"]),
            max_violation=int(record["max_violation"]),
            total_violation=int(record["total_violation"]),
            failed=int(record["failed"]),
            priced_total=float(record["priced_total"]),
            true_total=float(record["true_total"]),
        )


@dataclass(frozen=True)
class _LoopState:
    """Everything the next round needs from the rounds before it."""

    prices: Tuple[float, ...]
    step: float
    stall: int
    best_violation: Optional[int]


@dataclass
class FleetResult:
    """The coordinated fleet: per-net states plus the loop's audit trail."""

    states: Dict[str, FleetNetState]
    site_map: SiteMap
    rounds: Tuple[RoundRecord, ...]
    #: a round ended capacity-feasible (before any repair).
    converged: bool
    #: the final usage respects capacity (possibly via repair).
    feasible: bool
    #: (net, site) bans the repair pass applied, in order.
    repaired: Tuple[Tuple[str, int], ...]
    #: final fleet usage per site.
    usage: Tuple[int, ...]
    #: prices the surviving states were computed under.
    prices: Tuple[float, ...]
    #: physical slack summed over feasible nets (None when none are).
    primal_total: Optional[float]
    #: Lagrangian upper bound on any feasible fleet's total slack
    #: (delay mode with a clean round 0 only).
    dual_bound: Optional[float]
    wall_seconds: float
    executor: str
    mode: str

    @property
    def ok_states(self) -> List[FleetNetState]:
        return [s for s in self.states.values() if s.ok]

    @property
    def failed_count(self) -> int:
        return sum(1 for s in self.states.values() if not s.ok)

    def schedule_log(self) -> Tuple[int, ...]:
        """Running-min max-violation per round — monotone non-increasing
        by construction (the property tests pin this down)."""
        log: List[int] = []
        best: Optional[int] = None
        for record in self.rounds:
            best = (
                record.max_violation
                if best is None
                else min(best, record.max_violation)
            )
            log.append(best)
        return tuple(log)

    def duality_gap(self) -> Optional[float]:
        if self.primal_total is None or self.dual_bound is None:
            return None
        return self.dual_bound - self.primal_total

    def signatures(self) -> Tuple[Tuple, ...]:
        return tuple(
            self.states[name].signature() for name in sorted(self.states)
        )

    def net_result_signatures(self) -> Tuple[Tuple, ...]:
        return tuple(
            self.states[name].net_result_signature()
            for name in sorted(self.states)
        )

    def to_json(self) -> Dict[str, Any]:
        """Machine-readable summary (``buffopt fleet --json``)."""
        return {
            "kind": "buffopt-fleet-report",
            "mode": self.mode,
            "executor": self.executor,
            "nets": len(self.states),
            "failed": self.failed_count,
            "sites": self.site_map.sites,
            "capacities": list(self.site_map.capacities),
            "usage": list(self.usage),
            "rounds": len(self.rounds),
            "reoptimizations": sum(r.reoptimized for r in self.rounds),
            "converged": self.converged,
            "feasible": self.feasible,
            "repaired": [list(pair) for pair in self.repaired],
            "prices": list(self.prices),
            "primal_total": self.primal_total,
            "dual_bound": self.dual_bound,
            "duality_gap": self.duality_gap(),
            "wall_seconds": self.wall_seconds,
        }

    def describe(self) -> str:
        lines = [
            f"fleet: {len(self.states)} nets over {self.site_map.sites} "
            f"shared sites, mode={self.mode}, executor={self.executor}",
            f"rounds: {len(self.rounds)} "
            f"({sum(r.reoptimized for r in self.rounds)} re-optimizations), "
            f"converged={self.converged}, feasible={self.feasible}",
            f"usage/capacity: {list(self.usage)} / "
            f"{list(self.site_map.capacities)}",
        ]
        if self.repaired:
            bans = ", ".join(f"{net}@s{site}" for net, site in self.repaired)
            lines.append(f"repair bans: {bans}")
        if self.primal_total is not None:
            lines.append(f"total slack: {self.primal_total:.3e} s")
        gap = self.duality_gap()
        if gap is not None:
            lines.append(
                f"dual bound: {self.dual_bound:.3e} s (gap {gap:.3e} s)"
            )
        if self.failed_count:
            lines.append(f"failed nets: {self.failed_count}")
        return "\n".join(lines)


class FleetCoordinator:
    """Price-coordinate a fleet of nets over shared buffer sites.

    Construction mirrors :class:`~repro.batch.BatchOptimizer` (the same
    defaults: 11-buffer library, estimation-mode coupling, synthetic
    workload context for spec materialization), plus the fleet knobs in
    :class:`FleetConfig`.

    The three protected hooks — :meth:`_dispatch_prices`,
    :meth:`_capacities`, :meth:`_accounted` — are identity functions
    here; :mod:`repro.fleet.mutations` overrides them to plant the
    coordinator bugs the audit battery must catch.  They are the *only*
    sanctioned override points.
    """

    def __init__(
        self,
        library: Optional[BufferLibrary] = None,
        coupling: Optional[CouplingModel] = None,
        config: Optional[FleetConfig] = None,
        executor=None,
        technology: Optional[Technology] = None,
        cells: Optional[CellLibrary] = None,
        workload: Optional[WorkloadConfig] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.technology = technology or default_technology()
        self.library = library or default_buffer_library()
        self.coupling = coupling or CouplingModel.estimation_mode(
            self.technology
        )
        self.config = config or FleetConfig()
        self.executor = executor or SerialExecutor()
        self.workload = workload or WorkloadConfig()
        self.cells = cells or default_cell_library(
            noise_margin=self.workload.noise_margin
        )
        self.tracer = tracer or NULL_TRACER
        self.metrics = metrics

    # -- mutation seams (see repro.fleet.mutations) ------------------------

    def _dispatch_prices(
        self, prices: Tuple[float, ...]
    ) -> Tuple[float, ...]:
        """The price vector handed to this round's workers."""
        return prices

    def _capacities(self, site_map: SiteMap) -> Tuple[int, ...]:
        """The capacity vector the loop checks violations against."""
        return site_map.capacities

    def _accounted(
        self, ok_states: Dict[str, FleetNetState]
    ) -> Dict[str, FleetNetState]:
        """The feasible states that participate in usage accounting and
        re-optimization targeting."""
        return ok_states

    # ----------------------------------------------------------------------

    def site_map_for(self, items: Iterable[BatchItem]) -> SiteMap:
        """The deterministic site map this fleet coordinates over."""
        return derive_site_map(
            list(items),
            self.config.sites_per_family,
            self.config.families,
            self.config.base_capacity,
            self.config.capacity_spread,
        )

    def _fingerprint(self, site_map: SiteMap) -> Dict[str, Any]:
        """Solution-relevant configuration for checkpoint compatibility
        (batch policy + fabric + schedule; the engine is excluded for
        the same reason as in the batch fingerprint)."""
        batch = self.config.batch
        return {
            "mode": batch.mode,
            "max_segment_length": batch.max_segment_length,
            "max_buffers": batch.max_buffers,
            "prune": batch.prune,
            "min_slack": batch.min_slack,
            "certify": batch.certify,
            "workload_seed": self.workload.seed,
            "sites_per_family": self.config.sites_per_family,
            "families": self.config.families,
            "capacities": list(site_map.capacities),
            "salt": site_map.salt,
            "max_rounds": self.config.max_rounds,
            "step": self.config.schedule.step,
            "growth": self.config.schedule.growth,
            "patience": self.config.schedule.patience,
        }

    def _setup(self, site_map: SiteMap) -> _FleetSetup:
        return _FleetSetup(
            library=self.library,
            coupling=self.coupling,
            batch=self.config.batch,
            workload=self.workload,
            technology=self.technology,
            cells=self.cells,
            site_map=site_map,
        )

    def _advance(self, loop: _LoopState, record: RoundRecord) -> _LoopState:
        """The deterministic loop-state transition after a closed round.

        Factored out so a resumed run folds it over the replayed round
        records and lands on the exact live-loop state.
        """
        schedule = self.config.schedule
        improved = (
            loop.best_violation is None
            or record.max_violation < loop.best_violation
        )
        best = (
            record.max_violation
            if improved
            else loop.best_violation
        )
        stall = 0 if improved else loop.stall + 1
        step = loop.step
        if stall >= schedule.patience:
            step *= schedule.growth
            stall = 0
        prices = update_prices(
            record.prices,
            record.usage,
            self._capacities_cached,
            step,
        )
        return _LoopState(
            prices=prices, step=step, stall=stall, best_violation=best
        )

    def _usage(
        self, site_map: SiteMap, states: Dict[str, FleetNetState]
    ) -> Tuple[int, ...]:
        counts = [0] * site_map.sites
        for state in states.values():
            for site in state.sites_used:
                counts[site] += 1
        return tuple(counts)

    def _round_record(
        self,
        index: int,
        loop: _LoopState,
        reoptimized: int,
        site_map: SiteMap,
        states: Dict[str, FleetNetState],
    ) -> RoundRecord:
        ok = {n: s for n, s in states.items() if s.ok}
        usage = self._usage(site_map, self._accounted(ok))
        caps = self._capacities_cached
        violations = [max(0, u - c) for u, c in zip(usage, caps)]
        priced_total = sum(s.priced_slack for s in ok.values())
        true_total = sum(s.true_slack for s in ok.values())
        return RoundRecord(
            index=index,
            prices=loop.prices,
            step=loop.step,
            reoptimized=reoptimized,
            usage=usage,
            max_violation=max(violations, default=0),
            total_violation=sum(violations),
            failed=len(states) - len(ok),
            priced_total=priced_total,
            true_total=true_total,
        )

    def _observe_round(self, record: RoundRecord) -> None:
        self.tracer.event(
            "fleet.round",
            index=record.index,
            reoptimized=record.reoptimized,
            max_violation=record.max_violation,
            total_violation=record.total_violation,
        )
        metrics = self.metrics
        if metrics is None:
            return
        mode = self.config.batch.mode
        metrics.counter(
            FLEET_ROUNDS_COUNTER,
            "fleet price-update rounds executed",
        ).inc(mode=mode)
        metrics.counter(
            FLEET_REOPT_COUNTER,
            "per-net DP re-optimizations spent by the fleet loop",
        ).inc(record.reoptimized, mode=mode)
        violation_hist = metrics.histogram(
            FLEET_VIOLATION_HISTOGRAM,
            "per-site overload (usage minus capacity, floored at 0) "
            "observed at each round close",
            buckets=VIOLATION_BUCKETS,
        )
        price_hist = metrics.histogram(
            FLEET_PRICE_HISTOGRAM,
            "per-site Lagrangian prices in effect at each round",
            buckets=PRICE_BUCKETS,
        )
        caps = self._capacities_cached
        for site, used in enumerate(record.usage):
            violation_hist.observe(max(0, used - caps[site]), mode=mode)
            price_hist.observe(record.prices[site], mode=mode)
        metrics.gauge(
            FLEET_MAX_VIOLATION_GAUGE,
            "worst per-site overload after the latest round",
        ).set(record.max_violation, mode=mode)

    def _run_targets(
        self,
        setup: _FleetSetup,
        by_name: Dict[str, BatchItem],
        targets: List[str],
        prices: Tuple[float, ...],
        banned: Dict[str, Tuple[int, ...]],
    ) -> List[_FleetNetOutcome]:
        tasks = [
            _FleetTask(
                item=by_name[name],
                prices=prices,
                banned=banned.get(name, ()),
            )
            for name in targets
        ]
        worker = functools.partial(_fleet_item, setup)
        if "on_result" in inspect.signature(self.executor.map).parameters:
            return self.executor.map(worker, tasks)
        return list(self.executor.map(worker, tasks))

    def coordinate(
        self,
        items: Iterable[BatchItem],
        checkpoint: Optional[Union[str, Path]] = None,
        resume: bool = False,
        checkpoint_fsync: bool = True,
    ) -> FleetResult:
        """Run the price-coordination loop over every item.

        ``checkpoint`` journals each completed net (``fleet_net``
        records) and each closed round (``round`` records) to a JSONL
        file in the batch checkpoint dialect; ``resume=True`` replays
        the journal's closed rounds and continues the loop from the
        next one.  The repair pass is deliberately *not* journaled —
        it is recomputed deterministically after resume, so the final
        states match an uninterrupted run bit-for-bit.
        """
        units = list(items)
        names = [item_identity(unit)[0] for unit in units]
        if len(set(names)) != len(names):
            raise WorkloadError("fleet items must have unique net names")
        by_name = dict(zip(names, units))
        site_map = self.site_map_for(units)
        self._capacities_cached = self._capacities(site_map)
        caps = self._capacities_cached
        setup = self._setup(site_map)
        schedule = self.config.schedule
        fingerprint = self._fingerprint(site_map)

        journal: Optional[CheckpointJournal] = None
        replayed_rounds: List[RoundRecord] = []
        replayed_results: List[Tuple[int, _FleetNetOutcome]] = []
        if resume and checkpoint is None:
            raise WorkloadError("resume=True requires a checkpoint path")
        if checkpoint is not None:
            path = Path(checkpoint)
            if resume and path.exists():
                replayed_rounds, replayed_results = _load_fleet_checkpoint(
                    path, self.library, fingerprint, metrics=self.metrics
                )
                journal = CheckpointJournal.append_to(
                    path, fingerprint, fsync=checkpoint_fsync
                )
            else:
                journal = CheckpointJournal.create(
                    path,
                    fingerprint,
                    fsync=checkpoint_fsync,
                    header_extra={"journal": "fleet"},
                )

        states: Dict[str, FleetNetState] = {}
        rounds: List[RoundRecord] = []
        loop = _LoopState(
            prices=(0.0,) * site_map.sites,
            step=schedule.step,
            stall=0,
            best_violation=None,
        )
        for record in replayed_rounds:
            rounds.append(record)
        # Replayed net records carry their journaled physical slack, so
        # a resumed state equals the live one field-for-field.
        for round_index, outcome in replayed_results:
            states[outcome.result.name] = _make_state(
                site_map, outcome, round_index, banned=()
            )
        for record in rounds:
            loop = self._advance(loop, record)

        executor_name = getattr(
            self.executor, "name", type(self.executor).__name__
        )
        start = perf_counter()
        converged = bool(rounds) and rounds[-1].max_violation == 0
        banned: Dict[str, Tuple[int, ...]] = {}
        with self.tracer.span(
            "fleet",
            nets=len(units),
            sites=site_map.sites,
            mode=self.config.batch.mode,
            executor=executor_name,
        ):
            try:
                index = len(rounds)
                while not converged and index < self.config.max_rounds:
                    targets = self._round_targets(names, rounds, states)
                    if not targets:
                        break
                    dispatch = self._dispatch_prices(loop.prices)
                    with self.tracer.span(
                        "fleet.round", index=index, nets=len(targets)
                    ):
                        results = self._run_targets(
                            setup, by_name, targets, dispatch, banned
                        )
                    for outcome in results:
                        states[outcome.result.name] = _make_state(
                            site_map, outcome, index, banned=()
                        )
                        if journal is not None:
                            record = result_to_json(outcome.result)
                            record["kind"] = "fleet_net"
                            record["round"] = index
                            record["true_slack"] = outcome.true_slack
                            journal._write(record)
                    record = self._round_record(
                        index, loop, len(targets), site_map, states
                    )
                    if journal is not None:
                        journal._write(record.to_json())
                    rounds.append(record)
                    self._observe_round(record)
                    converged = record.max_violation == 0
                    loop = self._advance(loop, record)
                    index += 1
            finally:
                if journal is not None:
                    journal.close()

            repaired: List[Tuple[str, int]] = []
            feasible = converged
            if not converged and self.config.repair and rounds:
                feasible = self._repair(
                    setup, by_name, site_map, states, rounds, banned, repaired
                )

            dual_bound = self._dual_bound(
                setup, by_name, names, site_map, rounds, loop
            )

        ok = {n: s for n, s in states.items() if s.ok}
        usage = self._usage(site_map, self._accounted(ok))
        final_prices = rounds[-1].prices if rounds else loop.prices
        primal_total = (
            sum(s.true_slack for s in ok.values()) if ok else None
        )
        return FleetResult(
            states=states,
            site_map=site_map,
            rounds=tuple(rounds),
            converged=converged,
            feasible=feasible,
            repaired=tuple(repaired),
            usage=usage,
            prices=final_prices,
            primal_total=primal_total,
            dual_bound=dual_bound,
            wall_seconds=perf_counter() - start,
            executor=executor_name,
            mode=self.config.batch.mode,
        )

    def _round_targets(
        self,
        names: List[str],
        rounds: List[RoundRecord],
        states: Dict[str, FleetNetState],
    ) -> List[str]:
        """The nets to re-optimize this round: everyone on round 0,
        afterwards the accounted feasible nets touching an overloaded
        site (sorted by name, so dispatch order is deterministic)."""
        if not rounds:
            return list(names)
        usage = rounds[-1].usage
        caps = self._capacities_cached
        overloaded = {
            site
            for site, used in enumerate(usage)
            if used > caps[site]
        }
        if not overloaded:
            return []
        ok = {n: s for n, s in states.items() if s.ok}
        accounted = self._accounted(ok)
        return sorted(
            name
            for name, state in accounted.items()
            if any(site in overloaded for site in state.sites_used)
        )

    def _repair(
        self,
        setup: _FleetSetup,
        by_name: Dict[str, BatchItem],
        site_map: SiteMap,
        states: Dict[str, FleetNetState],
        rounds: List[RoundRecord],
        banned: Dict[str, Tuple[int, ...]],
        repaired: List[Tuple[str, int]],
    ) -> bool:
        """Force feasibility by banning (net, site) pairs, worst first.

        Deterministic and serial: pick the most-overloaded site (lowest
        index on ties), ban it for its heaviest accounted user (smallest
        name on ties), re-run just that net under the final prices, and
        repeat.  Bounded by nets x sites bans; in delay mode the
        zero-buffer option guarantees progress, in buffopt mode a ban
        can turn a net infeasible (recorded, not raised).
        """
        caps = self._capacities_cached
        final_prices = rounds[-1].prices
        limit = len(by_name) * site_map.sites
        for _ in range(limit):
            ok = {n: s for n, s in states.items() if s.ok}
            accounted = self._accounted(ok)
            usage = self._usage(site_map, accounted)
            worst_site = None
            worst_overload = 0
            for site, used in enumerate(usage):
                overload = used - caps[site]
                if overload > worst_overload:
                    worst_site = site
                    worst_overload = overload
            if worst_site is None:
                return True
            users = sorted(
                (
                    (-state.sites_used.count(worst_site), name)
                    for name, state in accounted.items()
                    if worst_site in state.sites_used
                ),
            )
            if not users:
                return False  # claimed overload with no accounted user
            _, name = users[0]
            banned[name] = tuple(
                sorted(set(banned.get(name, ())) | {worst_site})
            )
            repaired.append((name, worst_site))
            outcome = _fleet_item(
                setup,
                _FleetTask(
                    item=by_name[name],
                    prices=final_prices,
                    banned=banned[name],
                ),
            )
            states[name] = _make_state(
                site_map,
                outcome,
                rounds[-1].index,
                banned=banned[name],
            )
        ok = {n: s for n, s in states.items() if s.ok}
        usage = self._usage(site_map, self._accounted(ok))
        return all(u <= c for u, c in zip(usage, caps))

    def _dual_bound(
        self,
        setup: _FleetSetup,
        by_name: Dict[str, BatchItem],
        names: List[str],
        site_map: SiteMap,
        rounds: List[RoundRecord],
        loop: _LoopState,
    ) -> Optional[float]:
        """L(lambda): free at lambda=0 from a clean round 0, optionally
        tightened with one full-fleet pass at the final prices.

        Delay mode only — the inner DP is an exact slack maximizer
        there, which is what makes the relaxation a true bound.
        """
        if self.config.batch.mode != "delay":
            return None
        if not rounds or rounds[0].index != 0:
            return None
        first = rounds[0]
        if first.failed or first.reoptimized != len(names):
            return None
        # lambda = 0: the uncoordinated total IS the Lagrangian bound.
        bound = lagrangian_bound(
            first.priced_total, first.prices, site_map.capacities
        )
        if not self.config.tight_bound:
            return bound
        final_prices = rounds[-1].prices
        results = self._run_targets(
            setup, by_name, list(names), final_prices, {}
        )
        if any(not outcome.result.ok for outcome in results):
            return bound
        priced_total = sum(outcome.result.slack for outcome in results)
        tight = lagrangian_bound(
            priced_total, final_prices, site_map.capacities
        )
        return min(bound, tight)


def _load_fleet_checkpoint(
    path: Union[str, Path],
    library: BufferLibrary,
    fingerprint: Dict[str, Any],
    metrics=None,
) -> Tuple[List[RoundRecord], List[Tuple[int, _FleetNetOutcome]]]:
    """Replay a fleet journal: closed rounds plus their net records.

    Only rounds closed by a ``round`` record (contiguous from 0) count;
    ``fleet_net`` records of an unfinished round are dropped — the
    resumed loop recomputes that round from scratch, deterministically.
    """
    path = Path(path)
    header = read_checkpoint_header(path)
    # Dialect before fingerprint: a batch journal would also fail the
    # fingerprint check, but "this is not a fleet journal" is the error
    # the operator can act on.
    if header.get("journal") != "fleet":
        raise WorkloadError(
            f"checkpoint {path} is not a fleet journal (its records "
            "describe a plain batch run); coordinate() cannot resume it"
        )
    check_fingerprint(header["fingerprint"], fingerprint, path)
    round_records: Dict[int, RoundRecord] = {}
    net_records: List[Tuple[int, _FleetNetOutcome]] = []
    reader = JournalReader(path, metrics=metrics, journal="fleet")
    for number, record in reader.records():
        kind = record.get("kind")
        if kind == "round":
            parsed = RoundRecord.from_json(record)
            round_records[parsed.index] = parsed
        elif kind == "fleet_net":
            raw_true = record.get("true_slack")
            net_records.append((
                int(record["round"]),
                _FleetNetOutcome(
                    result=result_from_json(record, library),
                    true_slack=(
                        None if raw_true is None else float(raw_true)
                    ),
                ),
            ))
        else:
            raise WorkloadError(
                f"checkpoint {path} line {number} has unexpected kind "
                f"{kind!r}"
            )
    closed: List[RoundRecord] = []
    index = 0
    while index in round_records:
        closed.append(round_records[index])
        index += 1
    horizon = len(closed)
    kept = [
        (round_index, result)
        for round_index, result in net_records
        if round_index < horizon
    ]
    return closed, kept
