"""Cross-net congestion-aware fleet optimization (Lagrangian prices).

Batch optimization treats every net as independent; real routing fabric
does not — buffer sites are shared, and a fleet that drops a repeater
wherever each net individually prefers oversubscribes the hot spots.
This package follows the Albrecht–Kahng–Măndoiu–Zelikovsky
multicommodity-flow direction, solved LP-free: a
:class:`FleetCoordinator` runs price-update rounds, each round
re-optimizing the violating nets through the existing per-net DP
engines with per-site Lagrangian cost offsets threaded in via
:attr:`~repro.core.dp.DPOptions.site_prices`.

Modules:

* :mod:`~repro.fleet.sites` — deterministic shared-site capacity maps
  derived from the fleet's :class:`~repro.workloads.NetSpec` seeds;
* :mod:`~repro.fleet.pricing` — the subgradient price-update recurrence
  and the Lagrangian dual bound;
* :mod:`~repro.fleet.coordinator` — the round driver (any batch
  executor, checkpointable round state, ``buffopt_fleet_*`` telemetry);
* :mod:`~repro.fleet.oracle` — an exhaustive joint oracle for tiny
  fleets (brute-force joint site assignments);
* :mod:`~repro.fleet.verify` — the DP-free fleet audit (capacity
  feasibility, physics re-derivation, price-consistency re-runs);
* :mod:`~repro.fleet.mutations` — planted coordinator bugs with a
  100%-catch-rate self-test, in the style of
  :mod:`repro.verify.mutations`.
"""

from .coordinator import (
    FleetConfig,
    FleetCoordinator,
    FleetNetState,
    FleetResult,
    RoundRecord,
)
from .mutations import (
    MUTATION_CLASSES,
    MutationBatteryReport,
    MutationCatch,
    run_mutation_battery,
)
from .oracle import JointOracleResult, joint_exhaustive_oracle
from .pricing import PriceSchedule, lagrangian_bound, update_prices
from .sites import BAN_PRICE, SiteMap, derive_site_map, node_prices_for
from .verify import audit_fleet

__all__ = [
    "BAN_PRICE",
    "FleetConfig",
    "FleetCoordinator",
    "FleetNetState",
    "FleetResult",
    "JointOracleResult",
    "MUTATION_CLASSES",
    "MutationBatteryReport",
    "MutationCatch",
    "PriceSchedule",
    "RoundRecord",
    "SiteMap",
    "audit_fleet",
    "derive_site_map",
    "joint_exhaustive_oracle",
    "lagrangian_bound",
    "node_prices_for",
    "run_mutation_battery",
    "update_prices",
]
