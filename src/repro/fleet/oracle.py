"""Exhaustive joint oracle for tiny coordinated fleets.

The coordinator's claims are only testable against ground truth if the
ground truth is computed a *different* way.  For fleets small enough to
brute-force — a few nets, a handful of shared sites — this module
computes the exact capacitated joint optimum:

1. per net, enumerate **every** legal buffer assignment through the
   certificate evaluator (:func:`~repro.verify.certificate
   .evaluate_assignment`) — the same physics the single-net
   :func:`~repro.verify.oracle.exhaustive_oracle` trusts, and zero
   shared code with the DP engines;
2. collapse each net's assignments to undominated ``(site-usage
   vector, best slack)`` options (the zero-buffer option is always
   present, so delay mode is always jointly feasible);
3. run an exact joint DP over capacity-bounded usage states.

Delay mode only: there the per-net DP is an exact slack maximizer, so
``primal <= joint optimum <= dual bound`` is the sandwich the battery
asserts.  The state space is bounded by ``prod(cap_s + 1)`` — tiny for
battery-sized fabrics — with explicit guards raising
:class:`~repro.verify.oracle.OracleBoundError` beyond them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..library.buffers import BufferLibrary, BufferType
from ..noise.coupling import CouplingModel
from ..tree.topology import RoutingTree
from ..verify.certificate import evaluate_assignment
from ..verify.oracle import OracleBoundError
from .sites import SiteMap

#: combined per-net enumeration guard (|library|+1) ** sites.
DEFAULT_MAX_ASSIGNMENTS = 300_000
#: joint-DP state guard (bounded by prod(cap+1) anyway).
DEFAULT_MAX_STATES = 250_000


@dataclass(frozen=True)
class JointOracleResult:
    """The exact capacitated joint optimum for a tiny fleet."""

    #: maximum total slack over all jointly capacity-feasible fleets.
    opt_total: float
    #: per-net slack contributions of one optimal joint choice.
    optimal_slacks: Tuple[Tuple[str, float], ...]
    #: shared-site usage of that optimal choice.
    optimal_usage: Tuple[int, ...]
    #: undominated (usage, slack) options that survived per net.
    options_per_net: Tuple[Tuple[str, int], ...]
    #: raw assignments evaluated per net.
    enumerated: int
    #: joint DP states explored.
    states_explored: int
    capacities: Tuple[int, ...]


def _net_options(
    tree: RoutingTree,
    site_map: SiteMap,
    library: BufferLibrary,
    coupling: CouplingModel,
    max_buffers: Optional[int],
    enforce_polarity: bool,
    max_assignments: int,
) -> Tuple[List[Tuple[Tuple[int, ...], float]], int]:
    """Undominated ``(usage vector, best slack)`` options for one net."""
    sites = tuple(sorted(
        node.name for node in tree.nodes()
        if node.is_internal and node.feasible
    ))
    buffers: Tuple[Optional[BufferType], ...] = (None, *library)
    total = len(buffers) ** len(sites)
    if total > max_assignments:
        raise OracleBoundError(
            f"net {tree.name!r} implies {total} joint-oracle assignments, "
            f"above the bound of {max_assignments}"
        )
    best_by_usage: Dict[Tuple[int, ...], float] = {}
    enumerated = 0
    for combo in itertools.product(buffers, repeat=len(sites)):
        enumerated += 1
        assignment = {
            site: buffer
            for site, buffer in zip(sites, combo)
            if buffer is not None
        }
        if max_buffers is not None and len(assignment) > max_buffers:
            continue
        certificate = evaluate_assignment(
            tree, assignment, coupling, check_polarity=enforce_polarity
        )
        if enforce_polarity and any(
            v.kind == "polarity" for v in certificate.violations
        ):
            continue  # illegal, not merely bad
        usage = [0] * site_map.sites
        for node in assignment:
            usage[site_map.site_of(tree.name, node)] += 1
        key = tuple(usage)
        slack = certificate.slack
        if key not in best_by_usage or slack > best_by_usage[key]:
            best_by_usage[key] = slack
    # Pareto reduction: an option is dead if another uses no more of any
    # site and achieves at least its slack (strictly better somewhere).
    options = sorted(best_by_usage.items())
    kept: List[Tuple[Tuple[int, ...], float]] = []
    for usage, slack in options:
        dominated = False
        for other_usage, other_slack in options:
            if (usage, slack) == (other_usage, other_slack):
                continue
            if (
                all(o <= u for o, u in zip(other_usage, usage))
                and other_slack >= slack
            ):
                dominated = True
                break
        if not dominated:
            kept.append((usage, slack))
    return kept, enumerated


def joint_exhaustive_oracle(
    trees: Sequence[RoutingTree],
    site_map: SiteMap,
    library: BufferLibrary,
    coupling: Optional[CouplingModel] = None,
    max_buffers: Optional[int] = None,
    enforce_polarity: bool = True,
    max_assignments: int = DEFAULT_MAX_ASSIGNMENTS,
    max_states: int = DEFAULT_MAX_STATES,
) -> JointOracleResult:
    """The exact joint optimum of a tiny capacitated fleet (delay mode).

    ``trees`` must be the exact trees the coordinator optimizes — i.e.
    already segmented if the fleet's batch config segments (the battery
    sidesteps this by running with ``max_segment_length=None``).
    Duplicate net names would alias in the site map and are rejected.
    """
    if coupling is None:
        coupling = CouplingModel.silent()
    names = [tree.name for tree in trees]
    if len(set(names)) != len(names):
        raise OracleBoundError("joint oracle requires unique net names")
    capacities = site_map.capacities

    per_net: List[Tuple[str, List[Tuple[Tuple[int, ...], float]]]] = []
    enumerated = 0
    for tree in trees:
        options, count = _net_options(
            tree,
            site_map,
            library,
            coupling,
            max_buffers,
            enforce_polarity,
            max_assignments,
        )
        enumerated += count
        per_net.append((tree.name, options))

    # Exact joint DP over capacity-bounded usage states; back-pointers
    # recover one optimal per-net slack split for diagnostics.
    states: Dict[Tuple[int, ...], Tuple[float, Tuple[float, ...]]] = {
        (0,) * site_map.sites: (0.0, ())
    }
    explored = 0
    for name, options in per_net:
        next_states: Dict[
            Tuple[int, ...], Tuple[float, Tuple[float, ...]]
        ] = {}
        for usage, (total, slacks) in states.items():
            for option_usage, slack in options:
                combined = tuple(
                    u + o for u, o in zip(usage, option_usage)
                )
                if any(c > cap for c, cap in zip(combined, capacities)):
                    continue
                explored += 1
                candidate = (total + slack, slacks + (slack,))
                best = next_states.get(combined)
                if best is None or candidate[0] > best[0]:
                    next_states[combined] = candidate
        if len(next_states) > max_states:
            raise OracleBoundError(
                f"joint oracle exceeded {max_states} DP states after net "
                f"{name!r}"
            )
        if not next_states:
            # Unreachable in delay mode: the zero-buffer option uses no
            # capacity, so the all-zero state always survives.
            raise OracleBoundError(
                f"no jointly feasible fleet after net {name!r}"
            )
        states = next_states

    best_usage, (best_total, best_slacks) = max(
        states.items(), key=lambda kv: (kv[1][0], kv[0])
    )
    return JointOracleResult(
        opt_total=best_total,
        optimal_slacks=tuple(
            (name, slack)
            for (name, _), slack in zip(per_net, best_slacks)
        ),
        optimal_usage=best_usage,
        options_per_net=tuple(
            (name, len(options)) for name, options in per_net
        ),
        enumerated=enumerated,
        states_explored=explored,
        capacities=capacities,
    )
