"""Binarization of Steiner topologies (paper footnote 1).

A routed Steiner topology may contain nodes with three (or, from degenerate
inputs, more) children.  The algorithms require binary trees, so each node
``v`` with children ``a, b, c`` is rewritten by inserting a *dummy
infeasible* node ``w``: two of the children become children of ``w``, and
``(v, w)`` is a zero-length wire.  Which pair moves under ``w`` does not
affect any algorithm's output (the wire is electrically nil and the node
cannot hold a buffer), so we deterministically take the last two.
"""

from __future__ import annotations

from typing import Dict, List

from .topology import Node, RoutingTree, Wire
from .transform import copy_node, copy_wire, fresh_name


def binarize(tree: RoutingTree) -> RoutingTree:
    """Return an equivalent binary tree (a copy; input is untouched).

    Already-binary trees are still copied, so callers can rely on getting
    an independent object.
    """
    copies: Dict[str, Node] = {n.name: copy_node(n) for n in tree.nodes()}
    taken = set(copies)
    new_nodes: List[Node] = list(copies.values())
    new_wires: List[Wire] = []

    for node in tree.preorder():
        parent_copy = copies[node.name]
        child_wires = [child.parent_wire for child in node.children]
        # Chain dummies until at most two children hang off each level.
        while len(child_wires) > 2:
            dummy = Node(
                name=fresh_name(f"{node.name}_bin", taken),
                feasible=False,
                position=node.position,
            )
            taken.add(dummy.name)
            new_nodes.append(dummy)
            # Keep the first child at this level; move the rest under the dummy.
            kept = child_wires[0]
            moved = child_wires[1:]
            assert kept is not None
            new_wires.append(
                copy_wire(kept, parent_copy, copies[kept.child.name])
            )
            new_wires.append(Wire(parent=parent_copy, child=dummy))  # zero length
            parent_copy = dummy
            child_wires = moved
        for wire in child_wires:
            assert wire is not None
            new_wires.append(copy_wire(wire, parent_copy, copies[wire.child.name]))

    return RoutingTree(new_nodes, new_wires, driver=tree.driver, name=tree.name)
