"""Wire segmenting preprocessing (Alpert–Devgan [1], paper footnote 3).

Van Ginneken-style algorithms consider at most one buffer per wire, so a
long wire must first be cut into shorter pieces, each cut point becoming a
*feasible* internal node (a legal buffer site).  Solution quality improves
monotonically with segmentation granularity at the cost of runtime — the
trade-off the paper cites from [1] and which ``benchmarks/bench_ablations.py``
sweeps.

:func:`segment_tree` cuts every wire longer than ``max_segment_length``
into equal pieces.  :func:`segment_count` reports how many pieces a wire
would get, which tests use to bound the node blow-up.
"""

from __future__ import annotations

import math
from typing import Dict, List

from ..errors import TreeStructureError
from .topology import Node, RoutingTree, Wire
from .transform import copy_node, copy_wire, fresh_name, split_wire


def segment_count(length: float, max_segment_length: float) -> int:
    """Number of equal pieces a wire of ``length`` is cut into."""
    if max_segment_length <= 0:
        raise TreeStructureError(
            f"max_segment_length must be positive, got {max_segment_length}"
        )
    if length <= 0:
        return 1
    # Tolerate float dust so e.g. 1000um / 100um is 10 pieces, not 11.
    return max(1, math.ceil(length / max_segment_length - 1e-9))


def segment_tree(tree: RoutingTree, max_segment_length: float) -> RoutingTree:
    """Return a copy of ``tree`` with no wire longer than the given limit.

    New cut-point nodes are named ``<parent>__seg<k>__<child>`` and are
    feasible buffer sites.  Zero-length wires (e.g. binarization dummies)
    pass through untouched.  Positions of new nodes interpolate linearly
    between the endpoints when both endpoints carry positions.
    """
    copies: Dict[str, Node] = {n.name: copy_node(n) for n in tree.nodes()}
    taken = set(copies)
    new_nodes: List[Node] = list(copies.values())
    new_wires: List[Wire] = []

    for wire in tree.wires():
        pieces = segment_count(wire.length, max_segment_length)
        parent_copy = copies[wire.parent.name]
        child_copy = copies[wire.child.name]
        if pieces == 1:
            new_wires.append(copy_wire(wire, parent_copy, child_copy))
            continue
        fractions = [k / pieces for k in range(1, pieces)]
        cut_nodes: List[Node] = []
        for index, fraction in enumerate(fractions, start=1):
            name = fresh_name(
                f"{wire.parent.name}__seg{index}__{wire.child.name}", taken
            )
            taken.add(name)
            position = _interpolate(wire, fraction)
            cut = Node(name=name, feasible=True, position=position)
            cut_nodes.append(cut)
            new_nodes.append(cut)
        rebased = copy_wire(wire, parent_copy, child_copy)
        new_wires.extend(split_wire(rebased, fractions, cut_nodes))

    return RoutingTree(
        new_nodes, new_wires, driver=tree.driver, name=tree.name,
        allow_nonbinary=not tree.is_binary,
    )


def _interpolate(wire: Wire, fraction: float):
    if wire.parent.position is None or wire.child.position is None:
        return None
    (x0, y0), (x1, y1) = wire.parent.position, wire.child.position
    return (x0 + (x1 - x0) * fraction, y0 + (y1 - y0) * fraction)
