"""Routing-tree data structures.

A :class:`RoutingTree` is the paper's ``T = (V, E)``: a binary tree with a
unique *source* node (the driver output), a set of *sink* nodes (gate input
pins) and *internal* nodes (potential buffer sites, Steiner points, wire
segmentation points).  Every non-source node has a unique parent wire
(paper Section II); a node has at most two children, and a single child is
the *left* child by convention.

Electrical annotations live directly on the structures:

* :class:`Wire` carries its length plus lumped resistance and capacitance
  (normally derived from a :class:`~repro.library.Technology` by the
  builder, but settable directly for textbook examples such as the paper's
  Fig. 3), and optionally an explicit aggressor-induced ``current`` or a
  :class:`~repro.noise.coupling.CouplingSpec` override.
* Sink nodes carry a :class:`SinkSpec` (pin capacitance, noise margin,
  required arrival time).
* The source carries the :class:`~repro.library.DriverCell` driving it.

Trees are built through :class:`~repro.tree.builder.TreeBuilder` (or the
transforms in :mod:`repro.tree.binary` / :mod:`repro.tree.segmenting`) and
validated once; afterwards they are treated as read-only by the algorithms,
which return :class:`~repro.core.solution.BufferSolution` objects instead of
mutating the input.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import TreeStructureError
from ..library.cells import DriverCell


@dataclass(frozen=True)
class SinkSpec:
    """Instance data of a sink pin.

    ``required_arrival`` defaults to ``+inf`` which, per the paper's
    footnote 6, makes the sink timing-uncritical while keeping it in the
    noise computation.
    """

    capacitance: float
    noise_margin: float
    required_arrival: float = math.inf

    def __post_init__(self) -> None:
        if self.capacitance < 0:
            raise TreeStructureError(
                f"sink capacitance must be >= 0, got {self.capacitance}"
            )
        if self.noise_margin <= 0:
            raise TreeStructureError(
                f"sink noise margin must be positive, got {self.noise_margin}"
            )


@dataclass
class Node:
    """A tree node.

    Exactly one of the following holds: the node is the source (``is_source``),
    a sink (``sink is not None``), or internal.  ``feasible`` marks whether a
    buffer may be placed here (paper: dummy binarization nodes and sink/source
    nodes are infeasible; wire-segmentation nodes are feasible).
    """

    name: str
    is_source: bool = False
    sink: Optional[SinkSpec] = None
    feasible: bool = True
    position: Optional[Tuple[float, float]] = None
    # Filled in by RoutingTree; not part of the public constructor contract.
    parent_wire: Optional["Wire"] = field(default=None, repr=False)
    children: List["Node"] = field(default_factory=list, repr=False)

    @property
    def is_sink(self) -> bool:
        return self.sink is not None

    @property
    def is_internal(self) -> bool:
        return not self.is_source and not self.is_sink

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def left(self) -> Optional["Node"]:
        """Left child (the only child when degree is one)."""
        return self.children[0] if self.children else None

    @property
    def right(self) -> Optional["Node"]:
        return self.children[1] if len(self.children) > 1 else None

    def __repr__(self) -> str:  # keep cycles out of the default repr
        kind = "source" if self.is_source else ("sink" if self.is_sink else "internal")
        return f"Node({self.name!r}, {kind})"


@dataclass
class Wire:
    """A directed wire from ``parent`` to ``child`` (signal flows downward).

    ``resistance`` / ``capacitance`` are the lumped totals for the wire.
    ``current`` is the total aggressor-induced noise current the wire
    injects (paper eq. 6); ``None`` means "derive from the coupling model"
    (see :mod:`repro.noise.coupling`).  ``coupling_ratio`` / ``slope``
    optionally override the technology defaults for this wire, which is how
    the Fig. 2 segmentation scheme expresses per-segment aggressor overlap.
    """

    parent: Node
    child: Node
    length: float = 0.0
    resistance: float = 0.0
    capacitance: float = 0.0
    current: Optional[float] = None
    coupling_ratio: Optional[float] = None
    slope: Optional[float] = None

    def __post_init__(self) -> None:
        if self.length < 0:
            raise TreeStructureError(f"wire length must be >= 0, got {self.length}")
        if self.resistance < 0:
            raise TreeStructureError(
                f"wire resistance must be >= 0, got {self.resistance}"
            )
        if self.capacitance < 0:
            raise TreeStructureError(
                f"wire capacitance must be >= 0, got {self.capacitance}"
            )
        if self.current is not None and self.current < 0:
            raise TreeStructureError(
                f"wire current must be >= 0, got {self.current}"
            )

    @property
    def name(self) -> str:
        return f"{self.parent.name}->{self.child.name}"

    def __repr__(self) -> str:
        return f"Wire({self.name})"


class RoutingTree:
    """A validated binary routing tree.

    Construction wires up parent/child links and checks every structural
    invariant from the paper's Section II.  Use :meth:`nodes`,
    :meth:`wires`, :meth:`postorder` etc. for traversal; node lookup is by
    name via :meth:`node`.
    """

    def __init__(
        self,
        nodes: Sequence[Node],
        wires: Sequence[Wire],
        driver: Optional[DriverCell] = None,
        name: str = "net",
        allow_nonbinary: bool = False,
    ):
        self.name = name
        self.driver = driver
        self._allow_nonbinary = allow_nonbinary
        self._nodes: Dict[str, Node] = {}
        for node in nodes:
            if node.name in self._nodes:
                raise TreeStructureError(f"duplicate node name {node.name!r}")
            node.parent_wire = None
            node.children = []
            self._nodes[node.name] = node
        self._wires: List[Wire] = list(wires)
        self._link()
        self._source = self._find_source()
        self._validate()

    # -- construction helpers ------------------------------------------------

    def _link(self) -> None:
        for wire in self._wires:
            for endpoint in (wire.parent, wire.child):
                if self._nodes.get(endpoint.name) is not endpoint:
                    raise TreeStructureError(
                        f"wire {wire.name} references node {endpoint.name!r} "
                        "that is not in this tree"
                    )
            if wire.child.parent_wire is not None:
                raise TreeStructureError(
                    f"node {wire.child.name!r} has multiple parent wires"
                )
            wire.child.parent_wire = wire
            wire.parent.children.append(wire.child)

    def _find_source(self) -> Node:
        sources = [n for n in self._nodes.values() if n.is_source]
        if len(sources) != 1:
            raise TreeStructureError(
                f"tree must have exactly one source, found {len(sources)}"
            )
        return sources[0]

    def _validate(self) -> None:
        source = self._source
        if source.parent_wire is not None:
            raise TreeStructureError("the source node may not have a parent wire")
        if source.is_sink:
            raise TreeStructureError("the source node may not also be a sink")
        for node in self._nodes.values():
            if len(node.children) > 2 and not self._allow_nonbinary:
                raise TreeStructureError(
                    f"node {node.name!r} has {len(node.children)} children; "
                    "binarize the tree first (repro.tree.binary)"
                )
            if node is not source and node.parent_wire is None:
                raise TreeStructureError(
                    f"node {node.name!r} is disconnected from the source"
                )
            if node.is_sink and node.children:
                raise TreeStructureError(
                    f"sink {node.name!r} must be a leaf, has "
                    f"{len(node.children)} children"
                )
            if node.is_internal and not node.children:
                raise TreeStructureError(
                    f"internal node {node.name!r} is a dangling leaf"
                )
        # reachability (also catches cycles among non-source components)
        seen = set()
        stack = [source]
        while stack:
            node = stack.pop()
            if node.name in seen:
                raise TreeStructureError(f"cycle detected at node {node.name!r}")
            seen.add(node.name)
            stack.extend(node.children)
        if len(seen) != len(self._nodes):
            missing = sorted(set(self._nodes) - seen)
            raise TreeStructureError(f"nodes unreachable from source: {missing}")

    # -- accessors -------------------------------------------------------------

    @property
    def source(self) -> Node:
        """The unique source node."""
        return self._source

    @property
    def is_binary(self) -> bool:
        """Whether every node has at most two children."""
        return all(len(n.children) <= 2 for n in self._nodes.values())

    @property
    def sinks(self) -> Tuple[Node, ...]:
        """All sink nodes, in deterministic (name-sorted) order."""
        return tuple(
            sorted((n for n in self._nodes.values() if n.is_sink), key=lambda n: n.name)
        )

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise KeyError(f"no node named {name!r} in tree {self.name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._nodes

    def nodes(self) -> Iterator[Node]:
        """All nodes in insertion order."""
        return iter(self._nodes.values())

    def wires(self) -> Iterator[Wire]:
        """All wires in insertion order."""
        return iter(self._wires)

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        n_sinks = sum(1 for n in self._nodes.values() if n.is_sink)
        return (
            f"RoutingTree({self.name!r}, nodes={len(self._nodes)}, "
            f"sinks={n_sinks}, wires={len(self._wires)})"
        )

    # -- traversals --------------------------------------------------------------

    def postorder(self) -> Iterator[Node]:
        """Children-before-parent traversal from the source (iterative)."""
        out: List[Node] = []
        stack = [self._source]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(node.children)
        return reversed(out)

    def preorder(self) -> Iterator[Node]:
        """Parent-before-children traversal from the source (iterative)."""
        stack = [self._source]
        while stack:
            node = stack.pop()
            yield node
            # reversed so the left child is visited first
            stack.extend(reversed(node.children))
        return

    def path_to_source(self, node: Node) -> List[Wire]:
        """Wires from ``node`` up to the source, bottom-up order."""
        wires: List[Wire] = []
        current = node
        while current.parent_wire is not None:
            wires.append(current.parent_wire)
            current = current.parent_wire.parent
        if current is not self._source:
            raise TreeStructureError(
                f"node {node.name!r} does not reach the source"
            )
        return wires

    def path(self, ancestor: Node, descendant: Node) -> List[Wire]:
        """Wires on ``path(ancestor, descendant)``, top-down order.

        Raises :class:`TreeStructureError` when ``ancestor`` is not actually
        an ancestor of ``descendant``.
        """
        wires: List[Wire] = []
        current = descendant
        while current is not ancestor:
            if current.parent_wire is None:
                raise TreeStructureError(
                    f"{ancestor.name!r} is not an ancestor of {descendant.name!r}"
                )
            wires.append(current.parent_wire)
            current = current.parent_wire.parent
        wires.reverse()
        return wires

    def subtree_nodes(self, root: Node) -> Iterator[Node]:
        """All nodes of the subtree rooted at ``root`` (preorder)."""
        stack = [root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def downstream_sinks(self, node: Node) -> Tuple[Node, ...]:
        """The paper's ``SI(v)``: sinks in the subtree rooted at ``node``."""
        return tuple(n for n in self.subtree_nodes(node) if n.is_sink)

    # -- aggregate electrical queries ---------------------------------------------

    def total_wire_length(self) -> float:
        return sum(w.length for w in self._wires)

    def total_wire_capacitance(self) -> float:
        return sum(w.capacitance for w in self._wires)

    def total_capacitance(self) -> float:
        """Wire plus sink pin capacitance (the paper ranked nets by this)."""
        return self.total_wire_capacitance() + sum(
            n.sink.capacitance for n in self._nodes.values() if n.sink is not None
        )
