"""Rectilinear Steiner-estimation topologies for synthetic nets.

The paper assumes "the input routing tree topology is fixed or that a
Steiner estimation has been computed for the given net" (Section II).  This
module provides that estimation for the synthetic workload: a rectilinear
minimum spanning tree over the terminals (Prim via :mod:`networkx`), rooted
at the source, with every tree edge realized as an L-shaped route (one
corner node).  Branch nodes of degree > 2 are binarized with dummy nodes
per the paper's footnote 1.

An MST is within 1.5x of the rectilinear Steiner minimum and is the
classic "Steiner estimation" used by timing tools of the paper's era; the
buffer-insertion algorithms are topology-agnostic, so this choice only
shapes the workload, not the algorithms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import networkx as nx

from ..errors import TreeStructureError
from ..library.cells import DriverCell
from ..library.technology import Technology
from .binary import binarize
from .builder import TreeBuilder
from .topology import RoutingTree


@dataclass(frozen=True)
class SinkSite:
    """A sink terminal for topology generation."""

    name: str
    position: Tuple[float, float]
    capacitance: float
    noise_margin: float
    required_arrival: float = math.inf


def manhattan(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    """Rectilinear distance between two points."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def steiner_tree(
    technology: Technology,
    source_position: Tuple[float, float],
    sinks: Sequence[SinkSite],
    driver: Optional[DriverCell] = None,
    name: str = "net",
) -> RoutingTree:
    """Build a binary rectilinear routing tree over the given terminals.

    Terminals at identical positions are connected with zero-length wires.
    The result is validated and binary, ready for segmentation and buffer
    insertion.
    """
    if not sinks:
        raise TreeStructureError("a net needs at least one sink")
    names = [s.name for s in sinks]
    if len(set(names)) != len(names):
        raise TreeStructureError(f"duplicate sink names in {names}")
    if "so" in set(names):
        raise TreeStructureError("sink name 'so' is reserved for the source")

    graph = nx.Graph()
    positions: Dict[str, Tuple[float, float]] = {"so": source_position}
    graph.add_node("so")
    for sink in sinks:
        positions[sink.name] = sink.position
        graph.add_node(sink.name)
    terminals = list(positions)
    for i, u in enumerate(terminals):
        for v in terminals[i + 1:]:
            graph.add_edge(u, v, weight=manhattan(positions[u], positions[v]))
    mst = nx.minimum_spanning_tree(graph, algorithm="prim")

    builder = TreeBuilder(technology)
    builder.add_source("so", driver=driver, position=source_position)
    by_name = {s.name: s for s in sinks}
    for sink in sinks:
        builder.add_sink(
            sink.name,
            capacitance=sink.capacitance,
            noise_margin=sink.noise_margin,
            required_arrival=sink.required_arrival,
            position=sink.position,
        )

    # Orient the MST away from the source and realize each edge as an L-route.
    corner_index = 0
    for parent, child in nx.bfs_edges(mst, "so"):
        (px, py), (cx, cy) = positions[parent], positions[child]
        # Sinks must stay leaves: when the MST routes *through* a sink,
        # hang the continuation off a zero-length internal twin instead.
        parent_attach = _attach_point(builder, parent, by_name)
        if px != cx and py != cy:
            corner_index += 1
            corner = f"{name}_c{corner_index}" if name else f"c{corner_index}"
            builder.add_internal(corner, feasible=True, position=(cx, py))
            builder.add_wire(parent_attach, corner, length=abs(cx - px))
            builder.add_wire(corner, child, length=abs(cy - py))
        else:
            builder.add_wire(
                parent_attach, child, length=manhattan((px, py), (cx, cy))
            )

    raw = builder.build(name, allow_nonbinary=True)
    return binarize(raw) if not raw.is_binary else raw


def _attach_point(builder: TreeBuilder, node_name: str, sinks: dict) -> str:
    """Where new children of ``node_name`` should attach.

    MST nodes can have tree children even when they are sinks; since sinks
    must be leaves, we create (once) a zero-length feasible twin just above
    the sink and attach both the sink and its children there.
    """
    if node_name not in sinks:
        return node_name
    twin = f"{node_name}__via"
    try:
        builder._lookup(twin)  # noqa: SLF001 - builder-internal probe
        return twin
    except TreeStructureError:
        pass
    # First time: splice the twin between the sink's parent wire and the sink.
    sink_node = builder._lookup(node_name)  # noqa: SLF001
    builder.add_internal(twin, feasible=True, position=sink_node.position)
    for wire in builder._wires:  # noqa: SLF001
        if wire.child is sink_node:
            wire.child = builder._lookup(twin)  # noqa: SLF001
            break
    builder.add_wire(twin, node_name, length=0.0)
    return twin
