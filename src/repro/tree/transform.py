"""Shared helpers for tree-rewriting transforms (binarize, segment, buffer).

Transforms never mutate their input: they deep-copy nodes/wires into a new
:class:`~repro.tree.topology.RoutingTree`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .topology import Node, RoutingTree, Wire


def copy_node(node: Node) -> Node:
    """A fresh, unlinked copy of ``node`` (same name/kind/spec/position)."""
    return Node(
        name=node.name,
        is_source=node.is_source,
        sink=node.sink,
        feasible=node.feasible,
        position=node.position,
    )


def copy_wire(wire: Wire, parent: Node, child: Node) -> Wire:
    """A copy of ``wire`` re-anchored to the given (copied) endpoints."""
    return Wire(
        parent=parent,
        child=child,
        length=wire.length,
        resistance=wire.resistance,
        capacitance=wire.capacitance,
        current=wire.current,
        coupling_ratio=wire.coupling_ratio,
        slope=wire.slope,
    )


def clone_tree(tree: RoutingTree, name: Optional[str] = None) -> RoutingTree:
    """An independent structural copy of ``tree``."""
    copies: Dict[str, Node] = {n.name: copy_node(n) for n in tree.nodes()}
    wires = [copy_wire(w, copies[w.parent.name], copies[w.child.name])
             for w in tree.wires()]
    return RoutingTree(
        list(copies.values()), wires, driver=tree.driver,
        name=tree.name if name is None else name,
        allow_nonbinary=not tree.is_binary,
    )


def fresh_name(base: str, taken: Iterable[str]) -> str:
    """A node name starting with ``base`` that does not clash with ``taken``."""
    used = set(taken)
    if base not in used:
        return base
    index = 1
    while f"{base}_{index}" in used:
        index += 1
    return f"{base}_{index}"


def split_wire(
    wire: Wire,
    fractions: List[float],
    new_nodes: List[Node],
) -> List[Wire]:
    """Split ``wire`` at the given ascending ``fractions`` of its length.

    ``fractions`` are measured from the *parent* end, each strictly inside
    (0, 1); ``new_nodes`` supplies the (already created, unlinked) nodes at
    the split points, ordered parent-to-child.  Electrical values and
    coupling overrides distribute proportionally.  Returns the replacement
    wires, parent-to-child order.
    """
    if len(fractions) != len(new_nodes):
        raise ValueError(
            f"{len(fractions)} fractions but {len(new_nodes)} nodes supplied"
        )
    bounds = [0.0, *fractions, 1.0]
    for low, high in zip(bounds, bounds[1:]):
        if not low < high:
            raise ValueError(f"fractions must be strictly ascending in (0,1): {fractions}")
    endpoints = [wire.parent, *new_nodes, wire.child]
    pieces: List[Wire] = []
    for index, (low, high) in enumerate(zip(bounds, bounds[1:])):
        share = high - low
        pieces.append(
            Wire(
                parent=endpoints[index],
                child=endpoints[index + 1],
                length=wire.length * share,
                resistance=wire.resistance * share,
                capacitance=wire.capacitance * share,
                current=None if wire.current is None else wire.current * share,
                coupling_ratio=wire.coupling_ratio,
                slope=wire.slope,
            )
        )
    return pieces
