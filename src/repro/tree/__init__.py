"""Routing trees: topology, construction, binarization, segmenting, Steiner."""

from .binary import binarize
from .builder import TreeBuilder, two_pin_net
from .segmenting import segment_count, segment_tree
from .steiner import SinkSite, manhattan, steiner_tree
from .topology import Node, RoutingTree, SinkSpec, Wire
from .transform import clone_tree

__all__ = [
    "Node",
    "RoutingTree",
    "SinkSite",
    "SinkSpec",
    "TreeBuilder",
    "Wire",
    "binarize",
    "clone_tree",
    "manhattan",
    "segment_count",
    "segment_tree",
    "steiner_tree",
    "two_pin_net",
]
