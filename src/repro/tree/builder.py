"""Programmatic routing-tree construction.

:class:`TreeBuilder` accumulates nodes and wires and produces a validated
:class:`~repro.tree.topology.RoutingTree`.  When a
:class:`~repro.library.Technology` is supplied, wire resistance and
capacitance are derived from length; otherwise they must be given
explicitly (handy for reproducing the paper's abstract examples, e.g.
Fig. 3, where only ``R`` and ``I`` values are specified).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from ..errors import TreeStructureError
from ..library.cells import DriverCell
from ..library.technology import Technology
from .topology import Node, RoutingTree, SinkSpec, Wire


class TreeBuilder:
    """Incrementally build a :class:`RoutingTree`.

    Example
    -------
    >>> from repro.library import default_technology, DriverCell
    >>> from repro.units import UM, FF
    >>> builder = TreeBuilder(default_technology())
    >>> builder.add_source("so", driver=DriverCell("drv", 200.0))
    >>> builder.add_sink("s1", capacitance=10 * FF, noise_margin=0.8)
    >>> builder.add_wire("so", "s1", length=2000 * UM)
    >>> tree = builder.build("two_pin")
    """

    def __init__(self, technology: Optional[Technology] = None):
        self.technology = technology
        self._nodes: list[Node] = []
        self._names: set[str] = set()
        self._wires: list[Wire] = []
        self._driver: Optional[DriverCell] = None

    # -- nodes ------------------------------------------------------------------

    def _register(self, node: Node) -> Node:
        if node.name in self._names:
            raise TreeStructureError(f"duplicate node name {node.name!r}")
        self._names.add(node.name)
        self._nodes.append(node)
        return node

    def add_source(
        self,
        name: str,
        driver: Optional[DriverCell] = None,
        position: Optional[Tuple[float, float]] = None,
    ) -> Node:
        """Add the unique source node, optionally with its driver cell."""
        if any(n.is_source for n in self._nodes):
            raise TreeStructureError("source already added")
        self._driver = driver
        return self._register(
            Node(name, is_source=True, feasible=False, position=position)
        )

    def add_sink(
        self,
        name: str,
        capacitance: float,
        noise_margin: float,
        required_arrival: float = math.inf,
        position: Optional[Tuple[float, float]] = None,
    ) -> Node:
        """Add a sink pin with its electrical instance data."""
        spec = SinkSpec(capacitance, noise_margin, required_arrival)
        return self._register(Node(name, sink=spec, feasible=False, position=position))

    def add_internal(
        self,
        name: str,
        feasible: bool = True,
        position: Optional[Tuple[float, float]] = None,
    ) -> Node:
        """Add an internal node (a potential buffer site when ``feasible``)."""
        return self._register(Node(name, feasible=feasible, position=position))

    # -- wires ------------------------------------------------------------------

    def add_wire(
        self,
        parent: str,
        child: str,
        length: float = 0.0,
        resistance: Optional[float] = None,
        capacitance: Optional[float] = None,
        current: Optional[float] = None,
        coupling_ratio: Optional[float] = None,
        slope: Optional[float] = None,
    ) -> Wire:
        """Connect ``parent`` to ``child``.

        Resistance/capacitance default to ``technology`` values for the
        given length; passing them explicitly overrides (both must then be
        provided or derivable).
        """
        parent_node = self._lookup(parent)
        child_node = self._lookup(child)
        if resistance is None:
            if self.technology is None and length > 0:
                raise TreeStructureError(
                    f"wire {parent}->{child}: no technology given, so "
                    "resistance must be passed explicitly"
                )
            resistance = (
                self.technology.wire_resistance(length) if self.technology else 0.0
            )
        if capacitance is None:
            if self.technology is None and length > 0:
                raise TreeStructureError(
                    f"wire {parent}->{child}: no technology given, so "
                    "capacitance must be passed explicitly"
                )
            capacitance = (
                self.technology.wire_capacitance(length) if self.technology else 0.0
            )
        wire = Wire(
            parent=parent_node,
            child=child_node,
            length=length,
            resistance=resistance,
            capacitance=capacitance,
            current=current,
            coupling_ratio=coupling_ratio,
            slope=slope,
        )
        self._wires.append(wire)
        return wire

    def _lookup(self, name: str) -> Node:
        for node in self._nodes:
            if node.name == name:
                return node
        raise TreeStructureError(f"unknown node {name!r}; add it before wiring")

    # -- finish -------------------------------------------------------------------

    def build(self, name: str = "net", allow_nonbinary: bool = False) -> RoutingTree:
        """Validate and return the tree.

        ``allow_nonbinary`` admits nodes with more than two children; run
        :func:`repro.tree.binary.binarize` on the result before handing it
        to the algorithms.
        """
        return RoutingTree(
            self._nodes,
            self._wires,
            driver=self._driver,
            name=name,
            allow_nonbinary=allow_nonbinary,
        )


def two_pin_net(
    technology: Technology,
    length: float,
    driver: DriverCell,
    sink_capacitance: float,
    noise_margin: float,
    required_arrival: float = math.inf,
    segments: int = 1,
    name: str = "two_pin",
) -> RoutingTree:
    """Convenience constructor: a single-sink net of ``length`` meters.

    ``segments`` > 1 pre-segments the wire into that many equal pieces,
    creating ``segments - 1`` feasible internal buffer sites (the
    Alpert–Devgan preprocessing for Van Ginneken-style algorithms; the
    closed-form Algorithm 1 does not need it).
    """
    if segments < 1:
        raise TreeStructureError(f"segments must be >= 1, got {segments}")
    builder = TreeBuilder(technology)
    builder.add_source("so", driver=driver, position=(0.0, 0.0))
    previous = "so"
    piece = length / segments
    for index in range(1, segments):
        node_name = f"n{index}"
        builder.add_internal(node_name, position=(piece * index, 0.0))
        builder.add_wire(previous, node_name, length=piece)
        previous = node_name
    builder.add_sink(
        "si",
        capacitance=sink_capacitance,
        noise_margin=noise_margin,
        required_arrival=required_arrival,
        position=(length, 0.0),
    )
    builder.add_wire(previous, "si", length=piece)
    return builder.build(name)
