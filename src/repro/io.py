"""JSON net descriptions: load routing trees, save solutions.

A small, stable interchange format so the optimizer can be driven from
files (``buffopt fix net.json``) rather than only from Python.  The
format mirrors the data model directly::

    {
      "name": "dispatch_bus",
      "technology": {"unit_resistance": 7.6e4, "unit_capacitance": 1.18e-10,
                     "vdd": 1.8, "coupling_ratio": 0.7,
                     "aggressor_slew": 2.5e-10},
      "driver": {"name": "drv_x4", "resistance": 190.0,
                 "intrinsic_delay": 3.3e-11},
      "source": {"name": "so", "position": [0.0, 0.0]},
      "sinks": [{"name": "s1", "capacitance": 2e-14, "noise_margin": 0.8,
                 "required_arrival": 1.5e-9, "position": [5.5e-3, 1e-3]}],
      "internals": [{"name": "u", "feasible": true}],
      "wires": [{"parent": "so", "child": "u", "length": 2e-3},
                {"parent": "u", "child": "s1", "length": 3e-3,
                 "coupling_ratio": 0.5}]
    }

All values are SI.  ``required_arrival`` and ``position`` are optional;
wires may override ``resistance`` / ``capacitance`` / ``current`` /
``coupling_ratio`` / ``slope`` exactly like :class:`~repro.tree.Wire`.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Dict, Optional, Tuple, Union

from .core.solution import BufferSolution
from .errors import ReproError
from .library.cells import DriverCell
from .library.technology import Technology
from .tree.builder import TreeBuilder
from .tree.topology import RoutingTree

PathLike = Union[str, pathlib.Path]


class NetFormatError(ReproError):
    """The JSON net description is malformed."""


def _position(data: dict) -> Optional[Tuple[float, float]]:
    value = data.get("position")
    if value is None:
        return None
    if not (isinstance(value, (list, tuple)) and len(value) == 2):
        raise NetFormatError(
            f"position must be a [x, y] pair, got {value!r}"
        )
    return (float(value[0]), float(value[1]))


def _require(mapping: dict, key: str, context: str):
    try:
        return mapping[key]
    except KeyError:
        raise NetFormatError(f"{context}: missing required key {key!r}") from None


def technology_from_dict(data: dict) -> Technology:
    """Build a :class:`Technology` from the ``technology`` section."""
    return Technology(
        name=data.get("name", "from-json"),
        unit_resistance=_require(data, "unit_resistance", "technology"),
        unit_capacitance=_require(data, "unit_capacitance", "technology"),
        vdd=data.get("vdd", 1.8),
        default_coupling_ratio=data.get("coupling_ratio", 0.7),
        default_aggressor_slew=data.get("aggressor_slew", 0.25e-9),
    )


def net_from_dict(data: dict) -> Tuple[RoutingTree, Optional[Technology]]:
    """Build a routing tree (and its technology, when given) from a dict."""
    technology = (
        technology_from_dict(data["technology"])
        if "technology" in data
        else None
    )
    builder = TreeBuilder(technology)

    source = _require(data, "source", "net")
    driver_data = data.get("driver")
    driver = None
    if driver_data is not None:
        driver = DriverCell(
            name=driver_data.get("name", "driver"),
            resistance=_require(driver_data, "resistance", "driver"),
            intrinsic_delay=driver_data.get("intrinsic_delay", 0.0),
        )
    builder.add_source(
        _require(source, "name", "source"),
        driver=driver,
        position=_position(source),
    )

    for sink in _require(data, "sinks", "net"):
        builder.add_sink(
            _require(sink, "name", "sink"),
            capacitance=_require(sink, "capacitance", "sink"),
            noise_margin=_require(sink, "noise_margin", "sink"),
            required_arrival=sink.get("required_arrival", math.inf),
            position=_position(sink),
        )
    for internal in data.get("internals", []):
        builder.add_internal(
            _require(internal, "name", "internal"),
            feasible=internal.get("feasible", True),
            position=_position(internal),
        )
    for wire in _require(data, "wires", "net"):
        builder.add_wire(
            _require(wire, "parent", "wire"),
            _require(wire, "child", "wire"),
            length=wire.get("length", 0.0),
            resistance=wire.get("resistance"),
            capacitance=wire.get("capacitance"),
            current=wire.get("current"),
            coupling_ratio=wire.get("coupling_ratio"),
            slope=wire.get("slope"),
        )
    tree = builder.build(
        data.get("name", "net"),
        allow_nonbinary=bool(data.get("allow_nonbinary", False)),
    )
    return tree, technology


def load_net(path: PathLike) -> Tuple[RoutingTree, Optional[Technology]]:
    """Load a net description from a JSON file."""
    try:
        data = json.loads(pathlib.Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise NetFormatError(f"{path}: invalid JSON ({exc})") from exc
    if not isinstance(data, dict):
        raise NetFormatError(f"{path}: top level must be an object")
    return net_from_dict(data)


def net_to_dict(
    tree: RoutingTree, technology: Optional[Technology] = None
) -> dict:
    """Serialize a routing tree back into the JSON structure."""
    data: Dict[str, object] = {"name": tree.name}
    if technology is not None:
        data["technology"] = {
            "name": technology.name,
            "unit_resistance": technology.unit_resistance,
            "unit_capacitance": technology.unit_capacitance,
            "vdd": technology.vdd,
            "coupling_ratio": technology.default_coupling_ratio,
            "aggressor_slew": technology.default_aggressor_slew,
        }
    if tree.driver is not None:
        data["driver"] = {
            "name": tree.driver.name,
            "resistance": tree.driver.resistance,
            "intrinsic_delay": tree.driver.intrinsic_delay,
        }
    source: Dict[str, object] = {"name": tree.source.name}
    if tree.source.position is not None:
        source["position"] = list(tree.source.position)
    data["source"] = source

    sinks = []
    for node in tree.sinks:
        assert node.sink is not None
        entry: Dict[str, object] = {
            "name": node.name,
            "capacitance": node.sink.capacitance,
            "noise_margin": node.sink.noise_margin,
        }
        if math.isfinite(node.sink.required_arrival):
            entry["required_arrival"] = node.sink.required_arrival
        if node.position is not None:
            entry["position"] = list(node.position)
        sinks.append(entry)
    data["sinks"] = sinks

    internals = []
    for node in tree.nodes():
        if node.is_internal:
            entry = {"name": node.name, "feasible": node.feasible}
            if node.position is not None:
                entry["position"] = list(node.position)
            internals.append(entry)
    data["internals"] = internals

    wires = []
    for wire in tree.wires():
        entry = {
            "parent": wire.parent.name,
            "child": wire.child.name,
            "length": wire.length,
            "resistance": wire.resistance,
            "capacitance": wire.capacitance,
        }
        for key in ("current", "coupling_ratio", "slope"):
            value = getattr(wire, key)
            if value is not None:
                entry[key] = value
        wires.append(entry)
    data["wires"] = wires
    if not tree.is_binary:
        data["allow_nonbinary"] = True
    return data


def save_net(
    tree: RoutingTree,
    path: PathLike,
    technology: Optional[Technology] = None,
) -> None:
    """Write a routing tree as a JSON net description."""
    pathlib.Path(path).write_text(
        json.dumps(net_to_dict(tree, technology), indent=2) + "\n"
    )


def solution_to_dict(solution: BufferSolution) -> dict:
    """Serialize a buffer assignment (for tool hand-off)."""
    return {
        "net": solution.tree.name,
        "buffers": [
            {
                "node": name,
                "cell": buffer.name,
                "resistance": buffer.resistance,
                "input_capacitance": buffer.input_capacitance,
                "intrinsic_delay": buffer.intrinsic_delay,
                "noise_margin": buffer.noise_margin,
                "inverting": buffer.inverting,
            }
            for name, buffer in sorted(solution.assignment.items())
        ],
    }


def save_solution(solution: BufferSolution, path: PathLike) -> None:
    """Write a buffer assignment as JSON."""
    pathlib.Path(path).write_text(
        json.dumps(solution_to_dict(solution), indent=2) + "\n"
    )
