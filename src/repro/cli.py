"""Command-line driver.

Two families of commands (installed as ``buffopt``; also
``python -m repro.cli``):

* experiment regeneration — the paper's evaluation::

      buffopt table1                # sink distribution
      buffopt table2 --nets 120     # noise violations before/after
      buffopt table3                # BuffOpt vs DelayOpt(k)
      buffopt table4                # delay penalty
      buffopt figures               # Theorem 1/2 sweeps
      buffopt all --nets 500        # the full paper evaluation

* single-net optimization from a JSON description (see :mod:`repro.io`)::

      buffopt fix net.json                            # Problem 3 BuffOpt
      buffopt fix net.json --objective delay          # DelayOpt
      buffopt fix net.json --objective buffopt/min-power   # power-aware
      buffopt fix net.json --mode noise               # Algorithm 2 (noise only)
      buffopt fix net.json --out solution.json        # write the assignment

* batch optimization of a generated fleet (see :mod:`repro.batch`)::

      buffopt batch --nets 200                           # serial BuffOpt
      buffopt batch --nets 200 --executor process        # multiprocessing
      buffopt batch --executor chunked --chunk-size 8    # chunked map
      buffopt batch --stats --objective delay            # with telemetry
      buffopt batch --objective buffopt/power-capped/power_cap=2e-4

  and fault-tolerant variants (see ``docs/usage.md``)::

      buffopt batch --executor resilient --hard-deadline 30   # survive hangs
      buffopt batch --net-timeout 5 --max-candidates 200000   # per-net budgets
      buffopt batch --checkpoint run.jsonl                    # journal results
      buffopt batch --checkpoint run.jsonl --resume           # finish the rest
      buffopt batch --checkpoint run.ckpt --shards 8 \\
          --stream-report --executor async                    # fleet posture
      buffopt batch --inject-faults 0.01 --executor resilient # drill recovery
      buffopt batch --certify                                 # self-audit

* fuzzing the engine against the independent checkers
  (see :mod:`repro.verify`)::

      buffopt fuzz --iters 200 --seed 7           # seeded campaign
      buffopt fuzz --out repros/                  # write shrunk repro JSONs
      buffopt fuzz --replay repros/repro_....json # re-check a counterexample

* observability (see :mod:`repro.obs` and ``docs/observability.md``)::

      buffopt batch --trace run.jsonl --metrics run.prom
      buffopt fuzz --trace fuzz.jsonl
      buffopt trace summarize run.jsonl           # per-span time table

Uniform interface: every subcommand accepts ``--engine``, ``--seed``
and ``--json`` (commands that have no use for a knob accept and ignore
it — scripts can set them unconditionally), and ``buffopt --version``
prints the package version.

Every optimizing subcommand (``fix``/``batch``/``fleet``/``fuzz``/
``serve``/``loadtest``) additionally speaks the single structured
``--objective mode[/selection][/key=value...]`` spec
(:meth:`repro.core.objective.Objective.parse`).  The per-command
``--mode`` flags remain as deprecated shims — each maps to the
*identical* legacy objective, prints a one-line note on stderr, and is
mutually exclusive with ``--objective`` (both at once exits 2).  The
one survivor is ``fix --mode noise``: Algorithm 2's continuous
placement is not a DP objective, so it stays a mode.

Exit codes (the single source of truth; pinned by the CLI tests):

* ``0`` (:data:`EXIT_OK`) — success: tables built, net optimized, no
  fuzz counterexamples, at least one batch net succeeded.
* ``1`` (:data:`EXIT_FAILURE`) — the command ran but the outcome is a
  failure: fuzz counterexamples found, a replay still reproduces,
  every batch net failed, an analysis is unavailable.
* ``2`` (:data:`EXIT_USAGE`) — bad invocation or configuration
  (argparse's own errors also exit 2): ``--resume`` without
  ``--checkpoint``, an invalid workload, an unreadable trace file.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from . import __version__
from .core.dp import ENGINE_CHOICES
from .experiments import (
    build_all_figures,
    build_table1,
    build_table2,
    build_table3,
    build_table4,
    default_experiment,
    format_figures,
    format_table1,
    format_table2,
    format_table3,
    format_table4,
    run_population,
)

TABLE_TARGETS = (
    "table1", "table2", "table3", "table4", "figures", "ablations", "all"
)
TABLES_NEEDING_RUN = {"table2", "table3", "table4", "all"}

#: see the module docstring ("Exit codes") for the full contract.
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2

_UNUSED = " (accepted for interface uniformity; unused by this command)"


def _add_common_options(
    sub: argparse.ArgumentParser,
    *,
    seed_default: int = 19981101,
    seed_help: str = "workload seed",
    engine_help: str = (
        "DP implementation: the readable reference engine, the fast "
        "engine (bit-identical results, ~2-3x faster), the lishi "
        "engine (true O(bn^2); equivalent outcomes within float "
        "tolerance), or auto (pick fast/lishi per net by size)"
    ),
) -> None:
    """The uniform trio every subcommand carries."""
    sub.add_argument(
        "--engine", choices=list(ENGINE_CHOICES), default="reference",
        help=engine_help,
    )
    sub.add_argument("--seed", type=int, default=seed_default, help=seed_help)
    sub.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable JSON report on stdout "
        "(progress still goes to stderr)",
    )


_OBJECTIVE_HELP = (
    "structured optimization objective 'mode[/selection][/key=value...]'"
    " — modes: buffopt, delay; selections include fewest-buffers, "
    "max-slack, min-power, power-capped, pareto; keys: min_slack, "
    "power_cap, require_noise (e.g. "
    "'buffopt/power-capped/power_cap=2e-4'). Replaces the deprecated "
    "--mode; a bare mode means exactly what --mode meant"
)


def _add_objective_option(
    sub: argparse.ArgumentParser, *, help_text: str = _OBJECTIVE_HELP
) -> None:
    """The one ``--objective`` spelling every optimizing command shares."""
    sub.add_argument(
        "--objective", default=None, metavar="SPEC", help=help_text
    )


def _resolve_objective_flags(
    args: argparse.Namespace, *, command: str
):
    """Reconcile ``--objective`` with the deprecated ``--mode``.

    Returns the resolved :class:`~repro.core.objective.Objective`, or
    ``None`` after printing a usage error (callers exit
    :data:`EXIT_USAGE`).  An explicit ``--mode`` still works — it maps
    to the identical legacy objective — but earns a one-line
    deprecation note on stderr.
    """
    from .core.objective import Objective

    spec = getattr(args, "objective", None)
    mode = getattr(args, "mode", None)
    if spec is not None and mode is not None:
        print(
            f"buffopt {command}: --objective and the deprecated --mode "
            "are mutually exclusive; pass only --objective",
            file=sys.stderr,
        )
        return None
    if spec is not None:
        try:
            return Objective.parse(spec)
        except ValueError as exc:
            print(
                f"buffopt {command}: bad --objective: {exc}",
                file=sys.stderr,
            )
            return None
    if mode is not None:
        print(
            f"note: --mode is deprecated; use --objective {mode} "
            "(see docs/usage.md)",
            file=sys.stderr,
        )
        return Objective.legacy(mode)
    return Objective.legacy("buffopt")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="buffopt",
        description=(
            "Reproduce the evaluation of 'Buffer Insertion for Noise and "
            "Delay Optimization' (Alpert/Devgan/Quay) or fix a single net"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="target", required=True)

    for name in TABLE_TARGETS:
        sub = subparsers.add_parser(
            name, help=f"regenerate {name} of the paper's evaluation"
        )
        sub.add_argument(
            "--nets", type=int, default=500,
            help="population size (default: the paper's 500)",
        )
        _add_common_options(sub)

    fix = subparsers.add_parser(
        "fix", help="optimize one net from a JSON description"
    )
    fix.add_argument("net", help="path to the JSON net description")
    fix.add_argument(
        "--mode",
        choices=["buffopt", "delay", "noise"],
        default=None,
        help="noise: Algorithm 2 continuous noise-only placement (not a "
        "DP objective, so it stays a mode); buffopt/delay are deprecated "
        "spellings of --objective buffopt / --objective delay",
    )
    _add_objective_option(fix)
    fix.add_argument(
        "--segment", type=float, default=500e-6,
        help="max wire segment length in meters before optimization "
        "(ignored by --mode noise, which places buffers continuously)",
    )
    fix.add_argument(
        "--out", default=None, help="write the buffer assignment as JSON"
    )
    fix.add_argument(
        "--svg", default=None,
        help="render the optimized net (with noise annotation) to this SVG",
    )
    _add_common_options(
        fix,
        seed_help="workload seed" + _UNUSED,
        engine_help="DP implementation for --mode buffopt/delay "
        "(bit-identical results; ignored by --mode noise)",
    )

    sens = subparsers.add_parser(
        "sensitivity",
        help="coupling-parameter robustness of a JSON-described net",
    )
    sens.add_argument("net", help="path to the JSON net description")
    _add_common_options(
        sens,
        seed_help="workload seed" + _UNUSED,
        engine_help="DP implementation" + _UNUSED,
    )

    export = subparsers.add_parser(
        "export",
        help="write the synthetic workload population as JSON net files",
    )
    export.add_argument("directory", help="output directory (created)")
    export.add_argument("--nets", type=int, default=500)
    _add_common_options(
        export, engine_help="DP implementation" + _UNUSED
    )

    batch = subparsers.add_parser(
        "batch",
        help="optimize a generated net fleet with a pluggable executor",
    )
    batch.add_argument("--nets", type=int, default=200, help="fleet size")
    batch.add_argument(
        "--mode", choices=["buffopt", "delay"], default=None,
        help="deprecated: use --objective buffopt / --objective delay",
    )
    _add_objective_option(batch)
    batch.add_argument(
        "--executor",
        choices=["serial", "process", "chunked", "async", "resilient"],
        default="serial",
        help="map backend (default: serial; async streams completions "
        "out of order; resilient survives worker crashes and hangs)",
    )
    batch.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: all schedulable CPUs)",
    )
    batch.add_argument(
        "--chunk-size", type=int, default=None,
        help="nets per task for --executor chunked (default: auto)",
    )
    batch.add_argument(
        "--segment", type=float, default=500e-6,
        help="max wire segment length in meters before optimization",
    )
    batch.add_argument(
        "--max-buffers", type=int, default=4,
        help="engine count cap per net (0 = uncapped; default 4)",
    )
    batch.add_argument(
        "--prune", choices=["timing", "pareto"], default="timing",
        help="engine pruning rule (pareto = 4-field ablation)",
    )
    batch.add_argument(
        "--stats", action="store_true",
        help="collect and print engine pruning telemetry",
    )
    batch.add_argument(
        "--net-timeout", type=float, default=None, metavar="SECONDS",
        help="cooperative per-net deadline enforced inside the DP loop",
    )
    batch.add_argument(
        "--max-candidates", type=int, default=None, metavar="N",
        help="per-net candidate budget (memory proxy) enforced in the DP loop",
    )
    batch.add_argument(
        "--hard-deadline", type=float, default=None, metavar="SECONDS",
        help="per-net wall-clock kill deadline for --executor resilient "
        "(catches hangs the cooperative --net-timeout cannot)",
    )
    batch.add_argument(
        "--max-attempts", type=int, default=None, metavar="N",
        help="retry budget per net for --executor resilient (default 3)",
    )
    batch.add_argument(
        "--backoff", type=float, default=None, metavar="SECONDS",
        help="base retry backoff for --executor resilient (default 0.05)",
    )
    batch.add_argument(
        "--fallback", choices=["serial", "aggressive"], default=None,
        help="after retries: re-run crashed/hung nets inline (serial) or "
        "re-run budget-blown nets with degraded pruning (aggressive)",
    )
    batch.add_argument(
        "--retry-jitter-seed", type=int, default=0, metavar="SEED",
        help="seed of the retry backoff jitter stream (default 0); pin it "
        "to make fault-injected runs reproduce byte-identical schedules",
    )
    batch.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="journal completed nets to this JSONL file as they finish "
        "(a directory of shard files with --shards)",
    )
    batch.add_argument(
        "--resume", action="store_true",
        help="reload --checkpoint and recompute only unfinished nets",
    )
    batch.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="split the checkpoint into N independent shard journals "
        "inside the --checkpoint directory; resume reads every shard "
        "present, so the count may change between runs",
    )
    batch.add_argument(
        "--stream-report", action="store_true",
        help="fold results into a constant-memory report as they "
        "complete instead of retaining every per-net result "
        "(the 10^5-10^6 net posture; aggregates are identical)",
    )
    batch.add_argument(
        "--no-checkpoint-fsync", action="store_true",
        help="skip the per-record fsync on the checkpoint journal "
        "(faster appends; per-line flush still survives process death)",
    )
    batch.add_argument(
        "--inject-faults", type=float, default=None, metavar="RATE",
        help="fault-injection harness: make this fraction of nets "
        "misbehave (testing/demo only)",
    )
    batch.add_argument(
        "--fault-kind", choices=["raise", "hang", "exit", "slow"],
        default="raise",
        help="what injected faults do (default: raise)",
    )
    batch.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed selecting which nets are faulted (default 0)",
    )
    batch.add_argument(
        "--certify", action="store_true",
        help="independently re-derive every reported outcome with the "
        "certificate checker; certification failures join the failure "
        "taxonomy under the 'certify' phase",
    )
    batch.add_argument(
        "--trace", default=None, metavar="PATH",
        help="journal a JSONL span/event trace of the run to this file "
        "(summarize it with 'buffopt trace summarize PATH')",
    )
    batch.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write Prometheus text-format fleet metrics to this file",
    )
    _add_common_options(batch)

    fleet = subparsers.add_parser(
        "fleet",
        help="coordinate a net fleet over shared buffer-site capacities "
        "with Lagrangian prices (see docs/algorithms.md section 10)",
    )
    fleet.add_argument("--nets", type=int, default=50, help="fleet size")
    fleet.add_argument(
        "--mode", choices=["buffopt", "delay"], default=None,
        help="deprecated: use --objective (delay-mode objectives "
        "additionally report a Lagrangian dual bound on the fleet's "
        "total slack)",
    )
    _add_objective_option(fleet)
    fleet.add_argument(
        "--executor",
        choices=["serial", "process", "chunked", "async"],
        default="serial",
        help="map backend for each round's re-optimizations",
    )
    fleet.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: all schedulable CPUs)",
    )
    fleet.add_argument(
        "--segment", type=float, default=500e-6,
        help="max wire segment length in meters before optimization",
    )
    fleet.add_argument(
        "--sites", type=int, default=8, metavar="N",
        help="shared buffer sites per net family (default 8)",
    )
    fleet.add_argument(
        "--families", type=int, default=1, metavar="N",
        help="independent contention domains nets hash into (default 1)",
    )
    fleet.add_argument(
        "--capacity", type=int, default=2, metavar="N",
        help="buffers each shared site holds (default 2)",
    )
    fleet.add_argument(
        "--capacity-spread", type=int, default=0, metavar="N",
        help="max salted extra capacity per site (default 0 = uniform)",
    )
    fleet.add_argument(
        "--rounds", type=int, default=25, metavar="N",
        help="price-update round budget (default 25)",
    )
    fleet.add_argument(
        "--step", type=float, default=1e-12, metavar="SECONDS",
        help="initial subgradient step on the price scale (default 1e-12)",
    )
    fleet.add_argument(
        "--growth", type=float, default=2.0,
        help="step multiplier applied after a stall (default 2.0)",
    )
    fleet.add_argument(
        "--patience", type=int, default=2,
        help="stalled rounds tolerated before the step escalates",
    )
    fleet.add_argument(
        "--no-repair", action="store_true",
        help="skip the deterministic feasibility repair pass after the "
        "round budget is spent",
    )
    fleet.add_argument(
        "--tight-bound", action="store_true",
        help="spend one full-fleet priced pass tightening the dual "
        "bound at the final prices (delay mode only)",
    )
    fleet.add_argument(
        "--audit", action="store_true",
        help="independently re-derive every fleet claim with the "
        "DP-free auditor; violations fail the command",
    )
    fleet.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="journal completed nets and closed rounds to this JSONL "
        "file as the loop runs",
    )
    fleet.add_argument(
        "--resume", action="store_true",
        help="replay --checkpoint's closed rounds and continue the loop",
    )
    fleet.add_argument(
        "--no-checkpoint-fsync", action="store_true",
        help="skip the per-record fsync on the checkpoint journal",
    )
    fleet.add_argument(
        "--trace", default=None, metavar="PATH",
        help="journal a JSONL span/event trace of the run to this file",
    )
    fleet.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write Prometheus text-format fleet metrics to this file",
    )
    _add_common_options(fleet)

    fuzz = subparsers.add_parser(
        "fuzz",
        help="fuzz the DP engine against the independent certificate "
        "checker and exhaustive oracle (see repro.verify)",
    )
    fuzz.add_argument(
        "--iters", type=int, default=100,
        help="fuzz iterations (random nets) to run (default 100)",
    )
    fuzz.add_argument(
        "--max-internal", type=int, default=5,
        help="max internal nodes per generated net (default 5)",
    )
    fuzz.add_argument(
        "--oracle-sites", type=int, default=4,
        help="run exhaustive oracle comparisons on nets with at most "
        "this many buffer sites (0 disables; default 4)",
    )
    fuzz.add_argument(
        "--max-counterexamples", type=int, default=10,
        help="stop the campaign after this many failures (default 10)",
    )
    fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="emit raw counterexample nets without minimization",
    )
    fuzz.add_argument(
        "--out", default=None, metavar="DIR",
        help="write replayable counterexample JSON files to this directory",
    )
    fuzz.add_argument(
        "--replay", default=None, metavar="PATH",
        help="re-run the checks recorded in a counterexample file "
        "instead of fuzzing",
    )
    fuzz.add_argument(
        "--plant-bug", action="store_true",
        help="run against a deliberately broken engine (self-test: the "
        "campaign must fail and shrink the counterexample); with "
        "--engine fast the bug is an over-pruning fast-engine rule the "
        "oracle comparison must catch, with --engine lishi an "
        "over-evicting timing prune only the differential/oracle legs "
        "can see, and with a power-aware --objective a power "
        "understatement only the certificate's independent power "
        "re-derivation can see",
    )
    _add_objective_option(
        fuzz,
        help_text="restrict the campaign to the single fuzz mode this "
        "objective implies (its mode, plus the power legs when the "
        "selection is power-aware) — e.g. --objective buffopt/min-power "
        "runs only the buffopt-power mode; default: the delay and "
        "buffopt modes",
    )
    fuzz.add_argument(
        "--trace", default=None, metavar="PATH",
        help="journal a JSONL span/event trace of the campaign here",
    )
    fuzz.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write Prometheus text-format campaign metrics to this file",
    )
    _add_common_options(
        fuzz, seed_default=0, seed_help="campaign seed",
        engine_help="DP implementation under test (default: reference)",
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the long-lived optimization service (JSON over HTTP, "
        "or line-delimited JSON on stdio; see docs/service.md)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8723,
        help="listen port (0 = pick a free one; default 8723)",
    )
    serve.add_argument(
        "--stdio", action="store_true",
        help="serve line-delimited JSON on stdin/stdout instead of HTTP "
        "(the embedding mode)",
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="concurrent worker threads, one supervised child process "
        "each (default 2)",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=16,
        help="admission queue bound; beyond it submits shed with 429 "
        "(default 16)",
    )
    serve.add_argument(
        "--supervision", choices=["resilient", "inline"],
        default="resilient",
        help="resilient: process per request, survives crashes and "
        "hangs; inline: in-thread, for embedding (default: resilient)",
    )
    serve.add_argument(
        "--hard-deadline", type=float, default=None, metavar="SECONDS",
        help="per-attempt wall-clock kill for hung workers "
        "(resilient supervision only)",
    )
    serve.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="retry budget per request (default 3)",
    )
    serve.add_argument(
        "--backoff", type=float, default=0.05, metavar="SECONDS",
        help="base retry backoff (default 0.05)",
    )
    serve.add_argument(
        "--retry-jitter-seed", type=int, default=0, metavar="SEED",
        help="seed of the retry backoff jitter stream (default 0); pin "
        "it so chaos runs reproduce byte-identical schedules",
    )
    serve.add_argument(
        "--journal", default=None, metavar="PATH",
        help="journal admissions and results to this JSONL file; a "
        "restarted server serves finished work from it and re-runs "
        "what was in flight",
    )
    serve.add_argument(
        "--no-journal-fsync", action="store_true",
        help="skip the per-record fsync on the service journal",
    )
    serve.add_argument(
        "--events", default=None, metavar="PATH",
        help="emit lifecycle events (accepted/done/recovered) as JSONL",
    )
    serve.add_argument(
        "--wait-timeout", type=float, default=60.0, metavar="SECONDS",
        help="cap on wait=true synchronous submits (default 60)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="SECONDS",
        help="graceful-drain deadline on SIGTERM (default 30)",
    )
    serve.add_argument(
        "--chaos-rate", type=float, default=None, metavar="RATE",
        help="chaos harness: deterministically fault this fraction of "
        "requests' workers (testing only)",
    )
    serve.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed selecting which nets the chaos harness faults",
    )
    serve.add_argument(
        "--chaos-hang-seconds", type=float, default=30.0,
        help="injected hang duration (choose past --hard-deadline)",
    )
    serve.add_argument(
        "--chaos-slow-seconds", type=float, default=0.25,
        help="injected slow-start duration (choose under the deadline)",
    )
    _add_objective_option(
        serve,
        help_text="objective spec (per-request via the protocol's "
        "'objective' block; this flag is validated, then accepted for "
        "interface uniformity)",
    )
    _add_common_options(
        serve,
        seed_help="workload seed" + _UNUSED,
        engine_help="DP implementation (per-request via the protocol's "
        "'engine' field; this flag is accepted for interface uniformity)",
    )

    loadtest = subparsers.add_parser(
        "loadtest",
        help="drive a service with N concurrent clients and report "
        "latency percentiles (BENCH_service.json sidecar)",
    )
    loadtest.add_argument(
        "--url", default=None, metavar="URL",
        help="target a running server (e.g. http://127.0.0.1:8723); "
        "default: run an in-process service",
    )
    loadtest.add_argument(
        "--clients", type=int, default=4, help="client threads (default 4)"
    )
    loadtest.add_argument(
        "--requests", type=int, default=40,
        help="total requests across all clients (default 40)",
    )
    loadtest.add_argument(
        "--unique-nets", type=int, default=32,
        help="distinct nets; the rest repeat, exercising the cache "
        "(default 32)",
    )
    loadtest.add_argument(
        "--mode", choices=["buffopt", "delay"], default=None,
        help="deprecated: use --objective",
    )
    _add_objective_option(
        loadtest,
        help_text="objective every request carries (non-legacy shapes "
        "ride the protocol's v2 'objective' block); "
        + _OBJECTIVE_HELP,
    )
    loadtest.add_argument(
        "--workers", type=int, default=2,
        help="in-process service worker threads (ignored with --url)",
    )
    loadtest.add_argument(
        "--queue-limit", type=int, default=16,
        help="in-process service queue bound (ignored with --url)",
    )
    loadtest.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the BENCH sidecar JSON here (e.g. BENCH_service.json)",
    )
    loadtest.add_argument(
        "--smoke", action="store_true",
        help="mark the sidecar as a smoke (CI-sized) run",
    )
    _add_common_options(
        loadtest, seed_default=0, seed_help="request-stream seed",
        engine_help="DP implementation requested for every net "
        "(default: reference)",
    )

    trace = subparsers.add_parser(
        "trace",
        help="inspect JSONL traces written by --trace (see repro.obs)",
    )
    trace.add_argument(
        "action", choices=["summarize"],
        help="summarize: aggregate per-span wall time and counters",
    )
    trace.add_argument("file", help="path to a JSONL trace file")
    _add_common_options(
        trace,
        seed_help="workload seed" + _UNUSED,
        engine_help="DP implementation" + _UNUSED,
    )
    return parser


def _run_tables(args: argparse.Namespace) -> int:
    experiment = default_experiment(
        nets=args.nets, seed=args.seed, engine=args.engine
    )
    sections: List[str] = []
    run = None
    if args.target in TABLES_NEEDING_RUN:
        print(
            f"optimizing {args.nets} nets (BuffOpt + DelayOpt(1..4)) ...",
            file=sys.stderr,
        )
        run = run_population(experiment)

    if args.target in ("table1", "all"):
        sections.append(format_table1(build_table1(experiment)))
    if args.target in ("table2", "all"):
        assert run is not None
        print("running detailed transient verification ...", file=sys.stderr)
        sections.append(format_table2(build_table2(experiment, run)))
    if args.target in ("table3", "all"):
        assert run is not None
        sections.append(format_table3(build_table3(run)))
    if args.target in ("table4", "all"):
        assert run is not None
        sections.append(format_table4(build_table4(experiment, run)))
    if args.target in ("figures", "all"):
        sections.append(format_figures(build_all_figures(experiment)))
    if args.target == "ablations":
        from .experiments import run_all_ablations

        print("running ablation studies ...", file=sys.stderr)
        sections.append(run_all_ablations(experiment))

    if args.json:
        print(json.dumps({
            "kind": "buffopt-tables-report",
            "target": args.target,
            "nets": args.nets,
            "seed": args.seed,
            "engine": args.engine,
            "sections": sections,
        }, indent=2))
    else:
        print("\n\n".join(sections))
    return EXIT_OK


def _run_fix(args: argparse.Namespace) -> int:
    from .api import Session, SessionOptions
    from .core import insert_buffers_multi_sink
    from .io import load_net, save_solution
    from .library import default_buffer_library, default_technology
    from .noise import CouplingModel, analyze_noise
    from .timing import max_sink_delay
    from .units import format_time

    if args.mode == "noise":
        if args.objective is not None:
            print(
                "buffopt fix: --objective and --mode noise are mutually "
                "exclusive (Algorithm 2 is not a DP objective)",
                file=sys.stderr,
            )
            return EXIT_USAGE
        objective = None
        mode_label = "noise"
    else:
        objective = _resolve_objective_flags(args, command="fix")
        if objective is None:
            return EXIT_USAGE
        mode_label = objective.describe()

    tree, technology = load_net(args.net)
    technology = technology or default_technology()
    library = default_buffer_library()
    coupling = CouplingModel.estimation_mode(technology)

    out = sys.stderr if args.json else sys.stdout
    before = analyze_noise(tree, coupling)
    before_delay = max_sink_delay(tree)
    print(f"loaded {tree.name}: {len(tree.sinks)} sinks, "
          f"{tree.total_wire_length() * 1e3:.2f} mm of wire", file=out)
    print(f"before: {len(before.violations)} noise violations, "
          f"max delay {format_time(before_delay)}", file=out)

    power_total = None
    if args.mode == "noise":
        # Algorithm 2 places buffers continuously; the DP facade (and
        # its --engine switch) does not apply.
        continuous = insert_buffers_multi_sink(tree, library, coupling)
        work_tree, solution = continuous.realize()
    else:
        options = SessionOptions(
            objective=objective,
            engine=args.engine,
            max_segment_length=args.segment,
        )
        with Session(
            options, library=library, coupling=coupling,
            technology=technology,
        ) as session:
            optimized = session.optimize(tree)
        work_tree = optimized.tree
        solution = optimized.solution()
        if objective.power_aware:
            power_total = optimized.power

    after = analyze_noise(work_tree, coupling, solution.buffer_map())
    after_delay = max_sink_delay(work_tree, solution.buffer_map())
    print(f"after ({mode_label}): {solution.buffer_count} buffers, "
          f"{len(after.violations)} noise violations, "
          f"max delay {format_time(after_delay)}", file=out)
    print(solution.describe(), file=out)

    if args.out:
        save_solution(solution, args.out)
        print(f"solution written to {args.out}", file=out)
    if args.svg:
        from .viz import save_svg

        save_svg(work_tree, args.svg, solution.buffer_map(), coupling)
        print(f"rendering written to {args.svg}", file=out)
    if args.json:
        print(json.dumps({
            "kind": "buffopt-fix-report",
            "net": tree.name,
            "mode": "noise" if objective is None else objective.mode,
            "objective": (
                None if objective is None else objective.describe()
            ),
            "engine": args.engine if objective is not None else None,
            "before": {
                "violations": len(before.violations),
                "max_delay": before_delay,
            },
            "after": {
                "violations": len(after.violations),
                "max_delay": after_delay,
                "buffers": solution.buffer_count,
                **(
                    {} if power_total is None
                    else {"power": power_total}
                ),
            },
            "assignment": {
                node: buffer.name
                for node, buffer in sorted(solution.buffer_map().items())
            },
        }, indent=2))
    return EXIT_OK


def _run_sensitivity(args: argparse.Namespace) -> int:
    from .analysis import coupling_sensitivity
    from .errors import AnalysisError
    from .io import load_net
    from .library import default_technology
    from .noise import CouplingModel

    tree, technology = load_net(args.net)
    technology = technology or default_technology()
    coupling = CouplingModel.estimation_mode(technology)
    try:
        report = coupling_sensitivity(tree, coupling)
    except AnalysisError as exc:
        print(f"sensitivity unavailable: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    if args.json:
        print(json.dumps({
            "kind": "buffopt-sensitivity-report",
            "net": tree.name,
            "critical_ratio": report.critical_ratio,
            "assumed_ratio": report.assumed_ratio,
        }, indent=2))
        return EXIT_OK
    print(report.describe())
    print(
        f"net-level critical coupling ratio: {report.critical_ratio:.3f} "
        f"(assumed {report.assumed_ratio})"
    )
    return EXIT_OK


def _run_batch(args: argparse.Namespace) -> int:
    from .batch import BatchConfig, BatchOptimizer, FaultPlan, make_executor
    from .batch.resilience import RetryPolicy
    from .errors import WorkloadError
    from .workloads import WorkloadConfig, population_specs

    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint PATH", file=sys.stderr)
        return EXIT_USAGE
    if args.shards is not None and not args.checkpoint:
        print("--shards requires --checkpoint DIR", file=sys.stderr)
        return EXIT_USAGE
    objective = _resolve_objective_flags(args, command="batch")
    if objective is None:
        return EXIT_USAGE

    tracer = None
    metrics = None
    if args.trace:
        from .obs import EventSink, Tracer

        tracer = Tracer(sink=EventSink(args.trace))
    if args.metrics:
        from .obs import MetricsRegistry

        metrics = MetricsRegistry()

    retry = None
    if args.max_attempts is not None or args.backoff is not None \
            or args.fallback is not None or args.retry_jitter_seed:
        retry = RetryPolicy(
            max_attempts=args.max_attempts or 3,
            backoff_seconds=args.backoff if args.backoff is not None else 0.05,
            fallback=args.fallback,
            seed=args.retry_jitter_seed,
        )
    workload = WorkloadConfig(nets=args.nets, seed=args.seed)
    executor = make_executor(
        args.executor,
        workers=args.workers,
        chunk_size=args.chunk_size,
        retry=retry,
        deadline=args.hard_deadline,
    )
    specs = population_specs(workload)
    faults = None
    if args.inject_faults:
        faults = FaultPlan.sample(
            [spec.name for spec in specs],
            rate=args.inject_faults,
            seed=args.fault_seed,
            kind=args.fault_kind,
        )
        print(f"injecting faults: {faults.describe()}", file=sys.stderr)
    try:
        config = BatchConfig(
            objective=objective,
            max_segment_length=args.segment,
            max_buffers=args.max_buffers or None,
            prune=args.prune,
            collect_stats=args.stats,
            keep_trees=False,
            net_deadline=args.net_timeout,
            net_max_candidates=args.max_candidates,
            retry=retry,
            certify=args.certify,
            engine=args.engine,
        )
    except WorkloadError as exc:
        print(f"bad batch configuration: {exc}", file=sys.stderr)
        return EXIT_USAGE
    optimizer = BatchOptimizer(
        config=config,
        executor=executor,
        workload=workload,
        faults=faults,
        tracer=tracer,
        metrics=metrics,
    )
    print(
        f"optimizing {args.nets} nets ({objective.describe()}, "
        f"{executor.describe()}) ...",
        file=sys.stderr,
    )
    try:
        report = optimizer.optimize_specs(
            specs,
            checkpoint=args.checkpoint,
            resume=args.resume,
            checkpoint_fsync=not args.no_checkpoint_fsync,
            stream_report=args.stream_report,
            shards=args.shards,
        )
    except WorkloadError as exc:
        print(f"batch failed: {exc}", file=sys.stderr)
        return EXIT_USAGE
    finally:
        if tracer is not None:
            tracer.close()
            print(f"trace written to {args.trace}", file=sys.stderr)
    if metrics is not None:
        metrics.write_prometheus(args.metrics)
        print(f"metrics written to {args.metrics}", file=sys.stderr)
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.describe())
    return EXIT_FAILURE if report.failure_count == len(report) else EXIT_OK


def _run_fleet(args: argparse.Namespace) -> int:
    from .batch import make_executor
    from .batch.optimizer import BatchConfig
    from .errors import WorkloadError
    from .fleet import FleetConfig, FleetCoordinator, PriceSchedule
    from .fleet.verify import audit_fleet
    from .workloads import WorkloadConfig, population_specs

    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint PATH", file=sys.stderr)
        return EXIT_USAGE
    objective = _resolve_objective_flags(args, command="fleet")
    if objective is None:
        return EXIT_USAGE

    tracer = None
    metrics = None
    if args.trace:
        from .obs import EventSink, Tracer

        tracer = Tracer(sink=EventSink(args.trace))
    if args.metrics:
        from .obs import MetricsRegistry

        metrics = MetricsRegistry()

    workload = WorkloadConfig(nets=args.nets, seed=args.seed)
    executor = make_executor(args.executor, workers=args.workers)
    try:
        config = FleetConfig(
            batch=BatchConfig(
                objective=objective,
                max_segment_length=args.segment,
                keep_trees=False,
                engine=args.engine,
            ),
            sites_per_family=args.sites,
            families=args.families,
            base_capacity=args.capacity,
            capacity_spread=args.capacity_spread,
            max_rounds=args.rounds,
            schedule=PriceSchedule(
                step=args.step,
                growth=args.growth,
                patience=args.patience,
            ),
            repair=not args.no_repair,
            tight_bound=args.tight_bound,
        )
    except WorkloadError as exc:
        print(f"bad fleet configuration: {exc}", file=sys.stderr)
        return EXIT_USAGE
    coordinator = FleetCoordinator(
        config=config,
        executor=executor,
        workload=workload,
        tracer=tracer,
        metrics=metrics,
    )
    specs = population_specs(workload)
    print(
        f"coordinating {args.nets} nets over "
        f"{args.sites * args.families} shared sites "
        f"({objective.describe()}, {executor.describe()}) ...",
        file=sys.stderr,
    )
    try:
        result = coordinator.coordinate(
            specs,
            checkpoint=args.checkpoint,
            resume=args.resume,
            checkpoint_fsync=not args.no_checkpoint_fsync,
        )
    except WorkloadError as exc:
        print(f"fleet failed: {exc}", file=sys.stderr)
        return EXIT_USAGE
    finally:
        if tracer is not None:
            tracer.close()
            print(f"trace written to {args.trace}", file=sys.stderr)
    if metrics is not None:
        metrics.write_prometheus(args.metrics)
        print(f"metrics written to {args.metrics}", file=sys.stderr)
    violations: List[str] = []
    if args.audit:
        violations = audit_fleet(
            result, specs, config=config, workload=workload
        )
        for violation in violations:
            print(f"audit: {violation}", file=sys.stderr)
    if args.json:
        report = result.to_json()
        if args.audit:
            report["audit_violations"] = violations
        print(json.dumps(report, indent=2))
    else:
        print(result.describe())
        if args.audit:
            print(
                "audit: clean" if not violations
                else f"audit: {len(violations)} violation(s)"
            )
    if violations or not result.feasible:
        return EXIT_FAILURE
    return EXIT_OK


def _run_export(args: argparse.Namespace) -> int:
    import pathlib

    from .io import save_net

    experiment = default_experiment(nets=args.nets, seed=args.seed)
    directory = pathlib.Path(args.directory)
    directory.mkdir(parents=True, exist_ok=True)
    for net in experiment.nets:
        save_net(
            net.tree, directory / f"{net.name}.json", experiment.technology
        )
    if args.json:
        print(json.dumps({
            "kind": "buffopt-export-report",
            "directory": str(directory),
            "nets": len(experiment.nets),
            "seed": args.seed,
        }, indent=2))
    else:
        print(f"wrote {len(experiment.nets)} nets to {directory}")
    return EXIT_OK


def _run_fuzz(args: argparse.Namespace) -> int:
    from .core.objective import Objective
    from .verify import (
        FuzzConfig,
        engine_for,
        planted_buggy_engine,
        planted_buggy_fast_engine,
        planted_buggy_lishi_engine,
        planted_buggy_power_engine,
        replay_file,
        run_fuzz,
    )

    modes = None
    if args.objective is not None:
        try:
            objective = Objective.parse(args.objective)
        except ValueError as exc:
            print(f"buffopt fuzz: bad --objective: {exc}", file=sys.stderr)
            return EXIT_USAGE
        modes = (
            objective.mode + ("-power" if objective.power_aware else ""),
        )
    if args.plant_bug:
        if modes is not None and modes[0].endswith("-power"):
            engine = planted_buggy_power_engine()
        else:
            planted = {
                "fast": planted_buggy_fast_engine,
                "lishi": planted_buggy_lishi_engine,
            }
            engine = planted.get(args.engine, planted_buggy_engine)()
    else:
        engine = engine_for(args.engine)
    if args.replay:
        failures = replay_file(args.replay, engine=engine)
        if args.json:
            print(json.dumps({
                "kind": "buffopt-fuzz-replay",
                "file": args.replay,
                "reproduces": bool(failures),
                "failures": [
                    {
                        "mode": f.mode,
                        "check": f.check,
                        "messages": list(f.messages),
                    }
                    for f in failures
                ],
            }, indent=2))
            return EXIT_FAILURE if failures else EXIT_OK
        if not failures:
            print(f"{args.replay}: no longer reproduces")
            return EXIT_OK
        for failure in failures:
            print(f"{failure.mode}/{failure.check} still fails:")
            for message in failure.messages:
                print(f"  {message}")
        return EXIT_FAILURE

    tracer = None
    metrics = None
    if args.trace:
        from .obs import EventSink, Tracer

        tracer = Tracer(sink=EventSink(args.trace))
    if args.metrics:
        from .obs import MetricsRegistry

        metrics = MetricsRegistry()

    config_kwargs = dict(
        iterations=args.iters,
        seed=args.seed,
        max_internal=args.max_internal,
        oracle_sites=args.oracle_sites,
        shrink=not args.no_shrink,
        out_dir=args.out,
        max_counterexamples=args.max_counterexamples,
        engine=args.engine,
    )
    if modes is not None:
        config_kwargs["modes"] = modes
    config = FuzzConfig(**config_kwargs)
    print(
        f"fuzzing {args.iters} random nets (seed {args.seed}, "
        f"engine {args.engine}, modes {'/'.join(config.modes)}, "
        f"oracle on <= {args.oracle_sites} sites) ...",
        file=sys.stderr,
    )
    try:
        report = run_fuzz(config, engine=engine, tracer=tracer,
                          metrics=metrics)
    finally:
        if tracer is not None:
            tracer.close()
            print(f"trace written to {args.trace}", file=sys.stderr)
    if metrics is not None:
        metrics.write_prometheus(args.metrics)
        print(f"metrics written to {args.metrics}", file=sys.stderr)
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.describe())
    return EXIT_OK if report.ok else EXIT_FAILURE


def _run_serve(args: argparse.Namespace) -> int:
    from .batch.resilience import RetryPolicy
    from .errors import ServiceError
    from .service import (
        ChaosConfig,
        OptimizationService,
        ServiceConfig,
        run_http_server,
        run_stdio,
    )

    if args.objective is not None:
        from .core.objective import Objective

        try:
            Objective.parse(args.objective)
        except ValueError as exc:
            print(f"buffopt serve: bad --objective: {exc}", file=sys.stderr)
            return EXIT_USAGE

    events = None
    if args.events:
        from .obs import EventSink

        events = EventSink(args.events)
    chaos = None
    if args.chaos_rate is not None:
        chaos = ChaosConfig(
            rate=args.chaos_rate,
            seed=args.chaos_seed,
            hang_seconds=args.chaos_hang_seconds,
            slow_seconds=args.chaos_slow_seconds,
        )
        print(
            f"chaos: faulting ~{args.chaos_rate:.0%} of requests "
            f"(seed {args.chaos_seed})",
            file=sys.stderr,
        )
    try:
        config = ServiceConfig(
            workers=args.workers,
            queue_limit=args.queue_limit,
            retry=RetryPolicy(
                max_attempts=args.max_attempts,
                backoff_seconds=args.backoff,
                seed=args.retry_jitter_seed,
            ),
            hard_deadline=args.hard_deadline,
            supervision=args.supervision,
            journal_path=args.journal,
            journal_fsync=not args.no_journal_fsync,
            wait_timeout=args.wait_timeout,
            drain_timeout=args.drain_timeout,
            chaos=chaos,
        )
        service = OptimizationService(config, events=events).start()
    except ServiceError as exc:
        print(f"serve failed to start: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if service.recovered_jobs or service.recovered_results:
        print(
            f"recovered {service.recovered_results} cached result(s), "
            f"re-enqueued {service.recovered_jobs} in-flight request(s) "
            f"from {args.journal}",
            file=sys.stderr,
        )
    try:
        if args.stdio:
            drained = run_stdio(service)
        else:
            drained = run_http_server(
                service,
                host=args.host,
                port=args.port,
                announce=lambda port: print(
                    f"buffopt service listening on "
                    f"http://{args.host}:{port}",
                    file=sys.stderr,
                ),
            )
    finally:
        if events is not None:
            events.close()
    print(
        "drained cleanly" if drained else "drain timed out with work left",
        file=sys.stderr,
    )
    return EXIT_OK if drained else EXIT_FAILURE


def _run_loadtest(args: argparse.Namespace) -> int:
    from .service import (
        HttpServiceClient,
        InProcessClient,
        LoadTestConfig,
        OptimizationService,
        ServiceConfig,
        run_loadtest,
        write_bench_sidecar,
    )

    objective = _resolve_objective_flags(args, command="loadtest")
    if objective is None:
        return EXIT_USAGE
    if objective.selection == "pareto":
        print(
            "buffopt loadtest: the service answers each request with a "
            "single outcome; 'pareto' is not a service objective",
            file=sys.stderr,
        )
        return EXIT_USAGE
    config = LoadTestConfig(
        clients=args.clients,
        requests=args.requests,
        unique_nets=args.unique_nets,
        seed=args.seed,
        objective=objective,
        engine=args.engine,
    )
    service = None
    if args.url:
        client = HttpServiceClient(args.url)
    else:
        service = OptimizationService(ServiceConfig(
            workers=args.workers, queue_limit=args.queue_limit,
        )).start()
        client = InProcessClient(service)
    print(
        f"loadtest: {args.clients} clients x {args.requests} requests "
        f"against {args.url or 'an in-process service'} ...",
        file=sys.stderr,
    )
    try:
        report = run_loadtest(client, config)
    finally:
        if service is not None:
            service.drain()
    if args.out:
        write_bench_sidecar(
            report, args.out, seed=args.seed, smoke=args.smoke
        )
        print(f"sidecar written to {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        latency = report["latency_seconds"]
        print(
            f"{report['completed']}/{report['requests']} completed, "
            f"{report['dropped']} dropped, "
            f"{report['shed_retries']} shed retries, "
            f"{report['throughput_rps']:.1f} req/s | latency p50 "
            f"{latency['p50'] * 1000:.1f} ms, p95 "
            f"{latency['p95'] * 1000:.1f} ms, p99 "
            f"{latency['p99'] * 1000:.1f} ms"
        )
    return EXIT_OK if report["dropped"] == 0 else EXIT_FAILURE


def _run_trace(args: argparse.Namespace) -> int:
    from .errors import ObservabilityError
    from .obs import summarize_trace

    try:
        summary = summarize_trace(args.file)
    except (OSError, ObservabilityError) as exc:
        print(f"trace unreadable: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.json:
        print(json.dumps(summary.to_json(), indent=2))
    else:
        print(summary.describe())
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.target == "fix":
        return _run_fix(args)
    if args.target == "sensitivity":
        return _run_sensitivity(args)
    if args.target == "export":
        return _run_export(args)
    if args.target == "batch":
        return _run_batch(args)
    if args.target == "fleet":
        return _run_fleet(args)
    if args.target == "fuzz":
        return _run_fuzz(args)
    if args.target == "serve":
        return _run_serve(args)
    if args.target == "loadtest":
        return _run_loadtest(args)
    if args.target == "trace":
        return _run_trace(args)
    return _run_tables(args)


if __name__ == "__main__":
    raise SystemExit(main())
