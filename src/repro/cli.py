"""Command-line driver.

Two families of commands (installed as ``buffopt``; also
``python -m repro.cli``):

* experiment regeneration — the paper's evaluation::

      buffopt table1                # sink distribution
      buffopt table2 --nets 120     # noise violations before/after
      buffopt table3                # BuffOpt vs DelayOpt(k)
      buffopt table4                # delay penalty
      buffopt figures               # Theorem 1/2 sweeps
      buffopt all --nets 500        # the full paper evaluation

* single-net optimization from a JSON description (see :mod:`repro.io`)::

      buffopt fix net.json                       # Problem 3 BuffOpt
      buffopt fix net.json --mode delay          # DelayOpt
      buffopt fix net.json --mode noise          # Algorithm 2 (noise only)
      buffopt fix net.json --out solution.json   # write the assignment

* batch optimization of a generated fleet (see :mod:`repro.batch`)::

      buffopt batch --nets 200                           # serial BuffOpt
      buffopt batch --nets 200 --executor process        # multiprocessing
      buffopt batch --executor chunked --chunk-size 8    # chunked map
      buffopt batch --stats --mode delay                 # with telemetry

  and fault-tolerant variants (see ``docs/usage.md``)::

      buffopt batch --executor resilient --hard-deadline 30   # survive hangs
      buffopt batch --net-timeout 5 --max-candidates 200000   # per-net budgets
      buffopt batch --checkpoint run.jsonl                    # journal results
      buffopt batch --checkpoint run.jsonl --resume           # finish the rest
      buffopt batch --inject-faults 0.01 --executor resilient # drill recovery
      buffopt batch --certify                                 # self-audit

* fuzzing the engine against the independent checkers
  (see :mod:`repro.verify`)::

      buffopt fuzz --iters 200 --seed 7           # seeded campaign
      buffopt fuzz --out repros/                  # write shrunk repro JSONs
      buffopt fuzz --replay repros/repro_....json # re-check a counterexample

* observability (see :mod:`repro.obs` and ``docs/observability.md``)::

      buffopt batch --trace run.jsonl --metrics run.prom
      buffopt fuzz --trace fuzz.jsonl
      buffopt trace summarize run.jsonl           # per-span time table

Uniform interface: every subcommand accepts ``--engine``, ``--seed``
and ``--json`` (commands that have no use for a knob accept and ignore
it — scripts can set them unconditionally), and ``buffopt --version``
prints the package version.

Exit codes (the single source of truth; pinned by the CLI tests):

* ``0`` (:data:`EXIT_OK`) — success: tables built, net optimized, no
  fuzz counterexamples, at least one batch net succeeded.
* ``1`` (:data:`EXIT_FAILURE`) — the command ran but the outcome is a
  failure: fuzz counterexamples found, a replay still reproduces,
  every batch net failed, an analysis is unavailable.
* ``2`` (:data:`EXIT_USAGE`) — bad invocation or configuration
  (argparse's own errors also exit 2): ``--resume`` without
  ``--checkpoint``, an invalid workload, an unreadable trace file.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from . import __version__
from .core.dp import ENGINE_CHOICES
from .experiments import (
    build_all_figures,
    build_table1,
    build_table2,
    build_table3,
    build_table4,
    default_experiment,
    format_figures,
    format_table1,
    format_table2,
    format_table3,
    format_table4,
    run_population,
)

TABLE_TARGETS = (
    "table1", "table2", "table3", "table4", "figures", "ablations", "all"
)
TABLES_NEEDING_RUN = {"table2", "table3", "table4", "all"}

#: see the module docstring ("Exit codes") for the full contract.
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2

_UNUSED = " (accepted for interface uniformity; unused by this command)"


def _add_common_options(
    sub: argparse.ArgumentParser,
    *,
    seed_default: int = 19981101,
    seed_help: str = "workload seed",
    engine_help: str = (
        "DP implementation: the readable reference engine, the fast "
        "engine (bit-identical results, ~2-3x faster), the lishi "
        "engine (true O(bn^2); equivalent outcomes within float "
        "tolerance), or auto (pick fast/lishi per net by size)"
    ),
) -> None:
    """The uniform trio every subcommand carries."""
    sub.add_argument(
        "--engine", choices=list(ENGINE_CHOICES), default="reference",
        help=engine_help,
    )
    sub.add_argument("--seed", type=int, default=seed_default, help=seed_help)
    sub.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable JSON report on stdout "
        "(progress still goes to stderr)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="buffopt",
        description=(
            "Reproduce the evaluation of 'Buffer Insertion for Noise and "
            "Delay Optimization' (Alpert/Devgan/Quay) or fix a single net"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="target", required=True)

    for name in TABLE_TARGETS:
        sub = subparsers.add_parser(
            name, help=f"regenerate {name} of the paper's evaluation"
        )
        sub.add_argument(
            "--nets", type=int, default=500,
            help="population size (default: the paper's 500)",
        )
        _add_common_options(sub)

    fix = subparsers.add_parser(
        "fix", help="optimize one net from a JSON description"
    )
    fix.add_argument("net", help="path to the JSON net description")
    fix.add_argument(
        "--mode",
        choices=["buffopt", "delay", "noise"],
        default="buffopt",
        help="buffopt: fewest buffers meeting noise+timing (default); "
        "delay: slack-optimal DelayOpt; noise: Algorithm 2 noise-only",
    )
    fix.add_argument(
        "--segment", type=float, default=500e-6,
        help="max wire segment length in meters before optimization "
        "(ignored by --mode noise, which places buffers continuously)",
    )
    fix.add_argument(
        "--out", default=None, help="write the buffer assignment as JSON"
    )
    fix.add_argument(
        "--svg", default=None,
        help="render the optimized net (with noise annotation) to this SVG",
    )
    _add_common_options(
        fix,
        seed_help="workload seed" + _UNUSED,
        engine_help="DP implementation for --mode buffopt/delay "
        "(bit-identical results; ignored by --mode noise)",
    )

    sens = subparsers.add_parser(
        "sensitivity",
        help="coupling-parameter robustness of a JSON-described net",
    )
    sens.add_argument("net", help="path to the JSON net description")
    _add_common_options(
        sens,
        seed_help="workload seed" + _UNUSED,
        engine_help="DP implementation" + _UNUSED,
    )

    export = subparsers.add_parser(
        "export",
        help="write the synthetic workload population as JSON net files",
    )
    export.add_argument("directory", help="output directory (created)")
    export.add_argument("--nets", type=int, default=500)
    _add_common_options(
        export, engine_help="DP implementation" + _UNUSED
    )

    batch = subparsers.add_parser(
        "batch",
        help="optimize a generated net fleet with a pluggable executor",
    )
    batch.add_argument("--nets", type=int, default=200, help="fleet size")
    batch.add_argument(
        "--mode", choices=["buffopt", "delay"], default="buffopt",
        help="buffopt: fewest buffers meeting noise+timing (default); "
        "delay: slack-optimal DelayOpt",
    )
    batch.add_argument(
        "--executor", choices=["serial", "process", "chunked", "resilient"],
        default="serial",
        help="map backend (default: serial; resilient survives worker "
        "crashes and hangs)",
    )
    batch.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: all schedulable CPUs)",
    )
    batch.add_argument(
        "--chunk-size", type=int, default=None,
        help="nets per task for --executor chunked (default: auto)",
    )
    batch.add_argument(
        "--segment", type=float, default=500e-6,
        help="max wire segment length in meters before optimization",
    )
    batch.add_argument(
        "--max-buffers", type=int, default=4,
        help="engine count cap per net (0 = uncapped; default 4)",
    )
    batch.add_argument(
        "--prune", choices=["timing", "pareto"], default="timing",
        help="engine pruning rule (pareto = 4-field ablation)",
    )
    batch.add_argument(
        "--stats", action="store_true",
        help="collect and print engine pruning telemetry",
    )
    batch.add_argument(
        "--net-timeout", type=float, default=None, metavar="SECONDS",
        help="cooperative per-net deadline enforced inside the DP loop",
    )
    batch.add_argument(
        "--max-candidates", type=int, default=None, metavar="N",
        help="per-net candidate budget (memory proxy) enforced in the DP loop",
    )
    batch.add_argument(
        "--hard-deadline", type=float, default=None, metavar="SECONDS",
        help="per-net wall-clock kill deadline for --executor resilient "
        "(catches hangs the cooperative --net-timeout cannot)",
    )
    batch.add_argument(
        "--max-attempts", type=int, default=None, metavar="N",
        help="retry budget per net for --executor resilient (default 3)",
    )
    batch.add_argument(
        "--backoff", type=float, default=None, metavar="SECONDS",
        help="base retry backoff for --executor resilient (default 0.05)",
    )
    batch.add_argument(
        "--fallback", choices=["serial", "aggressive"], default=None,
        help="after retries: re-run crashed/hung nets inline (serial) or "
        "re-run budget-blown nets with degraded pruning (aggressive)",
    )
    batch.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="journal completed nets to this JSONL file as they finish",
    )
    batch.add_argument(
        "--resume", action="store_true",
        help="reload --checkpoint and recompute only unfinished nets",
    )
    batch.add_argument(
        "--inject-faults", type=float, default=None, metavar="RATE",
        help="fault-injection harness: make this fraction of nets "
        "misbehave (testing/demo only)",
    )
    batch.add_argument(
        "--fault-kind", choices=["raise", "hang", "exit"], default="raise",
        help="what injected faults do (default: raise)",
    )
    batch.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed selecting which nets are faulted (default 0)",
    )
    batch.add_argument(
        "--certify", action="store_true",
        help="independently re-derive every reported outcome with the "
        "certificate checker; certification failures join the failure "
        "taxonomy under the 'certify' phase",
    )
    batch.add_argument(
        "--trace", default=None, metavar="PATH",
        help="journal a JSONL span/event trace of the run to this file "
        "(summarize it with 'buffopt trace summarize PATH')",
    )
    batch.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write Prometheus text-format fleet metrics to this file",
    )
    _add_common_options(batch)

    fuzz = subparsers.add_parser(
        "fuzz",
        help="fuzz the DP engine against the independent certificate "
        "checker and exhaustive oracle (see repro.verify)",
    )
    fuzz.add_argument(
        "--iters", type=int, default=100,
        help="fuzz iterations (random nets) to run (default 100)",
    )
    fuzz.add_argument(
        "--max-internal", type=int, default=5,
        help="max internal nodes per generated net (default 5)",
    )
    fuzz.add_argument(
        "--oracle-sites", type=int, default=4,
        help="run exhaustive oracle comparisons on nets with at most "
        "this many buffer sites (0 disables; default 4)",
    )
    fuzz.add_argument(
        "--max-counterexamples", type=int, default=10,
        help="stop the campaign after this many failures (default 10)",
    )
    fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="emit raw counterexample nets without minimization",
    )
    fuzz.add_argument(
        "--out", default=None, metavar="DIR",
        help="write replayable counterexample JSON files to this directory",
    )
    fuzz.add_argument(
        "--replay", default=None, metavar="PATH",
        help="re-run the checks recorded in a counterexample file "
        "instead of fuzzing",
    )
    fuzz.add_argument(
        "--plant-bug", action="store_true",
        help="run against a deliberately broken engine (self-test: the "
        "campaign must fail and shrink the counterexample); with "
        "--engine fast the bug is an over-pruning fast-engine rule the "
        "oracle comparison must catch, with --engine lishi an "
        "over-evicting timing prune only the differential/oracle legs "
        "can see",
    )
    fuzz.add_argument(
        "--trace", default=None, metavar="PATH",
        help="journal a JSONL span/event trace of the campaign here",
    )
    fuzz.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write Prometheus text-format campaign metrics to this file",
    )
    _add_common_options(
        fuzz, seed_default=0, seed_help="campaign seed",
        engine_help="DP implementation under test (default: reference)",
    )

    trace = subparsers.add_parser(
        "trace",
        help="inspect JSONL traces written by --trace (see repro.obs)",
    )
    trace.add_argument(
        "action", choices=["summarize"],
        help="summarize: aggregate per-span wall time and counters",
    )
    trace.add_argument("file", help="path to a JSONL trace file")
    _add_common_options(
        trace,
        seed_help="workload seed" + _UNUSED,
        engine_help="DP implementation" + _UNUSED,
    )
    return parser


def _run_tables(args: argparse.Namespace) -> int:
    experiment = default_experiment(
        nets=args.nets, seed=args.seed, engine=args.engine
    )
    sections: List[str] = []
    run = None
    if args.target in TABLES_NEEDING_RUN:
        print(
            f"optimizing {args.nets} nets (BuffOpt + DelayOpt(1..4)) ...",
            file=sys.stderr,
        )
        run = run_population(experiment)

    if args.target in ("table1", "all"):
        sections.append(format_table1(build_table1(experiment)))
    if args.target in ("table2", "all"):
        assert run is not None
        print("running detailed transient verification ...", file=sys.stderr)
        sections.append(format_table2(build_table2(experiment, run)))
    if args.target in ("table3", "all"):
        assert run is not None
        sections.append(format_table3(build_table3(run)))
    if args.target in ("table4", "all"):
        assert run is not None
        sections.append(format_table4(build_table4(experiment, run)))
    if args.target in ("figures", "all"):
        sections.append(format_figures(build_all_figures(experiment)))
    if args.target == "ablations":
        from .experiments import run_all_ablations

        print("running ablation studies ...", file=sys.stderr)
        sections.append(run_all_ablations(experiment))

    if args.json:
        print(json.dumps({
            "kind": "buffopt-tables-report",
            "target": args.target,
            "nets": args.nets,
            "seed": args.seed,
            "engine": args.engine,
            "sections": sections,
        }, indent=2))
    else:
        print("\n\n".join(sections))
    return EXIT_OK


def _run_fix(args: argparse.Namespace) -> int:
    from .api import Session, SessionOptions
    from .core import insert_buffers_multi_sink
    from .io import load_net, save_solution
    from .library import default_buffer_library, default_technology
    from .noise import CouplingModel, analyze_noise
    from .timing import max_sink_delay
    from .units import format_time

    tree, technology = load_net(args.net)
    technology = technology or default_technology()
    library = default_buffer_library()
    coupling = CouplingModel.estimation_mode(technology)

    out = sys.stderr if args.json else sys.stdout
    before = analyze_noise(tree, coupling)
    before_delay = max_sink_delay(tree)
    print(f"loaded {tree.name}: {len(tree.sinks)} sinks, "
          f"{tree.total_wire_length() * 1e3:.2f} mm of wire", file=out)
    print(f"before: {len(before.violations)} noise violations, "
          f"max delay {format_time(before_delay)}", file=out)

    if args.mode == "noise":
        # Algorithm 2 places buffers continuously; the DP facade (and
        # its --engine switch) does not apply.
        continuous = insert_buffers_multi_sink(tree, library, coupling)
        work_tree, solution = continuous.realize()
    else:
        options = SessionOptions(
            mode=args.mode,
            engine=args.engine,
            max_segment_length=args.segment,
        )
        with Session(
            options, library=library, coupling=coupling,
            technology=technology,
        ) as session:
            optimized = session.optimize(tree)
        work_tree = optimized.tree
        solution = optimized.solution()

    after = analyze_noise(work_tree, coupling, solution.buffer_map())
    after_delay = max_sink_delay(work_tree, solution.buffer_map())
    print(f"after ({args.mode}): {solution.buffer_count} buffers, "
          f"{len(after.violations)} noise violations, "
          f"max delay {format_time(after_delay)}", file=out)
    print(solution.describe(), file=out)

    if args.out:
        save_solution(solution, args.out)
        print(f"solution written to {args.out}", file=out)
    if args.svg:
        from .viz import save_svg

        save_svg(work_tree, args.svg, solution.buffer_map(), coupling)
        print(f"rendering written to {args.svg}", file=out)
    if args.json:
        print(json.dumps({
            "kind": "buffopt-fix-report",
            "net": tree.name,
            "mode": args.mode,
            "engine": args.engine if args.mode != "noise" else None,
            "before": {
                "violations": len(before.violations),
                "max_delay": before_delay,
            },
            "after": {
                "violations": len(after.violations),
                "max_delay": after_delay,
                "buffers": solution.buffer_count,
            },
            "assignment": {
                node: buffer.name
                for node, buffer in sorted(solution.buffer_map().items())
            },
        }, indent=2))
    return EXIT_OK


def _run_sensitivity(args: argparse.Namespace) -> int:
    from .analysis import coupling_sensitivity
    from .errors import AnalysisError
    from .io import load_net
    from .library import default_technology
    from .noise import CouplingModel

    tree, technology = load_net(args.net)
    technology = technology or default_technology()
    coupling = CouplingModel.estimation_mode(technology)
    try:
        report = coupling_sensitivity(tree, coupling)
    except AnalysisError as exc:
        print(f"sensitivity unavailable: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    if args.json:
        print(json.dumps({
            "kind": "buffopt-sensitivity-report",
            "net": tree.name,
            "critical_ratio": report.critical_ratio,
            "assumed_ratio": report.assumed_ratio,
        }, indent=2))
        return EXIT_OK
    print(report.describe())
    print(
        f"net-level critical coupling ratio: {report.critical_ratio:.3f} "
        f"(assumed {report.assumed_ratio})"
    )
    return EXIT_OK


def _run_batch(args: argparse.Namespace) -> int:
    from .batch import BatchConfig, BatchOptimizer, FaultPlan, make_executor
    from .batch.resilience import RetryPolicy
    from .errors import WorkloadError
    from .workloads import WorkloadConfig, population_specs

    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint PATH", file=sys.stderr)
        return EXIT_USAGE

    tracer = None
    metrics = None
    if args.trace:
        from .obs import EventSink, Tracer

        tracer = Tracer(sink=EventSink(args.trace))
    if args.metrics:
        from .obs import MetricsRegistry

        metrics = MetricsRegistry()

    retry = None
    if args.max_attempts is not None or args.backoff is not None \
            or args.fallback is not None:
        retry = RetryPolicy(
            max_attempts=args.max_attempts or 3,
            backoff_seconds=args.backoff if args.backoff is not None else 0.05,
            fallback=args.fallback,
        )
    workload = WorkloadConfig(nets=args.nets, seed=args.seed)
    executor = make_executor(
        args.executor,
        workers=args.workers,
        chunk_size=args.chunk_size,
        retry=retry,
        deadline=args.hard_deadline,
    )
    specs = population_specs(workload)
    faults = None
    if args.inject_faults:
        faults = FaultPlan.sample(
            [spec.name for spec in specs],
            rate=args.inject_faults,
            seed=args.fault_seed,
            kind=args.fault_kind,
        )
        print(f"injecting faults: {faults.describe()}", file=sys.stderr)
    optimizer = BatchOptimizer(
        config=BatchConfig(
            mode=args.mode,
            max_segment_length=args.segment,
            max_buffers=args.max_buffers or None,
            prune=args.prune,
            collect_stats=args.stats,
            keep_trees=False,
            net_deadline=args.net_timeout,
            net_max_candidates=args.max_candidates,
            retry=retry,
            certify=args.certify,
            engine=args.engine,
        ),
        executor=executor,
        workload=workload,
        faults=faults,
        tracer=tracer,
        metrics=metrics,
    )
    print(
        f"optimizing {args.nets} nets ({args.mode}, "
        f"{executor.describe()}) ...",
        file=sys.stderr,
    )
    try:
        report = optimizer.optimize_specs(
            specs, checkpoint=args.checkpoint, resume=args.resume
        )
    except WorkloadError as exc:
        print(f"batch failed: {exc}", file=sys.stderr)
        return EXIT_USAGE
    finally:
        if tracer is not None:
            tracer.close()
            print(f"trace written to {args.trace}", file=sys.stderr)
    if metrics is not None:
        metrics.write_prometheus(args.metrics)
        print(f"metrics written to {args.metrics}", file=sys.stderr)
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.describe())
    return EXIT_FAILURE if report.failure_count == len(report) else EXIT_OK


def _run_export(args: argparse.Namespace) -> int:
    import pathlib

    from .io import save_net

    experiment = default_experiment(nets=args.nets, seed=args.seed)
    directory = pathlib.Path(args.directory)
    directory.mkdir(parents=True, exist_ok=True)
    for net in experiment.nets:
        save_net(
            net.tree, directory / f"{net.name}.json", experiment.technology
        )
    if args.json:
        print(json.dumps({
            "kind": "buffopt-export-report",
            "directory": str(directory),
            "nets": len(experiment.nets),
            "seed": args.seed,
        }, indent=2))
    else:
        print(f"wrote {len(experiment.nets)} nets to {directory}")
    return EXIT_OK


def _run_fuzz(args: argparse.Namespace) -> int:
    from .verify import (
        FuzzConfig,
        engine_for,
        planted_buggy_engine,
        planted_buggy_fast_engine,
        planted_buggy_lishi_engine,
        replay_file,
        run_fuzz,
    )

    if args.plant_bug:
        planted = {
            "fast": planted_buggy_fast_engine,
            "lishi": planted_buggy_lishi_engine,
        }
        engine = planted.get(args.engine, planted_buggy_engine)()
    else:
        engine = engine_for(args.engine)
    if args.replay:
        failures = replay_file(args.replay, engine=engine)
        if args.json:
            print(json.dumps({
                "kind": "buffopt-fuzz-replay",
                "file": args.replay,
                "reproduces": bool(failures),
                "failures": [
                    {
                        "mode": f.mode,
                        "check": f.check,
                        "messages": list(f.messages),
                    }
                    for f in failures
                ],
            }, indent=2))
            return EXIT_FAILURE if failures else EXIT_OK
        if not failures:
            print(f"{args.replay}: no longer reproduces")
            return EXIT_OK
        for failure in failures:
            print(f"{failure.mode}/{failure.check} still fails:")
            for message in failure.messages:
                print(f"  {message}")
        return EXIT_FAILURE

    tracer = None
    metrics = None
    if args.trace:
        from .obs import EventSink, Tracer

        tracer = Tracer(sink=EventSink(args.trace))
    if args.metrics:
        from .obs import MetricsRegistry

        metrics = MetricsRegistry()

    config = FuzzConfig(
        iterations=args.iters,
        seed=args.seed,
        max_internal=args.max_internal,
        oracle_sites=args.oracle_sites,
        shrink=not args.no_shrink,
        out_dir=args.out,
        max_counterexamples=args.max_counterexamples,
        engine=args.engine,
    )
    print(
        f"fuzzing {args.iters} random nets (seed {args.seed}, "
        f"engine {args.engine}, oracle on <= {args.oracle_sites} "
        "sites) ...",
        file=sys.stderr,
    )
    try:
        report = run_fuzz(config, engine=engine, tracer=tracer,
                          metrics=metrics)
    finally:
        if tracer is not None:
            tracer.close()
            print(f"trace written to {args.trace}", file=sys.stderr)
    if metrics is not None:
        metrics.write_prometheus(args.metrics)
        print(f"metrics written to {args.metrics}", file=sys.stderr)
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.describe())
    return EXIT_OK if report.ok else EXIT_FAILURE


def _run_trace(args: argparse.Namespace) -> int:
    from .errors import ObservabilityError
    from .obs import summarize_trace

    try:
        summary = summarize_trace(args.file)
    except (OSError, ObservabilityError) as exc:
        print(f"trace unreadable: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.json:
        print(json.dumps(summary.to_json(), indent=2))
    else:
        print(summary.describe())
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.target == "fix":
        return _run_fix(args)
    if args.target == "sensitivity":
        return _run_sensitivity(args)
    if args.target == "export":
        return _run_export(args)
    if args.target == "batch":
        return _run_batch(args)
    if args.target == "fuzz":
        return _run_fuzz(args)
    if args.target == "trace":
        return _run_trace(args)
    return _run_tables(args)


if __name__ == "__main__":
    raise SystemExit(main())
