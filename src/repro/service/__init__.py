"""Buffopt-as-a-service: a fault-tolerant, long-running optimization server.

The batch layer (:mod:`repro.batch`) optimizes a fleet in one shot; this
package keeps the same engine available *continuously* — many clients,
many nets, shared resources — which is the deployment shape the
multicommodity-flow buffered-routing line assumes.  Everything is
stdlib-only (``http.server``, ``threading``, ``json``) on top of the
existing substrate:

* :mod:`repro.service.protocol` — the strict JSON request/response
  contract, request canonicalization, and the per-request fingerprint
  (the service twin of the batch checkpoint fingerprint) that keys the
  result cache;
* :mod:`repro.service.worker` — the picklable worker body: one request
  through :func:`repro.batch.optimizer.optimize_net` under the request's
  own :class:`~repro.core.budget.RunBudget`;
* :mod:`repro.service.cache` — the journal-backed result cache: every
  admission and completion is one flushed JSONL line, so a restarted
  server serves finished work from cache and *re-enqueues* work that was
  in flight when it died;
* :mod:`repro.service.server` — the request lifecycle: bounded admission
  queue with load shedding (429/503 + ``Retry-After``), worker
  supervision through :class:`~repro.batch.ResilientExecutor` (retries,
  crash quarantine, hang kills), and graceful drain on SIGTERM;
* :mod:`repro.service.http` — the JSON-over-HTTP surface (submit /
  status / result, ``/healthz``, ``/readyz``, ``/metrics``);
* :mod:`repro.service.stdio` — the stdin/stdout worker mode for
  embedding (one JSON request per line, one JSON response per line);
* :mod:`repro.service.chaos` — deterministic service-level fault
  injection (worker crash / hang / slow-start, torn journal tails,
  malformed requests) extending :mod:`repro.batch.faults`;
* :mod:`repro.service.loadtest` — N concurrent clients with latency
  percentiles into a ``BENCH_service.json`` sidecar.

See ``docs/service.md`` for the protocol, failure semantics, the
degradation ladder, and the runbook.
"""

from .cache import (
    RecoveredState,
    ResultCache,
    ServiceJournal,
    read_journal_header,
    recover_journal,
)
from .chaos import (
    ChaosConfig,
    malformed_requests,
    raw_malformed_bodies,
    tear_journal_tail,
)
from .http import (
    MAX_BODY_BYTES,
    ServiceHTTPServer,
    make_http_server,
    run_http_server,
)
from .loadtest import (
    HttpServiceClient,
    InProcessClient,
    LoadTestConfig,
    run_loadtest,
    write_bench_sidecar,
)
from .protocol import (
    COMPATIBLE_PROTOCOLS,
    PROTOCOL_VERSION,
    CanonicalRequest,
    RequestRejected,
    error_response,
    parse_request,
    result_payload,
)
from .server import Job, OptimizationService, ServiceConfig
from .stdio import run_stdio
from .worker import WorkPayload, execute_request

__all__ = [
    "COMPATIBLE_PROTOCOLS",
    "CanonicalRequest",
    "ChaosConfig",
    "HttpServiceClient",
    "InProcessClient",
    "Job",
    "LoadTestConfig",
    "MAX_BODY_BYTES",
    "OptimizationService",
    "PROTOCOL_VERSION",
    "RecoveredState",
    "RequestRejected",
    "ResultCache",
    "ServiceConfig",
    "ServiceHTTPServer",
    "ServiceJournal",
    "WorkPayload",
    "error_response",
    "execute_request",
    "make_http_server",
    "malformed_requests",
    "parse_request",
    "raw_malformed_bodies",
    "read_journal_header",
    "recover_journal",
    "result_payload",
    "run_http_server",
    "run_loadtest",
    "run_stdio",
    "tear_journal_tail",
    "write_bench_sidecar",
]
