"""The JSON-over-HTTP surface: a thin, strict shell around the core.

Routes (all bodies JSON; every error is a structured
:func:`~repro.service.protocol.error_response`):

========================  ======  =============================================
route                     method  meaning
========================  ======  =============================================
``/v1/optimize``          POST    submit (``wait=true`` for a synchronous 200;
                                  otherwise 202 + job id); 400 malformed,
                                  413 oversized, 429 shed + ``Retry-After``,
                                  503 draining + ``Retry-After``
``/v1/jobs/<id>``         GET     job status (202-shaped body, HTTP 200)
``/v1/jobs/<id>/result``  GET     result; 409 while pending, 404 unknown
``/healthz``              GET     liveness — 200 while the process answers
``/readyz``               GET     readiness — 503 once draining
``/metrics``              GET     Prometheus text (the exporter from
                                  :mod:`repro.obs`)
========================  ======  =============================================

Transport rules: wrong verb on a known route is 405, unknown routes are
404, anything the handler itself trips over is a 500 with a structured
body — a request must never take the server down.
:func:`run_http_server` wires SIGTERM/SIGINT to a graceful drain
(finish queued + in-flight work, then exit), which is the shutdown path
the runbook documents.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from .protocol import RequestRejected, error_response, rejection_response
from .server import OptimizationService

#: request-body size cap (bytes); larger submits are 413s.
MAX_BODY_BYTES = 1_000_000

#: how much of a refused (413) body the server will still read and discard
#: so a well-behaved client can finish writing and see the structured
#: response instead of a broken pipe; bodies claiming more than this are
#: cut off at the socket.
DRAIN_CAP_BYTES = 8 * MAX_BODY_BYTES


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns an :class:`OptimizationService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: OptimizationService):
        super().__init__(address, ServiceRequestHandler)
        self.service = service

    @property
    def port(self) -> int:
        return self.server_address[1]


class ServiceRequestHandler(BaseHTTPRequestHandler):
    server_version = "buffopt-service"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        """HTTP access logging is the obs layer's job, not stderr's."""

    @property
    def service(self) -> OptimizationService:
        return self.server.service  # type: ignore[attr-defined]

    def _send_json(
        self,
        status: int,
        body: Dict[str, Any],
        retry_after: Optional[float] = None,
    ) -> None:
        encoded = json.dumps(body, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(encoded)))
        if retry_after is not None:
            self.send_header("Retry-After", f"{retry_after:g}")
        self.end_headers()
        self.wfile.write(encoded)

    def _send_rejection(self, exc: RequestRejected) -> None:
        self._send_json(
            exc.http_status, rejection_response(exc),
            retry_after=exc.retry_after,
        )

    def _guarded(self, respond) -> None:
        """Run one route handler; every failure becomes a structured body."""
        try:
            respond()
        except RequestRejected as exc:
            self._send_rejection(exc)
        except BrokenPipeError:
            pass  # client went away; nothing to answer
        except Exception as exc:  # noqa: BLE001 - the contract is "no 500-free crashes"
            self._send_json(500, error_response(
                "malformed",  # kept in ERROR_CODES; message names the class
                f"internal error: {type(exc).__name__}: {exc}",
            ))

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._guarded(self._route_get)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._guarded(self._route_post)

    def _route_get(self) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            status, body = self.service.health()
        elif path == "/readyz":
            status, body = self.service.ready()
        elif path == "/metrics":
            text = self.service.metrics_text().encode("utf-8")
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(text)))
            self.end_headers()
            self.wfile.write(text)
            return
        elif path == "/v1/optimize":
            raise RequestRejected.method_not_allowed(
                "submit with POST /v1/optimize"
            )
        elif path.startswith("/v1/jobs/"):
            tail = path[len("/v1/jobs/"):]
            if tail.endswith("/result"):
                status, body = self.service.job_result(
                    tail[: -len("/result")]
                )
            elif "/" not in tail and tail:
                status, body = self.service.job_status(tail)
            else:
                raise RequestRejected.not_found(f"no route {self.path!r}")
        else:
            raise RequestRejected.not_found(f"no route {self.path!r}")
        self._send_json(status, body)

    def _route_post(self) -> None:
        path = self.path.split("?", 1)[0].rstrip("/")
        if path != "/v1/optimize":
            if path in ("/healthz", "/readyz", "/metrics") or path.startswith(
                "/v1/jobs/"
            ):
                raise RequestRejected.method_not_allowed(
                    f"{path} only answers GET"
                )
            raise RequestRejected.not_found(f"no route {self.path!r}")
        payload = self._read_json_body()
        status, body = self.service.submit(payload)
        retry_after = None
        self._send_json(status, body, retry_after=retry_after)

    def _drain_refused_body(self, length: int) -> None:
        """Discard (up to a cap) the body of a request we are refusing.

        Without this the 413 races the client's own writes: the client
        blocks stuffing the body into a full socket buffer, hits EPIPE
        when we close, and never reads the structured response.
        """
        remaining = min(length, DRAIN_CAP_BYTES)
        while remaining > 0:
            chunk = self.rfile.read(min(65536, remaining))
            if not chunk:
                break
            remaining -= len(chunk)
        self.close_connection = True

    def _read_json_body(self) -> Any:
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header or "")
        except ValueError:
            raise RequestRejected.malformed(
                "Content-Length header is required"
            ) from None
        if length > MAX_BODY_BYTES:
            self._drain_refused_body(length)
            raise RequestRejected.too_large(
                f"request body is {length} bytes; the cap is "
                f"{MAX_BODY_BYTES}"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise RequestRejected.malformed(
                "request body is not valid JSON"
            ) from None


def make_http_server(
    service: OptimizationService, host: str = "127.0.0.1", port: int = 0
) -> ServiceHTTPServer:
    """Bind (but do not run) the HTTP surface; ``port=0`` picks a free one."""
    return ServiceHTTPServer((host, port), service)


def run_http_server(
    service: OptimizationService,
    host: str = "127.0.0.1",
    port: int = 8723,
    install_signal_handlers: bool = True,
    announce=None,
) -> bool:
    """Serve until SIGTERM/SIGINT, then drain gracefully.

    Blocks the calling thread.  Returns the drain verdict (``True`` when
    every queued and in-flight request finished before the drain
    timeout).  ``announce`` (callable, given the bound port) lets the
    CLI print the listen address after binding, port-0-safe.
    """
    server = make_http_server(service, host, port)
    if announce is not None:
        announce(server.port)
    stop = threading.Event()
    if install_signal_handlers:
        def _request_stop(signum, frame):
            stop.set()

        signal.signal(signal.SIGTERM, _request_stop)
        signal.signal(signal.SIGINT, _request_stop)

    thread = threading.Thread(
        target=server.serve_forever, name="buffopt-service-http", daemon=True
    )
    thread.start()
    try:
        stop.wait()
    finally:
        drained = service.drain()
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)
    return drained
