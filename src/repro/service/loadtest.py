"""The load-test harness: N concurrent clients, latency percentiles.

Drives a live service — over HTTP (:class:`HttpServiceClient`) or
straight into the core (:class:`InProcessClient`), the same way the
chaos tests do — with ``clients`` threads submitting synchronous
(``wait=true``) requests from a deterministic workload.  Shed responses
(429/503) are retried after the server's ``Retry-After`` hint, so load
shedding degrades latency, never completeness: the harness's
zero-dropped-requests accounting is the ISSUE's acceptance bar, not a
best-effort claim.

The report carries nearest-rank p50/p95/p99 over per-request wall
latency plus outcome counts;  :func:`write_bench_sidecar` lands it in
``BENCH_service.json`` following the repo's sidecar conventions
(``git_sha`` / ``kind`` / ``seed`` / ``smoke``, see
``BENCH_engines.json``).
"""

from __future__ import annotations

import json
import math
import subprocess
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..core.objective import Objective
from ..errors import ServiceError
from ..units import MM
from .protocol import RequestRejected, rejection_response
from .server import OptimizationService

#: submit statuses the harness treats as "try again later".
RETRYABLE_STATUSES = (429, 503)


@dataclass(frozen=True)
class LoadTestConfig:
    """Shape of the synthetic client fleet."""

    clients: int = 4
    requests: int = 40
    #: distinct nets; the remainder repeats earlier nets, exercising the
    #: cache / coalescing path under concurrency.
    unique_nets: int = 32
    seed: int = 0
    mode: str = "buffopt"
    #: structured objective carried by every request; when set it
    #: overrides ``mode`` (the mirror is pinned to ``objective.mode``)
    #: and non-legacy shapes ride the protocol-v2 ``objective`` block.
    objective: Optional[Objective] = None
    engine: str = "reference"
    #: sink counts cycle through this band (kept small: a load test
    #: measures the lifecycle, not the DP).
    min_sinks: int = 2
    max_sinks: int = 6
    #: per-request guards forwarded to the server.
    deadline_seconds: Optional[float] = None
    max_candidates: Optional[int] = None
    #: cap on shed-retry loops per request before declaring it dropped.
    max_submit_attempts: int = 200

    def __post_init__(self) -> None:
        if self.objective is not None:
            object.__setattr__(self, "mode", self.objective.mode)
        if self.clients < 1:
            raise ServiceError(f"clients must be >= 1, got {self.clients}")
        if self.requests < 1:
            raise ServiceError(f"requests must be >= 1, got {self.requests}")
        if self.unique_nets < 1:
            raise ServiceError(
                f"unique_nets must be >= 1, got {self.unique_nets}"
            )
        if not 1 <= self.min_sinks <= self.max_sinks:
            raise ServiceError(
                "need 1 <= min_sinks <= max_sinks, got "
                f"{self.min_sinks}..{self.max_sinks}"
            )

    def payloads(self) -> List[Dict[str, Any]]:
        """The deterministic request stream, in submission order."""
        width = self.max_sinks - self.min_sinks + 1
        out: List[Dict[str, Any]] = []
        for index in range(self.requests):
            net = index % self.unique_nets
            payload: Dict[str, Any] = {
                "net": {
                    "name": f"load-{self.seed}-{net:04d}",
                    "sink_count": self.min_sinks + net % width,
                    "span": (1.0 + (net % 7) * 0.5) * MM,
                    "seed": self.seed * 100_003 + net,
                },
                "engine": self.engine,
                "deadline_seconds": self.deadline_seconds,
                "max_candidates": self.max_candidates,
                "wait": True,
            }
            if self.objective is not None and not self.objective.is_legacy():
                payload["objective"] = self.objective.to_json()
            else:
                payload["mode"] = self.mode
                if self.objective is not None and self.objective.min_slack:
                    payload["min_slack"] = self.objective.min_slack
            out.append(payload)
        return out


class InProcessClient:
    """Submit straight into an :class:`OptimizationService` core."""

    def __init__(self, service: OptimizationService):
        self.service = service

    def submit(self, payload: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        try:
            return self.service.submit(payload)
        except RequestRejected as exc:
            return exc.http_status, rejection_response(exc)


class HttpServiceClient:
    """Submit over the HTTP surface with stdlib ``urllib``."""

    def __init__(self, base_url: str, timeout: float = 120.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def submit(self, payload: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        data = json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            f"{self.base_url}/v1/optimize",
            data=data,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        return self._round_trip(request)

    def get(self, path: str) -> Tuple[int, Dict[str, Any]]:
        request = urllib.request.Request(
            f"{self.base_url}{path}", method="GET"
        )
        return self._round_trip(request)

    def _round_trip(
        self, request: urllib.request.Request
    ) -> Tuple[int, Dict[str, Any]]:
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as reply:
                return reply.status, json.loads(reply.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8", errors="replace")
            try:
                body = json.loads(raw)
            except json.JSONDecodeError:
                body = {"error": "transport", "message": raw}
            return exc.code, body


def percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile over pre-sorted values."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(len(sorted_values) * fraction))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def run_loadtest(client, config: LoadTestConfig) -> Dict[str, Any]:
    """Fire ``config.requests`` submits from ``config.clients`` threads.

    ``client`` needs one method — ``submit(payload) -> (status, body)``
    — so both client classes (and test doubles) fit.  Returns the
    report dict (also the sidecar's ``report`` field).
    """
    payloads = config.payloads()
    latencies: List[float] = [0.0] * len(payloads)
    statuses: List[int] = [0] * len(payloads)
    shed_retries = [0]
    dropped: List[int] = []
    next_index = [0]
    lock = threading.Lock()

    def client_loop() -> None:
        while True:
            with lock:
                index = next_index[0]
                if index >= len(payloads):
                    return
                next_index[0] += 1
            payload = payloads[index]
            started = time.monotonic()
            status, body = client.submit(payload)
            attempts = 1
            while (
                status in RETRYABLE_STATUSES
                and attempts < config.max_submit_attempts
            ):
                time.sleep(float(body.get("retry_after", 0.05)) or 0.05)
                status, body = client.submit(payload)
                attempts += 1
            latencies[index] = time.monotonic() - started
            statuses[index] = status
            if attempts > 1:
                with lock:
                    shed_retries[0] += attempts - 1
            if status != 200:
                with lock:
                    dropped.append(index)

    started = time.monotonic()
    threads = [
        threading.Thread(target=client_loop, name=f"loadtest-client-{n}")
        for n in range(config.clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - started

    ordered = sorted(latencies)
    report = {
        "clients": config.clients,
        "requests": len(payloads),
        "unique_nets": min(config.unique_nets, len(payloads)),
        "completed": len(payloads) - len(dropped),
        "dropped": len(dropped),
        "shed_retries": shed_retries[0],
        "wall_seconds": wall,
        "throughput_rps": len(payloads) / wall if wall > 0 else 0.0,
        "latency_seconds": {
            "p50": percentile(ordered, 0.50),
            "p95": percentile(ordered, 0.95),
            "p99": percentile(ordered, 0.99),
            "max": ordered[-1] if ordered else 0.0,
            "mean": sum(ordered) / len(ordered) if ordered else 0.0,
        },
    }
    return report


def _git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
            cwd=Path(__file__).resolve().parent,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def write_bench_sidecar(
    report: Dict[str, Any],
    path: Union[str, Path],
    seed: int,
    smoke: bool = False,
    extra: Optional[Dict[str, Any]] = None,
) -> Path:
    """Land a load-test report in the repo's BENCH sidecar shape."""
    path = Path(path)
    sidecar: Dict[str, Any] = {
        "git_sha": _git_sha(),
        "kind": "service-loadtest",
        "seed": seed,
        "smoke": smoke,
        "report": report,
    }
    if extra:
        sidecar.update(extra)
    path.write_text(json.dumps(sidecar, indent=2, sort_keys=True) + "\n")
    return path
