"""The journal-backed result cache: the service's crash-recovery spine.

Two cooperating pieces:

* :class:`ServiceJournal` — an append-only JSONL file recording the
  request lifecycle: one ``header`` line, one ``accepted`` line per
  admitted request, one ``result`` line per completed request.  Every
  line is flushed (and optionally fsynced) before the write returns, so
  the journal never trails the server's promises by more than the line
  in flight.  Writes are serialized by an internal lock because HTTP
  handler threads and worker threads share one journal.

* :func:`recover_journal` — replays a journal into a
  :class:`RecoveredState`: finished work becomes the warm cache, and
  ``accepted``-without-``result`` requests — exactly the work that was
  in flight or queued when the process died — come back as *pending*,
  in admission order, for the restarted server to re-enqueue.  A torn
  final line is tolerated (the writer was killed mid-write; counted on
  the shared :data:`~repro.batch.checkpoint.TORN_TAIL_COUNTER` with
  ``journal="service"``); torn *interior* lines and version mismatches
  raise :class:`~repro.errors.ServiceError`, because they mean
  corruption, not interruption.

The cache key is :meth:`CanonicalRequest.fingerprint()
<repro.service.protocol.CanonicalRequest.fingerprint>` — the service
twin of the batch checkpoint fingerprint — so identical work, across
clients and across restarts, resolves to one computation and one stored
response.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO, Tuple, Union

from ..batch.checkpoint import JournalReader
from ..errors import ServiceError
from .protocol import (
    COMPATIBLE_PROTOCOLS,
    PROTOCOL_VERSION,
    CanonicalRequest,
    RequestRejected,
    request_from_json,
)

#: record kinds a service journal may contain, in lifecycle order.
RECORD_KINDS = ("header", "accepted", "result")


class ServiceJournal:
    """Append-only, thread-safe JSONL writer for the request lifecycle.

    ``fsync=True`` (the default) forces every record to stable storage —
    the durability the restart guarantee is advertised under; with
    ``fsync=False`` the per-line flush still covers process death, which
    is the only fault a same-machine restart can observe anyway.
    """

    def __init__(
        self, path: Union[str, Path], handle: TextIO, fsync: bool = True
    ):
        self.path = Path(path)
        self._handle = handle
        self._fsync = fsync
        self._lock = threading.Lock()

    @classmethod
    def create(
        cls, path: Union[str, Path], fsync: bool = True
    ) -> "ServiceJournal":
        """Start a fresh journal (truncating any previous file)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Truncate, then reopen O_APPEND: every flushed line must land at
        # the true end of file even if another handle (a sidecar writer,
        # an operator tool) appended in between — a plain "w" handle
        # would silently overwrite those records at its own position.
        path.open("w", encoding="utf-8").close()
        journal = cls(path, path.open("a", encoding="utf-8"), fsync=fsync)
        journal._write({
            "kind": "header",
            "journal": "service",
            "protocol": PROTOCOL_VERSION,
        })
        return journal

    @classmethod
    def append_to(
        cls, path: Union[str, Path], fsync: bool = True
    ) -> "ServiceJournal":
        """Reopen an existing journal for appending (header must parse)."""
        path = Path(path)
        read_journal_header(path)
        return cls(path, path.open("a", encoding="utf-8"), fsync=fsync)

    def _write(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            if self._handle.closed:
                raise ServiceError(
                    f"service journal {self.path} is closed; no further "
                    "records can be written"
                )
            self._handle.write(line)
            self._handle.flush()
            if self._fsync:
                os.fsync(self._handle.fileno())

    def record_accepted(
        self, fingerprint: str, request: CanonicalRequest, job_id: str
    ) -> None:
        """One admitted request: the promise the server must keep."""
        self._write({
            "kind": "accepted",
            "fingerprint": fingerprint,
            "job_id": job_id,
            "request": request.to_json(),
        })

    def record_result(
        self, fingerprint: str, response: Dict[str, Any]
    ) -> None:
        """One kept promise: the deterministic ``result`` + its ``meta``."""
        self._write({
            "kind": "result",
            "fingerprint": fingerprint,
            "response": response,
        })

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    @property
    def closed(self) -> bool:
        return self._handle.closed


def read_journal_header(path: Union[str, Path]) -> Dict[str, Any]:
    """Parse and validate a service journal's header line."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        first = handle.readline()
    try:
        header = json.loads(first)
    except json.JSONDecodeError:
        raise ServiceError(
            f"service journal {path} has no readable header line"
        ) from None
    if header.get("kind") != "header" or header.get("journal") != "service":
        raise ServiceError(
            f"service journal {path} does not start with a service "
            "header record"
        )
    if header.get("protocol") not in COMPATIBLE_PROTOCOLS:
        raise ServiceError(
            f"service journal {path} speaks protocol "
            f"{header.get('protocol')!r}; this build speaks "
            f"{PROTOCOL_VERSION} (reads {COMPATIBLE_PROTOCOLS}) — "
            "refusing to mix result schemas"
        )
    return header


@dataclass
class RecoveredState:
    """What a journal replay hands the restarting server."""

    #: fingerprint -> journalled ``{"result": ..., "meta": ...}`` record.
    cache: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: ``(fingerprint, request)`` accepted but never finished, in
    #: admission order, deduplicated — the work to re-enqueue.
    pending: List[Tuple[str, CanonicalRequest]] = field(default_factory=list)
    #: whether a torn final line was skipped during replay.
    torn_tail: bool = False


def recover_journal(
    path: Union[str, Path], metrics=None
) -> RecoveredState:
    """Replay a service journal into cache + pending work.

    Records are replayed in order; a ``result`` for a fingerprint that
    was never ``accepted`` is tolerated (the accepted line may have been
    the torn tail of an *earlier* incarnation) and still populates the
    cache.  When ``metrics`` (a :class:`~repro.obs.MetricsRegistry`) is
    given, a recovered torn tail is counted on the shared torn-tail
    counter with ``journal="service"``.
    """
    path = Path(path)
    read_journal_header(path)

    state = RecoveredState()
    accepted: Dict[str, CanonicalRequest] = {}
    order: List[str] = []
    # The shared reader tolerates (counts, truncates) a torn final line
    # — the writer was killed mid-write — and refuses interior tears.
    reader = JournalReader(
        path, metrics=metrics, journal="service", error=ServiceError
    )
    for number, record in reader.records():
        kind = record.get("kind")
        if kind == "accepted":
            fingerprint = record.get("fingerprint")
            try:
                request = request_from_json(record["request"])
            except (KeyError, RequestRejected) as exc:
                raise ServiceError(
                    f"service journal {path} line {number} carries an "
                    f"invalid request record: {exc}"
                ) from None
            if request.fingerprint() != fingerprint:
                raise ServiceError(
                    f"service journal {path} line {number} fingerprint "
                    "does not match its request — journal corrupt"
                )
            if fingerprint not in accepted:
                accepted[fingerprint] = request
                order.append(fingerprint)
        elif kind == "result":
            fingerprint = record.get("fingerprint")
            response = record.get("response")
            if not isinstance(fingerprint, str) or not isinstance(
                response, dict
            ):
                raise ServiceError(
                    f"service journal {path} line {number} is not a "
                    "well-formed result record"
                )
            state.cache[fingerprint] = response
        else:
            raise ServiceError(
                f"service journal {path} line {number} has unknown "
                f"record kind {kind!r}"
            )

    state.torn_tail = reader.torn_tail
    state.pending = [
        (fingerprint, accepted[fingerprint])
        for fingerprint in order
        if fingerprint not in state.cache
    ]
    return state


class ResultCache:
    """Thread-safe fingerprint -> response map with a hit counter."""

    def __init__(self, initial: Optional[Dict[str, Dict[str, Any]]] = None):
        self._lock = threading.Lock()
        self._responses: Dict[str, Dict[str, Any]] = dict(initial or {})
        self.hits = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._responses)

    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            response = self._responses.get(fingerprint)
            if response is not None:
                self.hits += 1
            return response

    def peek(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """Like :meth:`get` but without counting a hit."""
        with self._lock:
            return self._responses.get(fingerprint)

    def put(self, fingerprint: str, response: Dict[str, Any]) -> None:
        with self._lock:
            self._responses[fingerprint] = response
