"""The service core: admission, supervision, recovery, drain.

:class:`OptimizationService` is transport-neutral — the HTTP surface
(:mod:`repro.service.http`) and the stdio mode
(:mod:`repro.service.stdio`) both call the same five methods (submit /
job_status / job_result / health / ready) and relay the ``(status,
body)`` pairs they return.  The lifecycle, front to back:

1. **Admission.**  :meth:`submit` parses strictly (unknown keys are
   400s), fingerprints the canonical request, and then takes the first
   exit that applies: warm **cache hit** (answer immediately, no work),
   **coalesce** onto an identical in-flight job, **shed** when the
   bounded queue is full (429 + ``Retry-After``), **drain** refusal
   when shutdown has begun (503 + ``Retry-After``), or **accept** —
   journal the promise, enqueue, 202.

2. **Supervision.**  Worker threads feed single-request maps through a
   shared :class:`~repro.batch.ResilientExecutor` (process per request:
   crashes, ``os._exit``, and hangs past the hard deadline are
   contained, retried with deterministic backoff, and quarantined into
   structured failure *responses* — never dropped requests).  The
   ``"inline"`` supervision mode runs the worker body in-thread for
   embedding and tests; it retries raised exceptions but cannot survive
   exits or kill hangs.

3. **Recovery.**  With a journal configured, a restarted server replays
   it: finished work becomes the warm cache, accepted-but-unfinished
   work is re-enqueued before the listener opens.  The restart
   guarantee is exactly the journal's flush discipline.

4. **Drain.**  :meth:`drain` stops admission (readyz flips to 503),
   lets queued and in-flight work finish, then stops the workers and
   closes the journal.  The HTTP layer wires SIGTERM to it.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Tuple, Union

from ..batch.optimizer import FailureRecord, failure_net_result
from ..batch.resilience import ResilientExecutor, RetryPolicy, WorkItemFailure
from ..errors import ServiceError
from ..obs import MetricsRegistry
from ..workloads.generator import NetSpec
from .cache import ResultCache, ServiceJournal, recover_journal
from .chaos import ChaosConfig
from .protocol import (
    PROTOCOL_VERSION,
    CanonicalRequest,
    RequestRejected,
    parse_request,
    result_payload,
    wants_wait,
)
from .worker import WorkPayload, execute_request

#: supervision modes: process-per-request or in-thread.
SUPERVISION_MODES = ("resilient", "inline")

#: job lifecycle states, in order.
JOB_STATES = ("queued", "running", "done")


@dataclass(frozen=True)
class ServiceConfig:
    """Everything the server's operator decides.

    Defaults are sized for tests and small deployments; the CLI maps
    ``buffopt serve`` flags straight onto these fields.
    """

    #: concurrent worker threads (each supervising one child process).
    workers: int = 2
    #: queued-request bound beyond which submits shed (429).
    queue_limit: int = 16
    #: retry/backoff/quarantine policy for the supervised worker.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: hard per-attempt wall-clock kill (seconds); ``None`` disables.
    hard_deadline: Optional[float] = None
    #: ``"resilient"`` (process per request) or ``"inline"`` (in-thread).
    supervision: str = "resilient"
    #: journal path; ``None`` runs without crash recovery.
    journal_path: Optional[Union[str, Path]] = None
    #: fsync every journal record (the restart guarantee's durability).
    journal_fsync: bool = True
    #: ``Retry-After`` hint (seconds) on shed/draining responses.
    retry_after_seconds: float = 1.0
    #: cap on ``wait=true`` synchronous submits (then 504, job continues).
    wait_timeout: float = 60.0
    #: drain deadline for :meth:`OptimizationService.drain`.
    drain_timeout: float = 30.0
    #: deterministic fault injection for chaos runs; ``None`` in prod.
    chaos: Optional[ChaosConfig] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServiceError(f"workers must be >= 1, got {self.workers}")
        if self.queue_limit < 1:
            raise ServiceError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        if self.supervision not in SUPERVISION_MODES:
            raise ServiceError(
                f"unknown supervision {self.supervision!r} "
                f"(expected one of {SUPERVISION_MODES})"
            )
        if self.retry_after_seconds <= 0:
            raise ServiceError(
                "retry_after_seconds must be positive, got "
                f"{self.retry_after_seconds}"
            )


class Job:
    """One admitted request's lifecycle record."""

    __slots__ = (
        "id", "fingerprint", "request", "status", "response", "recovered",
        "done_event",
    )

    def __init__(
        self,
        job_id: str,
        fingerprint: str,
        request: CanonicalRequest,
        recovered: bool = False,
    ):
        self.id = job_id
        self.fingerprint = fingerprint
        self.request = request
        self.status = "queued"
        #: journal-shaped ``{"result": ..., "meta": ...}`` once done.
        self.response: Optional[Dict[str, Any]] = None
        self.recovered = recovered
        self.done_event = threading.Event()


class OptimizationService:
    """The transport-neutral optimization server core."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        events=None,
    ):
        self.config = config or ServiceConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events  # an obs EventSink, or None
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._queue: Deque[Optional[Job]] = deque()
        self._jobs: Dict[str, Job] = {}
        self._by_fingerprint: Dict[str, Job] = {}
        self._cache = ResultCache()
        self._journal: Optional[ServiceJournal] = None
        self._threads: List[threading.Thread] = []
        self._inflight = 0
        self._next_job = 0
        self._state = "new"  # new -> running -> draining -> stopped
        self.recovered_jobs = 0
        self.recovered_results = 0
        self._executor = ResilientExecutor(
            workers=1,
            retry=self.config.retry,
            deadline=self.config.hard_deadline,
            metrics=self.metrics,
        )
        registry = self.metrics
        self._requests_total = registry.counter(
            "buffopt_service_requests_total",
            "submit outcomes: accepted / cache_hit / coalesced / shed / "
            "draining / malformed / recovered",
        )
        self._jobs_total = registry.counter(
            "buffopt_service_jobs_total",
            "finished jobs by result status (ok / failed)",
        )
        self._request_seconds = registry.histogram(
            "buffopt_service_request_seconds",
            "wall-clock seconds per executed request (cache hits excluded)",
        )
        self._queue_depth = registry.gauge(
            "buffopt_service_queue_depth", "requests waiting for a worker"
        )
        self._inflight_gauge = registry.gauge(
            "buffopt_service_inflight_jobs", "requests being executed now"
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "OptimizationService":
        """Recover from the journal (if any), then start the workers."""
        with self._lock:
            if self._state != "new":
                raise ServiceError(
                    f"service cannot start from state {self._state!r}"
                )
            pending: List[Tuple[str, CanonicalRequest]] = []
            path = self.config.journal_path
            if path is not None:
                path = Path(path)
                if path.exists():
                    state = recover_journal(path, metrics=self.metrics)
                    self._cache = ResultCache(state.cache)
                    self.recovered_results = len(state.cache)
                    pending = state.pending
                    self._journal = ServiceJournal.append_to(
                        path, fsync=self.config.journal_fsync
                    )
                else:
                    self._journal = ServiceJournal.create(
                        path, fsync=self.config.journal_fsync
                    )
            self._state = "running"
            for fingerprint, request in pending:
                job = self._admit_locked(
                    fingerprint, request, recovered=True
                )
                self._requests_total.inc(outcome="recovered")
                self._emit(
                    "service.recovered",
                    job_id=job.id,
                    fingerprint=fingerprint,
                )
            self.recovered_jobs = len(pending)
            for number in range(self.config.workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"buffopt-service-worker-{number}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)
        return self

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admission, finish queued + in-flight work, stop workers.

        Returns ``True`` when everything finished inside ``timeout``
        (default: ``config.drain_timeout``).  Safe to call twice; the
        journal closes only after the workers are gone, so every
        finished job is journalled.
        """
        timeout = self.config.drain_timeout if timeout is None else timeout
        deadline = time.monotonic() + timeout
        with self._work:
            if self._state in ("stopped",):
                return True
            self._state = "draining"
            self._work.notify_all()
            while self._queue_has_jobs() or self._inflight:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._work.wait(timeout=remaining)
            drained = not self._queue_has_jobs() and not self._inflight
            for _ in self._threads:
                self._queue.append(None)  # stop sentinel
            self._work.notify_all()
        for thread in self._threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()) + 1.0)
        alive = any(thread.is_alive() for thread in self._threads)
        with self._lock:
            self._state = "stopped"
            if self._journal is not None and not alive:
                self._journal.close()
        return drained and not alive

    def _queue_has_jobs(self) -> bool:
        return any(entry is not None for entry in self._queue)

    @property
    def state(self) -> str:
        return self._state

    # -- admission ---------------------------------------------------------

    def submit(self, payload: Any) -> Tuple[int, Dict[str, Any]]:
        """One submit request, end to end.

        Returns ``(http_status, body)``; raises
        :class:`~repro.service.protocol.RequestRejected` for every
        refusal (the transports turn those into structured error
        bodies).
        """
        try:
            request = parse_request(payload)
        except RequestRejected:
            self._requests_total.inc(outcome="malformed")
            raise
        fingerprint = request.fingerprint()
        wait = wants_wait(payload)
        with self._lock:
            cached = self._cache.peek(fingerprint)
            if cached is not None:
                self._requests_total.inc(outcome="cache_hit")
                self._cache.get(fingerprint)  # count the hit
                job = self._by_fingerprint.get(fingerprint)
                job_id = job.id if job is not None else None
                return 200, self._result_body(
                    fingerprint, cached, job_id=job_id, cached=True
                )
            existing = self._by_fingerprint.get(fingerprint)
            if existing is not None and existing.status != "done":
                self._requests_total.inc(outcome="coalesced")
                job = existing
            else:
                if self._state != "running":
                    self._requests_total.inc(outcome="draining")
                    raise RequestRejected.draining(
                        "server is draining; not accepting new work",
                        retry_after=self.config.retry_after_seconds,
                    )
                if self._queued_count() >= self.config.queue_limit:
                    self._requests_total.inc(outcome="shed")
                    raise RequestRejected.shed(
                        f"admission queue is full "
                        f"({self.config.queue_limit} waiting)",
                        retry_after=self.config.retry_after_seconds,
                    )
                job = self._admit_locked(fingerprint, request)
                self._requests_total.inc(outcome="accepted")
                self._emit(
                    "service.accepted",
                    job_id=job.id,
                    fingerprint=fingerprint,
                    net=request.net_name,
                )
        if wait:
            if not job.done_event.wait(timeout=self.config.wait_timeout):
                raise RequestRejected.deadline(
                    f"job {job.id} did not finish within "
                    f"{self.config.wait_timeout:g} s (it continues; poll "
                    f"/v1/jobs/{job.id})"
                )
            return 200, self._result_body(
                fingerprint, job.response, job_id=job.id, cached=False
            )
        return 202, self._job_body(job)

    def _queued_count(self) -> int:
        return sum(1 for entry in self._queue if entry is not None)

    def _admit_locked(
        self,
        fingerprint: str,
        request: CanonicalRequest,
        recovered: bool = False,
    ) -> Job:
        self._next_job += 1
        job = Job(
            f"job-{self._next_job}", fingerprint, request,
            recovered=recovered,
        )
        self._jobs[job.id] = job
        self._by_fingerprint[fingerprint] = job
        if self._journal is not None and not recovered:
            # recovered jobs were journalled by the previous incarnation.
            self._journal.record_accepted(fingerprint, request, job.id)
        self._queue.append(job)
        self._queue_depth.set(self._queued_count())
        self._work.notify()
        return job

    # -- job introspection -------------------------------------------------

    def job_status(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise RequestRejected.not_found(f"unknown job {job_id!r}")
            return 200, self._job_body(job)

    def job_result(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise RequestRejected.not_found(f"unknown job {job_id!r}")
            if job.status != "done":
                raise RequestRejected.pending(
                    f"job {job_id} is {job.status}; result not ready"
                )
            return 200, self._result_body(
                job.fingerprint, job.response, job_id=job.id, cached=False
            )

    def health(self) -> Tuple[int, Dict[str, Any]]:
        """Liveness: 200 whenever the process can answer at all."""
        return 200, {
            "kind": "buffopt-service-health",
            "protocol": PROTOCOL_VERSION,
            "status": "ok",
            "state": self._state,
        }

    def ready(self) -> Tuple[int, Dict[str, Any]]:
        """Readiness: 200 only while accepting work."""
        with self._lock:
            accepting = self._state == "running"
            body = {
                "kind": "buffopt-service-ready",
                "protocol": PROTOCOL_VERSION,
                "ready": accepting,
                "state": self._state,
                "queue_depth": self._queued_count(),
                "inflight": self._inflight,
                "cache_size": len(self._cache),
            }
        return (200 if accepting else 503), body

    def metrics_text(self) -> str:
        return self.metrics.to_prometheus()

    # -- body shaping ------------------------------------------------------

    def _job_body(self, job: Job) -> Dict[str, Any]:
        return {
            "kind": "buffopt-service-job",
            "protocol": PROTOCOL_VERSION,
            "id": job.id,
            "status": job.status,
            "fingerprint": job.fingerprint,
            "recovered": job.recovered,
        }

    def _result_body(
        self,
        fingerprint: str,
        response: Optional[Dict[str, Any]],
        job_id: Optional[str],
        cached: bool,
    ) -> Dict[str, Any]:
        assert response is not None, "result body for unfinished job"
        return {
            "kind": "buffopt-service-result",
            "protocol": PROTOCOL_VERSION,
            "id": job_id,
            "fingerprint": fingerprint,
            "cached": cached,
            # the deterministic payload — chaos runs compare exactly this.
            "result": response["result"],
            # everything wall-clock- or retry-shaped.
            "meta": response.get("meta", {}),
        }

    # -- execution ---------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._work:
                while not self._queue:
                    self._work.wait()
                entry = self._queue.popleft()
                self._queue_depth.set(self._queued_count())
                if entry is None:
                    self._work.notify_all()
                    return
                entry.status = "running"
                self._inflight += 1
                self._inflight_gauge.set(self._inflight)
            started = time.monotonic()
            try:
                response = self._execute(entry)
            finally:
                elapsed = time.monotonic() - started
            with self._work:
                entry.response = response
                entry.status = "done"
                self._cache.put(entry.fingerprint, response)
                if self._journal is not None:
                    self._journal.record_result(entry.fingerprint, response)
                self._inflight -= 1
                self._inflight_gauge.set(self._inflight)
                self._request_seconds.observe(elapsed)
                ok = bool(response["result"].get("ok"))
                self._jobs_total.inc(status="ok" if ok else "failed")
                self._emit(
                    "service.done",
                    job_id=entry.id,
                    fingerprint=entry.fingerprint,
                    ok=ok,
                    seconds=elapsed,
                )
                entry.done_event.set()
                self._work.notify_all()

    def _execute(self, job: Job) -> Dict[str, Any]:
        """Run one job to a journal-ready response, never raising."""
        request = job.request
        chaos = self.config.chaos
        payload = WorkPayload(
            request=request,
            faults=None if chaos is None else chaos.plan_for(
                request.net_name
            ),
        )
        if self.config.supervision == "resilient":
            outcome = self._executor.map(execute_request, [payload])[0]
        else:
            outcome = self._execute_inline(payload)
        if isinstance(outcome, WorkItemFailure):
            return self._failure_response(request, outcome)
        return outcome

    def _execute_inline(self, payload: WorkPayload) -> Any:
        """In-thread execution with the retry policy's error semantics.

        Cannot survive ``exit`` faults or kill hangs — that is what the
        resilient mode is for — but keeps the stdio/embedded mode
        dependency-free of multiprocessing.
        """
        retry = self.config.retry
        key = int(payload.request.fingerprint()[:8], 16)
        attempt = 1
        started = time.monotonic()
        while True:
            try:
                return execute_request(payload, attempt=attempt)
            except Exception as exc:  # noqa: BLE001 - converted to data
                if not retry.should_retry("error", attempt):
                    return WorkItemFailure(
                        index=0,
                        kind="error",
                        error=type(exc).__name__,
                        message=str(exc),
                        attempts=attempt,
                        elapsed=time.monotonic() - started,
                    )
                attempt += 1
                time.sleep(retry.delay(attempt, key=key))

    def _failure_response(
        self, request: CanonicalRequest, sentinel: WorkItemFailure
    ) -> Dict[str, Any]:
        """Quarantined work still gets a structured answer (never drop)."""
        phase = "worker" if sentinel.kind == "error" else "dispatch"
        error = (
            "WorkerCrashError" if sentinel.kind == "crash"
            else "TimeoutError" if sentinel.kind == "hang"
            else sentinel.error
        )
        spec = NetSpec(
            name=request.net_name,
            sink_count=request.sink_count,
            span=request.span,
            seed=request.seed,
        )
        net_result = failure_net_result(spec, FailureRecord(
            error=error,
            message=sentinel.message,
            phase=phase,
            attempts=sentinel.attempts,
            elapsed=sentinel.elapsed,
        ))
        return {
            "result": result_payload(net_result),
            "meta": {
                "seconds": net_result.seconds,
                "attempts": net_result.attempts,
                "error_message": net_result.error,
            },
        }

    def _emit(self, kind: str, **fields: Any) -> None:
        if self.events is not None:
            record = {"event": kind}
            record.update(fields)
            self.events.emit(record)
