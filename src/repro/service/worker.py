"""The service worker body: one canonical request through the engine.

:func:`execute_request` is the module-level, picklable function the
server supervises — through :class:`~repro.batch.ResilientExecutor`
(fresh process per request: crashes, hangs, and injected ``os._exit``
faults stay contained) or inline for the stdio mode and tests.

It deliberately reuses the batch layer's worker path
(:func:`repro.batch.optimizer._optimize_item` over a deferred
:class:`~repro.workloads.NetSpec`) rather than reimplementing it: the
service answers with *exactly* what a batch run of the same request
would have produced, which is what makes the journal-backed cache and
the chaos harness's bit-consistency check honest.

Faults ride the payload as a :class:`~repro.batch.FaultPlan`, exactly as
in the batch layer, so injected misbehavior fires *inside* the worker,
upstream of all handling.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..batch.faults import FaultPlan
from ..batch.optimizer import BatchConfig, _optimize_item, _WorkerSetup
from ..library.buffers import default_buffer_library
from ..library.cells import default_cell_library
from ..library.technology import default_technology
from ..noise.coupling import CouplingModel
from ..workloads.generator import NetSpec, WorkloadConfig
from .protocol import CanonicalRequest, result_payload


@dataclass(frozen=True)
class WorkPayload:
    """Everything one worker invocation needs, picklable."""

    request: CanonicalRequest
    #: scheduled misbehavior for this request's net, or ``None``.
    faults: Optional[FaultPlan] = None


def batch_config_for(request: CanonicalRequest) -> BatchConfig:
    """The request's engine policy as a :class:`~repro.batch.BatchConfig`.

    ``keep_trees=False``: the service ships assignments over the wire,
    never trees.  A v2 objective block passes through as the batch
    objective; legacy requests keep the ``mode=`` path (which
    ``BatchConfig`` resolves to the identical legacy objective).
    """
    if request.objective is not None:
        return BatchConfig(
            objective=request.objective,
            max_segment_length=request.max_segment_length,
            max_buffers=request.max_buffers,
            prune=request.prune,
            keep_trees=False,
            net_deadline=request.deadline_seconds,
            net_max_candidates=request.max_candidates,
            certify=request.certify,
            engine=request.engine,
        )
    return BatchConfig(
        mode=request.mode,
        max_segment_length=request.max_segment_length,
        max_buffers=request.max_buffers,
        prune=request.prune,
        min_slack=request.min_slack,
        keep_trees=False,
        net_deadline=request.deadline_seconds,
        net_max_candidates=request.max_candidates,
        certify=request.certify,
        engine=request.engine,
    )


@functools.lru_cache(maxsize=1)
def _shared_setup_parts():
    """Library/technology/physics defaults, built once per process.

    These are the same defaults :class:`~repro.batch.BatchOptimizer`
    falls back to; caching them keeps per-request worker overhead at
    one ``BatchConfig`` construction.
    """
    technology = default_technology()
    workload = WorkloadConfig()
    return (
        default_buffer_library(),
        CouplingModel.estimation_mode(technology),
        workload,
        technology,
        default_cell_library(noise_margin=workload.noise_margin),
    )


def worker_setup(payload: WorkPayload) -> _WorkerSetup:
    library, coupling, workload, technology, cells = _shared_setup_parts()
    return _WorkerSetup(
        library=library,
        coupling=coupling,
        config=batch_config_for(payload.request),
        workload=workload,
        technology=technology,
        cells=cells,
        faults=payload.faults,
    )


def execute_request(
    payload: WorkPayload, attempt: int = 1
) -> Dict[str, Any]:
    """Optimize one request; the supervised map target.

    Returns a journal-ready record: the deterministic ``result`` payload
    (:func:`~repro.service.protocol.result_payload`) plus a ``meta``
    object carrying everything wall-clock- or retry-shaped.  Engine
    failures (infeasible, budget, deadline) come back as structured
    *results*; unexpected exceptions — injected raises included —
    propagate to the supervisor for retry/quarantine.
    """
    request = payload.request
    spec = NetSpec(
        name=request.net_name,
        sink_count=request.sink_count,
        span=request.span,
        seed=request.seed,
    )
    net_result = _optimize_item(worker_setup(payload), spec, attempt=attempt)
    return {
        "result": result_payload(net_result),
        "meta": {
            "seconds": net_result.seconds,
            "attempts": net_result.attempts,
            "error_message": net_result.error,
        },
    }
